//! End-to-end motif-set discovery (Problems 1 + 2 together) across crates.

use std::collections::HashSet;

use valmod_core::motif_sets::compute_var_length_motif_sets;
use valmod_core::valmod::{Valmod, ValmodConfig};
use valmod_data::generators::plant_motif;
use valmod_data::series::Series;
use valmod_mp::distance::zdist_naive;
use valmod_mp::{ExclusionPolicy, ProfiledSeries};

fn setup(seed: u64, k: usize) -> (Series, valmod_core::valmod::ValmodOutput) {
    let (values, _) = plant_motif(4_000, 60, 5, 0.05, seed);
    let series = Series::new(values).unwrap();
    let cfg = ValmodConfig::new(54, 66).with_p(8).with_pair_tracking(k);
    let out = Valmod::from_config(cfg).run(&series).unwrap();
    (series, out)
}

#[test]
fn set_members_really_are_within_radius_of_a_center() {
    let (series, out) = setup(21, 6);
    let ps = ProfiledSeries::new(&series);
    let (sets, _) = compute_var_length_motif_sets(
        &ps,
        out.best_pairs.as_ref().unwrap(),
        3.0,
        ExclusionPolicy::HALF,
    );
    assert!(!sets.is_empty());
    let v = series.values();
    for set in &sets {
        let (a, b) = set.pair;
        for m in &set.members {
            let d_a = zdist_naive(&v[m.offset..m.offset + set.l], &v[a..a + set.l]);
            let d_b = zdist_naive(&v[m.offset..m.offset + set.l], &v[b..b + set.l]);
            assert!(
                d_a < set.radius + 1e-6 || d_b < set.radius + 1e-6,
                "member {} of set at ({a},{b}) is outside radius {} (d_a={d_a}, d_b={d_b})",
                m.offset,
                set.radius
            );
        }
    }
}

#[test]
fn planted_instances_populate_the_top_set() {
    let (series, out) = setup(33, 4);
    let ps = ProfiledSeries::new(&series);
    let (sets, _) = compute_var_length_motif_sets(
        &ps,
        out.best_pairs.as_ref().unwrap(),
        4.0,
        ExclusionPolicy::HALF,
    );
    // Five planted instances; the top set should recover most of them.
    assert!(
        sets[0].frequency() >= 4,
        "top set frequency {} (expected ≥ 4 of 5 planted)",
        sets[0].frequency()
    );
}

#[test]
fn disjointness_holds_across_the_whole_answer() {
    let (series, out) = setup(45, 10);
    let ps = ProfiledSeries::new(&series);
    let (sets, _) = compute_var_length_motif_sets(
        &ps,
        out.best_pairs.as_ref().unwrap(),
        5.0,
        ExclusionPolicy::HALF,
    );
    let mut seen = HashSet::new();
    for set in &sets {
        for m in &set.members {
            assert!(
                seen.insert((m.offset, set.l)),
                "subsequence ({}, {}) appears in two motif sets",
                m.offset,
                set.l
            );
        }
    }
}

#[test]
fn snapshot_path_agrees_with_recompute_path() {
    // Run the same expansion with a radius small enough for snapshots and
    // verify member distances against direct recomputation.
    let (series, out) = setup(57, 3);
    let ps = ProfiledSeries::new(&series);
    let tracker = out.best_pairs.as_ref().unwrap();
    let (sets, _) = compute_var_length_motif_sets(&ps, tracker, 2.0, ExclusionPolicy::HALF);
    let v = series.values();
    for set in &sets {
        for m in &set.members {
            if m.dist == 0.0 {
                continue; // centres
            }
            let (a, b) = set.pair;
            let d_a = zdist_naive(&v[m.offset..m.offset + set.l], &v[a..a + set.l]);
            let d_b = zdist_naive(&v[m.offset..m.offset + set.l], &v[b..b + set.l]);
            let direct = d_a.min(d_b);
            assert!(
                (m.dist - direct).abs() < 1e-5,
                "stored member distance {} vs direct {}",
                m.dist,
                direct
            );
        }
    }
}
