//! Cross-crate exactness: VALMOD, STOMP-per-length, QuickMotif, MOEN, and
//! brute force must all report the same motif distance for every length, on
//! every dataset stand-in.

use valmod_baselines::brute::brute_force_motif;
use valmod_baselines::moen::moen;
use valmod_baselines::quick_motif::{quick_motif, QuickMotifConfig};
use valmod_baselines::stomp_range::stomp_range;
use valmod_core::valmod::{Valmod, ValmodConfig};
use valmod_data::datasets::Dataset;
use valmod_mp::{ExclusionPolicy, ProfiledSeries};

const L_MIN: usize = 24;
const L_MAX: usize = 36;
const N: usize = 900;

fn agree(a: f64, b: f64, what: &str) {
    assert!((a - b).abs() < 1e-6, "{what}: {a} vs {b}");
}

#[test]
fn all_five_algorithms_agree_on_every_dataset() {
    for ds in Dataset::ALL {
        let series = ds.generate(N, 99);
        let ps = ProfiledSeries::new(&series);
        let policy = ExclusionPolicy::HALF;

        let valmod_out = Valmod::from_config(ValmodConfig::new(L_MIN, L_MAX).with_p(6))
            .run_on(&ps)
            .expect("valmod runs");
        let stomp_out = stomp_range(&ps, L_MIN, L_MAX, policy, 1).expect("stomp runs");
        let moen_out =
            moen(&ps, L_MIN, L_MAX, policy, std::time::Duration::MAX).expect("moen runs");

        for (k, l) in (L_MIN..=L_MAX).enumerate() {
            let name = format!("{} l={l}", ds.name());
            let v = valmod_out.per_length[k].motif.expect("valmod finds a motif").dist;
            let s = stomp_out[k].expect("stomp finds a motif").dist;
            let m = moen_out.motifs[k].expect("moen finds a motif").dist;
            agree(v, s, &format!("{name} VALMOD vs STOMP"));
            agree(m, s, &format!("{name} MOEN vs STOMP"));
            // QuickMotif and brute force are slower; spot-check ends + middle.
            if l == L_MIN || l == L_MAX || l == (L_MIN + L_MAX) / 2 {
                let q = quick_motif(&ps, l, policy, &QuickMotifConfig::default())
                    .expect("runs")
                    .expect("finds a motif")
                    .dist;
                agree(q, s, &format!("{name} QUICKMOTIF vs STOMP"));
                let b =
                    brute_force_motif(&ps, l, policy).expect("runs").expect("finds a motif").dist;
                agree(b, s, &format!("{name} BRUTE vs STOMP"));
            }
        }
    }
}

#[test]
fn valmp_best_equals_minimum_over_per_length_motifs() {
    for ds in [Dataset::Ecg, Dataset::Gap] {
        let series = ds.generate(N, 7);
        let ps = ProfiledSeries::new(&series);
        let out =
            Valmod::from_config(ValmodConfig::new(L_MIN, L_MAX).with_p(6)).run_on(&ps).unwrap();
        let best_from_lengths = out
            .per_length
            .iter()
            .filter_map(|r| r.motif)
            .map(|m| m.norm_dist())
            .fold(f64::INFINITY, f64::min);
        let best = out.best_motif().unwrap();
        assert!(
            (best.norm_dist() - best_from_lengths).abs() < 1e-9,
            "{}: VALMP best {} vs per-length best {}",
            ds.name(),
            best.norm_dist(),
            best_from_lengths
        );
    }
}

#[test]
fn exclusion_policy_ablation_preserves_exactness() {
    // The ℓ/4 ablation (DESIGN.md §5) must stay exact too.
    let series = Dataset::Ecg.generate(700, 13);
    let ps = ProfiledSeries::new(&series);
    let policy = ExclusionPolicy::QUARTER;
    let out = Valmod::from_config(ValmodConfig::new(24, 30).with_p(5).with_policy(policy))
        .run_on(&ps)
        .unwrap();
    let oracle = stomp_range(&ps, 24, 30, policy, 1).unwrap();
    for (k, r) in out.per_length.iter().enumerate() {
        agree(r.motif.unwrap().dist, oracle[k].unwrap().dist, &format!("quarter-zone l={}", r.l));
    }
}

#[test]
fn larger_p_never_changes_results_only_work() {
    let series = Dataset::Astro.generate(800, 3);
    let ps = ProfiledSeries::new(&series);
    let mut dists: Vec<Vec<f64>> = Vec::new();
    for p in [1usize, 5, 25, 100] {
        let out = Valmod::from_config(ValmodConfig::new(20, 32).with_p(p)).run_on(&ps).unwrap();
        dists.push(out.per_length.iter().map(|r| r.motif.unwrap().dist).collect());
    }
    for w in dists.windows(2) {
        for (a, b) in w[0].iter().zip(&w[1]) {
            agree(*a, *b, "p-sweep");
        }
    }
}

#[test]
fn thread_counts_never_change_results_only_wall_clock() {
    // 877 rows at l_min = 24 (prime ndp): no thread count in the sweep
    // divides it, so every chunking has a short tail chunk. p = 1 keeps the
    // heaps tiny, stressing the non-valid path and last-chance refinement
    // under the threaded first pass.
    let series = Dataset::Emg.generate(N, 7);
    let ps = ProfiledSeries::new(&series);
    for p in [1usize, 6] {
        let base =
            Valmod::from_config(ValmodConfig::new(L_MIN, L_MAX).with_p(p)).run_on(&ps).unwrap();
        for threads in [2usize, 3, 7, 16] {
            let cfg = ValmodConfig::new(L_MIN, L_MAX).with_p(p).with_threads(threads);
            let out = Valmod::from_config(cfg).run_on(&ps).unwrap();
            for (a, b) in base.per_length.iter().zip(&out.per_length) {
                let (x, y) = (a.motif.unwrap().dist, b.motif.unwrap().dist);
                assert!((x - y).abs() < 1e-7, "p={p} threads={threads} l={}: {x} vs {y}", a.l);
            }
        }
    }
}
