//! Property-based tests of the core invariants, across crates.

use proptest::prelude::*;
use valmod_core::lb::{lb_base, lb_scale};
use valmod_core::valmod::{Valmod, ValmodConfig};
use valmod_data::generators::{random_walk, sine_mixture};
use valmod_mp::distance::{length_normalize, zdist_naive};
use valmod_mp::parallel::stomp_parallel;
use valmod_mp::stomp::stomp;
use valmod_mp::{ExclusionPolicy, ProfiledSeries};

/// A small family of structured-plus-noise series parameterised by seed.
/// Kind 3 embeds a flat (constant) stretch, which drives σ = 0 rows through
/// the key-0 lower-bound path.
fn make_series(kind: u8, n: usize, seed: u64) -> Vec<f64> {
    match kind % 4 {
        0 => random_walk(n, seed),
        1 => sine_mixture(n, &[(0.02, 1.0), (0.07, 0.5)], 0.1, seed),
        2 => {
            // Random walk with a planted repetition.
            let mut v = random_walk(n, seed);
            let l = n / 8;
            let (src, dst) = (n / 10, n / 2);
            let pattern: Vec<f64> = v[src..src + l].to_vec();
            v[dst..dst + l].copy_from_slice(&pattern);
            v
        }
        _ => {
            // Random walk with a flat stretch in the middle.
            let mut v = random_walk(n, seed);
            let flat = v[n / 3];
            for x in &mut v[n / 3..n / 3 + n / 5] {
                *x = flat;
            }
            v
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Eq. 2 admissibility, end to end: the lower bound derived at length ℓ
    /// never exceeds the true distance at ℓ+k, for arbitrary pairs.
    #[test]
    fn lower_bound_is_admissible(kind in 0u8..3, seed in 0u64..1000,
                                 i in 0usize..100, j in 100usize..200, k in 1usize..32) {
        let series = make_series(kind, 400, seed);
        let l = 24usize;
        let stats = |x: &[f64]| {
            let m = x.iter().sum::<f64>() / x.len() as f64;
            let v = x.iter().map(|&v| (v - m) * (v - m)).sum::<f64>() / x.len() as f64;
            (m, v.sqrt())
        };
        let a = &series[i..i + l];
        let b = &series[j..j + l];
        let (ma, sa) = stats(a);
        let (mb, sb) = stats(b);
        prop_assume!(sa > 1e-9 && sb > 1e-9);
        let qt: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
        let q = ((qt / l as f64 - ma * mb) / (sa * sb)).clamp(-1.0, 1.0);
        let (_, sb_new) = stats(&series[j..j + l + k]);
        let lb = lb_scale(lb_base(q, l), sb, sb_new);
        let truth = zdist_naive(&series[i..i + l + k], &series[j..j + l + k]);
        prop_assert!(lb <= truth + 1e-6, "LB {lb} > dist {truth} (k={k})");
    }

    /// The VALMP is a true lower envelope: for every offset, its recorded
    /// normalised distance equals some achievable match and is no better
    /// than the best achievable match over the range.
    #[test]
    fn valmp_entries_are_achievable_distances(kind in 0u8..3, seed in 0u64..500) {
        let n = 300usize;
        let series = make_series(kind, n, seed);
        let ps = ProfiledSeries::from_values(&series).unwrap();
        let (l_min, l_max) = (16usize, 22usize);
        let out = Valmod::from_config(ValmodConfig::new(l_min, l_max).with_p(4)).run_on(&ps).unwrap();
        for (i, pair) in out.valmp.iter_pairs() {
            let l = pair.l;
            prop_assert!(l >= l_min && l <= l_max);
            // The recorded pair's distance is reproducible from raw data.
            let d = zdist_naive(&series[pair.a..pair.a + l], &series[pair.b..pair.b + l]);
            prop_assert!((d - pair.dist).abs() < 1e-5,
                "slot {i}: recorded {} vs recomputed {d}", pair.dist);
            // And matches the stored normalised value.
            prop_assert!((length_normalize(pair.dist, l) - out.valmp.norm_distances[i]).abs() < 1e-9);
        }
    }

    /// Per-length exactness against STOMP for arbitrary generated series.
    #[test]
    fn valmod_matches_stomp_per_length(kind in 0u8..3, seed in 0u64..500) {
        let series = make_series(kind, 260, seed);
        let ps = ProfiledSeries::from_values(&series).unwrap();
        let out = Valmod::from_config(ValmodConfig::new(14, 20).with_p(3)).run_on(&ps).unwrap();
        for r in &out.per_length {
            let oracle = stomp(&ps, r.l, ExclusionPolicy::HALF).unwrap();
            match (r.motif, oracle.motif_pair()) {
                (Some(m), Some((_, _, d))) =>
                    prop_assert!((m.dist - d).abs() < 1e-6, "l={}: {} vs {d}", r.l, m.dist),
                (None, None) => {}
                other => prop_assert!(false, "presence mismatch at l={}: {:?}", r.l, other.0),
            }
        }
    }

    /// The chunked parallel STOMP kernel agrees with the sequential row
    /// streamer for arbitrary series (including flat stretches, which
    /// exercise the zero-σ distance convention) and arbitrary thread counts
    /// — in particular counts that do not divide the row count.
    #[test]
    fn stomp_parallel_matches_sequential(kind in 0u8..4, seed in 0u64..500,
                                         threads in 1usize..17) {
        let series = make_series(kind, 280, seed);
        let ps = ProfiledSeries::from_values(&series).unwrap();
        let l = 16usize;
        let seq = stomp(&ps, l, ExclusionPolicy::HALF).unwrap();
        let par = stomp_parallel(&ps, l, ExclusionPolicy::HALF, threads).unwrap();
        prop_assert_eq!(seq.len(), par.len());
        for i in 0..seq.len() {
            if seq.mp[i].is_infinite() || par.mp[i].is_infinite() {
                prop_assert_eq!(seq.mp[i].is_infinite(), par.mp[i].is_infinite(),
                    "row {} (threads={})", i, threads);
            } else {
                // d = sqrt(2l(1-q)): near d = 0 the square root turns an
                // O(1e-15) dot-product rounding difference into O(1e-7), so
                // compare squared distances there instead.
                let close = (seq.mp[i] - par.mp[i]).abs() < 1e-7
                    || (seq.mp[i] * seq.mp[i] - par.mp[i] * par.mp[i]).abs() < 1e-10;
                prop_assert!(close,
                    "row {i} (threads={threads}): {} vs {}", seq.mp[i], par.mp[i]);
            }
        }
    }

    /// Parallel VALMOD (chunked harvest + threaded sub-MP advance) agrees
    /// with the sequential driver on random walks and flat-stretch series.
    #[test]
    fn parallel_valmod_matches_sequential(kind in 0u8..4, seed in 0u64..500,
                                          threads in 2usize..17) {
        let series = make_series(kind, 260, seed);
        let ps = ProfiledSeries::from_values(&series).unwrap();
        let seq = Valmod::from_config(ValmodConfig::new(14, 20).with_p(3)).run_on(&ps).unwrap();
        let par = Valmod::from_config(ValmodConfig::new(14, 20).with_p(3).with_threads(threads)).run_on(&ps)
            .unwrap();
        prop_assert_eq!(seq.per_length.len(), par.per_length.len());
        // Near-zero distances amplify dot-product rounding through the
        // square root; fall back to squared-distance comparison there.
        let close = |x: f64, y: f64| (x - y).abs() < 1e-7 || (x * x - y * y).abs() < 1e-10;
        for (a, b) in seq.per_length.iter().zip(&par.per_length) {
            match (a.motif, b.motif) {
                (Some(x), Some(y)) => prop_assert!(close(x.dist, y.dist),
                    "threads={} l={}: {} vs {}", threads, a.l, x.dist, y.dist),
                (None, None) => {}
                other => prop_assert!(false, "threads={} l={}: {:?}", threads, a.l, other.0),
            }
        }
        for (i, (&x, &y)) in
            seq.valmp.norm_distances.iter().zip(&par.valmp.norm_distances).enumerate()
        {
            if x.is_finite() || y.is_finite() {
                prop_assert!(close(x, y), "threads={threads} slot {i}: {x} vs {y}");
            }
        }
    }

    /// The matrix profile is invariant to affine transforms of the series
    /// (z-normalisation guarantees it); VALMOD must inherit that.
    #[test]
    fn valmod_is_affine_invariant(seed in 0u64..200, scale in 0.5f64..20.0, shift in -100.0f64..100.0) {
        let base = random_walk(220, seed);
        let transformed: Vec<f64> = base.iter().map(|v| v * scale + shift).collect();
        let ps_a = ProfiledSeries::from_values(&base).unwrap();
        let ps_b = ProfiledSeries::from_values(&transformed).unwrap();
        let runner = Valmod::new(16, 20).p(3);
        let out_a = runner.run_on(&ps_a).unwrap();
        let out_b = runner.run_on(&ps_b).unwrap();
        for (ra, rb) in out_a.per_length.iter().zip(&out_b.per_length) {
            let (ma, mb) = (ra.motif.unwrap(), rb.motif.unwrap());
            prop_assert!((ma.dist - mb.dist).abs() < 1e-5,
                "l={}: {} vs {}", ra.l, ma.dist, mb.dist);
        }
    }
}
