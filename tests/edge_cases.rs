//! Failure-injection and degenerate-input behaviour across the stack.

use valmod_baselines::stomp_range::stomp_range;
use valmod_core::valmod::{Valmod, ValmodConfig};
use valmod_data::generators::random_walk;
use valmod_data::series::Series;
use valmod_mp::{ExclusionPolicy, ProfiledSeries};

#[test]
fn constant_series_yields_zero_distance_motifs() {
    // Every subsequence is flat ⇒ every pair has distance 0 by convention.
    let series = Series::new(vec![5.0; 300]).unwrap();
    let out = Valmod::from_config(ValmodConfig::new(16, 20).with_p(3)).run(&series).unwrap();
    for r in &out.per_length {
        let m = r.motif.expect("flat pairs exist");
        assert_eq!(m.dist, 0.0, "l={}", r.l);
    }
}

#[test]
fn flat_regions_inside_noisy_data_do_not_poison_results() {
    let mut values = random_walk(600, 5);
    for v in &mut values[200..320] {
        *v = 3.0; // a long plateau
    }
    let series = Series::new(values).unwrap();
    let out = Valmod::from_config(ValmodConfig::new(24, 30).with_p(4)).run(&series).unwrap();
    // The flat-vs-flat pairs are distance 0 and legitimately win; results
    // must be finite and exact vs STOMP.
    let ps = ProfiledSeries::new(&series);
    let oracle = stomp_range(&ps, 24, 30, ExclusionPolicy::HALF, 1).unwrap();
    for (k, r) in out.per_length.iter().enumerate() {
        let (m, o) = (r.motif.unwrap(), oracle[k].unwrap());
        assert!((m.dist - o.dist).abs() < 1e-6, "l={}: {} vs {}", r.l, m.dist, o.dist);
    }
}

#[test]
fn giant_dc_offset_does_not_destroy_precision() {
    // Values around 1e9 with unit-scale structure: the centred pipeline
    // (DESIGN.md §7) must keep distances accurate.
    let base = random_walk(400, 7);
    let huge: Vec<f64> = base.iter().map(|v| v + 1e9).collect();
    let ps_a = ProfiledSeries::from_values(&base).unwrap();
    let ps_b = ProfiledSeries::from_values(&huge).unwrap();
    let a = Valmod::from_config(ValmodConfig::new(20, 26).with_p(4)).run_on(&ps_a).unwrap();
    let b = Valmod::from_config(ValmodConfig::new(20, 26).with_p(4)).run_on(&ps_b).unwrap();
    for (ra, rb) in a.per_length.iter().zip(&b.per_length) {
        let (ma, mb) = (ra.motif.unwrap(), rb.motif.unwrap());
        assert!(
            (ma.dist - mb.dist).abs() < 1e-4,
            "l={}: {} vs {} under 1e9 offset",
            ra.l,
            ma.dist,
            mb.dist
        );
    }
}

#[test]
fn minimum_viable_series_and_range() {
    // The smallest configuration that admits a non-trivial answer.
    let series = Series::new(random_walk(30, 1)).unwrap();
    let out = Valmod::from_config(ValmodConfig::new(4, 5).with_p(1)).run(&series).unwrap();
    assert_eq!(out.per_length.len(), 2);
    for r in &out.per_length {
        assert!(r.motif.is_some());
    }
}

#[test]
fn range_longer_than_series_fails_cleanly() {
    let series = Series::new(random_walk(50, 2)).unwrap();
    let err = Valmod::from_config(ValmodConfig::new(10, 60)).run(&series).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("shorter"), "unhelpful error: {msg}");
}

#[test]
fn nan_and_infinity_are_rejected_at_the_boundary() {
    assert!(Series::new(vec![1.0, f64::NAN, 2.0]).is_err());
    assert!(Series::new(vec![1.0, f64::NEG_INFINITY]).is_err());
    assert!(ProfiledSeries::from_values(&[1.0, f64::NAN]).is_err());
}

#[test]
fn repeated_identical_pattern_everywhere() {
    // A perfectly periodic series: motifs at distance ~0 for every length;
    // the exclusion zone must prevent self matches.
    let values: Vec<f64> = (0..500).map(|i| ((i % 25) as f64 - 12.0).abs()).collect();
    let series = Series::new(values).unwrap();
    let out = Valmod::from_config(ValmodConfig::new(25, 30).with_p(3)).run(&series).unwrap();
    for r in &out.per_length {
        let m = r.motif.unwrap();
        assert!(m.dist < 1e-6, "l={}: periodic motif should be ~exact ({})", r.l, m.dist);
        assert!(m.b - m.a >= ExclusionPolicy::HALF.radius(m.l));
    }
}

// ---------------------------------------------------------------------------
// Named regressions promoted from the valmod-check adversarial families
// (PR 4). Each pins a numeric edge the harness sweeps every CI run; the
// generators in crates/check/src/generators.rs produce the same shapes.
// ---------------------------------------------------------------------------

#[test]
fn regression_single_spike_on_constant_floor() {
    // One huge spike in an otherwise flat series: windows covering the
    // spike have enormous σ, the rest are flat. VALMOD must agree with
    // STOMP on every length and never report a spurious sub-zero distance.
    let mut values = vec![2.5; 200];
    values[117] = 1e8;
    let ps = ProfiledSeries::from_values(&values).unwrap();
    let out = Valmod::from_config(ValmodConfig::new(8, 14).with_p(2)).run_on(&ps).unwrap();
    let oracle = stomp_range(&ps, 8, 14, ExclusionPolicy::HALF, 1).unwrap();
    for (r, o) in out.per_length.iter().zip(&oracle) {
        match (&r.motif, o) {
            (Some(m), Some(o)) => {
                assert!(m.dist >= 0.0, "l={}: negative distance {}", r.l, m.dist);
                assert!((m.dist - o.dist).abs() < 1e-6, "l={}: {} vs {}", r.l, m.dist, o.dist);
            }
            (None, None) => {}
            other => panic!("l={}: presence mismatch {:?}", r.l, other.0),
        }
    }
}

#[test]
fn regression_noise_at_the_flatness_threshold() {
    // Constant plus ±1e-9 noise: σ sits at the flatness boundary where
    // z-normalisation amplifies rounding. Both sides must classify the same
    // windows as flat and agree on distances.
    let mut rng = valmod_data::rng::Xoshiro256::seed_from_u64(99);
    let values: Vec<f64> = (0..160).map(|_| 40.0 + rng.uniform(-1e-9, 1e-9)).collect();
    let ps = ProfiledSeries::from_values(&values).unwrap();
    let out = Valmod::from_config(ValmodConfig::new(6, 10).with_p(2)).run_on(&ps).unwrap();
    let oracle = stomp_range(&ps, 6, 10, ExclusionPolicy::HALF, 1).unwrap();
    for (r, o) in out.per_length.iter().zip(&oracle) {
        match (&r.motif, o) {
            (Some(m), Some(o)) => {
                assert!((m.dist - o.dist).abs() < 1e-6, "l={}: {} vs {}", r.l, m.dist, o.dist)
            }
            (None, None) => {}
            other => panic!("l={}: presence mismatch {:?}", r.l, other.0),
        }
    }
}

#[test]
fn regression_series_barely_longer_than_l_max() {
    // n = l_max + 1: one or two subsequences per length, every pair inside
    // the exclusion zone. Must return None per length — not panic, not
    // fabricate a pair.
    let series = Series::new(random_walk(16, 21)).unwrap();
    let out = Valmod::from_config(ValmodConfig::new(12, 15).with_p(1)).run(&series).unwrap();
    assert_eq!(out.per_length.len(), 4);
    for r in &out.per_length {
        assert!(r.motif.is_none(), "l={}: no non-trivial pair exists", r.l);
    }
    // One step further (l_max + 1 > n) is a clean error.
    assert!(Valmod::from_config(ValmodConfig::new(12, 16)).run(&series).is_err());
}

#[test]
fn regression_inverted_range_is_an_error_not_an_empty_answer() {
    // Before PR 4 the baseline range drivers silently returned an empty
    // Vec on l_min > l_max; now every range entry point rejects it.
    let ps = ProfiledSeries::from_values(&random_walk(100, 3)).unwrap();
    assert!(stomp_range(&ps, 20, 10, ExclusionPolicy::HALF, 1).is_err());
    assert!(valmod_baselines::brute_force_range(&ps, 20, 10, ExclusionPolicy::HALF).is_err());
    assert!(valmod_baselines::moen(&ps, 20, 10, ExclusionPolicy::HALF, std::time::Duration::MAX)
        .is_err());
    assert!(valmod_baselines::quick_motif_range_with_deadline(
        &ps,
        20,
        10,
        ExclusionPolicy::HALF,
        &valmod_baselines::QuickMotifConfig::default(),
        std::time::Duration::MAX,
    )
    .is_err());
    let series = Series::new(random_walk(100, 3)).unwrap();
    assert!(Valmod::from_config(ValmodConfig::new(20, 10)).run(&series).is_err());
}

#[test]
fn regression_streaming_extreme_amplitude_matches_batch() {
    // 1e9-scale samples on a 1e9 DC offset, streamed in two halves: the
    // incremental dot-product updates must not drift from the batch answer.
    let values: Vec<f64> = random_walk(240, 31).iter().map(|x| 1e9 + x * 1e9).collect();
    let mut streaming =
        valmod_mp::StreamingProfile::new(&values[..120], 10, ExclusionPolicy::HALF).unwrap();
    streaming.extend(&values[120..]).unwrap();
    let streamed = streaming.profile();
    let ps = ProfiledSeries::from_values(&values).unwrap();
    let batch = valmod_mp::stomp(&ps, 10, ExclusionPolicy::HALF).unwrap();
    for i in 0..batch.len() {
        let (s, b) = (streamed.mp[i], batch.mp[i]);
        assert_eq!(s.is_finite(), b.is_finite(), "row {i}");
        if s.is_finite() {
            assert!((s - b).abs() < 1e-5 * (1.0 + b), "row {i}: streamed {s} vs batch {b}");
        }
    }
}

#[test]
fn regression_text_loader_rejects_inf_and_nan_tokens() {
    // "inf" and "NaN" parse as f64 but must be rejected at the parse site
    // with the line number, not later with only a flat index.
    for text in ["1.0\ninf\n", "1.0\n-inf 2.0\n", "NaN\n"] {
        let err = valmod_data::io::parse_text(text).unwrap_err();
        assert_eq!(err.kind(), "parse", "input {text:?} gave {err}");
    }
}

#[test]
fn regression_hot_profile_tiny_appends_across_the_boundary_match_one_extend() {
    // PR 6: a hot profile fed tiny appends (1–3 samples) that straddle the
    // hot-length boundary must end bit-for-bit identical to one extend over
    // the same samples — the streaming recurrence must not depend on how
    // the stream is chunked. The first chunks complete no window at all
    // (seed 20, ℓ = 16: the profile grows only once 16 new rows exist),
    // which is exactly where partial-window bookkeeping used to be fragile.
    let l = 16;
    let values = random_walk(140, 63);
    let (seed, rest) = values.split_at(20);
    let mut chunked = valmod_mp::StreamingProfile::new(seed, l, ExclusionPolicy::HALF).unwrap();
    let mut single = valmod_mp::StreamingProfile::new(seed, l, ExclusionPolicy::HALF).unwrap();
    let (mut offset, mut size) = (0, 1);
    while offset < rest.len() {
        let end = (offset + size).min(rest.len());
        chunked.extend(&rest[offset..end]).unwrap();
        offset = end;
        size = size % 3 + 1; // 1, 2, 3, 1, 2, 3, ...
    }
    single.extend(rest).unwrap();
    let (c, s) = (chunked.profile(), single.profile());
    assert_eq!(c.mp.len(), s.mp.len());
    assert_eq!(c.mp.len(), values.len() - l + 1, "profile must cover every window");
    for i in 0..c.mp.len() {
        assert_eq!(
            c.mp[i].to_bits(),
            s.mp[i].to_bits(),
            "row {i}: chunked appends drifted from a single extend"
        );
        assert_eq!(c.ip[i], s.ip[i], "row {i}: neighbour offsets diverged");
    }
    // And both agree with a batch recompute over the final series to
    // numerical tolerance (the streaming pipeline centres on the seed mean,
    // so bit-identity with batch is not expected).
    let ps = ProfiledSeries::from_values(&values).unwrap();
    let batch = valmod_mp::stomp(&ps, l, ExclusionPolicy::HALF).unwrap();
    for i in 0..batch.len() {
        assert_eq!(c.mp[i].is_finite(), batch.mp[i].is_finite(), "row {i}");
        if batch.mp[i].is_finite() {
            assert!(
                (c.mp[i] - batch.mp[i]).abs() < 1e-6,
                "row {i}: streamed {} vs batch {}",
                c.mp[i],
                batch.mp[i]
            );
        }
    }
}

#[test]
fn regression_hot_length_longer_than_the_series_fails_cleanly() {
    // PR 6 companion: seeding a hot profile needs at least one complete
    // window. A shorter series must be a clean error at every layer — the
    // raw streaming profile, and a store LOAD, which must reject the whole
    // request without registering the series.
    let short = random_walk(10, 4);
    assert!(valmod_mp::StreamingProfile::new(&short, 16, ExclusionPolicy::HALF).is_err());
    let recorder = valmod_serve::SharedRecorder::noop();
    let store = valmod_serve::SeriesStore::new();
    assert!(store
        .load("tiny", short.clone(), &[16], ExclusionPolicy::HALF, false, &recorder)
        .is_err());
    assert!(store.get("tiny").is_err(), "a failed load must not register the series");
    // The same hot length is fine once the series can seed a profile, and
    // the profile then grows with appends as usual.
    store.load("tiny", random_walk(24, 4), &[16], ExclusionPolicy::HALF, false, &recorder).unwrap();
    store.append("tiny", &short, &recorder).unwrap();
    let slot = store.get("tiny").unwrap();
    let series = slot.read();
    let hot = series.hot_profile(16).unwrap();
    assert_eq!(hot.profile().mp.len(), 24 + 10 - 16 + 1);
}

#[test]
fn single_sample_step_range_is_consistent_with_wide_ranges() {
    // Splitting [20, 26] into [20,23] + [24,26] gives the same per-length
    // answers as one run.
    let series = Series::new(random_walk(300, 9)).unwrap();
    let whole = Valmod::from_config(ValmodConfig::new(20, 26).with_p(4)).run(&series).unwrap();
    let lo = Valmod::from_config(ValmodConfig::new(20, 23).with_p(4)).run(&series).unwrap();
    let hi = Valmod::from_config(ValmodConfig::new(24, 26).with_p(4)).run(&series).unwrap();
    let combined: Vec<f64> =
        lo.per_length.iter().chain(hi.per_length.iter()).map(|r| r.motif.unwrap().dist).collect();
    let whole_dists: Vec<f64> = whole.per_length.iter().map(|r| r.motif.unwrap().dist).collect();
    for (a, b) in whole_dists.iter().zip(&combined) {
        assert!((a - b).abs() < 1e-6);
    }
}

#[test]
fn tied_motif_and_discord_extraction_is_kernel_independent() {
    // A series with a long plateau produces many exactly-tied distances
    // (0 between flat pairs, √ℓ between flat and non-flat rows). Motif and
    // discord extraction document smaller-offset-first tie-breaking, so the
    // row, diagonal, and parallel kernels must all select the same pairs.
    let mut values = random_walk(500, 77);
    for v in &mut values[150..260] {
        *v = 2.0;
    }
    let ps = ProfiledSeries::from_values(&values).unwrap();
    let l = 20;
    let row = valmod_mp::stomp_row(&ps, l, ExclusionPolicy::HALF).unwrap();
    let mut ws = valmod_mp::Workspace::new();
    let diag = valmod_mp::stomp_diagonal_ws(&ps, l, ExclusionPolicy::HALF, &mut ws).unwrap();
    let par =
        valmod_mp::stomp_diagonal_parallel_ws(&ps, l, ExclusionPolicy::HALF, 3, &mut ws).unwrap();

    let motifs_of = |p: &valmod_mp::MatrixProfile| -> Vec<(usize, usize, u64)> {
        valmod_mp::top_motifs(p, 4).iter().map(|m| (m.a, m.b, m.dist.to_bits())).collect()
    };
    let discords_of = |p: &valmod_mp::MatrixProfile| -> Vec<(usize, u64)> {
        valmod_mp::top_discords(p, 4).iter().map(|d| (d.offset, d.nn_dist.to_bits())).collect()
    };
    let (m_row, d_row) = (motifs_of(&row), discords_of(&row));
    assert_eq!(motifs_of(&diag), m_row, "diagonal kernel selects different motifs");
    assert_eq!(motifs_of(&par), m_row, "parallel kernel selects different motifs");
    assert_eq!(discords_of(&diag), d_row, "diagonal kernel selects different discords");
    assert_eq!(discords_of(&par), d_row, "parallel kernel selects different discords");
    // Ties resolved toward smaller offsets: within each equal-distance run
    // of the motif list, owner offsets ascend.
    for w in motifs_of(&row).windows(2) {
        if w[0].2 == w[1].2 {
            assert!(w[0].0 < w[1].0, "tie not resolved to the smaller offset: {w:?}");
        }
    }
}
