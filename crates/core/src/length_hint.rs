//! Suggesting a motif length *range* from the data.
//!
//! The paper's core motivation is that users cannot be expected to know the
//! right motif length. VALMOD removes the need to pick a single length, but
//! the user still supplies the range `[ℓ_min, ℓ_max]`. This module closes
//! the loop: it detects the dominant periodicities of the series from its
//! (FFT-computed) circular autocorrelation and turns them into candidate
//! length ranges to hand to [`crate::valmod::Valmod`].
//!
//! This is a pragmatic helper, not part of the paper's algorithms; it is
//! deterministic and cheap (`O(n log n)`).

use valmod_fft::complex::Complex;
use valmod_fft::radix2::Radix2Plan;

/// A candidate motif-length range derived from a periodicity peak.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LengthHint {
    /// The detected period (lag of an autocorrelation peak).
    pub period: usize,
    /// Suggested `ℓ_min` (¾ of the period).
    pub l_min: usize,
    /// Suggested `ℓ_max` (1¼ of the period).
    pub l_max: usize,
    /// Normalised autocorrelation at the peak (0–1; higher = stronger).
    pub strength: f64,
}

/// Computes the biased, mean-removed autocorrelation of `values` for lags
/// `1..max_lag`, normalised by lag 0 (so output values lie in [−1, 1]).
pub fn autocorrelation(values: &[f64], max_lag: usize) -> Vec<f64> {
    let n = values.len();
    if n < 2 || max_lag == 0 {
        return Vec::new();
    }
    let mean = values.iter().sum::<f64>() / n as f64;
    // Zero-pad to at least 2n to make the circular correlation linear.
    let m = (2 * n).next_power_of_two();
    let plan = Radix2Plan::new(m);
    let mut buf = vec![Complex::ZERO; m];
    for (b, &v) in buf.iter_mut().zip(values) {
        b.re = v - mean;
    }
    plan.forward(&mut buf);
    for z in buf.iter_mut() {
        *z = Complex::from_real(z.norm_sqr());
    }
    plan.inverse(&mut buf);
    let r0 = buf[0].re.max(1e-300);
    (1..=max_lag.min(n - 1)).map(|lag| buf[lag].re / r0).collect()
}

/// Suggests up to `k` candidate length ranges from autocorrelation peaks.
///
/// Peaks are local maxima of the lag-domain autocorrelation above
/// `min_strength`, greedily selected strongest-first with near-harmonic
/// duplicates (within ±25 % of an already chosen period) suppressed. Lags
/// below `min_period` are ignored (sensor-noise scale).
pub fn suggest_length_ranges(
    values: &[f64],
    k: usize,
    min_period: usize,
    min_strength: f64,
) -> Vec<LengthHint> {
    let max_lag = values.len() / 2;
    let ac = autocorrelation(values, max_lag);
    if ac.len() < 3 {
        return Vec::new();
    }
    // Local maxima (strictly above both neighbours).
    let mut peaks: Vec<(usize, f64)> = Vec::new();
    for lag in 1..ac.len() - 1 {
        let period = lag + 1; // ac[0] is lag 1
        if period < min_period.max(2) {
            continue;
        }
        if ac[lag] > ac[lag - 1] && ac[lag] >= ac[lag + 1] && ac[lag] >= min_strength {
            peaks.push((period, ac[lag]));
        }
    }
    peaks.sort_by(|a, b| b.1.total_cmp(&a.1));
    let mut out: Vec<LengthHint> = Vec::new();
    for (period, strength) in peaks {
        if out.len() >= k {
            break;
        }
        let duplicate = out.iter().any(|h| {
            let ratio = period as f64 / h.period as f64;
            (0.75..=1.25).contains(&ratio)
        });
        if duplicate {
            continue;
        }
        out.push(LengthHint {
            period,
            l_min: (period * 3 / 4).max(4),
            l_max: (period * 5 / 4).max(5),
            strength,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use valmod_data::datasets::ecg_like;
    use valmod_data::generators::{gaussian_noise, sine_mixture};

    #[test]
    fn autocorrelation_of_sine_peaks_at_its_period() {
        // Period 50 (frequency 0.02), noiseless.
        let s = sine_mixture(2000, &[(0.02, 1.0)], 0.0, 0);
        let ac = autocorrelation(&s, 200);
        // Lag 50 ⇒ index 49.
        let peak = ac[49];
        assert!(peak > 0.9, "autocorrelation at the true period: {peak}");
        // Half-period anti-correlates.
        assert!(ac[24] < -0.5, "half-period value {}", ac[24]);
    }

    #[test]
    fn autocorrelation_matches_direct_computation() {
        let s: Vec<f64> = (0..257).map(|i| ((i * i) % 23) as f64 - 11.0).collect();
        let fast = autocorrelation(&s, 40);
        let mean = s.iter().sum::<f64>() / s.len() as f64;
        let r0: f64 = s.iter().map(|&v| (v - mean) * (v - mean)).sum();
        for (idx, &got) in fast.iter().enumerate() {
            let lag = idx + 1;
            let direct: f64 = s[..s.len() - lag]
                .iter()
                .zip(&s[lag..])
                .map(|(a, b)| (a - mean) * (b - mean))
                .sum::<f64>()
                / r0;
            assert!((got - direct).abs() < 1e-8, "lag {lag}: {got} vs {direct}");
        }
    }

    #[test]
    fn suggests_the_sine_period() {
        let s = sine_mixture(4000, &[(0.01, 1.0)], 0.05, 3);
        let hints = suggest_length_ranges(&s, 2, 8, 0.2);
        assert!(!hints.is_empty());
        let h = hints[0];
        assert!(
            h.period.abs_diff(100) <= 3,
            "expected period ≈ 100, got {} (strength {})",
            h.period,
            h.strength
        );
        assert!(h.l_min < 100 && h.l_max > 100);
    }

    #[test]
    fn suggests_the_heartbeat_period_on_ecg() {
        let s = ecg_like(6000, 1);
        let hints = suggest_length_ranges(s.values(), 3, 16, 0.1);
        assert!(
            hints.iter().any(|h| h.period.abs_diff(140) <= 20),
            "expected a hint near the 140-sample beat, got {hints:?}"
        );
    }

    #[test]
    fn white_noise_yields_no_strong_hints() {
        let s = gaussian_noise(4000, 9);
        let hints = suggest_length_ranges(&s, 3, 8, 0.3);
        assert!(hints.is_empty(), "noise should not produce strong periods: {hints:?}");
    }

    #[test]
    fn harmonics_are_suppressed() {
        let s = sine_mixture(4000, &[(0.02, 1.0)], 0.0, 0);
        let hints = suggest_length_ranges(&s, 5, 8, 0.5);
        // All returned periods should be (near) multiples of 50 but not
        // within 25 % of each other.
        for w in hints.windows(2) {
            let ratio = w[1].period as f64 / w[0].period as f64;
            assert!(!(0.75..=1.25).contains(&ratio), "{hints:?}");
        }
    }

    #[test]
    fn degenerate_inputs_are_handled() {
        assert!(autocorrelation(&[], 10).is_empty());
        assert!(autocorrelation(&[1.0], 10).is_empty());
        assert!(suggest_length_ranges(&[1.0, 2.0], 3, 2, 0.1).is_empty());
    }
}
