//! The VALMOD lower-bounding distance (paper §4.1, Eq. 2).
//!
//! Given the distance between `T_{i,ℓ}` and `T_{j,ℓ}` (through their Pearson
//! correlation `q`), Eq. 2 bounds the z-normalised distance between the
//! *extended* subsequences `T_{i,ℓ+k}` and `T_{j,ℓ+k}` from below, treating
//! the unknown trailing values of `T_{i,ℓ+k}` adversarially:
//!
//! ```text
//! LB(d_{i,j}^{ℓ+k}) = sqrt(ℓ)            · σ_{j,ℓ}/σ_{j,ℓ+k}   if q ≤ 0
//! LB(d_{i,j}^{ℓ+k}) = sqrt(ℓ(1 − q²))    · σ_{j,ℓ}/σ_{j,ℓ+k}   otherwise
//! ```
//!
//! The only `k`-dependent factor is `1/σ_{j,ℓ+k}`, shared by every entry of
//! distance profile `j` — so sorting entries by the *anchor part*
//! `sqrt(ℓ·key)` (with `key = 1` or `1 − q²`) preserves their LB ranking for
//! every future length. That rank-preservation is what lets VALMOD keep only
//! the `p` smallest-LB entries per profile.

/// The length-independent part of Eq. 2, squared: `ℓ` when `q ≤ 0`, else
/// `ℓ(1 − q²)`. Squaring avoids a sqrt in the harvesting hot loop; ordering
/// is unchanged.
#[inline]
pub fn lb_key(q: f64, l: usize) -> f64 {
    let lf = l as f64;
    if q <= 0.0 {
        lf
    } else {
        let q = q.min(1.0);
        (lf * (1.0 - q * q)).max(0.0)
    }
}

/// The anchor lower-bound value `sqrt(lb_key)` (the LB before the σ-ratio).
#[inline]
pub fn lb_base(q: f64, l: usize) -> f64 {
    lb_key(q, l).sqrt()
}

/// Scales an anchor LB to a longer subsequence length: `lb_base · σ_anchor/σ_new`.
///
/// When the profile owner becomes flat at the new length (`σ_new ≈ 0`), every
/// distance involving it collapses to the flat convention and the analytic
/// bound no longer applies; returning 0 keeps the bound admissible.
#[inline]
pub fn lb_scale(lb_base: f64, sigma_anchor: f64, sigma_new: f64) -> f64 {
    if sigma_new <= 0.0 || sigma_anchor <= 0.0 {
        0.0
    } else {
        lb_base * (sigma_anchor / sigma_new)
    }
}

/// Tightness of the lower bound, `TLB = LB/dist ∈ [0, 1]` (paper §6.2,
/// Fig. 10; 1 = perfectly tight). Zero distance yields TLB 1 by convention
/// (the bound cannot be beaten there).
#[inline]
pub fn tightness(lb: f64, dist: f64) -> f64 {
    if dist <= 0.0 {
        1.0
    } else {
        (lb / dist).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use valmod_data::generators::random_walk;
    use valmod_mp::distance::zdist_naive;

    /// Direct evaluation of Eq. 2 for a concrete pair, used as the oracle:
    /// the LB from length `l` must never exceed the true distance at `l + k`.
    fn check_admissible(series: &[f64], i: usize, j: usize, l: usize, k_max: usize) {
        let sub = |o: usize, len: usize| &series[o..o + len];
        let stats = |x: &[f64]| {
            let m = x.iter().sum::<f64>() / x.len() as f64;
            let v = x.iter().map(|&v| (v - m) * (v - m)).sum::<f64>() / x.len() as f64;
            (m, v.sqrt())
        };
        let a = sub(i, l);
        let b = sub(j, l);
        let (ma, sa) = stats(a);
        let (mb, sb) = stats(b);
        let qt: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
        let q = ((qt / l as f64 - ma * mb) / (sa * sb)).clamp(-1.0, 1.0);
        let base = lb_base(q, l);
        for k in 1..=k_max {
            let (_, sb_new) = stats(sub(j, l + k));
            let lb = lb_scale(base, sb, sb_new);
            let true_dist = zdist_naive(sub(i, l + k), sub(j, l + k));
            assert!(
                lb <= true_dist + 1e-7,
                "LB {lb} exceeds true distance {true_dist} (i={i}, j={j}, l={l}, k={k})"
            );
        }
    }

    #[test]
    fn lower_bound_is_admissible_on_random_walks() {
        let series = random_walk(600, 77);
        for &(i, j) in &[(0usize, 300usize), (50, 400), (123, 456), (10, 30)] {
            check_admissible(&series, i, j, 32, 64);
        }
    }

    #[test]
    fn lower_bound_is_admissible_on_structured_data() {
        let series: Vec<f64> =
            (0..600).map(|t| (t as f64 * 0.07).sin() * 2.0 + (t as f64 * 0.013).cos()).collect();
        for &(i, j) in &[(0usize, 200usize), (17, 350), (80, 500)] {
            check_admissible(&series, i, j, 24, 48);
        }
    }

    #[test]
    fn negative_correlation_uses_sqrt_l() {
        assert!((lb_base(-0.5, 16) - 4.0).abs() < 1e-12);
        assert!((lb_base(0.0, 16) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_correlation_gives_zero_bound() {
        assert_eq!(lb_base(1.0, 16), 0.0);
        // And q slightly above 1 from rounding must not produce NaN.
        assert_eq!(lb_base(1.0 + 1e-12, 16), 0.0);
    }

    #[test]
    fn key_ordering_matches_base_ordering() {
        let l = 32;
        let qs = [-0.9, -0.1, 0.0, 0.3, 0.7, 0.99];
        for w in qs.windows(2) {
            let (k0, k1) = (lb_key(w[0], l), lb_key(w[1], l));
            let (b0, b1) = (lb_base(w[0], l), lb_base(w[1], l));
            assert_eq!(k0 >= k1, b0 >= b1, "key and base orderings must agree");
        }
    }

    #[test]
    fn scale_handles_flat_sigmas() {
        assert_eq!(lb_scale(5.0, 1.0, 0.0), 0.0);
        assert_eq!(lb_scale(5.0, 0.0, 1.0), 0.0);
        assert!((lb_scale(5.0, 2.0, 4.0) - 2.5).abs() < 1e-12);
        // σ can shrink with length, making the bound *grow* — the property
        // §6.2 credits for VALMOD's advantage over MOEN.
        assert!(lb_scale(5.0, 2.0, 1.0) > 5.0);
    }

    #[test]
    fn tightness_is_clamped_ratio() {
        assert_eq!(tightness(2.0, 4.0), 0.5);
        assert_eq!(tightness(5.0, 4.0), 1.0);
        assert_eq!(tightness(1.0, 0.0), 1.0);
        assert_eq!(tightness(0.0, 3.0), 0.0);
    }
}
