//! Top-K motif-pair tracking with partial-profile snapshots
//! (paper Algorithm 5, `updateVALMPForMotifSets`).
//!
//! Whenever a VALMP slot improves, the improving pair becomes a candidate
//! for the global top-K (ranked by length-normalised distance). For pairs
//! that survive in the top-K, we snapshot the partial distance profiles of
//! both members *at the pair's length*, so the motif-set expansion
//! (Algorithm 6) can later reuse them instead of recomputing.

use valmod_mp::distance::length_normalize;
use valmod_mp::ProfiledSeries;

use crate::profile::PartialProfile;

/// A snapshot of one partial distance profile at a specific length.
#[derive(Debug, Clone)]
pub struct PartialSnapshot {
    /// Profile owner offset.
    pub owner: usize,
    /// Length the snapshot was taken at.
    pub l: usize,
    /// The `maxLB` threshold at that length: every subsequence *not* listed
    /// in `neighbors` is at distance ≥ this from the owner.
    pub max_lb: f64,
    /// `(neighbour offset, true distance)` for each retained valid entry.
    pub neighbors: Vec<(usize, f64)>,
}

impl PartialSnapshot {
    /// Takes a snapshot of `prof`, which must currently be advanced to `l`.
    pub fn capture(ps: &ProfiledSeries, prof: &PartialProfile, l: usize) -> Self {
        debug_assert_eq!(prof.current_l, l);
        let neighbors = prof
            .entries()
            .iter()
            .filter(|e| e.dist.is_finite())
            .map(|e| (e.neighbor, e.dist))
            .collect();
        PartialSnapshot {
            owner: prof.owner,
            l,
            max_lb: prof.max_lb_at(ps.std(prof.owner, l)),
            neighbors,
        }
    }
}

/// A top-K candidate: a motif pair plus the snapshots of its two members.
#[derive(Debug, Clone)]
pub struct PairCandidate {
    /// First offset (≤ `b`).
    pub a: usize,
    /// Second offset.
    pub b: usize,
    /// Subsequence length.
    pub l: usize,
    /// Raw z-normalised distance.
    pub dist: f64,
    /// Length-normalised distance (the ranking key).
    pub norm_dist: f64,
    /// Snapshot of `a`'s partial profile at length `l`.
    pub part_a: PartialSnapshot,
    /// Snapshot of `b`'s partial profile at length `l`.
    pub part_b: PartialSnapshot,
}

/// A bounded, ascending-ordered set of the K best pairs seen so far,
/// deduplicated on `(a, b)` offsets (keeping the better length).
#[derive(Debug, Clone)]
pub struct BestKPairs {
    k: usize,
    /// Sorted ascending by `norm_dist`.
    pairs: Vec<PairCandidate>,
}

impl BestKPairs {
    /// Creates an empty tracker for the `k` best pairs.
    pub fn new(k: usize) -> Self {
        BestKPairs { k, pairs: Vec::with_capacity(k.min(64)) }
    }

    /// The capacity K.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Current number of tracked pairs.
    #[inline]
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether no pair is tracked yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// The tracked pairs, best (smallest `norm_dist`) first.
    #[inline]
    pub fn pairs(&self) -> &[PairCandidate] {
        &self.pairs
    }

    /// Bulk-loads pre-ranked candidates (ascending `norm_dist`), truncating
    /// to K. Used by the bench harness to restrict a full tracker to a
    /// smaller K without re-running VALMOD.
    pub fn extend_sorted(&mut self, candidates: Vec<PairCandidate>) {
        debug_assert!(candidates.windows(2).all(|w| w[0].norm_dist <= w[1].norm_dist));
        self.pairs.extend(candidates);
        self.pairs.sort_by(|a, b| a.norm_dist.total_cmp(&b.norm_dist));
        self.pairs.truncate(self.k);
    }

    /// Offers a pair built from an improving VALMP slot. Builds the
    /// snapshots only when the pair actually enters the top-K.
    pub fn offer(
        &mut self,
        ps: &ProfiledSeries,
        off1: usize,
        off2: usize,
        dist: f64,
        l: usize,
        partials: &[PartialProfile],
    ) {
        if self.k == 0 {
            return;
        }
        let (a, b) = if off1 <= off2 { (off1, off2) } else { (off2, off1) };
        let norm_dist = length_normalize(dist, l);
        // Dedup: a pair of offsets appears once, at its best length.
        if let Some(pos) = self.pairs.iter().position(|p| p.a == a && p.b == b) {
            if self.pairs[pos].norm_dist <= norm_dist {
                return;
            }
            self.pairs.remove(pos);
        } else if self.pairs.len() >= self.k
            && self.pairs.last().is_some_and(|w| w.norm_dist <= norm_dist)
        {
            return; // full and not better than the worst
        }
        let cand = PairCandidate {
            a,
            b,
            l,
            dist,
            norm_dist,
            part_a: PartialSnapshot::capture(ps, &partials[a], l),
            part_b: PartialSnapshot::capture(ps, &partials[b], l),
        };
        let pos = self.pairs.partition_point(|p| p.norm_dist <= norm_dist);
        self.pairs.insert(pos, cand);
        self.pairs.truncate(self.k);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compute_mp::compute_matrix_profile;
    use valmod_data::generators::random_walk;
    use valmod_mp::ExclusionPolicy;

    fn fixture() -> (ProfiledSeries, Vec<PartialProfile>) {
        let ps = ProfiledSeries::from_values(&random_walk(200, 9)).unwrap();
        let state = compute_matrix_profile(&ps, 16, 4, ExclusionPolicy::HALF).unwrap();
        (ps, state.partials)
    }

    #[test]
    fn tracker_keeps_k_best_sorted() {
        let (ps, partials) = fixture();
        let mut best = BestKPairs::new(2);
        best.offer(&ps, 0, 100, 8.0, 16, &partials);
        best.offer(&ps, 10, 120, 4.0, 16, &partials);
        best.offer(&ps, 20, 140, 6.0, 16, &partials);
        assert_eq!(best.len(), 2);
        assert_eq!(best.pairs()[0].dist, 4.0);
        assert_eq!(best.pairs()[1].dist, 6.0);
    }

    #[test]
    fn tracker_dedups_on_offsets() {
        let (ps, partials) = fixture();
        let mut best = BestKPairs::new(4);
        best.offer(&ps, 100, 0, 8.0, 16, &partials);
        best.offer(&ps, 0, 100, 6.0, 16, &partials); // same pair, better
        assert_eq!(best.len(), 1);
        assert_eq!(best.pairs()[0].dist, 6.0);
        best.offer(&ps, 0, 100, 7.0, 16, &partials); // same pair, worse
        assert_eq!(best.pairs()[0].dist, 6.0);
    }

    #[test]
    fn snapshot_lists_valid_neighbors_with_distances() {
        let (ps, partials) = fixture();
        let snap = PartialSnapshot::capture(&ps, &partials[50], 16);
        assert_eq!(snap.owner, 50);
        assert!(!snap.neighbors.is_empty());
        for &(n, d) in &snap.neighbors {
            assert!(n < ps.num_subsequences(16));
            assert!(d.is_finite() && d >= 0.0);
        }
    }

    #[test]
    fn zero_k_tracker_accepts_nothing() {
        let (ps, partials) = fixture();
        let mut best = BestKPairs::new(0);
        best.offer(&ps, 0, 100, 1.0, 16, &partials);
        assert!(best.is_empty());
    }
}
