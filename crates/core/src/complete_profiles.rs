//! Complete per-length matrix profiles — the paper's §8 future-work item:
//! *"extend VALMOD in order to efficiently compute a complete matrix profile
//! for each length in the input range"*.
//!
//! `ComputeSubMP` certifies only a *subset* of each length's profile (the
//! valid rows); this module fills in the rest. For every length after the
//! anchor, each row is resolved either from its partial profile (when the
//! `minDist ≤ maxLB` certificate holds — free) or by one MASS pass (an
//! `O(n log n)` recomputation that also re-anchors the row's partial
//! profile, tightening future lengths). The result is byte-for-byte the
//! STOMP profile of every length, usually far below `ℓ_range` full STOMP
//! runs of work — enabling the "more diverse applications" the paper lists
//! (per-length shapelet and discord analysis).

use valmod_data::error::Result;
use valmod_mp::distance_profile::{dp_from_qt_into, profile_min, self_qt};
use valmod_mp::exclusion::ExclusionPolicy;
use valmod_mp::matrix_profile::MatrixProfile;
use valmod_mp::ProfiledSeries;

use crate::compute_mp::{compute_matrix_profile, harvest_row};
use crate::profile::{update_dist_and_lb, EntryState};

/// Per-length cost accounting for [`complete_profiles`].
#[derive(Debug, Clone, Copy)]
pub struct CompletionStats {
    /// Subsequence length.
    pub l: usize,
    /// Rows served by the lower-bound certificate (no recomputation).
    pub certified_rows: usize,
    /// Rows recomputed with a MASS pass.
    pub recomputed_rows: usize,
}

/// Computes the **complete** matrix profile of every length in
/// `[l_min, l_max]`, exactly, sharing work across lengths through the
/// partial profiles. Returns one [`MatrixProfile`] per length plus the
/// per-length cost split.
pub fn complete_profiles(
    ps: &ProfiledSeries,
    l_min: usize,
    l_max: usize,
    p: usize,
    policy: ExclusionPolicy,
) -> Result<(Vec<MatrixProfile>, Vec<CompletionStats>)> {
    ps.require_pairs(l_max)?;
    let mut state = compute_matrix_profile(ps, l_min, p, policy)?;
    let mut profiles = Vec::with_capacity(l_max - l_min + 1);
    let mut stats = Vec::with_capacity(l_max - l_min + 1);
    stats.push(CompletionStats {
        l: l_min,
        certified_rows: 0,
        recomputed_rows: state.profile.len(),
    });
    profiles.push(state.profile.clone());

    let mut dp = Vec::new();
    for l in (l_min + 1)..=l_max {
        let ndp = ps.num_subsequences(l);
        let mut mp = vec![f64::INFINITY; ndp];
        let mut ip = vec![usize::MAX; ndp];
        let mut certified = 0usize;
        let mut recomputed = 0usize;
        for j in 0..ndp {
            let prof = &mut state.partials[j];
            let sigma_new = ps.std(j, l);
            let from_l = prof.current_l;
            let max_lb = prof.max_lb_at(sigma_new);
            let mut min_dist = f64::INFINITY;
            let mut ind = usize::MAX;
            for e in prof.entries_mut() {
                if e.dist.is_infinite() {
                    continue;
                }
                if let EntryState::Valid { dist } = update_dist_and_lb(ps, e, j, from_l, l, &policy)
                {
                    if dist < min_dist {
                        min_dist = dist;
                        ind = e.neighbor;
                    }
                }
            }
            prof.current_l = l;
            if min_dist <= max_lb {
                // Certified: the stored minimum is the row's true minimum.
                mp[j] = min_dist;
                ip[j] = ind;
                certified += 1;
            } else {
                // Recompute this row and re-anchor its partial profile.
                let qt = self_qt(ps, j, l);
                dp_from_qt_into(ps, &qt, j, l, &policy, &mut dp);
                prof.reanchor(l, sigma_new);
                harvest_row(ps, prof, &dp, &qt, j, l);
                if let Some((arg, d)) = profile_min(&dp) {
                    mp[j] = d;
                    ip[j] = arg;
                }
                recomputed += 1;
            }
        }
        profiles.push(MatrixProfile { l, mp, ip, exclusion_radius: policy.radius(l) });
        stats.push(CompletionStats { l, certified_rows: certified, recomputed_rows: recomputed });
    }
    Ok((profiles, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use valmod_data::datasets::{ecg_like, emg_like};
    use valmod_data::generators::random_walk;
    use valmod_mp::stomp::stomp;

    fn check_exact(series: &[f64], l_min: usize, l_max: usize, p: usize) {
        let ps = ProfiledSeries::from_values(series).unwrap();
        let (profiles, stats) =
            complete_profiles(&ps, l_min, l_max, p, ExclusionPolicy::HALF).unwrap();
        assert_eq!(profiles.len(), l_max - l_min + 1);
        assert_eq!(stats.len(), profiles.len());
        for prof in &profiles {
            let oracle = stomp(&ps, prof.l, ExclusionPolicy::HALF).unwrap();
            assert_eq!(prof.len(), oracle.len());
            for i in 0..prof.len() {
                if prof.mp[i].is_infinite() || oracle.mp[i].is_infinite() {
                    assert_eq!(prof.mp[i].is_infinite(), oracle.mp[i].is_infinite());
                } else {
                    assert!(
                        (prof.mp[i] - oracle.mp[i]).abs() < 1e-6,
                        "l={} row {}: {} vs {}",
                        prof.l,
                        i,
                        prof.mp[i],
                        oracle.mp[i]
                    );
                }
            }
        }
    }

    #[test]
    fn every_length_profile_matches_stomp_random_walk() {
        check_exact(&random_walk(260, 71), 16, 24, 4);
    }

    #[test]
    fn every_length_profile_matches_stomp_ecg() {
        check_exact(ecg_like(600, 5).values(), 32, 40, 6);
    }

    #[test]
    fn every_length_profile_matches_stomp_emg_worst_case() {
        // EMG defeats the bound; everything is recomputed — still exact.
        check_exact(emg_like(400, 5).values(), 24, 30, 4);
    }

    #[test]
    fn certification_saves_work_on_easy_data() {
        let ps = ProfiledSeries::from_values(ecg_like(1200, 9).values()).unwrap();
        let (_, stats) = complete_profiles(&ps, 48, 56, 8, ExclusionPolicy::HALF).unwrap();
        let certified: usize = stats[1..].iter().map(|s| s.certified_rows).sum();
        let recomputed: usize = stats[1..].iter().map(|s| s.recomputed_rows).sum();
        assert!(
            certified > recomputed / 4,
            "expected meaningful certification on ECG (certified {certified}, recomputed {recomputed})"
        );
    }
}
