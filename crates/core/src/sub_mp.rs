//! `ComputeSubMP` (paper Algorithm 4): the motif of the next length from the
//! partial distance profiles alone — `O(np)` in the best case.
//!
//! ## Soundness argument (mirrors §4.1/§4.4 of the paper)
//!
//! For each profile `j`, the heap retained the `p` pairs with the smallest
//! anchor LBs; every *unstored* pair therefore has anchor LB ≥ the heap
//! maximum. Scaling by the shared σ-ratio preserves that ordering at the new
//! length, so every unstored pair's true distance is ≥ `maxLB`:
//!
//! * **valid profile** (`minDist ≤ maxLB`): the minimum over stored entries
//!   is the profile's true minimum — `SubMP[j]` is exact.
//! * **non-valid profile**: every one of its distances (stored > `minDist` >
//!   `maxLB` reasoning inverted, unstored ≥ `maxLB`) is ≥ `maxLB`.
//!
//! Hence if the global minimum over valid profiles beats the smallest
//! `maxLB` among non-valid profiles, it is the true motif distance
//! (`bBestM`). Entries that become invalid at the new length (neighbour
//! slides off the end, or the grown exclusion zone swallows the pair) only
//! *shrink* the set of real pairs, so discarding them keeps every statement
//! above conservative.

use valmod_mp::distance_profile::{dp_from_qt_into, profile_min};
use valmod_mp::exclusion::ExclusionPolicy;
use valmod_mp::parallel::row_chunks;
use valmod_mp::workspace::Workspace;
use valmod_mp::ProfiledSeries;
use valmod_obs::{Recorder, SharedRecorder};

use crate::compute_mp::harvest_row;
use crate::lb::{lb_scale, tightness};
use crate::profile::{update_dist_and_lb, EntryState, PartialProfile};

/// Result of one `ComputeSubMP` invocation.
#[derive(Debug, Clone)]
pub struct SubMpResult {
    /// `bBestM`: whether `sub_mp` is guaranteed to contain the true motif
    /// distance for this length.
    pub found_motif: bool,
    /// Partial matrix profile: exact minima for valid (and recomputed) rows,
    /// `NaN` (the paper's ⊥) for rows whose minimum is unknown, `+∞` for
    /// rows with no valid pair at this length.
    pub sub_mp: Vec<f64>,
    /// Nearest-neighbour offsets matching `sub_mp` (`usize::MAX` when
    /// unknown or absent).
    pub ip: Vec<usize>,
    /// Instrumentation: rows whose stored minimum was provably exact.
    pub valid_rows: usize,
    /// Instrumentation: rows marked ⊥ in the first pass.
    pub nonvalid_rows: usize,
    /// Instrumentation: rows recomputed in the last-chance pass.
    pub recomputed_rows: usize,
}

impl SubMpResult {
    /// Number of known (non-⊥) entries — the "size of the matrix profile
    /// subset" plotted in the paper's Fig. 14 (right).
    pub fn known_entries(&self) -> usize {
        self.sub_mp.iter().filter(|d| !d.is_nan()).count()
    }

    /// The minimum known distance and its offset, if any finite entry exists.
    pub fn min_entry(&self) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64)> = None;
        for (i, &d) in self.sub_mp.iter().enumerate() {
            if d.is_finite() && best.is_none_or(|(_, bd)| d < bd) {
                best = Some((i, d));
            }
        }
        best
    }
}

/// Per-chunk accumulator of the first pass; chunks are merged in row order,
/// so the result is identical to the sequential scan.
struct AdvanceOut {
    min_dist_abs: f64,
    min_lb_abs: f64,
    non_valid: Vec<(usize, f64)>,
}

/// First pass of Algorithm 4 over rows `[chunk_start, chunk_start + len)`:
/// advances each profile's stored entries to `new_l` (an `O(1)` update per
/// entry) and classifies the row as valid (exact minimum written to
/// `sub_mp`/`ip`) or non-valid. Rows are mutually independent, so the pass
/// chunks freely; the per-row arithmetic is identical regardless of the
/// chunking, keeping threaded runs bitwise equal to sequential ones.
#[allow(clippy::too_many_arguments)] // internal; the recorder rides along with the row-chunk state
fn advance_rows(
    ps: &ProfiledSeries,
    chunk: &mut [PartialProfile],
    chunk_start: usize,
    new_l: usize,
    policy: &ExclusionPolicy,
    sub_mp: &mut [f64],
    ip: &mut [usize],
    recorder: &SharedRecorder,
) -> AdvanceOut {
    let mut out = AdvanceOut {
        min_dist_abs: f64::INFINITY,
        min_lb_abs: f64::INFINITY,
        non_valid: Vec::new(),
    };
    let recording = recorder.enabled();
    // Normaliser for the Fig. 9 margin: distances live in [0, 2√ℓ].
    let margin_norm = 2.0 * (new_l as f64).sqrt();
    for (k, prof) in chunk.iter_mut().enumerate() {
        let j = chunk_start + k;
        let sigma_new = ps.std(j, new_l);
        let from_l = prof.current_l;
        let anchor_sigma = prof.anchor_sigma;
        let max_lb = prof.max_lb_at(sigma_new);
        let mut min_dist = f64::INFINITY;
        let mut ind = usize::MAX;
        let (mut tlb_sum, mut tlb_n) = (0.0f64, 0usize);
        for e in prof.entries_mut() {
            if e.dist.is_infinite() {
                continue; // invalidated at an earlier length — permanent
            }
            match update_dist_and_lb(ps, e, j, from_l, new_l, policy) {
                EntryState::Valid { dist } => {
                    // Ties resolve to the smaller neighbour, so the row's
                    // answer does not depend on the heap's internal layout
                    // (which varies with harvest order).
                    if dist < min_dist || (dist == min_dist && e.neighbor < ind) {
                        min_dist = dist;
                        ind = e.neighbor;
                    }
                    if recording {
                        // Fig. 10 tightness of the Eq. 2 bound for this pair.
                        let lb = lb_scale(e.lb_base(), anchor_sigma, sigma_new);
                        tlb_sum += tightness(lb, dist);
                        tlb_n += 1;
                    }
                }
                EntryState::Invalid => {}
            }
        }
        prof.current_l = new_l;
        if recording {
            // Fig. 9 margin, normalised by the distance range; an unfilled
            // heap (maxLB = +∞, profile complete) overflows the histogram's
            // top bucket and still counts as resolvable.
            let margin = if max_lb.is_infinite() && min_dist.is_infinite() {
                0.0
            } else {
                (max_lb - min_dist) / margin_norm
            };
            recorder.observe("core.lb.margin", margin);
            recorder.observe("core.lb.tlb", if tlb_n == 0 { 0.0 } else { tlb_sum / tlb_n as f64 });
        }
        if min_dist <= max_lb {
            // Paper line 16: minDist is the true row minimum.
            sub_mp[k] = min_dist;
            ip[k] = ind;
            if min_dist < out.min_dist_abs {
                out.min_dist_abs = min_dist;
            }
        } else {
            // Paper lines 20–23: unknown row minimum, but it is ≥ maxLB.
            out.min_lb_abs = out.min_lb_abs.min(max_lb);
            out.non_valid.push((j, max_lb));
        }
    }
    out
}

/// Advances all partial profiles to `new_l` and attempts to derive the
/// motif of that length without recomputing the matrix profile
/// (paper Algorithm 4). Sequential; see [`compute_sub_mp_threaded`].
pub fn compute_sub_mp(
    ps: &ProfiledSeries,
    partials: &mut [PartialProfile],
    new_l: usize,
    policy: ExclusionPolicy,
) -> SubMpResult {
    compute_sub_mp_threaded(ps, partials, new_l, policy, 1)
}

/// [`compute_sub_mp`] with the first pass split across `threads` workers
/// (0 = all available cores). Each chunk owns disjoint slices of
/// `sub_mp`/`ip`/`partials` and reduces its own
/// `minDistAbs`/`minLBAbs`/non-valid list; the reductions merge in row
/// order, so the output is identical to the sequential pass. The
/// last-chance refinement (paper lines 27–37) stays sequential — it touches
/// few rows by construction.
pub fn compute_sub_mp_threaded(
    ps: &ProfiledSeries,
    partials: &mut [PartialProfile],
    new_l: usize,
    policy: ExclusionPolicy,
    threads: usize,
) -> SubMpResult {
    compute_sub_mp_threaded_with(ps, partials, new_l, policy, threads, &SharedRecorder::noop())
}

/// [`compute_sub_mp_threaded`] with instrumentation. With an enabled
/// recorder, the advance pass records per-row pruning margins
/// (`core.lb.margin`, normalised by the `2√ℓ` distance range — Fig. 9) and
/// the mean tightness of the Eq. 2 lower bound (`core.lb.tlb` — Fig. 10);
/// the merge records `core.lb.valid_rows`/`core.lb.nonvalid_rows` counters,
/// the last-chance pass records `core.lb.refined_rows` plus one
/// `mp.mass.calls` per recomputed row, and the whole first pass is timed
/// into `core.submp.advance_us`. The instrumentation only *reads* the
/// algorithm's state: outputs are bitwise identical with any recorder.
pub fn compute_sub_mp_threaded_with(
    ps: &ProfiledSeries,
    partials: &mut [PartialProfile],
    new_l: usize,
    policy: ExclusionPolicy,
    threads: usize,
    recorder: &SharedRecorder,
) -> SubMpResult {
    let mut ws = Workspace::new();
    compute_sub_mp_threaded_with_ws(ps, partials, new_l, policy, threads, recorder, &mut ws)
}

/// [`compute_sub_mp_threaded_with`] over a caller-held [`Workspace`]: the
/// last-chance refinement re-seeds each recomputed row's dot-product vector
/// through the workspace's FFT plan cache ([`Workspace::self_qt`], bitwise
/// identical to a fresh-plan seed), so a driver walking a length range pays
/// for each FFT size once.
#[allow(clippy::too_many_arguments)] // recorder + workspace ride along with the row-chunk knobs
pub fn compute_sub_mp_threaded_with_ws(
    ps: &ProfiledSeries,
    partials: &mut [PartialProfile],
    new_l: usize,
    policy: ExclusionPolicy,
    threads: usize,
    recorder: &SharedRecorder,
    ws: &mut Workspace,
) -> SubMpResult {
    let ndp = ps.num_subsequences(new_l);
    if ndp == 0 {
        // No subsequences at this length: vacuously solved, nothing to do.
        return SubMpResult {
            found_motif: true,
            sub_mp: Vec::new(),
            ip: Vec::new(),
            valid_rows: 0,
            nonvalid_rows: 0,
            recomputed_rows: 0,
        };
    }
    if partials.len() < ndp {
        // Not enough harvested profiles to certify anything (empty or
        // truncated `listDP`): report every row unknown and force the
        // driver's full-recomputation fallback instead of panicking.
        return SubMpResult {
            found_motif: false,
            sub_mp: vec![f64::NAN; ndp],
            ip: vec![usize::MAX; ndp],
            valid_rows: 0,
            nonvalid_rows: ndp,
            recomputed_rows: 0,
        };
    }
    let mut sub_mp = vec![f64::NAN; ndp];
    let mut ip = vec![usize::MAX; ndp];
    // The last-chance budget divides by `p`; derive it from the largest
    // retained capacity so heterogeneous (or zero-capacity) profiles cannot
    // inflate the budget or divide by zero.
    let p = partials[..ndp].iter().map(|pr| pr.capacity()).max().unwrap_or(1);

    let chunk_outs: Vec<AdvanceOut> = {
        let _span = valmod_obs::span!(recorder, "core.submp.advance_us");
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            let mut mp_rest: &mut [f64] = &mut sub_mp;
            let mut ip_rest: &mut [usize] = &mut ip;
            let mut pr_rest: &mut [PartialProfile] = &mut partials[..ndp];
            for (chunk_start, len) in row_chunks(ndp, threads) {
                let (mp_chunk, mp_tail) = mp_rest.split_at_mut(len);
                let (ip_chunk, ip_tail) = ip_rest.split_at_mut(len);
                let (pr_chunk, pr_tail) = pr_rest.split_at_mut(len);
                mp_rest = mp_tail;
                ip_rest = ip_tail;
                pr_rest = pr_tail;
                handles.push(scope.spawn(move || {
                    advance_rows(
                        ps,
                        pr_chunk,
                        chunk_start,
                        new_l,
                        &policy,
                        mp_chunk,
                        ip_chunk,
                        recorder,
                    )
                }));
            }
            handles.into_iter().map(|h| h.join().expect("sub-MP worker panicked")).collect()
        })
    };

    let mut min_dist_abs = f64::INFINITY;
    let mut min_lb_abs = f64::INFINITY;
    let mut non_valid: Vec<(usize, f64)> = Vec::new();
    for out in chunk_outs {
        min_dist_abs = min_dist_abs.min(out.min_dist_abs);
        min_lb_abs = min_lb_abs.min(out.min_lb_abs);
        non_valid.extend(out.non_valid);
    }

    let valid_rows = ndp - non_valid.len();
    let nonvalid_rows = non_valid.len();
    let mut found = min_dist_abs < min_lb_abs;
    let mut recomputed = 0usize;

    // Paper lines 27–37: the last chance to avoid a full matrix-profile
    // recomputation — refine only the non-valid rows whose bound leaves room
    // below the best-so-far, provided there are few enough of them.
    if !found && non_valid.len() < ndp / p.max(1) {
        let mut dp = Vec::with_capacity(ndp);
        for &(j, lb_max) in &non_valid {
            if lb_max < min_dist_abs {
                let qt = ws.self_qt(ps, j, new_l);
                dp_from_qt_into(ps, qt, j, new_l, &policy, &mut dp);
                let prof = &mut partials[j];
                prof.reanchor(new_l, ps.std(j, new_l));
                harvest_row(ps, prof, &dp, qt, j, new_l);
                match profile_min(&dp) {
                    Some((arg, d)) => {
                        sub_mp[j] = d;
                        ip[j] = arg;
                        if d < min_dist_abs {
                            min_dist_abs = d;
                        }
                    }
                    None => sub_mp[j] = f64::INFINITY,
                }
                recomputed += 1;
            }
        }
        found = true;
    }

    if recorder.enabled() {
        recorder.add("core.lb.valid_rows", valid_rows as u64);
        recorder.add("core.lb.nonvalid_rows", nonvalid_rows as u64);
        if recomputed > 0 {
            recorder.add("core.lb.refined_rows", recomputed as u64);
            // Each refined row re-seeds its dot-product vector with one FFT.
            recorder.add("mp.mass.calls", recomputed as u64);
        }
    }

    SubMpResult {
        found_motif: found,
        sub_mp,
        ip,
        valid_rows,
        nonvalid_rows,
        recomputed_rows: recomputed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compute_mp::compute_matrix_profile;
    use valmod_data::generators::{plant_motif, random_walk, sine_mixture};
    use valmod_mp::stomp::stomp;

    fn check_against_stomp(series: &[f64], l_min: usize, steps: usize, p: usize) {
        let ps = ProfiledSeries::from_values(series).unwrap();
        let policy = ExclusionPolicy::HALF;
        let mut state = compute_matrix_profile(&ps, l_min, p, policy).unwrap();
        for l in (l_min + 1)..=(l_min + steps) {
            let res = compute_sub_mp(&ps, &mut state.partials, l, policy);
            let oracle = stomp(&ps, l, policy).unwrap();
            let oracle_min = oracle.motif_pair().map(|(_, _, d)| d);
            if res.found_motif {
                let got = res.min_entry().map(|(_, d)| d);
                match (got, oracle_min) {
                    (Some(g), Some(o)) => {
                        assert!((g - o).abs() < 1e-6, "l={l}: sub-MP motif {g} vs STOMP {o}")
                    }
                    (None, None) => {}
                    other => panic!("l={l}: motif presence mismatch {other:?}"),
                }
            }
            // Every *known* row entry must equal the true row minimum.
            for (j, &d) in res.sub_mp.iter().enumerate() {
                if d.is_nan() {
                    continue;
                }
                let truth = oracle.mp[j];
                if d.is_infinite() || truth.is_infinite() {
                    assert_eq!(d.is_infinite(), truth.is_infinite(), "l={l} row {j}");
                } else {
                    assert!((d - truth).abs() < 1e-6, "l={l} row {j}: {d} vs {truth}");
                }
            }
            // When the fallback would be needed, emulate the driver: rebuild.
            if !res.found_motif {
                state = compute_matrix_profile(&ps, l, p, policy).unwrap();
            }
        }
    }

    #[test]
    fn sub_mp_is_exact_on_random_walks() {
        check_against_stomp(&random_walk(350, 41), 16, 12, 5);
    }

    #[test]
    fn sub_mp_is_exact_on_periodic_data() {
        let series = sine_mixture(400, &[(0.02, 1.0), (0.05, 0.4)], 0.05, 13);
        check_against_stomp(&series, 20, 10, 6);
    }

    #[test]
    fn sub_mp_is_exact_with_planted_motifs() {
        let (series, _) = plant_motif(2000, 48, 3, 0.02, 17);
        check_against_stomp(&series, 48, 16, 8);
    }

    #[test]
    fn sub_mp_is_exact_with_tiny_p() {
        // p = 1 stresses the non-valid path and the last-chance refinement.
        check_against_stomp(&random_walk(300, 43), 16, 10, 1);
    }

    #[test]
    fn sub_mp_tracks_shrinking_profile_count() {
        let series = random_walk(200, 47);
        let ps = ProfiledSeries::from_values(&series).unwrap();
        let policy = ExclusionPolicy::HALF;
        let mut state = compute_matrix_profile(&ps, 50, 4, policy).unwrap();
        let res = compute_sub_mp(&ps, &mut state.partials, 51, policy);
        assert_eq!(res.sub_mp.len(), 200 - 51 + 1);
        assert_eq!(res.valid_rows + res.nonvalid_rows, res.sub_mp.len());
    }

    #[test]
    fn threaded_first_pass_matches_sequential() {
        let series = random_walk(400, 53);
        let ps = ProfiledSeries::from_values(&series).unwrap();
        let policy = ExclusionPolicy::HALF;
        for threads in [1usize, 2, 3, 7, 16] {
            // Fresh state per thread count: the advance mutates partials.
            let mut seq = compute_matrix_profile(&ps, 24, 5, policy).unwrap();
            let mut par = seq.clone();
            for l in 25..=30 {
                let a = compute_sub_mp(&ps, &mut seq.partials, l, policy);
                let b = compute_sub_mp_threaded(&ps, &mut par.partials, l, policy, threads);
                assert_eq!(a.found_motif, b.found_motif, "threads={threads} l={l}");
                assert_eq!(a.valid_rows, b.valid_rows, "threads={threads} l={l}");
                assert_eq!(a.nonvalid_rows, b.nonvalid_rows, "threads={threads} l={l}");
                assert_eq!(a.recomputed_rows, b.recomputed_rows, "threads={threads} l={l}");
                for (j, (&x, &y)) in a.sub_mp.iter().zip(&b.sub_mp).enumerate() {
                    assert!(
                        x.to_bits() == y.to_bits(),
                        "threads={threads} l={l} row {j}: {x} vs {y}"
                    );
                }
                assert_eq!(a.ip, b.ip, "threads={threads} l={l}");
            }
        }
    }

    #[test]
    fn recording_does_not_perturb_the_advance() {
        use valmod_obs::Registry;
        let series = random_walk(300, 59);
        let ps = ProfiledSeries::from_values(&series).unwrap();
        let policy = ExclusionPolicy::HALF;
        let mut plain = compute_matrix_profile(&ps, 20, 4, policy).unwrap();
        let mut recorded = plain.clone();
        let registry = Registry::new();
        crate::instrument::register_probe_histograms(&registry);
        let rec = SharedRecorder::from(registry.clone());
        for l in 21..=26 {
            let a = compute_sub_mp(&ps, &mut plain.partials, l, policy);
            let b = compute_sub_mp_threaded_with(&ps, &mut recorded.partials, l, policy, 2, &rec);
            assert_eq!(a.found_motif, b.found_motif, "l={l}");
            for (j, (&x, &y)) in a.sub_mp.iter().zip(&b.sub_mp).enumerate() {
                assert!(x.to_bits() == y.to_bits(), "l={l} row {j}: {x} vs {y}");
            }
        }
        let snap = registry.snapshot();
        let rows: u64 = (21..=26u64).map(|l| 300 - l + 1).sum();
        // One margin and one TLB observation per advanced row.
        assert_eq!(snap.histogram("core.lb.margin").unwrap().count, rows);
        assert_eq!(snap.histogram("core.lb.tlb").unwrap().count, rows);
        assert_eq!(
            snap.counter("core.lb.valid_rows").unwrap()
                + snap.counter("core.lb.nonvalid_rows").unwrap(),
            rows
        );
        assert_eq!(snap.histogram("core.submp.advance_us").unwrap().count, 6);
    }

    #[test]
    fn zero_subsequences_is_vacuously_solved() {
        let ps = ProfiledSeries::from_values(&random_walk(50, 3)).unwrap();
        let mut partials: Vec<PartialProfile> = Vec::new();
        let res = compute_sub_mp(&ps, &mut partials, 60, ExclusionPolicy::HALF);
        assert!(res.found_motif);
        assert!(res.sub_mp.is_empty());
        assert_eq!(res.valid_rows + res.nonvalid_rows, 0);
    }

    #[test]
    fn missing_partials_force_fallback_instead_of_panicking() {
        let ps = ProfiledSeries::from_values(&random_walk(100, 5)).unwrap();
        // Empty listDP: nothing can be certified.
        let mut empty: Vec<PartialProfile> = Vec::new();
        let res = compute_sub_mp(&ps, &mut empty, 20, ExclusionPolicy::HALF);
        assert!(!res.found_motif);
        assert_eq!(res.nonvalid_rows, res.sub_mp.len());
        assert_eq!(res.valid_rows, 0);
        assert!(res.sub_mp.iter().all(|d| d.is_nan()));
        // Truncated listDP (fewer profiles than rows): same contract.
        let mut state = compute_matrix_profile(&ps, 19, 3, ExclusionPolicy::HALF).unwrap();
        state.partials.truncate(10);
        let res = compute_sub_mp(&ps, &mut state.partials, 20, ExclusionPolicy::HALF);
        assert!(!res.found_motif);
        assert_eq!(res.valid_rows + res.nonvalid_rows, res.sub_mp.len());
    }

    #[test]
    fn heterogeneous_capacities_use_the_largest_p() {
        let ps = ProfiledSeries::from_values(&random_walk(200, 7)).unwrap();
        let policy = ExclusionPolicy::HALF;
        let mut state = compute_matrix_profile(&ps, 16, 4, policy).unwrap();
        // Simulate a profile rebuilt with a different capacity: must not
        // panic, and every known row must still be exact.
        let sigma = ps.std(0, 16);
        state.partials[0] = PartialProfile::new(0, 16, sigma, 9);
        let res = compute_sub_mp(&ps, &mut state.partials, 17, policy);
        assert_eq!(res.valid_rows + res.nonvalid_rows, res.sub_mp.len());
        let oracle = stomp(&ps, 17, policy).unwrap();
        for (j, &d) in res.sub_mp.iter().enumerate() {
            if d.is_finite() {
                assert!((d - oracle.mp[j]).abs() < 1e-6, "row {j}");
            }
        }
    }

    #[test]
    fn known_entries_counts_non_bottom() {
        let r = SubMpResult {
            found_motif: true,
            sub_mp: vec![1.0, f64::NAN, f64::INFINITY],
            ip: vec![2, usize::MAX, usize::MAX],
            valid_rows: 2,
            nonvalid_rows: 1,
            recomputed_rows: 0,
        };
        assert_eq!(r.known_entries(), 2);
        assert_eq!(r.min_entry(), Some((0, 1.0)));
    }
}
