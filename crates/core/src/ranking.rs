//! Ranking motifs of different lengths (paper §3).
//!
//! The VALMP already stores length-normalised distances; this module turns
//! it into a user-facing ranked list of *distinct* variable-length motifs,
//! suppressing overlap so the list reads like the paper's Fig. 1 ("the
//! 10-second motif and the 12-second motif"), and provides the three
//! candidate length corrections compared in Fig. 2.

use valmod_mp::exclusion::ExclusionPolicy;
use valmod_mp::motif::MotifPair;

use crate::valmp::Valmp;

/// The candidate corrections compared in the paper's Fig. 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LengthCorrection {
    /// No correction: plain Euclidean distance (biased to short lengths).
    None,
    /// Divide by the length (biased to long lengths, like the
    /// length-normalised edit distance).
    DivideByLength,
    /// Multiply by `sqrt(1/ℓ)` — the paper's choice, near length-invariant.
    SqrtInverse,
}

impl LengthCorrection {
    /// Applies the correction to a distance at length `l`.
    #[inline]
    pub fn apply(self, dist: f64, l: usize) -> f64 {
        match self {
            LengthCorrection::None => dist,
            LengthCorrection::DivideByLength => dist / l as f64,
            LengthCorrection::SqrtInverse => dist * (1.0 / l as f64).sqrt(),
        }
    }
}

/// Extracts the top-`k` distinct variable-length motifs from a VALMP,
/// ranked by length-normalised distance. Offsets within the exclusion
/// radius (at each motif's own length) of an already-reported motif are
/// suppressed.
pub fn top_variable_length_motifs(
    valmp: &Valmp,
    k: usize,
    policy: ExclusionPolicy,
) -> Vec<MotifPair> {
    let mut slots: Vec<usize> =
        (0..valmp.len()).filter(|&i| valmp.norm_distances[i].is_finite()).collect();
    slots.sort_by(|&x, &y| valmp.norm_distances[x].total_cmp(&valmp.norm_distances[y]));

    let mut out: Vec<MotifPair> = Vec::new();
    for &i in &slots {
        if out.len() >= k {
            break;
        }
        let pair = MotifPair::new(i, valmp.indices[i], valmp.lengths[i], valmp.distances[i]);
        let radius = policy.radius(pair.l);
        let clashes = out.iter().any(|m| {
            let r = radius.max(policy.radius(m.l));
            m.a.abs_diff(pair.a) < r
                || m.a.abs_diff(pair.b) < r
                || m.b.abs_diff(pair.a) < r
                || m.b.abs_diff(pair.b) < r
        });
        if !clashes {
            out.push(pair);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corrections_match_formulas() {
        assert_eq!(LengthCorrection::None.apply(8.0, 16), 8.0);
        assert_eq!(LengthCorrection::DivideByLength.apply(8.0, 16), 0.5);
        assert!((LengthCorrection::SqrtInverse.apply(8.0, 16) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn ranking_suppresses_overlapping_motifs() {
        let mut v = Valmp::new(40);
        // Slot 0 pairs with 20 at distance 1 (length 10); slot 1 (overlapping
        // slot 0) pairs with 21 at distance 1.5; slot 30 pairs with 10 at 2.
        v.update(
            &{
                let mut mp = vec![f64::INFINITY; 40];
                mp[0] = 1.0;
                mp[1] = 1.5;
                mp[30] = 2.0;
                mp
            },
            &{
                let mut ip = vec![usize::MAX; 40];
                ip[0] = 20;
                ip[1] = 21;
                ip[30] = 10;
                ip
            },
            10,
        );
        let motifs = top_variable_length_motifs(&v, 5, ExclusionPolicy::HALF);
        // Slot 1 overlaps slot 0 (radius 5) and must be suppressed; slot 30's
        // pair member 10 is far enough from 0 and 20.
        assert_eq!(motifs.len(), 2);
        assert_eq!((motifs[0].a, motifs[0].b), (0, 20));
        assert_eq!((motifs[1].a, motifs[1].b), (10, 30));
    }

    #[test]
    fn mirrored_pairs_are_reported_once() {
        let mut v = Valmp::new(30);
        let mut mp = vec![f64::INFINITY; 30];
        let mut ip = vec![usize::MAX; 30];
        mp[2] = 1.0;
        ip[2] = 25;
        mp[25] = 1.0;
        ip[25] = 2;
        v.update(&mp, &ip, 8);
        let motifs = top_variable_length_motifs(&v, 5, ExclusionPolicy::HALF);
        assert_eq!(motifs.len(), 1, "the symmetric slot must be suppressed");
    }
}
