//! Partial distance profiles: the `listDP` structure of paper Algorithm 3.
//!
//! For each distance profile `j`, VALMOD retains only the `p` entries with
//! the smallest Eq. 2 lower bounds, in a bounded max-heap (largest LB at the
//! root, so the worst retained entry is evicted first). Because all entries
//! of a profile share the σ-ratio scaling factor, the anchor-time ordering
//! by [`crate::lb::lb_key`] *is* the ordering at every later length.
//!
//! Entries are ordered by the *strict total order* (`lb_key` via
//! `f64::total_cmp`, then neighbour index). Two distinct entries of one
//! profile never compare equal (the neighbour is unique per owner), so which
//! entries survive an over-full heap is independent of the order they were
//! offered in — row-order and diagonal-order harvests retain the same set.

use valmod_mp::distance::dist_from_qt;
use valmod_mp::exclusion::ExclusionPolicy;
use valmod_mp::ProfiledSeries;

use crate::lb::lb_scale;

/// One retained entry of a partial distance profile: the pair
/// (profile owner `j`, neighbour), with enough state to advance both its
/// true distance and its lower bound to the next length in O(1).
#[derive(Debug, Clone, Copy)]
pub struct DpEntry {
    /// Neighbour offset (`i` in the paper's `d_{i,j}`).
    pub neighbor: usize,
    /// Dot product `⟨T_{neighbor,L}, T_{j,L}⟩` in the centred domain, for the
    /// length `L` the entry was last advanced to.
    pub qt: f64,
    /// True z-normalised distance at that length.
    pub dist: f64,
    /// Squared anchor LB component (`ℓ` or `ℓ(1 − q²)` at the anchor length);
    /// the heap key.
    pub lb_key: f64,
}

impl DpEntry {
    /// The anchor LB value `sqrt(lb_key)`.
    #[inline]
    pub fn lb_base(&self) -> f64 {
        self.lb_key.sqrt()
    }
}

/// Strict total heap order: `lb_key` (via `total_cmp`), ties broken by the
/// neighbour index. Returns whether `a` ranks strictly *worse* (greater)
/// than `b`. With this order, eviction from a full heap is deterministic
/// regardless of offer order.
#[inline]
fn heap_gt(a: &DpEntry, b: &DpEntry) -> bool {
    a.lb_key.total_cmp(&b.lb_key).then_with(|| a.neighbor.cmp(&b.neighbor))
        == std::cmp::Ordering::Greater
}

/// The partial distance profile of one subsequence: its `p` smallest-LB
/// entries plus the anchor state needed to scale those LBs to any length.
#[derive(Debug, Clone)]
pub struct PartialProfile {
    /// Offset of the profile owner (`j`).
    pub owner: usize,
    /// Length at which the retained entries were last advanced.
    pub current_l: usize,
    /// Length at which the entries were harvested (LB anchor).
    pub anchor_l: usize,
    /// `σ(T_{owner, anchor_l})` — numerator of the Eq. 2 σ-ratio.
    pub anchor_sigma: f64,
    /// Max-heap by `lb_key`; at most `capacity` entries.
    entries: Vec<DpEntry>,
    capacity: usize,
}

impl PartialProfile {
    /// Creates an empty profile anchored at `anchor_l`.
    pub fn new(owner: usize, anchor_l: usize, anchor_sigma: f64, capacity: usize) -> Self {
        assert!(capacity > 0, "profile capacity p must be positive");
        PartialProfile {
            owner,
            current_l: anchor_l,
            anchor_l,
            anchor_sigma,
            entries: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// Number of retained entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no entry is retained.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether the heap holds its full `p` entries. When it does not, *every*
    /// finite pair of the profile was retained, so the profile is complete.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.entries.len() == self.capacity
    }

    /// The capacity `p` the profile was created with.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The retained entries, heap-ordered (no particular sort).
    #[inline]
    pub fn entries(&self) -> &[DpEntry] {
        &self.entries
    }

    /// Mutable access for the O(1) per-length advance.
    #[inline]
    pub fn entries_mut(&mut self) -> &mut [DpEntry] {
        &mut self.entries
    }

    /// The largest retained `lb_key` (heap root), or `None` when empty.
    #[inline]
    pub fn max_lb_key(&self) -> Option<f64> {
        self.entries.first().map(|e| e.lb_key)
    }

    /// The threshold `maxLB` at length `l`: the largest retained anchor LB,
    /// scaled by the σ-ratio. Unstored pairs of this profile all have true
    /// distance ≥ this value (heap property + Eq. 2 rank preservation).
    ///
    /// Returns `+∞` when the heap never filled (then there *are* no unstored
    /// pairs and the profile is complete).
    pub fn max_lb_at(&self, sigma_new: f64) -> f64 {
        if !self.is_full() {
            return f64::INFINITY;
        }
        match self.max_lb_key() {
            Some(key) => lb_scale(key.sqrt(), self.anchor_sigma, sigma_new),
            None => f64::INFINITY,
        }
    }

    /// Offers an entry during harvesting (paper Alg. 3 lines 18–24): keep it
    /// iff the heap is not full or it beats the current worst under the
    /// strict total order (`lb_key`, then neighbour index).
    #[inline]
    pub fn offer(&mut self, entry: DpEntry) {
        if self.entries.len() < self.capacity {
            self.entries.push(entry);
            self.sift_up(self.entries.len() - 1);
        } else if heap_gt(&self.entries[0], &entry) {
            self.entries[0] = entry;
            self.sift_down(0);
        }
    }

    /// Clears the profile and re-anchors it at a new length (used when a
    /// distance profile is recomputed from scratch, Alg. 4 lines 30–34).
    pub fn reanchor(&mut self, anchor_l: usize, anchor_sigma: f64) {
        self.entries.clear();
        self.anchor_l = anchor_l;
        self.current_l = anchor_l;
        self.anchor_sigma = anchor_sigma;
    }

    fn sift_up(&mut self, mut idx: usize) {
        while idx > 0 {
            let parent = (idx - 1) / 2;
            if heap_gt(&self.entries[idx], &self.entries[parent]) {
                self.entries.swap(idx, parent);
                idx = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut idx: usize) {
        let n = self.entries.len();
        loop {
            let (l, r) = (2 * idx + 1, 2 * idx + 2);
            let mut largest = idx;
            if l < n && heap_gt(&self.entries[l], &self.entries[largest]) {
                largest = l;
            }
            if r < n && heap_gt(&self.entries[r], &self.entries[largest]) {
                largest = r;
            }
            if largest == idx {
                break;
            }
            self.entries.swap(idx, largest);
            idx = largest;
        }
    }
}

/// Outcome of advancing one entry to a new length.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EntryState {
    /// The pair is still valid; distance and LB were updated.
    Valid {
        /// True z-normalised distance at the new length.
        dist: f64,
    },
    /// The pair no longer exists at this length (neighbour slid off the end
    /// of the series, or the grown exclusion zone swallowed it).
    Invalid,
}

/// Advances one entry from `profile.current_l` to `new_l` in O(1) per unit
/// length step (paper's `updateDistAndLB`): extend the dot product with the
/// newly covered samples, then recompute distance (Eq. 3) and LB (Eq. 2
/// σ-ratio) from the O(1) rolling statistics.
pub fn update_dist_and_lb(
    ps: &ProfiledSeries,
    entry: &mut DpEntry,
    owner: usize,
    from_l: usize,
    new_l: usize,
    policy: &ExclusionPolicy,
) -> EntryState {
    debug_assert!(new_l >= from_l);
    let n = ps.len();
    let i = entry.neighbor;
    if i + new_l > n || owner + new_l > n || policy.is_trivial(owner, i, new_l) {
        // Invalidity is permanent (the exclusion radius only grows and the
        // series end only gets closer), so the stale dot product is never
        // read again. The infinite distance marks the entry dead for
        // snapshots and minima.
        entry.dist = f64::INFINITY;
        return EntryState::Invalid;
    }
    let t = ps.centered();
    for step in from_l..new_l {
        entry.qt += t[owner + step] * t[i + step];
    }
    let dist = dist_from_qt(
        entry.qt,
        new_l,
        ps.mean_c(i, new_l),
        ps.std(i, new_l),
        ps.mean_c(owner, new_l),
        ps.std(owner, new_l),
    );
    entry.dist = dist;
    EntryState::Valid { dist }
}

#[cfg(test)]
mod tests {
    use super::*;
    use valmod_data::generators::random_walk;
    use valmod_mp::distance::zdist_naive;

    fn entry(neighbor: usize, lb_key: f64) -> DpEntry {
        DpEntry { neighbor, qt: 0.0, dist: 0.0, lb_key }
    }

    #[test]
    fn heap_keeps_p_smallest_keys() {
        let mut p = PartialProfile::new(0, 8, 1.0, 3);
        for (n, key) in [(1usize, 5.0), (2, 1.0), (3, 4.0), (4, 0.5), (5, 3.0)] {
            p.offer(entry(n, key));
        }
        assert_eq!(p.len(), 3);
        let mut keys: Vec<f64> = p.entries().iter().map(|e| e.lb_key).collect();
        keys.sort_by(f64::total_cmp);
        assert_eq!(keys, vec![0.5, 1.0, 3.0]);
        assert_eq!(p.max_lb_key(), Some(3.0));
    }

    #[test]
    fn retention_is_independent_of_offer_order() {
        // Equal lb_keys tie-break on the neighbour index, so the surviving
        // set is the same whatever order entries arrive in.
        let pool = [
            entry(9, 2.0),
            entry(4, 2.0),
            entry(7, 2.0),
            entry(1, 5.0),
            entry(2, 2.0),
            entry(8, 0.5),
        ];
        let survivors = |order: &[usize]| -> Vec<usize> {
            let mut p = PartialProfile::new(0, 8, 1.0, 3);
            for &k in order {
                p.offer(pool[k]);
            }
            let mut kept: Vec<usize> = p.entries().iter().map(|e| e.neighbor).collect();
            kept.sort_unstable();
            kept
        };
        let forward = survivors(&[0, 1, 2, 3, 4, 5]);
        // Smallest under (lb_key, neighbor): (0.5, 8), (2.0, 2), (2.0, 4).
        assert_eq!(forward, vec![2, 4, 8]);
        assert_eq!(survivors(&[5, 4, 3, 2, 1, 0]), forward);
        assert_eq!(survivors(&[3, 0, 5, 2, 4, 1]), forward);
    }

    #[test]
    fn unfilled_heap_reports_infinite_threshold() {
        let mut p = PartialProfile::new(0, 8, 2.0, 4);
        p.offer(entry(1, 2.0));
        assert!(p.max_lb_at(1.0).is_infinite());
    }

    #[test]
    fn max_lb_scales_with_sigma_ratio() {
        let mut p = PartialProfile::new(0, 8, 2.0, 2);
        p.offer(entry(1, 4.0));
        p.offer(entry(2, 9.0));
        // maxLB = sqrt(9) * 2.0/σ_new.
        assert!((p.max_lb_at(1.0) - 6.0).abs() < 1e-12);
        assert!((p.max_lb_at(4.0) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn reanchor_clears_state() {
        let mut p = PartialProfile::new(3, 8, 2.0, 2);
        p.offer(entry(1, 4.0));
        p.reanchor(12, 3.0);
        assert!(p.is_empty());
        assert_eq!(p.anchor_l, 12);
        assert_eq!(p.current_l, 12);
        assert_eq!(p.anchor_sigma, 3.0);
    }

    #[test]
    fn update_advances_distance_exactly() {
        let series = random_walk(300, 5);
        let ps = ProfiledSeries::from_values(&series).unwrap();
        let policy = ExclusionPolicy::HALF;
        let (owner, neighbor, l0) = (20usize, 150usize, 16usize);
        let t = ps.centered();
        let qt0: f64 =
            t[owner..owner + l0].iter().zip(&t[neighbor..neighbor + l0]).map(|(a, b)| a * b).sum();
        let mut e = DpEntry { neighbor, qt: qt0, dist: 0.0, lb_key: 0.0 };
        for new_l in (l0 + 1)..(l0 + 40) {
            match update_dist_and_lb(&ps, &mut e, owner, new_l - 1, new_l, &policy) {
                EntryState::Valid { dist } => {
                    let oracle = zdist_naive(
                        &series[owner..owner + new_l],
                        &series[neighbor..neighbor + new_l],
                    );
                    assert!((dist - oracle).abs() < 1e-7, "l={new_l}: {dist} vs {oracle}");
                }
                EntryState::Invalid => panic!("pair should stay valid at l={new_l}"),
            }
        }
    }

    #[test]
    fn update_detects_slide_off_the_end() {
        let series = random_walk(100, 1);
        let ps = ProfiledSeries::from_values(&series).unwrap();
        let mut e = DpEntry { neighbor: 80, qt: 0.0, dist: 0.0, lb_key: 0.0 };
        // neighbor 80 + length 21 > 100 ⇒ invalid.
        let state = update_dist_and_lb(&ps, &mut e, 0, 20, 21, &ExclusionPolicy::HALF);
        assert_eq!(state, EntryState::Invalid);
    }

    #[test]
    fn update_detects_growing_exclusion_zone() {
        let series = random_walk(200, 2);
        let ps = ProfiledSeries::from_values(&series).unwrap();
        // |owner − neighbor| = 12: valid at ℓ = 20 (radius 10), trivial at
        // ℓ = 25 (radius 13).
        let t = ps.centered();
        let qt0: f64 = t[0..20].iter().zip(&t[12..32]).map(|(a, b)| a * b).sum();
        let mut e = DpEntry { neighbor: 12, qt: qt0, dist: 0.0, lb_key: 0.0 };
        assert!(matches!(
            update_dist_and_lb(&ps, &mut e, 0, 20, 21, &ExclusionPolicy::HALF),
            EntryState::Valid { .. }
        ));
        let mut e2 = e;
        assert_eq!(
            update_dist_and_lb(&ps, &mut e2, 0, 21, 25, &ExclusionPolicy::HALF),
            EntryState::Invalid
        );
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_is_rejected() {
        PartialProfile::new(0, 8, 1.0, 0);
    }
}
