//! Registry-backed probes behind the paper's diagnostic figures.
//!
//! * Fig. 9 — the pruning margin `maxLB − minDist` per partial distance
//!   profile (positive ⇒ the profile was resolvable without recomputation),
//!   recorded by the production advance pass into `core.lb.margin`.
//! * Fig. 10 — the average tightness of the lower bound (TLB) per profile,
//!   recorded into `core.lb.tlb`.
//! * Fig. 11 — the distribution of pairwise subsequence distances
//!   (`core.dist.distribution`).
//!
//! Earlier revisions re-implemented the margin/TLB arithmetic in a private
//! probe; the probes now attach a [`Registry`] to the same
//! [`compute_sub_mp_threaded_with`] pass that VALMOD itself runs, so the
//! figures measure exactly what the algorithm does.

use valmod_data::error::Result;
use valmod_mp::exclusion::ExclusionPolicy;
use valmod_mp::stomp::StompDriver;
use valmod_mp::ProfiledSeries;
use valmod_obs::{buckets, HistogramSnapshot, Registry, SharedRecorder, Snapshot};

use crate::compute_mp::compute_matrix_profile;
use crate::sub_mp::{compute_sub_mp, compute_sub_mp_threaded_with};

/// Registers the lower-bound diagnostic histograms with layouts suited to
/// their value ranges (the registry's default buckets are latency-shaped):
///
/// * `core.lb.margin` — normalised margins in `[-1, 1]`, bucket width 1/8,
///   with an exact bucket edge at 0 so "positive margin" is a bucket
///   boundary, not an interpolation;
/// * `core.lb.tlb` — tightness in `[0, 1]`, bucket width 1/16.
///
/// Call this on any registry that will observe a VALMOD run *before* the
/// run records into it (first registration fixes the layout).
pub fn register_probe_histograms(registry: &Registry) {
    registry.histogram_with("core.lb.margin", &buckets::linear(-1.0, 0.125, 17));
    registry.histogram_with("core.lb.tlb", &buckets::linear(0.0, 0.0625, 17));
}

/// Harvests partial profiles at `l_min`, advances them length by length
/// (without any fallback recomputation), and records the final advance step
/// to `target_l` into a fresh registry. The returned snapshot holds the
/// Fig. 9 margins (`core.lb.margin`, normalised by the `2√ℓ` distance
/// range), the Fig. 10 tightness (`core.lb.tlb`), and the
/// `core.lb.valid_rows`/`core.lb.nonvalid_rows` split of that step.
///
/// `target_l` must be greater than `l_min`: the margin is a property of an
/// *advance*, which the anchor length does not perform.
pub fn lb_probe(
    ps: &ProfiledSeries,
    l_min: usize,
    target_l: usize,
    p: usize,
    policy: ExclusionPolicy,
) -> Result<Snapshot> {
    assert!(target_l > l_min, "the probe needs at least one advance step");
    let mut state = compute_matrix_profile(ps, l_min, p, policy)?;
    for l in (l_min + 1)..target_l {
        // Advance entries silently; ignore the motif outcome — pure probe.
        let _ = compute_sub_mp(ps, &mut state.partials, l, policy);
    }
    let registry = Registry::new();
    register_probe_histograms(&registry);
    let recorder = SharedRecorder::from(registry.clone());
    let _ = compute_sub_mp_threaded_with(ps, &mut state.partials, target_l, policy, 1, &recorder);
    Ok(registry.snapshot())
}

/// Computes the pairwise-distance histogram at length `l` over every
/// `row_stride`-th distance profile (Fig. 11). The histogram has `bins`
/// equal-width buckets spanning `[0, 2√ℓ]` (the z-normalised distance
/// range) and is registered as `core.dist.distribution`; sampling
/// `row_stride > 1` keeps large series tractable while preserving the
/// distribution's shape.
pub fn distance_distribution(
    ps: &ProfiledSeries,
    l: usize,
    bins: usize,
    row_stride: usize,
    policy: ExclusionPolicy,
) -> Result<HistogramSnapshot> {
    assert!(bins > 0 && row_stride > 0);
    // Maximum possible z-normalised distance is sqrt(4ℓ) = 2·sqrt(ℓ).
    let max = 2.0 * (l as f64).sqrt();
    let width = max / bins as f64;
    let registry = Registry::new();
    let hist =
        registry.histogram_with("core.dist.distribution", &buckets::linear(width, width, bins));
    let mut driver = StompDriver::new(ps, l, policy)?;
    let mut dp = Vec::new();
    while let Some(row) = driver.next_row(&mut dp) {
        if row % row_stride != 0 {
            continue;
        }
        for &d in dp.iter() {
            if d.is_finite() {
                hist.record(d);
            }
        }
    }
    let snapshot = registry.snapshot();
    Ok(snapshot.histogram("core.dist.distribution").expect("just registered").clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use valmod_data::datasets::{ecg_like, emg_like};
    use valmod_data::generators::random_walk;

    #[test]
    fn probes_cover_every_profile() {
        let ps = ProfiledSeries::from_values(&random_walk(300, 55)).unwrap();
        let snap = lb_probe(&ps, 16, 24, 5, ExclusionPolicy::HALF).unwrap();
        let rows = (300 - 24 + 1) as u64;
        let margin = snap.histogram("core.lb.margin").unwrap();
        let tlb = snap.histogram("core.lb.tlb").unwrap();
        assert_eq!(margin.count, rows);
        assert_eq!(tlb.count, rows);
        // Tightness is a ratio in [0, 1]: nothing above the last bucket.
        assert_eq!(tlb.fraction_above(1.0), 0.0);
        // Every row was classified exactly once in the probed step.
        let valid = snap.counter("core.lb.valid_rows").unwrap_or(0);
        let nonvalid = snap.counter("core.lb.nonvalid_rows").unwrap_or(0);
        assert_eq!(valid + nonvalid, rows);
    }

    #[test]
    fn probe_histograms_use_the_registered_layouts() {
        let ps = ProfiledSeries::from_values(&random_walk(200, 57)).unwrap();
        let snap = lb_probe(&ps, 16, 17, 4, ExclusionPolicy::HALF).unwrap();
        let margin = snap.histogram("core.lb.margin").unwrap();
        // Exact 0.0 boundary: "positive margin" is a bucket edge.
        assert!(margin.bounds.contains(&0.0));
        assert_eq!(margin.bounds.first(), Some(&-1.0));
        assert_eq!(margin.bounds.last(), Some(&1.0));
        assert_eq!(snap.histogram("core.lb.tlb").unwrap().bounds.len(), 17);
    }

    #[test]
    fn ecg_like_prunes_where_emg_like_cannot() {
        // The §6.2 / Fig. 9 diagnosis: on ECG a sizeable fraction of
        // profiles keep a positive margin (maxLB − minDist > 0, the line-16
        // validity condition), while on EMG the margin is essentially never
        // positive — pruning fails and VALMOD degrades there.
        let n = 3000;
        let ecg = ProfiledSeries::from_values(ecg_like(n, 1).values()).unwrap();
        let emg = ProfiledSeries::from_values(emg_like(n, 1).values()).unwrap();
        let positive_margin_frac = |ps: &ProfiledSeries| {
            let snap = lb_probe(ps, 64, 128, 5, ExclusionPolicy::HALF).unwrap();
            snap.histogram("core.lb.margin").unwrap().fraction_above(0.0)
        };
        let (f_ecg, f_emg) = (positive_margin_frac(&ecg), positive_margin_frac(&emg));
        assert!(
            f_ecg > f_emg + 0.05,
            "expected ECG positive-margin fraction ({f_ecg:.3}) above EMG ({f_emg:.3})"
        );
    }

    #[test]
    fn histogram_accumulates_all_finite_distances() {
        let ps = ProfiledSeries::from_values(&random_walk(200, 59)).unwrap();
        let h = distance_distribution(&ps, 16, 20, 1, ExclusionPolicy::HALF).unwrap();
        // 20 requested bins plus the (empty) overflow bucket.
        assert_eq!(h.counts.len(), 21);
        assert_eq!(*h.counts.last().unwrap(), 0, "no distance can exceed 2·sqrt(ℓ)");
        assert!(h.count > 0);
        let freq_sum: f64 = h.frequencies().iter().sum();
        assert!((freq_sum - 1.0).abs() < 1e-9);
        assert!((h.bounds.last().unwrap() - 2.0 * 4.0).abs() < 1e-9);
    }

    #[test]
    fn striding_preserves_shape_roughly() {
        let ps = ProfiledSeries::from_values(&random_walk(400, 61)).unwrap();
        let full = distance_distribution(&ps, 16, 10, 1, ExclusionPolicy::HALF).unwrap();
        let strided = distance_distribution(&ps, 16, 10, 4, ExclusionPolicy::HALF).unwrap();
        let (ff, fs) = (full.frequencies(), strided.frequencies());
        let l1: f64 = ff.iter().zip(&fs).map(|(a, b)| (a - b).abs()).sum();
        assert!(l1 < 0.2, "strided histogram diverges too much: L1 = {l1}");
    }
}
