//! Instrumentation probes behind the paper's diagnostic figures.
//!
//! * Fig. 9 — the margin `maxLB − minDist` per partial distance profile
//!   (positive ⇒ the profile was resolvable without recomputation).
//! * Fig. 10 — the average tightness of the lower bound (TLB) per profile.
//! * Fig. 11 — the distribution of pairwise subsequence distances.

use valmod_data::error::Result;
use valmod_mp::exclusion::ExclusionPolicy;
use valmod_mp::stomp::StompDriver;
use valmod_mp::ProfiledSeries;

use crate::compute_mp::compute_matrix_profile;
use crate::lb::{lb_scale, tightness};
use crate::sub_mp::compute_sub_mp;

/// Per-profile probe at a target length (Figs. 9 and 10).
#[derive(Debug, Clone, Copy)]
pub struct RowProbe {
    /// Profile owner offset.
    pub owner: usize,
    /// The `maxLB` threshold at the target length.
    pub max_lb: f64,
    /// Minimum true distance among the retained (valid) entries.
    pub min_dist: f64,
    /// `maxLB − minDist` (positive ⇒ the paper's line-16 condition held).
    pub margin: f64,
    /// Mean TLB (`LB/dist`) over the retained valid entries.
    pub mean_tlb: f64,
}

/// Harvests partial profiles at `l_min`, advances them length by length to
/// `target_l` (without any fallback recomputation), and reports each
/// profile's `maxLB`, stored minimum, margin, and mean TLB at `target_l`.
pub fn probe_at_length(
    ps: &ProfiledSeries,
    l_min: usize,
    target_l: usize,
    p: usize,
    policy: ExclusionPolicy,
) -> Result<Vec<RowProbe>> {
    assert!(target_l >= l_min);
    let mut state = compute_matrix_profile(ps, l_min, p, policy)?;
    for l in (l_min + 1)..=target_l {
        // Advance entries; ignore the motif outcome — this is a pure probe.
        let _ = compute_sub_mp(ps, &mut state.partials, l, policy);
    }
    let ndp = ps.num_subsequences(target_l);
    let mut probes = Vec::with_capacity(ndp);
    for prof in state.partials.iter().take(ndp) {
        let sigma_new = ps.std(prof.owner, target_l);
        let max_lb = prof.max_lb_at(sigma_new);
        let mut min_dist = f64::INFINITY;
        let mut tlb_sum = 0.0;
        let mut tlb_n = 0usize;
        for e in prof.entries() {
            if !e.dist.is_finite() {
                continue;
            }
            min_dist = min_dist.min(e.dist);
            let lb = lb_scale(e.lb_base(), prof.anchor_sigma, sigma_new);
            tlb_sum += tightness(lb, e.dist);
            tlb_n += 1;
        }
        let mean_tlb = if tlb_n == 0 { 0.0 } else { tlb_sum / tlb_n as f64 };
        let margin =
            if max_lb.is_infinite() && min_dist.is_infinite() { 0.0 } else { max_lb - min_dist };
        probes.push(RowProbe { owner: prof.owner, max_lb, min_dist, margin, mean_tlb });
    }
    Ok(probes)
}

/// A fixed-width histogram of pairwise (non-trivial) subsequence distances
/// at one length (Fig. 11). Sampling `row_stride > 1` keeps large series
/// tractable while preserving the distribution's shape.
#[derive(Debug, Clone)]
pub struct DistanceHistogram {
    /// Left edge of the first bin (always 0).
    pub min: f64,
    /// Right edge of the last bin.
    pub max: f64,
    /// Bin counts.
    pub counts: Vec<u64>,
    /// Number of distances accumulated.
    pub total: u64,
}

impl DistanceHistogram {
    /// The relative frequency of each bin.
    pub fn frequencies(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts.iter().map(|&c| c as f64 / self.total as f64).collect()
    }
}

/// Computes the pairwise-distance histogram at length `l` over every
/// `row_stride`-th distance profile.
pub fn distance_distribution(
    ps: &ProfiledSeries,
    l: usize,
    bins: usize,
    row_stride: usize,
    policy: ExclusionPolicy,
) -> Result<DistanceHistogram> {
    assert!(bins > 0 && row_stride > 0);
    // Maximum possible z-normalised distance is sqrt(4ℓ) = 2·sqrt(ℓ).
    let max = 2.0 * (l as f64).sqrt();
    let mut counts = vec![0u64; bins];
    let mut total = 0u64;
    let mut driver = StompDriver::new(ps, l, policy)?;
    let mut dp = Vec::new();
    while let Some(row) = driver.next_row(&mut dp) {
        if row % row_stride != 0 {
            continue;
        }
        for &d in dp.iter() {
            if !d.is_finite() {
                continue;
            }
            let bin = ((d / max) * bins as f64).min(bins as f64 - 1.0) as usize;
            counts[bin] += 1;
            total += 1;
        }
    }
    Ok(DistanceHistogram { min: 0.0, max, counts, total })
}

#[cfg(test)]
mod tests {
    use super::*;
    use valmod_data::datasets::{ecg_like, emg_like};
    use valmod_data::generators::random_walk;

    #[test]
    fn probes_cover_every_profile() {
        let ps = ProfiledSeries::from_values(&random_walk(300, 55)).unwrap();
        let probes = probe_at_length(&ps, 16, 24, 5, ExclusionPolicy::HALF).unwrap();
        assert_eq!(probes.len(), 300 - 24 + 1);
        for p in &probes {
            assert!(p.mean_tlb >= 0.0 && p.mean_tlb <= 1.0);
        }
    }

    #[test]
    fn probe_at_anchor_length_has_nonnegative_margins_mostly() {
        // At the anchor itself, minDist is the true row minimum and maxLB is
        // the p-th smallest LB — LB ≤ dist, so margins can go either way,
        // but TLB must be within [0, 1] and finite rows must have finite
        // minima.
        let ps = ProfiledSeries::from_values(&random_walk(200, 57)).unwrap();
        let probes = probe_at_length(&ps, 16, 16, 4, ExclusionPolicy::HALF).unwrap();
        assert!(probes.iter().all(|p| p.min_dist.is_finite()));
    }

    #[test]
    fn ecg_like_prunes_where_emg_like_cannot() {
        // The §6.2 / Fig. 9 diagnosis: on ECG a sizeable fraction of
        // profiles keep a positive margin (maxLB − minDist > 0, the line-16
        // validity condition), while on EMG the margin is essentially never
        // positive — pruning fails and VALMOD degrades there.
        let n = 3000;
        let ecg = ProfiledSeries::from_values(ecg_like(n, 1).values()).unwrap();
        let emg = ProfiledSeries::from_values(emg_like(n, 1).values()).unwrap();
        let positive_margin_frac = |ps: &ProfiledSeries| {
            let probes = probe_at_length(ps, 64, 128, 5, ExclusionPolicy::HALF).unwrap();
            probes.iter().filter(|p| p.margin > 0.0).count() as f64 / probes.len() as f64
        };
        let (f_ecg, f_emg) = (positive_margin_frac(&ecg), positive_margin_frac(&emg));
        assert!(
            f_ecg > f_emg + 0.05,
            "expected ECG positive-margin fraction ({f_ecg:.3}) above EMG ({f_emg:.3})"
        );
    }

    #[test]
    fn histogram_accumulates_all_finite_distances() {
        let ps = ProfiledSeries::from_values(&random_walk(200, 59)).unwrap();
        let h = distance_distribution(&ps, 16, 20, 1, ExclusionPolicy::HALF).unwrap();
        assert_eq!(h.counts.len(), 20);
        assert!(h.total > 0);
        let freq_sum: f64 = h.frequencies().iter().sum();
        assert!((freq_sum - 1.0).abs() < 1e-9);
        // No distance can exceed 2·sqrt(ℓ).
        assert!(h.max >= 2.0 * 4.0 - 1e-9);
    }

    #[test]
    fn striding_preserves_shape_roughly() {
        let ps = ProfiledSeries::from_values(&random_walk(400, 61)).unwrap();
        let full = distance_distribution(&ps, 16, 10, 1, ExclusionPolicy::HALF).unwrap();
        let strided = distance_distribution(&ps, 16, 10, 4, ExclusionPolicy::HALF).unwrap();
        let (ff, fs) = (full.frequencies(), strided.frequencies());
        let l1: f64 = ff.iter().zip(&fs).map(|(a, b)| (a - b).abs()).sum();
        assert!(l1 < 0.2, "strided histogram diverges too much: L1 = {l1}");
    }
}
