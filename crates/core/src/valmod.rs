//! The VALMOD driver (paper Algorithm 1).
//!
//! Computes the matrix profile at `ℓ_min` (harvesting partial profiles),
//! then walks the length range: `ComputeSubMP` first, full
//! `ComputeMatrixProfile` only when the lower bounds could not certify the
//! motif (rare in practice — the paper's headline speed-up).

use valmod_data::error::{Result, ValmodError};
use valmod_data::series::Series;
use valmod_mp::diagonal::lex_update;
use valmod_mp::distance::is_flat;
use valmod_mp::exclusion::ExclusionPolicy;
use valmod_mp::extend::{extend_cells, TailState};
use valmod_mp::motif::MotifPair;
use valmod_mp::ProfiledSeries;
use valmod_obs::{Recorder, SharedRecorder};

use valmod_mp::workspace::Workspace;

use crate::compute_mp::{
    compute_matrix_profile_capture_with_ws, compute_matrix_profile_with_ws, key_for_pair,
    MpWithProfiles,
};
use crate::pairs::BestKPairs;
use crate::profile::{DpEntry, PartialProfile};
use crate::sub_mp::compute_sub_mp_threaded_with_ws;
use crate::valmp::Valmp;

/// Configuration for a VALMOD run.
#[derive(Debug, Clone)]
pub struct ValmodConfig {
    /// Smallest subsequence length `ℓ_min`.
    pub l_min: usize,
    /// Largest subsequence length `ℓ_max` (inclusive).
    pub l_max: usize,
    /// Number of lower-bound entries retained per distance profile
    /// (the paper's `p`; its default benchmark value is 50).
    pub p: usize,
    /// Trivial-match exclusion policy (paper default: `ℓ/2`).
    pub policy: ExclusionPolicy,
    /// Track the top-K pairs for motif-set discovery (0 = off).
    pub track_pairs: usize,
    /// Worker threads for the profile computations (1 = sequential,
    /// 0 = all available cores). Any thread count produces the same output
    /// up to floating-point rounding at chunk seams (≤ ~1e-12).
    pub threads: usize,
}

impl ValmodConfig {
    /// A configuration with the paper's defaults for the given range.
    pub fn new(l_min: usize, l_max: usize) -> Self {
        ValmodConfig {
            l_min,
            l_max,
            p: 50,
            policy: ExclusionPolicy::HALF,
            track_pairs: 0,
            threads: 1,
        }
    }

    /// Sets `p`.
    pub fn with_p(mut self, p: usize) -> Self {
        self.p = p;
        self
    }

    /// Sets the exclusion policy.
    pub fn with_policy(mut self, policy: ExclusionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Enables top-K pair tracking (needed for motif sets).
    pub fn with_pair_tracking(mut self, k: usize) -> Self {
        self.track_pairs = k;
        self
    }

    /// Sets the worker thread count (1 = sequential, 0 = all cores).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The canonical form of this configuration: every field that cannot
    /// change the *result* of a run is normalised away. Two configs with
    /// equal canonical forms produce semantically identical output, so
    /// result caches must key on this form, never on the raw config.
    ///
    /// Normalisations: `threads` is forced to 1 (any thread count yields
    /// the same answer up to sub-1e-12 chunk-seam rounding) and the
    /// exclusion fraction is reduced to lowest terms (`2/4` ≡ `1/2`).
    pub fn canonical(&self) -> ValmodConfig {
        ValmodConfig {
            l_min: self.l_min,
            l_max: self.l_max,
            p: self.p,
            policy: self.policy.reduced(),
            track_pairs: self.track_pairs,
            threads: 1,
        }
    }

    /// A stable, human-readable cache key for the canonical form, e.g.
    /// `l=64..128;p=50;excl=1/2;track=0`.
    pub fn cache_key(&self) -> String {
        let c = self.canonical();
        format!(
            "l={}..{};p={};excl={}/{};track={}",
            c.l_min,
            c.l_max,
            c.p,
            c.policy.num(),
            c.policy.den(),
            c.track_pairs
        )
    }

    /// A 64-bit FNV-1a fingerprint of [`ValmodConfig::cache_key`] — a
    /// compact equality proxy for cache indexing (the full key should still
    /// be stored alongside to rule out collisions).
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        for b in self.cache_key().bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
        h
    }

    /// Validates the series-independent parts of the configuration (range
    /// shape and `p`). Use [`ValmodConfig::validate_for`] when the series
    /// length is known — it additionally rejects ranges the series cannot
    /// accommodate.
    pub fn validate(&self) -> Result<()> {
        if self.l_min == 0 || self.l_min > self.l_max {
            return Err(ValmodError::InvalidParameter(format!(
                "invalid length range [{}, {}]",
                self.l_min, self.l_max
            )));
        }
        if self.p == 0 {
            return Err(ValmodError::InvalidParameter("p must be positive".into()));
        }
        Ok(())
    }

    /// Full validation against a series of `n` points — the single
    /// validation path shared by the driver, the baselines, and the CLI
    /// (see [`crate::validate`]).
    pub fn validate_for(&self, n: usize) -> Result<()> {
        crate::validate::validate_valmod_params(n, self.l_min, self.l_max, self.p)
    }
}

/// How one length of the range was resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LengthMethod {
    /// The anchor length, solved by `ComputeMatrixProfile`.
    FullProfile,
    /// Solved by `ComputeSubMP` using only retained entries.
    SubMp,
    /// `ComputeSubMP` plus its last-chance partial recomputation.
    SubMpRefined,
    /// `ComputeSubMP` failed to certify the motif; the full profile was
    /// recomputed (paper Algorithm 1, line 13).
    Fallback,
}

/// The full per-length artifact of one length in a VALMOD run: the
/// (sub-)matrix profile row minima and nearest-neighbour indices at length
/// `l`, plus the accounting that [`LengthReport`] summarises.
///
/// This is the unit of reuse for variable-length query planning: fragments
/// for a contiguous ascending length range recompose into a [`ValmodOutput`]
/// via [`compose_output`], and a fragment is a pure function of
/// (series, anchor length, `l`, `p`, exclusion policy) — see
/// [`Valmod::run_lengths_on`].
#[derive(Debug, Clone)]
pub struct LengthProfile {
    /// Subsequence length.
    pub l: usize,
    /// Row minima (`⊥` encoded as a non-finite value for rows the lower
    /// bounds could not certify).
    pub mp: Vec<f64>,
    /// Nearest-neighbour index per row (`usize::MAX` when unknown).
    pub ip: Vec<usize>,
    /// How this length was resolved.
    pub method: LengthMethod,
    /// The motif pair of this length (`None` when every pair is excluded).
    pub motif: Option<MotifPair>,
    /// Non-⊥ entries of `mp`.
    pub known_entries: usize,
    /// Rows certified valid by the lower bound.
    pub valid_rows: usize,
    /// Rows left unknown in the first pass.
    pub nonvalid_rows: usize,
    /// Rows recomputed by the last-chance pass.
    pub recomputed_rows: usize,
}

impl LengthProfile {
    /// The summary form kept in [`ValmodOutput::per_length`].
    pub fn report(&self) -> LengthReport {
        LengthReport {
            l: self.l,
            method: self.method,
            motif: self.motif,
            known_entries: self.known_entries,
            valid_rows: self.valid_rows,
            nonvalid_rows: self.nonvalid_rows,
            recomputed_rows: self.recomputed_rows,
        }
    }

    /// An estimate of the heap bytes this fragment holds (for cache
    /// byte-budget accounting).
    pub fn heap_bytes(&self) -> usize {
        self.mp.len() * std::mem::size_of::<f64>() + self.ip.len() * std::mem::size_of::<usize>()
    }
}

/// Per-length instrumentation (drives the paper's Figs. 9 and 14).
#[derive(Debug, Clone)]
pub struct LengthReport {
    /// Subsequence length.
    pub l: usize,
    /// How the motif of this length was obtained.
    pub method: LengthMethod,
    /// The motif pair of this length (`None` when every pair is excluded).
    pub motif: Option<MotifPair>,
    /// Non-⊥ entries of the (sub-)matrix profile (Fig. 14, right).
    pub known_entries: usize,
    /// Rows certified valid by the lower bound.
    pub valid_rows: usize,
    /// Rows left unknown in the first pass.
    pub nonvalid_rows: usize,
    /// Rows recomputed by the last-chance pass.
    pub recomputed_rows: usize,
}

/// Output of a VALMOD run.
#[derive(Debug, Clone)]
pub struct ValmodOutput {
    /// The variable-length matrix profile.
    pub valmp: Valmp,
    /// The motif pair of each length in `[ℓ_min, ℓ_max]`, in order
    /// (Problem 1's answer).
    pub per_length: Vec<LengthReport>,
    /// Top-K pairs with profile snapshots, when tracking was enabled.
    pub best_pairs: Option<BestKPairs>,
}

impl ValmodOutput {
    /// The motif pairs per length (Problem 1), skipping lengths with no
    /// valid pair.
    pub fn motifs_per_length(&self) -> impl Iterator<Item = &MotifPair> + '_ {
        self.per_length.iter().filter_map(|r| r.motif.as_ref())
    }

    /// The overall best motif under the length-normalised ranking.
    pub fn best_motif(&self) -> Option<MotifPair> {
        self.valmp.best_pair()
    }
}

/// The unified entry point for a VALMOD run: a builder over
/// [`ValmodConfig`] plus an optional [`SharedRecorder`] for observability.
///
/// This is the one public way to run the algorithm.
///
/// ```
/// use valmod_core::{Valmod, ValmodOutput};
/// use valmod_data::generators::random_walk;
/// use valmod_data::series::Series;
///
/// let series = Series::new(random_walk(400, 7)).unwrap();
/// let out: ValmodOutput = Valmod::new(16, 32).p(5).threads(2).run(&series).unwrap();
/// assert_eq!(out.per_length.len(), 17);
/// ```
#[derive(Debug, Clone)]
pub struct Valmod {
    config: ValmodConfig,
    recorder: SharedRecorder,
}

impl Valmod {
    /// A run over the inclusive length range `[l_min, l_max]` with the
    /// paper's default knobs (`p = 50`, `ℓ/2` exclusion, one thread, no
    /// pair tracking) and a disabled recorder.
    pub fn new(l_min: usize, l_max: usize) -> Self {
        Valmod::from_config(ValmodConfig::new(l_min, l_max))
    }

    /// Wraps an existing configuration (recorder starts disabled).
    pub fn from_config(config: ValmodConfig) -> Self {
        Valmod { config, recorder: SharedRecorder::noop() }
    }

    /// Sets `p`, the number of lower-bound entries retained per row.
    pub fn p(mut self, p: usize) -> Self {
        self.config.p = p;
        self
    }

    /// Sets the trivial-match exclusion policy.
    pub fn policy(mut self, policy: ExclusionPolicy) -> Self {
        self.config.policy = policy;
        self
    }

    /// Enables top-K pair tracking (needed for motif sets).
    pub fn track_pairs(mut self, k: usize) -> Self {
        self.config.track_pairs = k;
        self
    }

    /// Sets the worker thread count (1 = sequential, 0 = all cores).
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = threads;
        self
    }

    /// Attaches a recorder; every layer of the run (STOMP chunks, sub-MP
    /// advances, lower-bound margins, fallbacks) reports into it. See the
    /// `valmod-obs` crate for the registry and key conventions.
    pub fn recorder(mut self, recorder: SharedRecorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// The effective configuration.
    pub fn config(&self) -> &ValmodConfig {
        &self.config
    }

    /// Runs VALMOD (paper Algorithm 1) on a series.
    pub fn run(&self, series: &Series) -> Result<ValmodOutput> {
        let ps = ProfiledSeries::new(series);
        self.run_on(&ps)
    }

    /// Runs VALMOD on an already-prepared [`ProfiledSeries`].
    pub fn run_on(&self, ps: &ProfiledSeries) -> Result<ValmodOutput> {
        run_valmod(ps, &self.config, &self.recorder)
    }

    /// Computes the per-length [`LengthProfile`] fragments for the
    /// sub-range `[l_lo, l_hi]`, ignoring the builder's own length range
    /// but keeping its `p`, exclusion policy, threads, and recorder.
    ///
    /// The run anchors a fresh full profile at `l_lo` and advances length
    /// by length to `l_hi`, exactly as [`Valmod::run_on`] does for its own
    /// range — so a fragment is a pure function of
    /// (series, `l_lo`, `l`, `p`, policy), independent of `l_hi` and of any
    /// other fragments. This is the resumable entry point the serve-layer
    /// query planner uses: it caches fragments keyed by their anchor and
    /// recomposes overlapping variable-length queries with
    /// [`compose_output`].
    pub fn run_lengths_on(
        &self,
        ps: &ProfiledSeries,
        l_lo: usize,
        l_hi: usize,
    ) -> Result<Vec<LengthProfile>> {
        let mut cfg = self.config.clone();
        cfg.l_min = l_lo;
        cfg.l_max = l_hi;
        cfg.validate_for(ps.len())?;
        let recorder = &self.recorder;
        let _span = valmod_obs::span!(recorder, "core.valmod.segment_us");
        let mut out = Vec::with_capacity(l_hi - l_lo + 1);
        drive_lengths(ps, &cfg, recorder, |lp, _| out.push(lp))?;
        Ok(out)
    }

    /// [`Valmod::run_lengths_on`] that additionally returns the
    /// [`SegmentState`] of the segment — the anchor artifacts that let the
    /// same fragments be *replayed* later ([`SegmentState::replay`]) and
    /// *extended* under appends ([`SegmentState::extend`]) instead of
    /// recomputed. The fragments are bit-identical to
    /// [`Valmod::run_lengths_on`]'s.
    ///
    /// Capture requires the sequential fused kernel (`threads == 1`): the
    /// chunked parallel kernel does not produce the diagonal chains the
    /// tail continues. With any other thread count this falls back to the
    /// plain walk and returns `None` for the state.
    pub fn run_lengths_capturing(
        &self,
        ps: &ProfiledSeries,
        l_lo: usize,
        l_hi: usize,
    ) -> Result<(Vec<LengthProfile>, Option<SegmentState>)> {
        let mut cfg = self.config.clone();
        cfg.l_min = l_lo;
        cfg.l_max = l_hi;
        cfg.validate_for(ps.len())?;
        let recorder = &self.recorder;
        let _span = valmod_obs::span!(recorder, "core.valmod.segment_us");
        let mut out = Vec::with_capacity(l_hi - l_lo + 1);
        if cfg.threads != 1 {
            drive_lengths(ps, &cfg, recorder, |lp, _| out.push(lp))?;
            return Ok((out, None));
        }
        ps.require_pairs(cfg.l_max)?;
        let mut ws = Workspace::new();
        let (state, tail) =
            compute_matrix_profile_capture_with_ws(ps, l_lo, cfg.p, cfg.policy, recorder, &mut ws)?;
        let seg = SegmentState { config: cfg, n: ps.len(), state, tail };
        out.push(anchor_profile(&seg.state, l_lo));
        let mut walk = seg.state.clone();
        advance_walk(ps, &seg.config, recorder, &mut ws, &mut walk, &mut |lp, _| out.push(lp))?;
        Ok((out, Some(seg)))
    }
}

/// The cached artifacts of one anchor segment: the pre-advance anchor
/// profile, its harvested partial profiles, and the diagonal tail
/// ([`TailState`]) of the fused kernel that produced them.
///
/// A `SegmentState` makes a segment *resumable* in two directions:
///
/// * [`SegmentState::replay`] reruns the `ComputeSubMP` length walk from the
///   cached anchor to any `l_hi` the series supports — bit-identical to
///   [`Valmod::run_lengths_on`], minus the `O(n²)` anchor cost.
/// * [`SegmentState::extend`] advances the anchor artifacts over appended
///   samples in `O(k·n)`: the profile grows through the captured tail
///   (bit-identical to a cold anchor, see [`valmod_mp::extend`]), and every
///   new cell is offered to the partial profiles exactly as the cold fused
///   harvest would. New offers can only displace old entries the cold run
///   would also have displaced — the heap keeps the `p` smallest-key entries
///   under a strict total order, independent of offer order — so a
///   subsequent replay equals a cold run over the grown series bit for bit
///   (`valmod-check`'s `extend` oracle holds this under randomized append
///   schedules).
#[derive(Debug, Clone)]
pub struct SegmentState {
    /// The segment's configuration at capture time (`l_min` is the anchor;
    /// `l_max` is advisory — replay chooses its own `l_hi`).
    config: ValmodConfig,
    /// Samples covered so far.
    n: usize,
    /// Pre-advance anchor artifacts (profile + `listDP`).
    state: MpWithProfiles,
    /// The diagonal chain heads the extension continues from.
    tail: TailState,
}

impl SegmentState {
    /// The anchor length the segment's fragments are keyed by.
    #[inline]
    pub fn anchor(&self) -> usize {
        self.config.l_min
    }

    /// Number of samples the state currently covers.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Approximate heap bytes held (for cache byte-budget accounting).
    pub fn heap_bytes(&self) -> usize {
        let profile = self.state.profile.mp.len() * std::mem::size_of::<f64>()
            + self.state.profile.ip.len() * std::mem::size_of::<usize>();
        let partials: usize = self
            .state
            .partials
            .iter()
            .map(|p| {
                std::mem::size_of::<PartialProfile>()
                    + p.capacity() * std::mem::size_of::<DpEntry>()
            })
            .sum();
        profile + partials + self.tail.heap_bytes()
    }

    /// Advances the anchor artifacts over the appended tail of `ps` in
    /// `O(k·n)`. `ps` must be the grown series profiled with the same pinned
    /// offset the segment was captured under; a rejected series leaves the
    /// state untouched.
    pub fn extend(&mut self, ps: &ProfiledSeries, recorder: &SharedRecorder) -> Result<()> {
        let (old_ndp, new_ndp) = self.tail.check_grow(ps)?;
        if old_ndp == new_ndp && ps.len() == self.n {
            return Ok(());
        }
        let _span = valmod_obs::span!(recorder, "core.valmod.extend_us");
        if recorder.enabled() {
            recorder.add("core.valmod.extends", 1);
        }
        let (l, p) = (self.config.l_min, self.config.p);
        let profile = &mut self.state.profile;
        profile.mp.resize(new_ndp, f64::INFINITY);
        profile.ip.resize(new_ndp, usize::MAX);
        let partials = &mut self.state.partials;
        partials.reserve(new_ndp - old_ndp);
        for r in old_ndp..new_ndp {
            partials.push(PartialProfile::new(r, l, ps.std(r, l), p));
        }
        let flats: Vec<bool> =
            (0..new_ndp).map(|i| is_flat(ps.std(i, l), ps.mean_c(i, l))).collect();
        let (mp, ip) = (&mut profile.mp, &mut profile.ip);
        extend_cells(&mut self.tail, ps, |i, j, q, d| {
            lex_update(&mut mp[i], &mut ip[i], d, j);
            lex_update(&mut mp[j], &mut ip[j], d, i);
            if d.is_finite() {
                let key = key_for_pair(d, l, flats[i], flats[j]);
                partials[i].offer(DpEntry { neighbor: j, qt: q, dist: d, lb_key: key });
                partials[j].offer(DpEntry { neighbor: i, qt: q, dist: d, lb_key: key });
            }
        })?;
        self.n = ps.len();
        Ok(())
    }

    /// Replays the segment's length walk from the cached anchor up to
    /// `l_hi` (inclusive), bit-identical to
    /// [`Valmod::run_lengths_on`]`(ps, anchor, l_hi)` over the same series —
    /// including the full-recompute fallback on lengths the lower bounds
    /// cannot certify. `ps` must cover exactly the samples the state does
    /// (extend first after an append).
    pub fn replay(
        &self,
        ps: &ProfiledSeries,
        l_hi: usize,
        recorder: &SharedRecorder,
    ) -> Result<Vec<LengthProfile>> {
        if ps.len() != self.n {
            return Err(ValmodError::InvalidParameter(format!(
                "segment replay: state covers {} samples but the series has {} (extend first)",
                self.n,
                ps.len()
            )));
        }
        let mut cfg = self.config.clone();
        cfg.l_max = l_hi;
        cfg.validate_for(ps.len())?;
        let _span = valmod_obs::span!(recorder, "core.valmod.segment_us");
        let mut out = Vec::with_capacity(l_hi - cfg.l_min + 1);
        out.push(anchor_profile(&self.state, cfg.l_min));
        let mut ws = Workspace::new();
        let mut walk = self.state.clone();
        advance_walk(ps, &cfg, recorder, &mut ws, &mut walk, &mut |lp, _| out.push(lp))?;
        Ok(out)
    }
}

/// Recomposes a [`ValmodOutput`] from per-length fragments covering a
/// contiguous, ascending length range (the first fragment must be the
/// smallest length and hold the full `ndp(ℓ_min)` rows).
///
/// [`Valmp::update`] folds per-slot minima one length at a time, so feeding
/// it the same per-length profiles — whether freshly computed or replayed
/// from a fragment cache — produces a bit-identical VALMP. `best_pairs` is
/// always `None`: top-K pair tracking needs the live partial profiles at
/// offer time and cannot be reconstructed from fragments.
pub fn compose_output<'a, I>(fragments: I) -> Result<ValmodOutput>
where
    I: IntoIterator<Item = &'a LengthProfile>,
{
    let mut iter = fragments.into_iter();
    let first = iter
        .next()
        .ok_or_else(|| ValmodError::InvalidParameter("compose_output: no fragments".into()))?;
    let mut valmp = Valmp::new(first.mp.len());
    let mut per_length = Vec::new();
    for (expected, lp) in (first.l..).zip(std::iter::once(first).chain(iter)) {
        if lp.l != expected {
            return Err(ValmodError::InvalidParameter(format!(
                "compose_output: fragments must be contiguous ascending lengths; expected {expected}, got {}",
                lp.l
            )));
        }
        valmp.update(&lp.mp, &lp.ip, lp.l);
        per_length.push(lp.report());
    }
    Ok(ValmodOutput { valmp, per_length, best_pairs: None })
}

/// The driver loop shared by every public entry point.
fn run_valmod(
    ps: &ProfiledSeries,
    config: &ValmodConfig,
    recorder: &SharedRecorder,
) -> Result<ValmodOutput> {
    config.validate_for(ps.len())?;
    let _span = valmod_obs::span!(recorder, "core.valmod.run_us");
    let ndp_min = ps.num_subsequences(config.l_min);

    let mut valmp = Valmp::new(ndp_min);
    let mut tracker = (config.track_pairs > 0).then(|| BestKPairs::new(config.track_pairs));
    let mut per_length = Vec::with_capacity(config.l_max - config.l_min + 1);

    drive_lengths(ps, config, recorder, |lp, partials| {
        let improved = valmp.update(&lp.mp, &lp.ip, lp.l);
        if let Some(t) = tracker.as_mut() {
            for &i in &improved {
                t.offer(ps, i, lp.ip[i], lp.mp[i], lp.l, partials);
            }
        }
        per_length.push(lp.report());
    })?;

    Ok(ValmodOutput { valmp, per_length, best_pairs: tracker })
}

/// The length walk of Algorithm 1: anchor a full profile at
/// `config.l_min`, then `ComputeSubMP` per subsequent length with the full
/// recomputation fallback. Each resolved length is handed to `visit`
/// together with the partial profiles live at that point (which top-K pair
/// tracking needs). Both [`run_valmod`] and [`Valmod::run_lengths_on`] are
/// thin folds over this walk.
fn drive_lengths(
    ps: &ProfiledSeries,
    config: &ValmodConfig,
    recorder: &SharedRecorder,
    mut visit: impl FnMut(LengthProfile, &[PartialProfile]),
) -> Result<()> {
    ps.require_pairs(config.l_max)?;

    // One workspace for the whole walk: the anchor profile, every fallback
    // recomputation, and every last-chance refinement share its FFT plan
    // cache and scratch buffers, so each transform size is planned once for
    // the entire length range.
    let mut ws = Workspace::new();

    // ℓ_min: full profile + harvest (Algorithm 1, line 5). With one thread
    // the fused diagonal-blocked kernel runs (bitwise-stable baseline);
    // otherwise the chunked kernel computes disjoint row ranges in parallel.
    let mut state = compute_matrix_profile_with_ws(
        ps,
        config.l_min,
        config.p,
        config.policy,
        config.threads,
        recorder,
        &mut ws,
    )?;
    visit(anchor_profile(&state, config.l_min), &state.partials);
    advance_walk(ps, config, recorder, &mut ws, &mut state, &mut visit)
}

/// The anchor's [`LengthProfile`] — emitted identically by the cold walk
/// ([`drive_lengths`]) and by [`SegmentState::replay`], which is what makes
/// replayed fragments bit-identical to freshly computed ones.
fn anchor_profile(state: &MpWithProfiles, l_min: usize) -> LengthProfile {
    LengthProfile {
        l: l_min,
        mp: state.profile.mp.clone(),
        ip: state.profile.ip.clone(),
        method: LengthMethod::FullProfile,
        motif: state.profile.motif_pair().map(|(a, b, d)| MotifPair::new(a, b, l_min, d)),
        known_entries: state.profile.len(),
        valid_rows: state.profile.len(),
        nonvalid_rows: 0,
        recomputed_rows: 0,
    }
}

/// Lengths `ℓ_min+1 ..= ℓ_max` of Algorithm 1 (lines 7–16): `ComputeSubMP`
/// per length with the full-recompute fallback. Shared verbatim by the cold
/// walk and segment replay; `state` holds the live anchor artifacts and is
/// mutated by the advances (and replaced entirely by a fallback).
fn advance_walk(
    ps: &ProfiledSeries,
    config: &ValmodConfig,
    recorder: &SharedRecorder,
    ws: &mut Workspace,
    state: &mut MpWithProfiles,
    visit: &mut impl FnMut(LengthProfile, &[PartialProfile]),
) -> Result<()> {
    let policy = config.policy;
    for l in (config.l_min + 1)..=config.l_max {
        let res = compute_sub_mp_threaded_with_ws(
            ps,
            &mut state.partials,
            l,
            policy,
            config.threads,
            recorder,
            ws,
        );
        let (mp_vals, ip_vals, method, known, valid, nonvalid, recomputed);
        if res.found_motif {
            method = if res.recomputed_rows > 0 {
                LengthMethod::SubMpRefined
            } else {
                LengthMethod::SubMp
            };
            known = res.known_entries();
            valid = res.valid_rows;
            nonvalid = res.nonvalid_rows;
            recomputed = res.recomputed_rows;
            mp_vals = res.sub_mp;
            ip_vals = res.ip;
        } else {
            // Fallback: recompute the full profile and re-harvest. The
            // valid/non-valid split still describes the *first pass* that
            // failed to certify the motif (so the two always sum to the row
            // count); `known` reflects the recomputed, fully-known profile.
            if recorder.enabled() {
                recorder.add("core.lb.fallback", 1);
            }
            *state = compute_matrix_profile_with_ws(
                ps,
                l,
                config.p,
                policy,
                config.threads,
                recorder,
                ws,
            )?;
            method = LengthMethod::Fallback;
            known = state.profile.len();
            valid = res.valid_rows;
            nonvalid = res.nonvalid_rows;
            recomputed = 0;
            mp_vals = state.profile.mp.clone();
            ip_vals = state.profile.ip.clone();
        }
        let motif = best_finite(&mp_vals, &ip_vals).map(|(a, b, d)| MotifPair::new(a, b, l, d));
        visit(
            LengthProfile {
                l,
                mp: mp_vals,
                ip: ip_vals,
                method,
                motif,
                known_entries: known,
                valid_rows: valid,
                nonvalid_rows: nonvalid,
                recomputed_rows: recomputed,
            },
            &state.partials,
        );
    }

    Ok(())
}

fn best_finite(mp: &[f64], ip: &[usize]) -> Option<(usize, usize, f64)> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &d) in mp.iter().enumerate() {
        if d.is_finite() && best.is_none_or(|(_, bd)| d < bd) {
            best = Some((i, d));
        }
    }
    best.map(|(i, d)| (i, ip[i], d))
}

#[cfg(test)]
mod tests {
    use super::*;
    use valmod_data::generators::{plant_motif, random_walk};
    use valmod_mp::stomp::stomp;

    #[test]
    fn motif_per_length_matches_stomp_oracle() {
        let series = Series::new(random_walk(400, 101)).unwrap();
        let out = Valmod::new(16, 32).p(5).run(&series).unwrap();
        let ps = ProfiledSeries::new(&series);
        assert_eq!(out.per_length.len(), 17);
        for report in &out.per_length {
            let oracle = stomp(&ps, report.l, ExclusionPolicy::HALF).unwrap();
            match (report.motif, oracle.motif_pair()) {
                (Some(m), Some((_, _, d))) => {
                    assert!(
                        (m.dist - d).abs() < 1e-6,
                        "l={}: VALMOD {} vs STOMP {}",
                        report.l,
                        m.dist,
                        d
                    );
                }
                (None, None) => {}
                other => panic!("l={}: presence mismatch {:?}", report.l, other.0),
            }
        }
    }

    #[test]
    fn valmp_matches_minimum_over_lengths() {
        let series = Series::new(random_walk(300, 103)).unwrap();
        let out = Valmod::new(16, 24).p(4).run(&series).unwrap();
        let ps = ProfiledSeries::new(&series);
        // Oracle: per-offset minimum of length-normalised distances over all
        // lengths — but only offsets whose rows were *known* can be compared;
        // VALMP is exact on the motif slots by construction. Here we verify
        // against the full per-length STOMP profiles for offsets where
        // VALMOD claims a value no worse than the oracle (VALMP values are
        // achievable distances, hence ≥ the oracle minimum).
        let mut oracle = vec![f64::INFINITY; out.valmp.len()];
        for l in 16..=24 {
            let p = stomp(&ps, l, ExclusionPolicy::HALF).unwrap();
            for (i, &d) in p.mp.iter().enumerate() {
                if d.is_finite() {
                    let nd = valmod_mp::distance::length_normalize(d, l);
                    if nd < oracle[i] {
                        oracle[i] = nd;
                    }
                }
            }
        }
        for (i, (&got, &want)) in out.valmp.norm_distances.iter().zip(&oracle).enumerate() {
            if got.is_finite() {
                assert!(got >= want - 1e-7, "slot {i}: VALMP {got} below oracle {want}");
            }
        }
        // And the global best must match exactly.
        let best = out.best_motif().unwrap();
        let oracle_best = oracle.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!((best.norm_dist() - oracle_best).abs() < 1e-6);
    }

    #[test]
    fn planted_motif_is_found_at_its_length() {
        let (series, planted) = plant_motif(3000, 64, 2, 0.001, 7);
        let series = Series::new(series).unwrap();
        let out = Valmod::new(48, 80).p(8).run(&series).unwrap();
        let best = out.best_motif().unwrap();
        // Shorter lengths in the range may lock onto an interior alignment
        // of the planted pattern, shifting both offsets by the same amount —
        // still the planted motif. Require both members to land inside the
        // planted instances with identical spacing.
        assert!(
            planted.offsets.iter().any(|&o| best.a.abs_diff(o) < 64)
                && planted.offsets.iter().any(|&o| best.b.abs_diff(o) < 64)
                && best.b - best.a == planted.offsets[1] - planted.offsets[0],
            "best motif {:?} should be the planted pair at {:?}",
            (best.a, best.b),
            planted.offsets
        );
    }

    #[test]
    fn pair_tracking_produces_sorted_candidates() {
        let series = Series::new(random_walk(300, 107)).unwrap();
        let out = Valmod::new(16, 24).p(4).track_pairs(5).run(&series).unwrap();
        let best = out.best_pairs.unwrap();
        assert!(!best.is_empty());
        for w in best.pairs().windows(2) {
            assert!(w[0].norm_dist <= w[1].norm_dist);
        }
        // The best tracked pair agrees with the VALMP best motif.
        let vb = out.valmp.best_pair().unwrap();
        assert!((best.pairs()[0].norm_dist - vb.norm_dist()).abs() < 1e-9);
    }

    #[test]
    fn row_accounting_is_consistent_for_every_method() {
        // Regression: the fallback branch used to report
        // `valid_rows = row count` while keeping the failed first pass's
        // `nonvalid_rows`, making the two sum past the number of rows.
        // This construction (random walk + noisy sine tail, small p)
        // deterministically exercises every `LengthMethod` variant.
        let mut values = random_walk(600, 1);
        values.extend_from_slice(&valmod_data::generators::sine_mixture(
            200,
            &[(0.1, 3.0)],
            0.4,
            2,
        ));
        let n = values.len();
        let series = Series::new(values).unwrap();
        let out = Valmod::new(16, 48).p(3).run(&series).unwrap();
        let mut seen_fallback = false;
        for r in &out.per_length {
            let rows = n - r.l + 1;
            assert!(
                r.valid_rows + r.nonvalid_rows <= rows,
                "l={}: {} valid + {} nonvalid > {} rows ({:?})",
                r.l,
                r.valid_rows,
                r.nonvalid_rows,
                rows,
                r.method
            );
            match r.method {
                LengthMethod::FullProfile => {
                    assert_eq!(r.nonvalid_rows, 0, "l={}", r.l);
                    assert_eq!(r.valid_rows, rows, "l={}", r.l);
                }
                // The first pass classifies every row exactly once.
                LengthMethod::SubMp | LengthMethod::SubMpRefined | LengthMethod::Fallback => {
                    assert_eq!(r.valid_rows + r.nonvalid_rows, rows, "l={}", r.l);
                }
            }
            if r.method == LengthMethod::Fallback {
                seen_fallback = true;
                assert_eq!(r.recomputed_rows, 0, "l={}", r.l);
                assert_eq!(r.known_entries, rows, "l={}", r.l);
            }
        }
        assert!(seen_fallback, "construction no longer reaches the fallback branch");
    }

    #[test]
    fn canonicalization_ignores_execution_knobs() {
        let base = ValmodConfig::new(64, 128).with_p(50);
        let threaded = base.clone().with_threads(8);
        let unreduced = base.clone().with_policy(ExclusionPolicy::new(2, 4));
        assert_eq!(base.cache_key(), "l=64..128;p=50;excl=1/2;track=0");
        assert_eq!(base.cache_key(), threaded.cache_key());
        assert_eq!(base.cache_key(), unreduced.cache_key());
        assert_eq!(base.fingerprint(), threaded.fingerprint());
        assert_eq!(base.fingerprint(), unreduced.fingerprint());
        // Result-affecting fields do change the key.
        for other in [
            base.clone().with_p(5),
            base.clone().with_pair_tracking(10),
            base.clone().with_policy(ExclusionPolicy::QUARTER),
            ValmodConfig::new(64, 129).with_p(50),
        ] {
            assert_ne!(base.cache_key(), other.cache_key());
            assert_ne!(base.fingerprint(), other.fingerprint());
        }
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let series = Series::new(random_walk(100, 1)).unwrap();
        assert!(Valmod::new(0, 10).run(&series).is_err());
        assert!(Valmod::new(20, 10).run(&series).is_err());
        assert!(Valmod::new(10, 20).p(0).run(&series).is_err());
        assert!(Valmod::new(10, 200).run(&series).is_err()); // too long
    }

    #[test]
    fn threads_do_not_change_the_output() {
        // Random walk plus a flat stretch: the constant rows exercise the
        // key-0 lower-bound path under chunking.
        let mut values = random_walk(420, 109);
        for v in &mut values[150..210] {
            *v = 2.5;
        }
        let series = Series::new(values).unwrap();
        let base = Valmod::new(16, 40).p(4).run(&series).unwrap();
        for threads in [2usize, 3, 7, 16, 0] {
            let par = Valmod::new(16, 40).p(4).threads(threads).run(&series).unwrap();
            assert_eq!(par.per_length.len(), base.per_length.len());
            for (a, b) in base.per_length.iter().zip(&par.per_length) {
                assert_eq!(a.l, b.l);
                match (a.motif, b.motif) {
                    (Some(x), Some(y)) => assert!(
                        (x.dist - y.dist).abs() < 1e-7,
                        "threads={threads} l={}: {} vs {}",
                        a.l,
                        x.dist,
                        y.dist
                    ),
                    (None, None) => {}
                    other => panic!("threads={threads} l={}: {:?}", a.l, other),
                }
            }
            for (i, (&x, &y)) in
                base.valmp.norm_distances.iter().zip(&par.valmp.norm_distances).enumerate()
            {
                if x.is_finite() || y.is_finite() {
                    assert!((x - y).abs() < 1e-7, "threads={threads} slot {i}: {x} vs {y}");
                }
            }
        }
    }

    #[test]
    fn single_length_range_degenerates_to_stomp() {
        let series = Series::new(random_walk(200, 11)).unwrap();
        let out = Valmod::new(20, 20).run(&series).unwrap();
        assert_eq!(out.per_length.len(), 1);
        assert_eq!(out.per_length[0].method, LengthMethod::FullProfile);
        let ps = ProfiledSeries::new(&series);
        let oracle = stomp(&ps, 20, ExclusionPolicy::HALF).unwrap();
        let (_, _, d) = oracle.motif_pair().unwrap();
        assert!((out.per_length[0].motif.unwrap().dist - d).abs() < 1e-9);
    }

    #[test]
    fn composing_one_segment_is_bit_identical_to_a_full_run() {
        let series = Series::new(random_walk(350, 113)).unwrap();
        let ps = ProfiledSeries::new(&series);
        let runner = Valmod::new(16, 30).p(4);
        let full = runner.run_on(&ps).unwrap();
        let fragments = runner.run_lengths_on(&ps, 16, 30).unwrap();
        assert_eq!(fragments.len(), 15);
        assert_eq!(fragments[0].method, LengthMethod::FullProfile);
        let composed = compose_output(fragments.iter()).unwrap();
        assert_eq!(composed.per_length.len(), full.per_length.len());
        for (a, b) in full.per_length.iter().zip(&composed.per_length) {
            assert_eq!(a.l, b.l);
            assert_eq!(a.method, b.method, "l={}", a.l);
            assert_eq!(a.motif.map(|m| m.dist.to_bits()), b.motif.map(|m| m.dist.to_bits()));
        }
        for (x, y) in full.valmp.norm_distances.iter().zip(&composed.valmp.norm_distances) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        for (x, y) in full.valmp.indices.iter().zip(&composed.valmp.indices) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn run_lengths_on_ignores_the_builders_own_range() {
        // The builder's [l_min, l_max] is irrelevant to the segment entry
        // point; only p / policy / threads carry over.
        let series = Series::new(random_walk(300, 117)).unwrap();
        let ps = ProfiledSeries::new(&series);
        let a = Valmod::new(8, 64).p(4).run_lengths_on(&ps, 20, 24).unwrap();
        let b = Valmod::new(20, 24).p(4).run_lengths_on(&ps, 20, 24).unwrap();
        assert_eq!(a.len(), 5);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.l, y.l);
            assert_eq!(
                x.mp.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                y.mp.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
            assert_eq!(x.ip, y.ip);
        }
    }

    #[test]
    fn segments_are_anchor_pure_functions() {
        // A fragment depends on its anchor and length only, never on how far
        // the segment ran: [20, 24] and [20, 30] agree on lengths 20..=24.
        let series = Series::new(random_walk(280, 119)).unwrap();
        let ps = ProfiledSeries::new(&series);
        let runner = Valmod::new(16, 32).p(4);
        let short = runner.run_lengths_on(&ps, 20, 24).unwrap();
        let long = runner.run_lengths_on(&ps, 20, 30).unwrap();
        for (s, l) in short.iter().zip(&long) {
            assert_eq!(s.l, l.l);
            assert_eq!(
                s.mp.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                l.mp.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
            assert_eq!(s.ip, l.ip);
        }
    }

    #[test]
    fn compose_rejects_gaps_and_emptiness() {
        let series = Series::new(random_walk(200, 123)).unwrap();
        let ps = ProfiledSeries::new(&series);
        let runner = Valmod::new(16, 20).p(4);
        let frags = runner.run_lengths_on(&ps, 16, 20).unwrap();
        assert!(compose_output(std::iter::empty()).is_err());
        let gappy: Vec<&LengthProfile> = vec![&frags[0], &frags[2]];
        assert!(compose_output(gappy).is_err());
    }

    #[test]
    fn recorder_observes_fallbacks_and_row_accounting() {
        use valmod_obs::Registry;
        // Same construction as `row_accounting_is_consistent_for_every_method`:
        // deterministically reaches the fallback branch.
        let mut values = random_walk(600, 1);
        values.extend_from_slice(&valmod_data::generators::sine_mixture(
            200,
            &[(0.1, 3.0)],
            0.4,
            2,
        ));
        let series = Series::new(values).unwrap();
        let registry = Registry::new();
        let out = Valmod::new(16, 48)
            .p(3)
            .recorder(SharedRecorder::from(registry.clone()))
            .run(&series)
            .unwrap();
        let snap = registry.snapshot();
        let fallbacks =
            out.per_length.iter().filter(|r| r.method == LengthMethod::Fallback).count() as u64;
        assert!(fallbacks > 0, "construction no longer reaches the fallback branch");
        assert_eq!(snap.counter("core.lb.fallback"), Some(fallbacks));
        // Every fallback recomputes the full profile, plus the ℓ_min anchor.
        assert_eq!(snap.counter("core.mp.full_profiles"), Some(fallbacks + 1));
        let valid: u64 = out.per_length.iter().skip(1).map(|r| r.valid_rows as u64).sum();
        assert_eq!(snap.counter("core.lb.valid_rows"), Some(valid));
        let refined: u64 = out.per_length.iter().map(|r| r.recomputed_rows as u64).sum();
        assert_eq!(snap.counter("core.lb.refined_rows").unwrap_or(0), refined);
        // The whole run was timed once, every advance step once.
        assert_eq!(snap.histogram("core.valmod.run_us").unwrap().count, 1);
        assert_eq!(snap.histogram("core.submp.advance_us").unwrap().count, 48 - 16);
    }

    fn assert_fragments_bit_identical(a: &[LengthProfile], b: &[LengthProfile], what: &str) {
        assert_eq!(a.len(), b.len(), "{what}: fragment count");
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.l, y.l, "{what}");
            assert_eq!(x.method, y.method, "{what} l={}", x.l);
            assert_eq!(
                x.mp.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                y.mp.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "{what} l={}",
                x.l
            );
            assert_eq!(x.ip, y.ip, "{what} l={}", x.l);
            assert_eq!(
                x.motif.map(|m| (m.a, m.b, m.dist.to_bits())),
                y.motif.map(|m| (m.a, m.b, m.dist.to_bits())),
                "{what} l={}",
                x.l
            );
            assert_eq!(
                (x.known_entries, x.valid_rows, x.nonvalid_rows, x.recomputed_rows),
                (y.known_entries, y.valid_rows, y.nonvalid_rows, y.recomputed_rows),
                "{what} l={}",
                x.l
            );
        }
    }

    /// Fallback-rich construction shared by the replay tests.
    fn fallback_rich_series(n: usize) -> Vec<f64> {
        let mut values = random_walk(n - 200, 1);
        values.extend_from_slice(&valmod_data::generators::sine_mixture(
            200,
            &[(0.1, 3.0)],
            0.4,
            2,
        ));
        values
    }

    #[test]
    fn capturing_matches_run_lengths_and_replays_bit_identically() {
        let values = fallback_rich_series(700);
        let ps = ProfiledSeries::from_values(&values).unwrap();
        let runner = Valmod::new(1, 2).p(3); // own range ignored
        let plain = runner.run_lengths_on(&ps, 16, 44).unwrap();
        let (captured, seg) = runner.run_lengths_capturing(&ps, 16, 44).unwrap();
        assert_fragments_bit_identical(&captured, &plain, "capture pass");
        let seg = seg.expect("threads=1 must capture");
        assert_eq!(seg.anchor(), 16);
        assert_eq!(seg.n(), 700);
        assert!(seg.heap_bytes() > 0);
        // Replay to the same hi, a smaller hi, and a larger hi — all
        // bit-identical to fresh runs (fragments are anchor-pure).
        for hi in [44usize, 20, 16, 52] {
            let replayed = seg.replay(&ps, hi, &SharedRecorder::noop()).unwrap();
            let fresh = runner.run_lengths_on(&ps, 16, hi).unwrap();
            assert_fragments_bit_identical(&replayed, &fresh, &format!("replay hi={hi}"));
        }
    }

    #[test]
    fn multi_threaded_capture_degrades_to_none() {
        let ps = ProfiledSeries::from_values(&random_walk(300, 131)).unwrap();
        let runner = Valmod::new(16, 24).p(4).threads(2);
        let (frags, seg) = runner.run_lengths_capturing(&ps, 16, 24).unwrap();
        assert!(seg.is_none(), "parallel kernel has no replayable tail");
        let fresh = runner.run_lengths_on(&ps, 16, 24).unwrap();
        assert_fragments_bit_identical(&frags, &fresh, "parallel fallback");
    }

    #[test]
    fn extended_segment_replays_bit_identically_to_cold() {
        // The tentpole property: capture on a prefix, append in randomized
        // batches, extend the segment, and every replay must equal a cold
        // same-history run (pinned offset) bit for bit — including lengths
        // resolved through the fallback branch.
        let values = fallback_rich_series(760);
        let schedule = [7usize, 32, 1, 40];
        let base_n = 760 - schedule.iter().sum::<usize>();
        let base = ProfiledSeries::from_values(&values[..base_n]).unwrap();
        let offset = base.offset();
        let runner = Valmod::new(1, 2).p(3);
        let (_, seg) = runner.run_lengths_capturing(&base, 16, 44).unwrap();
        let mut seg = seg.unwrap();
        let recorder = SharedRecorder::noop();
        let mut n = base_n;
        for &k in &schedule {
            n += k;
            let grown = ProfiledSeries::with_offset(&values[..n], offset).unwrap();
            seg.extend(&grown, &recorder).unwrap();
            assert_eq!(seg.n(), n);
            let replayed = seg.replay(&grown, 44, &recorder).unwrap();
            let cold = runner.run_lengths_on(&grown, 16, 44).unwrap();
            assert_fragments_bit_identical(&replayed, &cold, &format!("n={n}"));
        }
        // At least one replayed length must have exercised the fallback for
        // the test to mean anything.
        let replayed = seg
            .replay(&ProfiledSeries::with_offset(&values, offset).unwrap(), 44, &recorder)
            .unwrap();
        assert!(
            replayed.iter().any(|lp| lp.method == LengthMethod::Fallback),
            "construction no longer reaches the fallback branch"
        );
    }

    #[test]
    fn extend_rejects_mismatched_series_and_stays_intact() {
        let values = random_walk(400, 137);
        let base = ProfiledSeries::from_values(&values[..320]).unwrap();
        let runner = Valmod::new(1, 2).p(4);
        let (_, seg) = runner.run_lengths_capturing(&base, 16, 24).unwrap();
        let mut seg = seg.unwrap();
        let recorder = SharedRecorder::noop();
        // Drifted frame (series profiled by its own mean) is refused…
        let drifted = ProfiledSeries::from_values(&values).unwrap();
        assert!(seg.extend(&drifted, &recorder).is_err());
        // …and the state still replays correctly afterwards.
        let replayed = seg.replay(&base, 24, &recorder).unwrap();
        let fresh = runner.run_lengths_on(&base, 16, 24).unwrap();
        assert_fragments_bit_identical(&replayed, &fresh, "post-rejection");
        // Replay on a series the state does not cover is refused.
        let grown = ProfiledSeries::with_offset(&values, base.offset()).unwrap();
        assert!(seg.replay(&grown, 24, &recorder).is_err());
        // Zero-sample extend is a no-op.
        seg.extend(&base, &recorder).unwrap();
        assert_eq!(seg.n(), 320);
    }

    #[test]
    fn recorder_does_not_change_results() {
        use valmod_obs::Registry;
        let series = Series::new(random_walk(300, 127)).unwrap();
        let plain = Valmod::new(16, 28).p(4).run(&series).unwrap();
        let recorded = Valmod::new(16, 28)
            .p(4)
            .recorder(SharedRecorder::from(Registry::new()))
            .run(&series)
            .unwrap();
        for (a, b) in plain.per_length.iter().zip(&recorded.per_length) {
            assert_eq!(a.method, b.method, "l={}", a.l);
            assert_eq!(a.motif.map(|m| m.dist.to_bits()), b.motif.map(|m| m.dist.to_bits()));
        }
        for (x, y) in plain.valmp.norm_distances.iter().zip(&recorded.valmp.norm_distances) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}
