//! VALMP — the *variable-length matrix profile* (paper Algorithm 2).
//!
//! One entry per offset of the shortest length's profile, recording the best
//! (smallest **length-normalised**, §3) nearest-neighbour match seen across
//! every length processed so far, together with the raw distance, the length
//! and the neighbour that achieved it.

use valmod_mp::distance::length_normalize;
use valmod_mp::motif::MotifPair;

/// The variable-length matrix profile.
#[derive(Debug, Clone)]
pub struct Valmp {
    /// Best length-normalised distance per offset (`dist · sqrt(1/ℓ)`).
    pub norm_distances: Vec<f64>,
    /// The raw z-normalised distance of that best match.
    pub distances: Vec<f64>,
    /// The subsequence length of that best match (0 = never updated).
    pub lengths: Vec<usize>,
    /// The neighbour offset of that best match (`usize::MAX` = none).
    pub indices: Vec<usize>,
}

impl Valmp {
    /// Creates an empty VALMP with `ndp` slots (all ⊥).
    pub fn new(ndp: usize) -> Self {
        Valmp {
            norm_distances: vec![f64::INFINITY; ndp],
            distances: vec![f64::INFINITY; ndp],
            lengths: vec![0; ndp],
            indices: vec![usize::MAX; ndp],
        }
    }

    /// Number of slots.
    #[inline]
    pub fn len(&self) -> usize {
        self.norm_distances.len()
    }

    /// Whether the VALMP has no slots.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.norm_distances.is_empty()
    }

    /// Folds a (possibly partial) matrix profile of length `l` into the
    /// VALMP (paper Algorithm 2). `NaN` entries (⊥, unknown) and `+∞`
    /// entries (no valid neighbour) are skipped. Returns the offsets whose
    /// best match improved — the hook the motif-set pair tracker uses
    /// (Algorithm 5).
    ///
    /// Note: the paper's pseudocode (Alg. 2 line 3) literally compares
    /// `VALMP.distances[i] > lNormDist`, mixing raw and normalised units;
    /// the surrounding text makes clear the intent is the length-normalised
    /// comparison, which is what we implement (normalised vs normalised).
    pub fn update(&mut self, mp: &[f64], ip: &[usize], l: usize) -> Vec<usize> {
        let mut improved = Vec::new();
        for (i, (&d, &nn)) in mp.iter().zip(ip).enumerate() {
            if !d.is_finite() {
                continue;
            }
            let norm = length_normalize(d, l);
            if norm < self.norm_distances[i] {
                self.norm_distances[i] = norm;
                self.distances[i] = d;
                self.lengths[i] = l;
                self.indices[i] = nn;
                improved.push(i);
            }
        }
        improved
    }

    /// The single best variable-length motif pair recorded so far.
    pub fn best_pair(&self) -> Option<MotifPair> {
        let mut best: Option<usize> = None;
        for i in 0..self.len() {
            if self.norm_distances[i].is_finite()
                && best.is_none_or(|b| self.norm_distances[i] < self.norm_distances[b])
            {
                best = Some(i);
            }
        }
        best.map(|i| MotifPair::new(i, self.indices[i], self.lengths[i], self.distances[i]))
    }

    /// Iterates over the populated (finite) slots as `(offset, pair)`.
    pub fn iter_pairs(&self) -> impl Iterator<Item = (usize, MotifPair)> + '_ {
        (0..self.len()).filter(|&i| self.norm_distances[i].is_finite()).map(move |i| {
            (i, MotifPair::new(i, self.indices[i], self.lengths[i], self.distances[i]))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_keeps_the_smaller_normalized_distance() {
        let mut v = Valmp::new(3);
        // Length 4: distances [2, 4, 8] → normalised [1, 2, 4].
        let improved = v.update(&[2.0, 4.0, 8.0], &[1, 2, 0], 4);
        assert_eq!(improved, vec![0, 1, 2]);
        // Length 16: distance 4 normalises to 1 — not better than slot 0's 1
        // (strict improvement required) but better than slot 1's 2.
        let improved = v.update(&[4.0, 4.0, 100.0], &[2, 0, 1], 16);
        assert_eq!(improved, vec![1]);
        assert_eq!(v.lengths, vec![4, 16, 4]);
        assert_eq!(v.distances, vec![2.0, 4.0, 8.0]);
    }

    #[test]
    fn update_skips_nan_and_infinite() {
        let mut v = Valmp::new(3);
        let improved = v.update(&[f64::NAN, f64::INFINITY, 1.0], &[9, 9, 0], 4);
        assert_eq!(improved, vec![2]);
        assert_eq!(v.lengths, vec![0, 0, 4]);
    }

    #[test]
    fn best_pair_uses_normalized_ranking() {
        let mut v = Valmp::new(2);
        v.update(&[3.0, f64::INFINITY], &[1, usize::MAX], 9); // norm 1.0
        v.update(&[f64::NAN, 2.0], &[usize::MAX, 0], 16); // norm 0.5
        let best = v.best_pair().unwrap();
        assert_eq!(best.l, 16);
        assert_eq!((best.a, best.b), (0, 1));
        assert_eq!(best.dist, 2.0);
    }

    #[test]
    fn empty_valmp_has_no_best_pair() {
        assert!(Valmp::new(5).best_pair().is_none());
        assert_eq!(Valmp::new(5).iter_pairs().count(), 0);
    }
}
