//! # valmod-core
//!
//! An exact, from-scratch Rust implementation of **VALMOD** (Linardi, Zhu,
//! Palpanas, Keogh — *Matrix Profile X: VALMOD — Scalable Discovery of
//! Variable-Length Motifs in Data Series*, SIGMOD 2018).
//!
//! Given a data series and a length range `[ℓ_min, ℓ_max]`, VALMOD finds the
//! exact motif pair of *every* length in the range — plus the
//! variable-length matrix profile (VALMP), ranked variable-length motifs,
//! top-K motif sets, and variable-length discords — while doing only a small
//! multiple of the work of a single-length search. The enabling idea is the
//! Eq. 2 lower-bounding distance ([`lb`]), whose per-profile rank
//! preservation lets each distance profile be summarised by its `p`
//! smallest-lower-bound entries ([`profile::PartialProfile`]).
//!
//! ## Module map (↔ paper)
//!
//! | Module | Paper |
//! |---|---|
//! | [`lb`] | §4.1, Eq. 2 + TLB (§6.2) |
//! | [`profile`] | `listDP` heaps, `updateDistAndLB` |
//! | [`compute_mp`] | Algorithm 3 (`ComputeMatrixProfile`) |
//! | [`sub_mp`] | Algorithm 4 (`ComputeSubMP`) |
//! | [`valmp`] | Algorithm 2 (`updateVALMP`) |
//! | [`mod@valmod`] | Algorithm 1 (driver) |
//! | [`pairs`] | Algorithm 5 (`updateVALMPForMotifSets`) |
//! | [`motif_sets`] | Algorithm 6 (`computeVarLengthMotifSets`), Def. 2.6 |
//! | [`ranking`] | §3 (length-normalised comparison, Fig. 2) |
//! | [`discords`] | §8 future work: variable-length discords |
//! | [`mod@complete_profiles`] | §8 future work: complete per-length profiles |
//! | [`instrument`] | Figs. 9–11 diagnostics (registry-backed) |
//! | [`validate`] | shared degenerate-config rejection (driver, baselines, CLI) |
//!
//! ## Quick example
//!
//! The [`Valmod`] builder is the single entry point: configure the range
//! and knobs, optionally attach a `valmod-obs` recorder, then run.
//!
//! ```
//! use valmod_core::prelude::*;
//! use valmod_data::generators::plant_motif;
//!
//! // A series with a planted motif of length 64.
//! let (values, planted) = plant_motif(3_000, 64, 2, 0.001, 7);
//! let series = Series::new(values).unwrap();
//!
//! // Search every length in [48, 80].
//! let output = Valmod::new(48, 80).run(&series).unwrap();
//! let best = output.best_motif().unwrap();
//! // The best variable-length motif lands inside the planted instances.
//! assert!(planted.offsets.iter().any(|&o| best.a.abs_diff(o) < 64));
//! assert!(planted.offsets.iter().any(|&o| best.b.abs_diff(o) < 64));
//! ```
//!
//! To observe a run, attach a [`valmod_obs::Registry`]:
//!
//! ```
//! use valmod_core::prelude::*;
//!
//! let series = Series::new(valmod_data::generators::random_walk(400, 7)).unwrap();
//! let registry = Registry::new();
//! let _ = Valmod::new(16, 32)
//!     .p(5)
//!     .recorder(SharedRecorder::from(registry.clone()))
//!     .run(&series)
//!     .unwrap();
//! let snapshot = registry.snapshot();
//! assert!(snapshot.counter("core.lb.valid_rows").unwrap_or(0) > 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod complete_profiles;
pub mod compute_mp;
pub mod discords;
pub mod instrument;
pub mod lb;
pub mod length_hint;
pub mod motif_sets;
pub mod pairs;
pub mod profile;
pub mod ranking;
pub mod sub_mp;
pub mod validate;
pub mod valmod;
pub mod valmp;

pub use complete_profiles::{complete_profiles, CompletionStats};
pub use compute_mp::{
    compute_matrix_profile, compute_matrix_profile_capture_with_ws,
    compute_matrix_profile_capture_ws, compute_matrix_profile_parallel,
    compute_matrix_profile_with, compute_matrix_profile_with_ws, compute_matrix_profile_ws,
    MpWithProfiles,
};
pub use discords::{variable_length_discords, VariableLengthDiscord};
pub use length_hint::{suggest_length_ranges, LengthHint};
pub use motif_sets::{compute_var_length_motif_sets, MotifSet, SetMember, SetStats};
pub use pairs::{BestKPairs, PairCandidate};
pub use ranking::{top_variable_length_motifs, LengthCorrection};
pub use sub_mp::{
    compute_sub_mp, compute_sub_mp_threaded, compute_sub_mp_threaded_with,
    compute_sub_mp_threaded_with_ws, SubMpResult,
};
pub use validate::{validate_length_range, validate_valmod_params};
pub use valmod::{
    compose_output, LengthMethod, LengthProfile, LengthReport, SegmentState, Valmod, ValmodConfig,
    ValmodOutput,
};
pub use valmp::Valmp;

/// One-stop imports for running VALMOD: the [`Valmod`] builder and its
/// configuration/output types, the observability handles it accepts, and
/// the `Series` input type.
pub mod prelude {
    pub use crate::valmod::{
        compose_output, LengthMethod, LengthProfile, LengthReport, Valmod, ValmodConfig,
        ValmodOutput,
    };
    pub use valmod_data::series::Series;
    pub use valmod_obs::{Recorder, Registry, SharedRecorder};
}
