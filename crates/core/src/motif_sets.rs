//! Variable-length motif sets (paper §5, Algorithm 6 and Definition 2.6).
//!
//! Each top-K pair `(a, b)` of length ℓ is expanded to the set of
//! subsequences within radius `r = D · dist(a, b)` of either member. When a
//! member's snapshot threshold `maxLB` exceeds `r`, every subsequence within
//! the radius is provably among the retained entries and no recomputation is
//! needed; otherwise the full distance profile is recomputed in range.
//! Trivial matches are removed and sets are kept pairwise disjoint
//! (Problem 2's constraint).

use std::collections::HashSet;

use valmod_mp::distance_profile::self_distance_profile;
use valmod_mp::exclusion::ExclusionPolicy;
use valmod_mp::ProfiledSeries;

use crate::pairs::{BestKPairs, PairCandidate, PartialSnapshot};

/// One member of a motif set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SetMember {
    /// Subsequence offset.
    pub offset: usize,
    /// Distance to the nearer of the two set centres.
    pub dist: f64,
}

/// A motif set `S_r^ℓ` (Definition 2.6).
#[derive(Debug, Clone)]
pub struct MotifSet {
    /// Subsequence length ℓ.
    pub l: usize,
    /// The founding motif pair (set centres).
    pub pair: (usize, usize),
    /// Distance of the founding pair.
    pub pair_dist: f64,
    /// The radius `r = D · pair_dist` used for expansion.
    pub radius: f64,
    /// Members, including the centres, sorted by distance to a centre.
    pub members: Vec<SetMember>,
}

impl MotifSet {
    /// The set's frequency `|S_r^ℓ|` (Definition 2.6).
    #[inline]
    pub fn frequency(&self) -> usize {
        self.members.len()
    }
}

/// Statistics about how the expansion was served (drives the Fig. 15
/// discussion about partial-profile reuse).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SetStats {
    /// Member lists served entirely from snapshots.
    pub served_from_snapshots: usize,
    /// Member lists that required a full distance-profile recomputation.
    pub recomputed_profiles: usize,
}

/// Expands the top-K pairs into disjoint variable-length motif sets
/// (paper Algorithm 6). `d_factor` is the user's radius factor `D`.
pub fn compute_var_length_motif_sets(
    ps: &ProfiledSeries,
    best: &BestKPairs,
    d_factor: f64,
    policy: ExclusionPolicy,
) -> (Vec<MotifSet>, SetStats) {
    let mut stats = SetStats::default();
    let mut claimed: HashSet<(usize, usize)> = HashSet::new();
    let mut sets = Vec::with_capacity(best.len());
    for pair in best.pairs() {
        let r = pair.dist * d_factor;
        let mut members = Vec::new();
        for snap in [&pair.part_a, &pair.part_b] {
            members.extend(member_candidates(ps, pair, snap, r, policy, &mut stats));
        }
        // The centres belong to the set by definition (distance 0 to
        // themselves).
        members.push(SetMember { offset: pair.a, dist: 0.0 });
        members.push(SetMember { offset: pair.b, dist: 0.0 });

        // Greedy trivial-match removal: best (closest) members claim their
        // exclusion zone first.
        members.sort_by(|x, y| x.dist.total_cmp(&y.dist));
        let radius = policy.radius(pair.l);
        let mut kept: Vec<SetMember> = Vec::new();
        for m in members {
            if claimed.contains(&(m.offset, pair.l)) {
                continue; // already in an earlier motif set (disjointness)
            }
            if kept.iter().any(|k| k.offset.abs_diff(m.offset) < radius) {
                continue; // trivial match of a better member
            }
            kept.push(m);
        }
        for m in &kept {
            claimed.insert((m.offset, pair.l));
        }
        sets.push(MotifSet {
            l: pair.l,
            pair: (pair.a, pair.b),
            pair_dist: pair.dist,
            radius: r,
            members: kept,
        });
    }
    (sets, stats)
}

/// Candidates within radius `r` of one centre: from the snapshot when its
/// `maxLB` certifies completeness, otherwise from a recomputed profile
/// (paper Algorithm 6, lines 6–19).
fn member_candidates(
    ps: &ProfiledSeries,
    pair: &PairCandidate,
    snap: &PartialSnapshot,
    r: f64,
    policy: ExclusionPolicy,
    stats: &mut SetStats,
) -> Vec<SetMember> {
    if snap.max_lb > r {
        // Every subsequence not in the snapshot is at distance ≥ maxLB > r,
        // so the snapshot lists all candidates.
        stats.served_from_snapshots += 1;
        snap.neighbors
            .iter()
            .filter(|&&(_, d)| d < r)
            .map(|&(offset, dist)| SetMember { offset, dist })
            .collect()
    } else {
        stats.recomputed_profiles += 1;
        let dp = self_distance_profile(ps, snap.owner, pair.l, &policy);
        dp.iter()
            .enumerate()
            .filter(|&(_, &d)| d.is_finite() && d < r)
            .map(|(offset, &dist)| SetMember { offset, dist })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::valmod::{Valmod, ValmodConfig};
    use valmod_data::generators::plant_motif;
    use valmod_data::series::Series;

    fn run(seed: u64, d: f64, k: usize) -> (Vec<MotifSet>, SetStats) {
        let (series, _) = plant_motif(3000, 50, 4, 0.05, seed);
        let series = Series::new(series).unwrap();
        let cfg = ValmodConfig::new(45, 55).with_p(8).with_pair_tracking(k);
        let out = Valmod::from_config(cfg).run(&series).unwrap();
        let ps = valmod_mp::ProfiledSeries::new(&series);
        compute_var_length_motif_sets(
            &ps,
            out.best_pairs.as_ref().unwrap(),
            d,
            ExclusionPolicy::HALF,
        )
    }

    #[test]
    fn planted_instances_join_the_top_set() {
        let (sets, _) = run(3, 3.0, 5);
        assert!(!sets.is_empty());
        // Four planted instances ⇒ the top set should have frequency ≥ 3
        // (one may be claimed by a competing set or shifted slightly).
        assert!(sets[0].frequency() >= 3, "top set frequency {}", sets[0].frequency());
    }

    #[test]
    fn members_are_within_radius_and_non_trivial() {
        let (sets, _) = run(5, 4.0, 4);
        for s in &sets {
            let radius = ExclusionPolicy::HALF.radius(s.l);
            for m in &s.members {
                assert!(m.dist < s.radius, "member at {} outside radius", m.offset);
            }
            for (x, a) in s.members.iter().enumerate() {
                for b in &s.members[x + 1..] {
                    assert!(
                        a.offset.abs_diff(b.offset) >= radius,
                        "trivial match {} / {} in set",
                        a.offset,
                        b.offset
                    );
                }
            }
        }
    }

    #[test]
    fn sets_are_pairwise_disjoint() {
        let (sets, _) = run(7, 5.0, 8);
        let mut seen = HashSet::new();
        for s in &sets {
            for m in &s.members {
                assert!(seen.insert((m.offset, s.l)), "subsequence in two sets");
            }
        }
    }

    #[test]
    fn larger_radius_factor_never_shrinks_the_top_set() {
        let (small, _) = run(9, 2.0, 1);
        let (large, _) = run(9, 6.0, 1);
        assert!(large[0].frequency() >= small[0].frequency());
    }

    #[test]
    fn stats_account_for_every_expansion() {
        let (sets, stats) = run(11, 3.0, 6);
        assert_eq!(
            stats.served_from_snapshots + stats.recomputed_profiles,
            2 * sets.len(),
            "each set expands exactly two centres"
        );
    }
}
