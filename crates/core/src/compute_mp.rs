//! `ComputeMatrixProfile` (paper Algorithm 3): STOMP plus lower-bound
//! harvesting.
//!
//! The sequential path fuses the harvest into the diagonal-blocked kernel
//! ([`valmod_mp::diagonal::diagonal_cells`]): every visited cell `(i, j)`
//! folds into both rows' minima *and* both rows' [`PartialProfile`]s
//! (`listDP` in the paper) in one cache-resident pass, reusing a
//! [`Workspace`]'s buffers and FFT plans across calls. Total cost
//! `O(n² log p)`. The heap's strict total order makes the retained set
//! independent of visit order, so the result matches the row-streamed
//! harvest (`harvest_row` over [`valmod_mp::stomp::StompDriver`] rows) —
//! which survives as the per-chunk kernel of the parallel path and as the
//! refinement step of `ComputeSubMP`.

use valmod_data::error::Result;
use valmod_mp::diagonal::{diagonal_cells, lex_update};
use valmod_mp::distance::is_flat;
use valmod_mp::distance_profile::profile_min;
use valmod_mp::exclusion::ExclusionPolicy;
use valmod_mp::matrix_profile::MatrixProfile;
use valmod_mp::parallel::{row_chunks, stomp_rows};
use valmod_mp::workspace::Workspace;
use valmod_mp::ProfiledSeries;
use valmod_obs::{Recorder, SharedRecorder};

use crate::lb::lb_key;
use crate::profile::{DpEntry, PartialProfile};

/// A matrix profile together with the per-row partial distance profiles
/// harvested while computing it.
#[derive(Debug, Clone)]
pub struct MpWithProfiles {
    /// The exact matrix profile at the anchor length.
    pub profile: MatrixProfile,
    /// `listDP`: one partial profile per row, anchored at the same length.
    pub partials: Vec<PartialProfile>,
}

/// Derives the Eq. 2 anchor key for a pair from its already-computed
/// distance: `q = 1 − d²/(2ℓ)`. Pairs involving a flat subsequence fall back
/// to key 0 (LB 0, unconditionally admissible), because the analytic bound's
/// derivation assumes both σ > 0.
#[inline]
pub(crate) fn key_for_pair(dist: f64, l: usize, owner_flat: bool, neighbor_flat: bool) -> f64 {
    if owner_flat || neighbor_flat {
        return 0.0;
    }
    let q = 1.0 - (dist * dist) / (2.0 * l as f64);
    lb_key(q.clamp(-1.0, 1.0), l)
}

/// Harvests the `p` smallest-LB entries of one freshly computed distance
/// profile row into `prof` (which must already be (re-)anchored at `l`).
pub(crate) fn harvest_row(
    ps: &ProfiledSeries,
    prof: &mut PartialProfile,
    dp: &[f64],
    qt: &[f64],
    owner: usize,
    l: usize,
) {
    let owner_flat = is_flat(ps.std(owner, l), ps.mean_c(owner, l));
    for (i, (&dist, &q)) in dp.iter().zip(qt).enumerate() {
        if !dist.is_finite() {
            continue; // exclusion zone
        }
        let neighbor_flat = is_flat(ps.std(i, l), ps.mean_c(i, l));
        let key = key_for_pair(dist, l, owner_flat, neighbor_flat);
        prof.offer(DpEntry { neighbor: i, qt: q, dist, lb_key: key });
    }
}

/// Computes the matrix profile at length `l`, harvesting `p` lower-bound
/// entries per row (paper Algorithm 3). Runs the fused diagonal harvest
/// ([`compute_matrix_profile_ws`]) with a fresh [`Workspace`]; callers
/// computing many profiles should hold a workspace to reuse FFT plans and
/// buffers.
pub fn compute_matrix_profile(
    ps: &ProfiledSeries,
    l: usize,
    p: usize,
    policy: ExclusionPolicy,
) -> Result<MpWithProfiles> {
    let mut ws = Workspace::new();
    compute_matrix_profile_ws(ps, l, p, policy, &mut ws)
}

/// [`compute_matrix_profile`] over a caller-held [`Workspace`]: one blocked
/// diagonal traversal computes the matrix profile *and* harvests both ends
/// of every visited pair — `(i, j)` is touched once and offered to
/// `partials[i]` and `partials[j]` with the same distance, dot product, and
/// Eq. 2 key (the key is symmetric in the pair's flat flags). The retained
/// sets equal the row-streamed harvest's: the heap order is total, so offer
/// order cannot change which entries survive.
pub fn compute_matrix_profile_ws(
    ps: &ProfiledSeries,
    l: usize,
    p: usize,
    policy: ExclusionPolicy,
    ws: &mut Workspace,
) -> Result<MpWithProfiles> {
    let ndp = ps.require_pairs(l)?;
    let mut mp = vec![f64::INFINITY; ndp];
    let mut ip = vec![usize::MAX; ndp];
    let mut partials: Vec<PartialProfile> =
        (0..ndp).map(|j| PartialProfile::new(j, l, ps.std(j, l), p)).collect();
    let flats: Vec<bool> = (0..ndp).map(|i| is_flat(ps.std(i, l), ps.mean_c(i, l))).collect();
    diagonal_cells(ps, l, &policy, ws, |i, j, q, d| {
        lex_update(&mut mp[i], &mut ip[i], d, j);
        lex_update(&mut mp[j], &mut ip[j], d, i);
        if d.is_finite() {
            let key = key_for_pair(d, l, flats[i], flats[j]);
            partials[i].offer(DpEntry { neighbor: j, qt: q, dist: d, lb_key: key });
            partials[j].offer(DpEntry { neighbor: i, qt: q, dist: d, lb_key: key });
        }
    })?;
    Ok(MpWithProfiles {
        profile: MatrixProfile { l, mp, ip, exclusion_radius: policy.radius(l) },
        partials,
    })
}

/// [`compute_matrix_profile_ws`] plus a captured
/// [`TailState`](valmod_mp::extend::TailState): the same fused diagonal
/// harvest, additionally recording the distance matrix's last-column QT
/// values so the whole result — profile *and* partial profiles — can later
/// be extended under appends (`SegmentState` in [`crate::valmod`]) instead
/// of recomputed. Output is bit-identical to [`compute_matrix_profile_ws`];
/// the capture only reads QT values the traversal produces anyway.
pub fn compute_matrix_profile_capture_ws(
    ps: &ProfiledSeries,
    l: usize,
    p: usize,
    policy: ExclusionPolicy,
    ws: &mut Workspace,
) -> Result<(MpWithProfiles, valmod_mp::extend::TailState)> {
    let ndp = ps.require_pairs(l)?;
    let mut mp = vec![f64::INFINITY; ndp];
    let mut ip = vec![usize::MAX; ndp];
    let mut partials: Vec<PartialProfile> =
        (0..ndp).map(|j| PartialProfile::new(j, l, ps.std(j, l), p)).collect();
    let flats: Vec<bool> = (0..ndp).map(|i| is_flat(ps.std(i, l), ps.mean_c(i, l))).collect();
    let tail = valmod_mp::extend::capture_cells(ps, l, policy, ws, |i, j, q, d| {
        lex_update(&mut mp[i], &mut ip[i], d, j);
        lex_update(&mut mp[j], &mut ip[j], d, i);
        if d.is_finite() {
            let key = key_for_pair(d, l, flats[i], flats[j]);
            partials[i].offer(DpEntry { neighbor: j, qt: q, dist: d, lb_key: key });
            partials[j].offer(DpEntry { neighbor: i, qt: q, dist: d, lb_key: key });
        }
    })?;
    Ok((
        MpWithProfiles {
            profile: MatrixProfile { l, mp, ip, exclusion_radius: policy.radius(l) },
            partials,
        },
        tail,
    ))
}

/// Multi-threaded [`compute_matrix_profile`]: rows are split into contiguous
/// chunks, each worker runs the row-range STOMP kernel
/// ([`valmod_mp::parallel::stomp_rows`]) over its chunk and harvests
/// lower-bound entries into that chunk's partial profiles. Chunks own
/// disjoint slices of `mp`/`ip`/`partials`, so the harvest is
/// synchronisation-free. `threads = 0` uses all available cores; `1` runs
/// the same kernel on one chunk.
pub fn compute_matrix_profile_parallel(
    ps: &ProfiledSeries,
    l: usize,
    p: usize,
    policy: ExclusionPolicy,
    threads: usize,
) -> Result<MpWithProfiles> {
    let ndp = ps.require_pairs(l)?;
    let mut mp = vec![f64::INFINITY; ndp];
    let mut ip = vec![usize::MAX; ndp];
    let mut partials: Vec<PartialProfile> =
        (0..ndp).map(|j| PartialProfile::new(j, l, ps.std(j, l), p)).collect();

    std::thread::scope(|scope| {
        let mut mp_rest: &mut [f64] = &mut mp;
        let mut ip_rest: &mut [usize] = &mut ip;
        let mut pr_rest: &mut [PartialProfile] = &mut partials;
        for (chunk_start, len) in row_chunks(ndp, threads) {
            let (mp_chunk, mp_tail) = mp_rest.split_at_mut(len);
            let (ip_chunk, ip_tail) = ip_rest.split_at_mut(len);
            let (pr_chunk, pr_tail) = pr_rest.split_at_mut(len);
            mp_rest = mp_tail;
            ip_rest = ip_tail;
            pr_rest = pr_tail;
            scope.spawn(move || {
                stomp_rows(ps, l, &policy, chunk_start, len, |i, dp, qt| {
                    let k = i - chunk_start;
                    if let Some((arg, d)) = profile_min(dp) {
                        mp_chunk[k] = d;
                        ip_chunk[k] = arg;
                    }
                    harvest_row(ps, &mut pr_chunk[k], dp, qt, i, l);
                });
            });
        }
    });
    Ok(MpWithProfiles {
        profile: MatrixProfile { l, mp, ip, exclusion_radius: policy.radius(l) },
        partials,
    })
}

/// Unified recorded entry point for the harvesting matrix-profile pass:
/// `threads == 1` runs the fused diagonal harvest, anything else the
/// chunked [`compute_matrix_profile_parallel`]. Uses a fresh [`Workspace`];
/// see [`compute_matrix_profile_with_ws`] for plan/buffer reuse.
pub fn compute_matrix_profile_with(
    ps: &ProfiledSeries,
    l: usize,
    p: usize,
    policy: ExclusionPolicy,
    threads: usize,
    recorder: &SharedRecorder,
) -> Result<MpWithProfiles> {
    let mut ws = Workspace::new();
    compute_matrix_profile_with_ws(ps, l, p, policy, threads, recorder, &mut ws)
}

/// [`compute_matrix_profile_with`] over a caller-held [`Workspace`]. With an
/// enabled recorder the pass is timed into `core.mp.full_profile_us` and
/// accounted under `core.mp.full_profiles`, `mp.mass.calls` (one FFT seed
/// per chunk), and `mp.stomp.rows`; the sequential diagonal path also
/// records `mp.diag.blocks`, `mp.workspace.reuses`, and the FFT plan-cache
/// traffic (`fft.plan_cache.hits`/`misses`).
#[allow(clippy::too_many_arguments)] // recorder + workspace ride along with the knobs
pub fn compute_matrix_profile_with_ws(
    ps: &ProfiledSeries,
    l: usize,
    p: usize,
    policy: ExclusionPolicy,
    threads: usize,
    recorder: &SharedRecorder,
    ws: &mut Workspace,
) -> Result<MpWithProfiles> {
    let _span = valmod_obs::span!(recorder, "core.mp.full_profile_us");
    let baseline = PassBaseline::take(ws);
    let out = if threads == 1 {
        compute_matrix_profile_ws(ps, l, p, policy, ws)?
    } else {
        compute_matrix_profile_parallel(ps, l, p, policy, threads)?
    };
    baseline.record(recorder, out.profile.len(), l, policy, threads, ws);
    Ok(out)
}

/// The instrumented capturing entry point (sequential only — the captured
/// tail continues the fused diagonal kernel's exact chains, which the
/// chunked parallel kernel does not produce). Accounting matches
/// [`compute_matrix_profile_with_ws`] at `threads == 1`.
pub fn compute_matrix_profile_capture_with_ws(
    ps: &ProfiledSeries,
    l: usize,
    p: usize,
    policy: ExclusionPolicy,
    recorder: &SharedRecorder,
    ws: &mut Workspace,
) -> Result<(MpWithProfiles, valmod_mp::extend::TailState)> {
    let _span = valmod_obs::span!(recorder, "core.mp.full_profile_us");
    let baseline = PassBaseline::take(ws);
    let (out, tail) = compute_matrix_profile_capture_ws(ps, l, p, policy, ws)?;
    baseline.record(recorder, out.profile.len(), l, policy, 1, ws);
    Ok((out, tail))
}

/// Pre-pass workspace snapshot, turned into the per-pass accounting shared
/// by the plain and capturing entry points.
struct PassBaseline {
    hits0: u64,
    misses0: u64,
    reused: bool,
}

impl PassBaseline {
    fn take(ws: &Workspace) -> Self {
        PassBaseline {
            hits0: ws.plan_cache().hits(),
            misses0: ws.plan_cache().misses(),
            reused: ws.uses() > 0,
        }
    }

    fn record(
        self,
        recorder: &SharedRecorder,
        ndp: usize,
        l: usize,
        policy: ExclusionPolicy,
        threads: usize,
        ws: &Workspace,
    ) {
        if !recorder.enabled() {
            return;
        }
        let chunks = if threads == 1 { 1 } else { row_chunks(ndp, threads).len() };
        recorder.add("core.mp.full_profiles", 1);
        recorder.add("mp.mass.calls", chunks as u64);
        recorder.add("mp.stomp.rows", ndp as u64);
        if threads == 1 {
            recorder.add(
                "mp.diag.blocks",
                valmod_mp::diagonal::block_count(ndp, policy.radius(l), ws.block()),
            );
            if self.reused {
                recorder.add("mp.workspace.reuses", 1);
            }
            recorder.add("fft.plan_cache.hits", ws.plan_cache().hits() - self.hits0);
            recorder.add("fft.plan_cache.misses", ws.plan_cache().misses() - self.misses0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use valmod_data::generators::random_walk;
    use valmod_mp::stomp::stomp;

    #[test]
    fn parallel_harvest_matches_sequential() {
        let ps = ProfiledSeries::from_values(&random_walk(320, 37)).unwrap();
        let (l, p) = (20, 4);
        let seq = compute_matrix_profile(&ps, l, p, ExclusionPolicy::HALF).unwrap();
        for threads in [1usize, 2, 3, 7, 16] {
            let par =
                compute_matrix_profile_parallel(&ps, l, p, ExclusionPolicy::HALF, threads).unwrap();
            assert_eq!(par.profile.len(), seq.profile.len());
            for i in 0..seq.profile.len() {
                assert!(
                    (par.profile.mp[i] - seq.profile.mp[i]).abs() < 1e-7,
                    "threads={threads} row {i}"
                );
            }
            for (ps_seq, ps_par) in seq.partials.iter().zip(&par.partials) {
                assert_eq!(ps_seq.owner, ps_par.owner);
                let mut a: Vec<usize> = ps_seq.entries().iter().map(|e| e.neighbor).collect();
                let mut b: Vec<usize> = ps_par.entries().iter().map(|e| e.neighbor).collect();
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b, "threads={threads} owner {}", ps_seq.owner);
            }
        }
    }

    /// The pre-fusion implementation, kept verbatim as the reference: stream
    /// rows with the [`valmod_mp::stomp::StompDriver`] and harvest each with
    /// [`harvest_row`].
    fn row_streamed_reference(
        ps: &ProfiledSeries,
        l: usize,
        p: usize,
        policy: ExclusionPolicy,
    ) -> MpWithProfiles {
        let mut driver = valmod_mp::stomp::StompDriver::new(ps, l, policy).unwrap();
        let ndp = driver.ndp();
        let mut mp = vec![f64::INFINITY; ndp];
        let mut ip = vec![usize::MAX; ndp];
        let mut partials: Vec<PartialProfile> =
            (0..ndp).map(|j| PartialProfile::new(j, l, ps.std(j, l), p)).collect();
        let mut dp = Vec::with_capacity(ndp);
        while let Some(row) = driver.next_row(&mut dp) {
            if let Some((arg, d)) = profile_min(&dp) {
                mp[row] = d;
                ip[row] = arg;
            }
            harvest_row(ps, &mut partials[row], &dp, driver.qt(), row, l);
        }
        MpWithProfiles {
            profile: MatrixProfile { l, mp, ip, exclusion_radius: policy.radius(l) },
            partials,
        }
    }

    fn assert_harvests_bit_identical(a: &MpWithProfiles, b: &MpWithProfiles, what: &str) {
        assert_eq!(a.profile.len(), b.profile.len(), "{what}: length");
        for i in 0..a.profile.len() {
            assert_eq!(a.profile.mp[i].to_bits(), b.profile.mp[i].to_bits(), "{what}: mp[{i}]");
            assert_eq!(a.profile.ip[i], b.profile.ip[i], "{what}: ip[{i}]");
        }
        for (pa, pb) in a.partials.iter().zip(&b.partials) {
            assert_eq!(pa.owner, pb.owner);
            let norm = |p: &PartialProfile| {
                let mut v: Vec<(usize, u64, u64)> = p
                    .entries()
                    .iter()
                    .map(|e| (e.neighbor, e.dist.to_bits(), e.lb_key.to_bits()))
                    .collect();
                v.sort_unstable();
                v
            };
            assert_eq!(norm(pa), norm(pb), "{what}: partials of owner {}", pa.owner);
        }
    }

    #[test]
    fn fused_diagonal_harvest_matches_row_harvest_bit_for_bit() {
        let ps = ProfiledSeries::from_values(&random_walk(320, 61)).unwrap();
        for (l, p) in [(16usize, 4usize), (24, 1), (50, 8)] {
            let reference = row_streamed_reference(&ps, l, p, ExclusionPolicy::HALF);
            let fused = compute_matrix_profile(&ps, l, p, ExclusionPolicy::HALF).unwrap();
            assert_harvests_bit_identical(&fused, &reference, &format!("l={l} p={p}"));
        }
    }

    #[test]
    fn fused_harvest_handles_tied_distances_from_flat_stretches() {
        // A long constant stretch yields many exactly-equal distances (0 and
        // √ℓ); the total heap order must retain the same set either way.
        let mut series = random_walk(260, 67);
        for v in &mut series[80..140] {
            *v = 1.0;
        }
        let ps = ProfiledSeries::from_values(&series).unwrap();
        let reference = row_streamed_reference(&ps, 16, 3, ExclusionPolicy::HALF);
        let fused = compute_matrix_profile(&ps, 16, 3, ExclusionPolicy::HALF).unwrap();
        assert_harvests_bit_identical(&fused, &reference, "flat stretch");
    }

    #[test]
    fn workspace_reuse_does_not_change_the_harvest() {
        let ps = ProfiledSeries::from_values(&random_walk(300, 71)).unwrap();
        let mut ws = Workspace::new();
        for l in [40usize, 41, 64, 40] {
            let reused =
                compute_matrix_profile_ws(&ps, l, 4, ExclusionPolicy::HALF, &mut ws).unwrap();
            let fresh = compute_matrix_profile(&ps, l, 4, ExclusionPolicy::HALF).unwrap();
            assert_harvests_bit_identical(&reused, &fresh, &format!("l={l}"));
        }
        // Since the direct-seeding rewrite the fused diagonal harvest does no
        // FFT work at all — its seeds must stay prefix-stable under appends.
        assert_eq!(
            ws.plan_cache().hits() + ws.plan_cache().misses(),
            0,
            "diagonal harvest must not touch the FFT plan cache"
        );
    }

    #[test]
    fn capturing_variant_is_bit_identical_and_extension_ready() {
        let series = random_walk(360, 73);
        let base = ProfiledSeries::from_values(&series[..300]).unwrap();
        let mut ws = Workspace::new();
        let (captured, mut tail) =
            compute_matrix_profile_capture_ws(&base, 18, 4, ExclusionPolicy::HALF, &mut ws)
                .unwrap();
        let plain = compute_matrix_profile(&base, 18, 4, ExclusionPolicy::HALF).unwrap();
        assert_harvests_bit_identical(&captured, &plain, "capture");
        // The captured tail really is the extension entry point: growing the
        // series through it reproduces a cold profile bit for bit.
        let grown = ProfiledSeries::with_offset(&series, base.offset()).unwrap();
        let mut profile = captured.profile.clone();
        valmod_mp::extend::extend_profile(&mut profile, &mut tail, &grown).unwrap();
        let cold = stomp(&grown, 18, ExclusionPolicy::HALF).unwrap();
        for i in 0..cold.len() {
            assert_eq!(profile.mp[i].to_bits(), cold.mp[i].to_bits(), "mp[{i}]");
            assert_eq!(profile.ip[i], cold.ip[i], "ip[{i}]");
        }
    }

    #[test]
    fn profile_part_matches_plain_stomp() {
        let ps = ProfiledSeries::from_values(&random_walk(400, 19)).unwrap();
        let with = compute_matrix_profile(&ps, 24, 5, ExclusionPolicy::HALF).unwrap();
        let plain = stomp(&ps, 24, ExclusionPolicy::HALF).unwrap();
        for i in 0..plain.len() {
            assert!((with.profile.mp[i] - plain.mp[i]).abs() < 1e-9, "row {i}");
        }
    }

    #[test]
    fn partials_hold_p_smallest_lb_entries() {
        let ps = ProfiledSeries::from_values(&random_walk(300, 23)).unwrap();
        let p = 4;
        let l = 16;
        let policy = ExclusionPolicy::HALF;
        let with = compute_matrix_profile(&ps, l, p, policy).unwrap();
        // Recompute row 10's keys exhaustively and compare to the heap.
        let row = 10usize;
        let dp = valmod_mp::distance_profile::self_distance_profile(&ps, row, l, &policy);
        let mut keys: Vec<f64> = dp
            .iter()
            .filter(|d| d.is_finite())
            .map(|&d| {
                let q = (1.0 - d * d / (2.0 * l as f64)).clamp(-1.0, 1.0);
                crate::lb::lb_key(q, l)
            })
            .collect();
        keys.sort_by(f64::total_cmp);
        let mut got: Vec<f64> = with.partials[row].entries().iter().map(|e| e.lb_key).collect();
        got.sort_by(f64::total_cmp);
        assert_eq!(got.len(), p);
        for (a, b) in got.iter().zip(&keys[..p]) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn partial_entries_store_true_distances_and_dot_products() {
        let ps = ProfiledSeries::from_values(&random_walk(250, 29)).unwrap();
        let l = 20;
        let with = compute_matrix_profile(&ps, l, 6, ExclusionPolicy::HALF).unwrap();
        let t = ps.centered();
        for prof in with.partials.iter().step_by(31) {
            let j = prof.owner;
            for e in prof.entries() {
                let i = e.neighbor;
                let qt: f64 = t[j..j + l].iter().zip(&t[i..i + l]).map(|(a, b)| a * b).sum();
                assert!((e.qt - qt).abs() < 1e-6, "qt mismatch for ({j},{i})");
                let d = valmod_mp::distance::zdist_naive(&t[j..j + l], &t[i..i + l]);
                assert!((e.dist - d).abs() < 1e-6, "dist mismatch for ({j},{i})");
            }
        }
    }

    #[test]
    fn flat_owner_rows_get_zero_keys() {
        // A series with a long constant stretch: rows inside it are flat.
        let mut series = random_walk(200, 3);
        for v in &mut series[50..90] {
            *v = 1.0;
        }
        let ps = ProfiledSeries::from_values(&series).unwrap();
        let with = compute_matrix_profile(&ps, 16, 3, ExclusionPolicy::HALF).unwrap();
        // Row 60 (fully inside the flat stretch) should have key-0 entries.
        for e in with.partials[60].entries() {
            assert_eq!(e.lb_key, 0.0);
        }
    }
}
