//! The single validation path for degenerate configurations.
//!
//! Every public range-based entry point — the VALMOD driver, the baseline
//! comparators (STOMP-per-length, brute force, MOEN, QuickMotif), and the
//! CLI — funnels its parameters through [`validate_length_range`], so a
//! zero-length series, an inverted range, or a range longer than the series
//! yields one consistent [`ValmodError`] instead of per-call-site panics or
//! silently empty results.

use valmod_data::error::{Result, ValmodError};

/// Validates a subsequence-length range against a series of `n` points.
///
/// Rejects, in order:
/// * `n == 0` — a zero-length series ([`ValmodError::TooShort`]);
/// * `l_min == 0` or `l_min > l_max` — a degenerate range
///   ([`ValmodError::InvalidParameter`]);
/// * fewer than two subsequences at `l_max` (`l_max > n − 1`) — no pair
///   exists to compare ([`ValmodError::TooShort`]).
pub fn validate_length_range(n: usize, l_min: usize, l_max: usize) -> Result<()> {
    if n == 0 {
        return Err(ValmodError::TooShort { len: 0, required: l_max.max(1) + 1 });
    }
    if l_min == 0 || l_min > l_max {
        return Err(ValmodError::InvalidParameter(format!(
            "invalid length range [{l_min}, {l_max}]"
        )));
    }
    if l_max + 1 > n {
        return Err(ValmodError::TooShort { len: n, required: l_max + 1 });
    }
    Ok(())
}

/// [`validate_length_range`] plus the VALMOD-specific knob `p` (retained
/// lower-bound entries per profile), which must be positive.
pub fn validate_valmod_params(n: usize, l_min: usize, l_max: usize, p: usize) -> Result<()> {
    validate_length_range(n, l_min, l_max)?;
    if p == 0 {
        return Err(ValmodError::InvalidParameter("p must be positive".into()));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_viable_configurations() {
        assert!(validate_length_range(100, 4, 16).is_ok());
        assert!(validate_length_range(100, 99, 99).is_ok());
        assert!(validate_valmod_params(30, 4, 5, 1).is_ok());
    }

    #[test]
    fn rejects_zero_length_series() {
        assert!(matches!(
            validate_length_range(0, 4, 16),
            Err(ValmodError::TooShort { len: 0, .. })
        ));
    }

    #[test]
    fn rejects_degenerate_ranges() {
        assert!(matches!(validate_length_range(100, 0, 16), Err(ValmodError::InvalidParameter(_))));
        assert!(matches!(
            validate_length_range(100, 20, 10),
            Err(ValmodError::InvalidParameter(_))
        ));
    }

    #[test]
    fn rejects_range_longer_than_series() {
        assert!(matches!(
            validate_length_range(50, 10, 60),
            Err(ValmodError::TooShort { len: 50, required: 61 })
        ));
        // l_max == n leaves a single subsequence: no pair to compare.
        assert!(validate_length_range(50, 10, 50).is_err());
    }

    #[test]
    fn rejects_zero_p() {
        assert!(matches!(
            validate_valmod_params(100, 4, 16, 0),
            Err(ValmodError::InvalidParameter(_))
        ));
    }
}
