//! Variable-length discords — the paper's §8 extension, realised on top of
//! VALMP.
//!
//! A fixed-length discord is the subsequence with the *largest*
//! nearest-neighbour distance. With VALMP we can rank anomalies across a
//! length range: an offset's variable-length discord score is the largest
//! length-normalised NN distance it attains at its best-matching length —
//! i.e. offsets whose *best possible* match across all lengths is still far
//! are anomalous at every scale.

use valmod_mp::exclusion::ExclusionPolicy;

use crate::valmp::Valmp;

/// A variable-length discord.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariableLengthDiscord {
    /// Offset of the anomalous subsequence.
    pub offset: usize,
    /// The length at which its best match was found.
    pub l: usize,
    /// Its nearest neighbour at that length.
    pub nn: usize,
    /// The length-normalised NN distance (large ⇒ anomalous at all scales).
    pub score: f64,
}

/// Extracts the top-`k` variable-length discords from a VALMP, suppressing
/// the exclusion zone (at each hit's own length) around reported offsets.
pub fn variable_length_discords(
    valmp: &Valmp,
    k: usize,
    policy: ExclusionPolicy,
) -> Vec<VariableLengthDiscord> {
    let mut slots: Vec<usize> =
        (0..valmp.len()).filter(|&i| valmp.norm_distances[i].is_finite()).collect();
    // Descending by normalised NN distance.
    slots.sort_by(|&x, &y| valmp.norm_distances[y].total_cmp(&valmp.norm_distances[x]));
    let mut out: Vec<VariableLengthDiscord> = Vec::new();
    for &i in &slots {
        if out.len() >= k {
            break;
        }
        let l = valmp.lengths[i];
        let radius = policy.radius(l);
        if out.iter().any(|d| d.offset.abs_diff(i) < radius.max(policy.radius(d.l))) {
            continue;
        }
        out.push(VariableLengthDiscord {
            offset: i,
            l,
            nn: valmp.indices[i],
            score: valmp.norm_distances[i],
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::valmod::{Valmod, ValmodConfig};
    use valmod_data::generators::sine_mixture;
    use valmod_data::series::Series;

    #[test]
    fn corrupted_region_is_the_top_variable_length_discord() {
        let mut values = sine_mixture(2000, &[(0.02, 1.0)], 0.01, 3);
        for (k, v) in values[1200..1260].iter_mut().enumerate() {
            *v += ((k * 7 % 11) as f64 - 5.0) * 0.7;
        }
        let series = Series::new(values).unwrap();
        let out = Valmod::from_config(ValmodConfig::new(40, 56).with_p(5)).run(&series).unwrap();
        let discords = variable_length_discords(&out.valmp, 1, ExclusionPolicy::HALF);
        assert_eq!(discords.len(), 1);
        let d = discords[0];
        assert!(
            (1150..=1260).contains(&d.offset),
            "variable-length discord at {} should hit the corrupted region",
            d.offset
        );
        assert!(d.l >= 40 && d.l <= 56);
    }

    #[test]
    fn discords_are_ranked_and_non_overlapping() {
        let values = sine_mixture(1500, &[(0.03, 1.0)], 0.1, 9);
        let series = Series::new(values).unwrap();
        let out = Valmod::from_config(ValmodConfig::new(30, 40).with_p(5)).run(&series).unwrap();
        let discords = variable_length_discords(&out.valmp, 4, ExclusionPolicy::HALF);
        for w in discords.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
        for (x, a) in discords.iter().enumerate() {
            for b in &discords[x + 1..] {
                assert!(a.offset.abs_diff(b.offset) >= ExclusionPolicy::HALF.radius(a.l.min(b.l)));
            }
        }
    }
}
