//! Property-based tests for the VALMOD core crate.

use proptest::prelude::*;
use valmod_core::compute_mp::compute_matrix_profile;
use valmod_core::lb::{lb_base, lb_scale, tightness};
use valmod_core::sub_mp::compute_sub_mp;
use valmod_data::generators::{random_walk, sine_mixture};
use valmod_mp::stomp::stomp;
use valmod_mp::{ExclusionPolicy, ProfiledSeries};

fn make_series(kind: u8, n: usize, seed: u64) -> Vec<f64> {
    match kind % 2 {
        0 => random_walk(n, seed),
        _ => sine_mixture(n, &[(0.025, 1.0), (0.09, 0.3)], 0.15, seed),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `ComputeSubMP`'s *known* entries are exactly the per-row minima of
    /// the true matrix profile, for arbitrary data, p, and step counts.
    #[test]
    fn sub_mp_known_entries_are_exact(kind in 0u8..2, seed in 0u64..400,
                                      p in 1usize..8, steps in 1usize..6) {
        let series = make_series(kind, 220, seed);
        let ps = ProfiledSeries::from_values(&series).unwrap();
        let policy = ExclusionPolicy::HALF;
        let l0 = 16usize;
        let mut state = compute_matrix_profile(&ps, l0, p, policy).unwrap();
        for l in (l0 + 1)..=(l0 + steps) {
            let res = compute_sub_mp(&ps, &mut state.partials, l, policy);
            let oracle = stomp(&ps, l, policy).unwrap();
            for (j, &d) in res.sub_mp.iter().enumerate() {
                if d.is_nan() {
                    continue;
                }
                if d.is_infinite() || oracle.mp[j].is_infinite() {
                    prop_assert_eq!(d.is_infinite(), oracle.mp[j].is_infinite());
                } else {
                    prop_assert!((d - oracle.mp[j]).abs() < 1e-6,
                        "l={} row {}: {} vs {}", l, j, d, oracle.mp[j]);
                }
            }
            if res.found_motif {
                let got = res.min_entry().map(|(_, d)| d);
                let want = oracle.motif_pair().map(|(_, _, d)| d);
                match (got, want) {
                    (Some(g), Some(w)) => prop_assert!((g - w).abs() < 1e-6),
                    (None, None) => {}
                    other => prop_assert!(false, "motif presence mismatch: {:?}", other),
                }
            }
            if !res.found_motif {
                state = compute_matrix_profile(&ps, l, p, policy).unwrap();
            }
        }
    }

    /// The harvested entries of every partial profile carry true distances
    /// and admissible bounds (LB ≤ dist at the anchor).
    #[test]
    fn harvested_bounds_are_admissible_at_anchor(kind in 0u8..2, seed in 0u64..400) {
        let series = make_series(kind, 150, seed);
        let ps = ProfiledSeries::from_values(&series).unwrap();
        let l = 16usize;
        let state = compute_matrix_profile(&ps, l, 4, ExclusionPolicy::HALF).unwrap();
        for prof in &state.partials {
            let sigma = ps.std(prof.owner, l);
            for e in prof.entries() {
                let lb = lb_scale(e.lb_base(), prof.anchor_sigma, sigma);
                prop_assert!(lb <= e.dist + 1e-7,
                    "owner {} neighbour {}: LB {} > dist {}", prof.owner, e.neighbor, lb, e.dist);
                prop_assert!(tightness(lb, e.dist) <= 1.0 + 1e-12);
            }
        }
    }

    /// lb_base is monotone non-increasing in q on [0, 1] and constant on
    /// [-1, 0] — the structure the heap ordering relies on.
    #[test]
    fn lb_base_monotonicity(q1 in -1.0f64..1.0, q2 in -1.0f64..1.0, l in 2usize..512) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(lb_base(lo, l) >= lb_base(hi, l) - 1e-12,
            "lb_base must not increase with correlation");
    }
}
