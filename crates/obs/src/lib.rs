//! Observability substrate for the VALMOD workspace.
//!
//! The paper's evaluation treats internal counters — lower-bound margins
//! (Fig. 9), tightness of the lower bound (Fig. 10), distance
//! distributions (Fig. 11) — as first-class outputs, and a production
//! motif service needs the same visibility for "why was this query
//! slow". This crate provides the shared measurement layer used by every
//! other crate in the workspace:
//!
//! * [`Recorder`] — the trait instrumented code talks to. Three verbs:
//!   [`Recorder::add`] (monotonic counter), [`Recorder::set`] (gauge),
//!   [`Recorder::observe`] (histogram sample). The default
//!   implementation, [`NoopRecorder`], answers `enabled() == false` so
//!   hot paths can skip even the `Instant::now()` call.
//! * [`Registry`] — a sharded, atomic, lock-cheap live implementation.
//!   Hot loops pre-bind typed handles ([`Counter`], [`Gauge`],
//!   [`Histogram`]) once and then touch only atomics.
//! * [`SpanTimer`] / [`span!`] — RAII wall-clock guards that record
//!   elapsed microseconds into a histogram key on drop.
//! * [`Snapshot`] — a point-in-time copy of a registry with text and
//!   JSON renderings plus bucket-based quantile helpers.
//!
//! # Metric key convention
//!
//! Keys are dot-separated, lowercase, and rooted at the crate that owns
//! the measurement: `mp.diag.blocks`, `mp.workspace.reuses`,
//! `fft.plan_cache.hits`, `core.lb.fallback`, `serve.queue.wait_us`.
//! Duration histograms end in `_us` and are
//! recorded in microseconds. The hierarchy is encoded in the key itself;
//! exporters sort lexicographically so related metrics group together.
//!
//! # Example
//!
//! ```
//! use valmod_obs::{Recorder, Registry, SharedRecorder};
//!
//! let registry = Registry::new();
//! let rec = SharedRecorder::from(registry.clone());
//! {
//!     let _span = valmod_obs::span!(&rec, "demo.work_us");
//!     rec.add("demo.items", 3);
//! }
//! let snap = registry.snapshot();
//! assert_eq!(snap.counter("demo.items"), Some(3));
//! assert_eq!(snap.histogram("demo.work_us").unwrap().count, 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod histogram;
pub mod recorder;
pub mod registry;
pub mod snapshot;
pub mod span;

pub use histogram::{buckets, Histogram, HistogramTimer};
pub use recorder::{NoopRecorder, Recorder, SharedRecorder};
pub use registry::{Counter, Gauge, Registry};
pub use snapshot::{HistogramSnapshot, MetricSnapshot, Snapshot};
pub use span::SpanTimer;

/// Start a [`SpanTimer`] recording elapsed microseconds under `key`.
///
/// Expands to `SpanTimer::start($recorder, $key)`; bind the result to a
/// named guard (`let _span = span!(...)`) so it lives until scope exit.
/// When the recorder is disabled the guard never reads the clock.
#[macro_export]
macro_rules! span {
    ($recorder:expr, $key:expr) => {
        $crate::SpanTimer::start($recorder, $key)
    };
}
