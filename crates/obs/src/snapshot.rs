//! Point-in-time copies of a [`Registry`](crate::Registry) with text and
//! JSON renderings and bucket-based statistics helpers.

use std::fmt::Write as _;

/// One metric's state at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricSnapshot {
    /// Monotonic counter value.
    Counter(u64),
    /// Last gauge value.
    Gauge(f64),
    /// Full histogram state.
    Histogram(HistogramSnapshot),
}

/// Frozen histogram state: bounds, per-bucket counts (the trailing slot
/// is the overflow bucket), totals, and the NaN rejection count.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Upper bounds, strictly increasing; the overflow bucket is implicit.
    pub bounds: Vec<f64>,
    /// `bounds.len() + 1` counts; the last is the overflow bucket.
    pub counts: Vec<u64>,
    /// Total accepted samples.
    pub count: u64,
    /// Sum of finite samples.
    pub sum: f64,
    /// Samples rejected as NaN.
    pub rejected: u64,
}

impl HistogramSnapshot {
    /// Mean of finite samples (NaN when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum / self.count as f64
        }
    }

    /// Upper bound of the bucket containing the `q`-quantile
    /// (`0 <= q <= 1`); `+inf` when it falls in the overflow bucket,
    /// NaN when the histogram is empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 || !(0.0..=1.0).contains(&q) {
            return f64::NAN;
        }
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (i, &n) in self.counts.iter().enumerate() {
            cumulative += n;
            if cumulative >= target {
                return self.bounds.get(i).copied().unwrap_or(f64::INFINITY);
            }
        }
        f64::INFINITY
    }

    /// Fraction of samples in buckets whose entire range lies above
    /// `threshold` — i.e. whose lower edge is `>= threshold`. Exact when
    /// `threshold` is one of the bounds; 0 when the histogram is empty.
    pub fn fraction_above(&self, threshold: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let mut above = 0u64;
        for (i, &n) in self.counts.iter().enumerate() {
            // Bucket i covers (bounds[i-1], bounds[i]]; bucket 0 is open
            // below, the overflow bucket is open above.
            let lower = if i == 0 { f64::NEG_INFINITY } else { self.bounds[i - 1] };
            if lower >= threshold {
                above += n;
            }
        }
        above as f64 / self.count as f64
    }

    /// Per-bucket fractions of the total (all zeros when empty).
    pub fn frequencies(&self) -> Vec<f64> {
        if self.count == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts.iter().map(|&n| n as f64 / self.count as f64).collect()
    }
}

/// Key-sorted copy of every metric in a registry.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    pub(crate) entries: Vec<(String, MetricSnapshot)>,
}

impl Snapshot {
    /// All metrics, sorted by key.
    pub fn entries(&self) -> &[(String, MetricSnapshot)] {
        &self.entries
    }

    /// Number of metrics.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the snapshot holds no metrics.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Look up one metric by key.
    pub fn get(&self, key: &str) -> Option<&MetricSnapshot> {
        self.entries.binary_search_by(|(k, _)| k.as_str().cmp(key)).ok().map(|i| &self.entries[i].1)
    }

    /// Counter value for `key`, if it is a counter.
    pub fn counter(&self, key: &str) -> Option<u64> {
        match self.get(key) {
            Some(MetricSnapshot::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// Gauge value for `key`, if it is a gauge.
    pub fn gauge(&self, key: &str) -> Option<f64> {
        match self.get(key) {
            Some(MetricSnapshot::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// Histogram state for `key`, if it is a histogram.
    pub fn histogram(&self, key: &str) -> Option<&HistogramSnapshot> {
        match self.get(key) {
            Some(MetricSnapshot::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Render as aligned human-readable text, one metric per line.
    pub fn to_text(&self) -> String {
        let width = self.entries.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
        let mut out = String::new();
        for (key, metric) in &self.entries {
            match metric {
                MetricSnapshot::Counter(v) => {
                    let _ = writeln!(out, "{key:width$}  counter    {v}");
                }
                MetricSnapshot::Gauge(v) => {
                    let _ = writeln!(out, "{key:width$}  gauge      {v}");
                }
                MetricSnapshot::Histogram(h) => {
                    let _ = write!(
                        out,
                        "{key:width$}  histogram  count={} mean={:.3} p50<={} p99<={}",
                        h.count,
                        h.mean(),
                        fmt_bound(h.quantile(0.5)),
                        fmt_bound(h.quantile(0.99)),
                    );
                    if h.rejected > 0 {
                        let _ = write!(out, " rejected={}", h.rejected);
                    }
                    out.push('\n');
                }
            }
        }
        out
    }

    /// Render as a JSON object keyed by metric name. Non-finite bucket
    /// bounds are encoded as strings (`"inf"`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (key, metric)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:", json_string(key));
            match metric {
                MetricSnapshot::Counter(v) => {
                    let _ = write!(out, "{{\"type\":\"counter\",\"value\":{v}}}");
                }
                MetricSnapshot::Gauge(v) => {
                    let _ = write!(out, "{{\"type\":\"gauge\",\"value\":{}}}", json_number(*v));
                }
                MetricSnapshot::Histogram(h) => {
                    let _ = write!(
                        out,
                        "{{\"type\":\"histogram\",\"count\":{},\"sum\":{},\"rejected\":{},\"buckets\":[",
                        h.count,
                        json_number(h.sum),
                        h.rejected
                    );
                    for (j, &n) in h.counts.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        let le = h.bounds.get(j).copied().unwrap_or(f64::INFINITY);
                        let _ = write!(out, "{{\"le\":{},\"n\":{}}}", json_number(le), n);
                    }
                    out.push_str("]}");
                }
            }
        }
        out.push('}');
        out
    }
}

fn fmt_bound(bound: f64) -> String {
    if bound.is_finite() {
        format!("{bound}")
    } else if bound > 0.0 {
        "inf".to_string()
    } else {
        "nan".to_string()
    }
}

fn json_number(value: f64) -> String {
    if value.is_finite() {
        format!("{value}")
    } else if value.is_nan() {
        "\"nan\"".to_string()
    } else if value > 0.0 {
        "\"inf\"".to_string()
    } else {
        "\"-inf\"".to_string()
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use crate::histogram::buckets;
    use crate::Registry;

    fn sample_registry() -> Registry {
        let reg = Registry::new();
        reg.counter("core.lb.fallback").add(3);
        reg.gauge("serve.cache.bytes").set(512.0);
        let h = reg.histogram_with("serve.queue.wait_us", &buckets::exponential(1.0, 2.0, 8));
        for v in [1.0, 3.0, 3.0, 200.0, 5000.0] {
            h.record(v);
        }
        reg
    }

    #[test]
    fn quantiles_report_bucket_upper_bounds() {
        let snap = sample_registry().snapshot();
        let h = snap.histogram("serve.queue.wait_us").unwrap();
        assert_eq!(h.quantile(0.0), 1.0, "q=0 clamps to the first occupied bucket");
        assert_eq!(h.quantile(0.5), 4.0, "3rd of 5 samples sits in the (2,4] bucket");
        assert_eq!(h.quantile(1.0), f64::INFINITY, "5000 overflows an 8-bucket 2^k layout");
        assert!(h.quantile(1.5).is_nan());
    }

    #[test]
    fn fraction_above_is_exact_on_bucket_edges() {
        let reg = Registry::new();
        let h = reg.histogram_with("m", &buckets::linear(-1.0, 0.5, 5)); // -1,-0.5,0,0.5,1
        for v in [-0.75, -0.1, 0.25, 0.6, 2.0] {
            h.record(v);
        }
        let snap = reg.snapshot();
        let hs = snap.histogram("m").unwrap();
        assert!((hs.fraction_above(0.0) - 0.6).abs() < 1e-12);
        assert_eq!(hs.fraction_above(f64::NEG_INFINITY), 1.0);
    }

    #[test]
    fn text_render_is_aligned_and_complete() {
        let text = sample_registry().snapshot().to_text();
        assert!(text.contains("core.lb.fallback"));
        assert!(text.contains("counter    3"));
        assert!(text.contains("gauge      512"));
        assert!(text.contains("count=5"));
        assert_eq!(text.lines().count(), 3);
    }

    #[test]
    fn json_render_is_parseable_shape() {
        let json = sample_registry().snapshot().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"core.lb.fallback\":{\"type\":\"counter\",\"value\":3}"));
        assert!(json.contains("\"type\":\"histogram\""));
        assert!(json.contains("\"le\":\"inf\""), "overflow bucket encodes inf as a string");
        assert!(!json.contains("inf,"), "bare inf would be invalid JSON");
    }

    #[test]
    fn empty_snapshot_renders_empty() {
        let snap = Registry::new().snapshot();
        assert!(snap.is_empty());
        assert_eq!(snap.len(), 0);
        assert_eq!(snap.to_text(), "");
        assert_eq!(snap.to_json(), "{}");
    }

    #[test]
    fn lookup_helpers_filter_by_kind() {
        let snap = sample_registry().snapshot();
        assert_eq!(snap.counter("core.lb.fallback"), Some(3));
        assert_eq!(snap.counter("serve.cache.bytes"), None);
        assert_eq!(snap.gauge("serve.cache.bytes"), Some(512.0));
        assert!(snap.histogram("core.lb.fallback").is_none());
        assert!(snap.get("missing").is_none());
    }
}
