//! The live metric store: a sharded map from key to atomic cell.
//!
//! Lookups take a sharded read lock once to bind a handle; after that
//! every update is a relaxed atomic op. Hot loops should bind handles
//! ([`Registry::counter`] / [`Registry::histogram`]) outside the loop;
//! cold paths can go through the [`Recorder`] impl, which performs one
//! map lookup per call.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use crate::histogram::{buckets, Histogram};
use crate::recorder::{Recorder, SharedRecorder};
use crate::snapshot::{MetricSnapshot, Snapshot};

const SHARDS: usize = 8;

#[derive(Clone)]
enum Metric {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<Histogram>),
}

/// Sharded, cheaply cloneable metric registry. All clones share state.
///
/// A key's kind (counter / gauge / histogram) is fixed by its first
/// registration; a later access under a different kind returns a
/// detached cell that is not exported, rather than panicking in an
/// instrumented hot path.
#[derive(Clone)]
pub struct Registry {
    shards: Arc<[RwLock<HashMap<String, Metric>>; SHARDS]>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry { shards: Arc::new(std::array::from_fn(|_| RwLock::new(HashMap::new()))) }
    }

    fn shard(&self, key: &str) -> &RwLock<HashMap<String, Metric>> {
        // FNV-1a over the key bytes; shard count is a power of two.
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in key.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        &self.shards[(hash as usize) % SHARDS]
    }

    fn get_or_insert(&self, key: &str, make: impl FnOnce() -> Metric) -> Metric {
        let shard = self.shard(key);
        if let Some(metric) = shard.read().expect("obs shard poisoned").get(key) {
            return metric.clone();
        }
        let mut map = shard.write().expect("obs shard poisoned");
        map.entry(key.to_string()).or_insert_with(make).clone()
    }

    /// Bind (registering on first use) the counter named `key`.
    pub fn counter(&self, key: &str) -> Counter {
        match self.get_or_insert(key, || Metric::Counter(Arc::new(AtomicU64::new(0)))) {
            Metric::Counter(cell) => Counter(cell),
            _ => Counter(Arc::new(AtomicU64::new(0))),
        }
    }

    /// Bind (registering on first use) the gauge named `key`.
    pub fn gauge(&self, key: &str) -> Gauge {
        match self.get_or_insert(key, || Metric::Gauge(Arc::new(AtomicU64::new(0.0f64.to_bits()))))
        {
            Metric::Gauge(cell) => Gauge(cell),
            _ => Gauge(Arc::new(AtomicU64::new(0.0f64.to_bits()))),
        }
    }

    /// Bind the histogram named `key`, registering it with the default
    /// `_us` latency layout ([`buckets::default_latency_us`]) if new.
    pub fn histogram(&self, key: &str) -> Arc<Histogram> {
        self.histogram_with(key, &buckets::default_latency_us())
    }

    /// Bind the histogram named `key`, registering it with `bounds` if
    /// new. An existing histogram keeps its original bounds (first
    /// registration wins).
    pub fn histogram_with(&self, key: &str, bounds: &[f64]) -> Arc<Histogram> {
        match self
            .get_or_insert(key, || Metric::Histogram(Arc::new(Histogram::new(bounds.to_vec()))))
        {
            Metric::Histogram(hist) => hist,
            _ => Arc::new(Histogram::new(bounds.to_vec())),
        }
    }

    /// Copy every metric out into a key-sorted [`Snapshot`].
    pub fn snapshot(&self) -> Snapshot {
        let mut entries = Vec::new();
        for shard in self.shards.iter() {
            for (key, metric) in shard.read().expect("obs shard poisoned").iter() {
                let value = match metric {
                    Metric::Counter(cell) => MetricSnapshot::Counter(cell.load(Ordering::Relaxed)),
                    Metric::Gauge(cell) => {
                        MetricSnapshot::Gauge(f64::from_bits(cell.load(Ordering::Relaxed)))
                    }
                    Metric::Histogram(hist) => MetricSnapshot::Histogram(hist.snapshot()),
                };
                entries.push((key.clone(), value));
            }
        }
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Snapshot { entries }
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let keys: usize = self.shards.iter().map(|s| s.read().map(|m| m.len()).unwrap_or(0)).sum();
        f.debug_struct("Registry").field("keys", &keys).finish()
    }
}

impl Recorder for Registry {
    fn add(&self, key: &str, delta: u64) {
        self.counter(key).add(delta);
    }

    fn set(&self, key: &str, value: f64) {
        self.gauge(key).set(value);
    }

    fn observe(&self, key: &str, value: f64) {
        self.histogram(key).record(value);
    }
}

impl From<Registry> for SharedRecorder {
    fn from(registry: Registry) -> Self {
        SharedRecorder::new(Arc::new(registry))
    }
}

/// Pre-bound counter handle: one relaxed atomic add per update.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add `delta`.
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Add one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Pre-bound gauge handle: an `f64` cell with last-write-wins updates.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Overwrite the gauge value.
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Raise the gauge to `value` if it is higher than the current
    /// reading (a lock-free running maximum — used for high-water marks
    /// like the peak number of concurrently active computes). Loses races
    /// only to strictly larger values, so the recorded peak never goes
    /// down. NaN is ignored.
    pub fn set_max(&self, value: f64) {
        if value.is_nan() {
            return;
        }
        let mut current = self.0.load(Ordering::Relaxed);
        while value > f64::from_bits(current) {
            match self.0.compare_exchange_weak(
                current,
                value.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => current = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_state_across_clones() {
        let reg = Registry::new();
        let clone = reg.clone();
        reg.counter("a.b").add(2);
        clone.counter("a.b").incr();
        assert_eq!(reg.counter("a.b").get(), 3);
    }

    #[test]
    fn gauge_set_max_is_a_running_maximum() {
        let reg = Registry::new();
        let g = reg.gauge("peak");
        g.set_max(2.0);
        g.set_max(1.0);
        assert_eq!(g.get(), 2.0);
        g.set_max(3.5);
        assert_eq!(g.get(), 3.5);
        g.set_max(f64::NAN);
        assert_eq!(g.get(), 3.5);
        // A plain set still overwrites (it is a gauge first).
        g.set(0.5);
        assert_eq!(g.get(), 0.5);
    }

    #[test]
    fn recorder_impl_routes_to_the_right_kinds() {
        let reg = Registry::new();
        let rec: &dyn Recorder = &reg;
        assert!(rec.enabled());
        rec.add("c", 5);
        rec.set("g", -1.5);
        rec.observe("h", 3.0);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("c"), Some(5));
        assert_eq!(snap.gauge("g"), Some(-1.5));
        assert_eq!(snap.histogram("h").unwrap().count, 1);
    }

    #[test]
    fn kind_conflicts_return_detached_cells() {
        let reg = Registry::new();
        reg.counter("k").add(7);
        // Same key accessed as a histogram: detached, original untouched.
        let hist = reg.histogram("k");
        hist.record(1.0);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("k"), Some(7));
        assert!(snap.histogram("k").is_none());
    }

    #[test]
    fn first_histogram_registration_wins_bounds() {
        let reg = Registry::new();
        let first = reg.histogram_with("h", &[1.0, 2.0]);
        let second = reg.histogram_with("h", &[10.0]);
        assert_eq!(first.bounds(), second.bounds());
        assert_eq!(second.bounds(), &[1.0, 2.0]);
    }

    #[test]
    fn snapshot_is_sorted_by_key() {
        let reg = Registry::new();
        for key in ["z.last", "a.first", "m.mid"] {
            reg.counter(key).incr();
        }
        let snap = reg.snapshot();
        let keys: Vec<&str> = snap.entries().iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["a.first", "m.mid", "z.last"]);
    }

    #[test]
    fn concurrent_registration_yields_one_cell() {
        let reg = Registry::new();
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let reg = reg.clone();
                std::thread::spawn(move || {
                    for _ in 0..500 {
                        reg.counter("shared").incr();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(reg.counter("shared").get(), 4_000);
    }
}
