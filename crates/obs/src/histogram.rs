//! Fixed-bucket histograms built on atomics.
//!
//! A histogram is a sorted list of finite upper bounds plus one implicit
//! overflow bucket. A sample `v` lands in the first bucket whose bound
//! satisfies `v <= bound`; samples above every bound (including `+inf`)
//! land in the overflow bucket; `NaN` samples are rejected and counted
//! separately. Recording is wait-free except for the running sum, which
//! folds finite samples in with a CAS loop.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use crate::snapshot::HistogramSnapshot;

/// Bucket-bound constructors for the common layouts.
pub mod buckets {
    /// `count` bounds growing geometrically from `start` by `factor`:
    /// `start, start*factor, start*factor^2, ...`.
    ///
    /// # Panics
    /// If `start <= 0`, `factor <= 1`, or `count == 0`.
    pub fn exponential(start: f64, factor: f64, count: usize) -> Vec<f64> {
        assert!(start > 0.0 && start.is_finite(), "exponential buckets need start > 0");
        assert!(factor > 1.0 && factor.is_finite(), "exponential buckets need factor > 1");
        assert!(count > 0, "exponential buckets need count > 0");
        let mut bounds = Vec::with_capacity(count);
        let mut bound = start;
        for _ in 0..count {
            bounds.push(bound);
            bound *= factor;
        }
        bounds
    }

    /// `count` bounds spaced `width` apart starting at `start`:
    /// `start, start+width, start+2*width, ...`.
    ///
    /// # Panics
    /// If `width <= 0`, `count == 0`, or `start` is not finite.
    pub fn linear(start: f64, width: f64, count: usize) -> Vec<f64> {
        assert!(start.is_finite(), "linear buckets need a finite start");
        assert!(width > 0.0 && width.is_finite(), "linear buckets need width > 0");
        assert!(count > 0, "linear buckets need count > 0");
        (0..count).map(|i| start + width * i as f64).collect()
    }

    /// Default layout for `_us` duration histograms: powers of two from
    /// 1 µs to ~33.5 s (26 bounds), overflow above.
    pub fn default_latency_us() -> Vec<f64> {
        exponential(1.0, 2.0, 26)
    }
}

/// Concurrent fixed-bucket histogram.
///
/// See the [module docs](self) for bucketing semantics. Shared between
/// threads behind an `Arc`; all updates use relaxed atomics — snapshots
/// are approximate under concurrent writes, exact once writers quiesce.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// One slot per bound plus the trailing overflow bucket.
    counts: Vec<AtomicU64>,
    count: AtomicU64,
    /// Running sum of finite samples, stored as `f64` bits.
    sum_bits: AtomicU64,
    rejected: AtomicU64,
}

impl Histogram {
    /// Build a histogram over the given upper bounds.
    ///
    /// # Panics
    /// If `bounds` is empty, contains a non-finite value, or is not
    /// strictly increasing.
    pub fn new(bounds: Vec<f64>) -> Histogram {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket bound");
        for pair in bounds.windows(2) {
            assert!(pair[0] < pair[1], "histogram bounds must be strictly increasing");
        }
        assert!(bounds.iter().all(|b| b.is_finite()), "histogram bounds must be finite");
        let counts = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bounds,
            counts,
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0.0f64.to_bits()),
            rejected: AtomicU64::new(0),
        }
    }

    /// The configured upper bounds (overflow bucket excluded).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Record one sample. Returns `false` (and counts a rejection)
    /// for `NaN`; `+inf` lands in the overflow bucket, `-inf` in the
    /// first bucket, neither contributes to the running sum.
    pub fn record(&self, value: f64) -> bool {
        if value.is_nan() {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        let idx = self.bounds.partition_point(|&bound| bound < value);
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        if value.is_finite() {
            let mut current = self.sum_bits.load(Ordering::Relaxed);
            loop {
                let next = (f64::from_bits(current) + value).to_bits();
                match self.sum_bits.compare_exchange_weak(
                    current,
                    next,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(seen) => current = seen,
                }
            }
        }
        true
    }

    /// Total accepted samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Samples rejected as `NaN`.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Start a wall-clock timer that records elapsed microseconds into
    /// this histogram when dropped.
    pub fn start_timer(&self) -> HistogramTimer<'_> {
        HistogramTimer { histogram: self, start: Instant::now() }
    }

    /// Copy the current state out.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: self.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
            count: self.count(),
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
            rejected: self.rejected(),
        }
    }
}

/// RAII timer bound to a pre-registered histogram handle; records
/// elapsed microseconds on drop. Obtained via [`Histogram::start_timer`].
#[derive(Debug)]
pub struct HistogramTimer<'a> {
    histogram: &'a Histogram,
    start: Instant,
}

impl Drop for HistogramTimer<'_> {
    fn drop(&mut self) {
        self.histogram.record(self.start.elapsed().as_secs_f64() * 1e6);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_lands_in_first_nonnegative_bucket() {
        let h = Histogram::new(buckets::linear(0.0, 1.0, 4)); // bounds 0,1,2,3
        assert!(h.record(0.0));
        let snap = h.snapshot();
        assert_eq!(snap.counts[0], 1, "0.0 must satisfy v <= 0.0 for the first bound");
        assert_eq!(snap.count, 1);
        assert_eq!(snap.sum, 0.0);
    }

    #[test]
    fn positive_infinity_lands_in_overflow_without_poisoning_sum() {
        let h = Histogram::new(vec![1.0, 2.0]);
        assert!(h.record(f64::INFINITY));
        assert!(h.record(1.5));
        let snap = h.snapshot();
        assert_eq!(snap.counts, vec![0, 1, 1]);
        assert_eq!(snap.count, 2);
        assert_eq!(snap.sum, 1.5, "infinite samples must not reach the sum");
    }

    #[test]
    fn negative_infinity_lands_in_first_bucket() {
        let h = Histogram::new(vec![1.0, 2.0]);
        assert!(h.record(f64::NEG_INFINITY));
        assert_eq!(h.snapshot().counts, vec![1, 0, 0]);
    }

    #[test]
    fn nan_is_rejected_and_counted() {
        let h = Histogram::new(vec![1.0]);
        assert!(!h.record(f64::NAN));
        let snap = h.snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.rejected, 1);
        assert_eq!(snap.counts, vec![0, 0]);
    }

    #[test]
    fn boundary_values_use_le_semantics() {
        let h = Histogram::new(vec![1.0, 2.0, 4.0]);
        for v in [0.5, 1.0, 1.0001, 2.0, 4.0, 4.0001] {
            h.record(v);
        }
        assert_eq!(h.snapshot().counts, vec![2, 2, 1, 1]);
    }

    #[test]
    fn exponential_and_linear_layouts() {
        assert_eq!(buckets::exponential(1.0, 2.0, 4), vec![1.0, 2.0, 4.0, 8.0]);
        assert_eq!(buckets::linear(-1.0, 0.5, 4), vec![-1.0, -0.5, 0.0, 0.5]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_bounds_are_refused() {
        Histogram::new(vec![2.0, 1.0]);
    }

    #[test]
    fn timer_records_microseconds() {
        let h = Histogram::new(buckets::default_latency_us());
        {
            let _t = h.start_timer();
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 1);
        assert!(snap.sum >= 1_000.0, "2ms sleep should record >= 1000us, got {}", snap.sum);
    }

    #[test]
    fn concurrent_records_are_all_kept() {
        let h = std::sync::Arc::new(Histogram::new(buckets::linear(0.0, 8.0, 16)));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..1_000 {
                        h.record((t * 31 + i % 97) as f64);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 4_000);
        assert_eq!(h.snapshot().counts.iter().sum::<u64>(), 4_000);
    }
}
