//! RAII span timers: measure a scope's wall-clock time and record it as
//! microseconds into a histogram key on drop.

use std::time::Instant;

use crate::recorder::Recorder;

/// Guard that records the elapsed microseconds since construction under
/// `key` when dropped. When the recorder is disabled the clock is never
/// read and the drop is free — the no-op contract that lets spans sit in
/// hot paths.
///
/// Usually built via the [`span!`](crate::span!) macro:
///
/// ```
/// use valmod_obs::{Recorder, Registry};
///
/// let reg = Registry::new();
/// {
///     let _span = valmod_obs::span!(&reg, "demo.step_us");
/// }
/// assert_eq!(reg.snapshot().histogram("demo.step_us").unwrap().count, 1);
/// ```
#[derive(Debug)]
pub struct SpanTimer<'a, R: Recorder + ?Sized> {
    recorder: &'a R,
    key: &'a str,
    start: Option<Instant>,
}

impl<'a, R: Recorder + ?Sized> SpanTimer<'a, R> {
    /// Start timing `key`; reads the clock only if `recorder.enabled()`.
    pub fn start(recorder: &'a R, key: &'a str) -> Self {
        let start = recorder.enabled().then(Instant::now);
        SpanTimer { recorder, key, start }
    }

    /// Drop the guard without recording anything.
    pub fn discard(mut self) {
        self.start = None;
    }
}

impl<R: Recorder + ?Sized> Drop for SpanTimer<'_, R> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.recorder.observe(self.key, start.elapsed().as_secs_f64() * 1e6);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{NoopRecorder, SharedRecorder};
    use crate::Registry;

    #[test]
    fn span_records_into_registry() {
        let reg = Registry::new();
        {
            let _span = SpanTimer::start(&reg, "t.step_us");
        }
        let snap = reg.snapshot();
        assert_eq!(snap.histogram("t.step_us").unwrap().count, 1);
    }

    #[test]
    fn disabled_recorder_never_times() {
        let noop = NoopRecorder;
        let span = SpanTimer::start(&noop, "t.step_us");
        assert!(span.start.is_none(), "no Instant::now() when disabled");
    }

    #[test]
    fn discard_suppresses_the_sample() {
        let reg = Registry::new();
        let span = SpanTimer::start(&reg, "t.step_us");
        span.discard();
        assert!(reg.snapshot().histogram("t.step_us").is_none());
    }

    #[test]
    fn macro_works_through_shared_recorder() {
        let reg = Registry::new();
        let rec = SharedRecorder::from(reg.clone());
        {
            let _span = crate::span!(&rec, "t.macro_us");
        }
        assert_eq!(reg.snapshot().histogram("t.macro_us").unwrap().count, 1);
    }
}
