//! The [`Recorder`] trait, the always-off [`NoopRecorder`], and the
//! cloneable [`SharedRecorder`] handle that instrumented structs embed.

use std::fmt;
use std::ops::Deref;
use std::sync::{Arc, OnceLock};

/// Sink for measurements emitted by instrumented code.
///
/// Implementations must be cheap and non-blocking: hot loops call these
/// methods per row chunk or per request. Code that would pay a real cost
/// just to *produce* a value (reading the clock, computing a mean)
/// should gate on [`Recorder::enabled`] first.
pub trait Recorder: Send + Sync {
    /// Whether measurements are being kept. `false` lets call sites skip
    /// expensive value production entirely (the no-op contract).
    fn enabled(&self) -> bool {
        true
    }

    /// Add `delta` to the monotonic counter named `key`.
    fn add(&self, key: &str, delta: u64);

    /// Set the gauge named `key` to `value` (last write wins).
    fn set(&self, key: &str, value: f64);

    /// Record one sample of `value` into the histogram named `key`.
    fn observe(&self, key: &str, value: f64);
}

/// Recorder that drops every measurement and reports `enabled() == false`.
///
/// This is the default wired through the stack: an uninstrumented run
/// pays only a virtual call on cold paths and a single branch on hot
/// ones.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn enabled(&self) -> bool {
        false
    }

    fn add(&self, _key: &str, _delta: u64) {}

    fn set(&self, _key: &str, _value: f64) {}

    fn observe(&self, _key: &str, _value: f64) {}
}

/// Cloneable, type-erased recorder handle.
///
/// Structs that derive `Debug`/`Clone` (builders, streaming state)
/// cannot hold a bare `Arc<dyn Recorder>`; this newtype supplies the
/// missing impls and defaults to the shared no-op instance, so embedding
/// one costs a single `Arc` clone and no allocation.
#[derive(Clone)]
pub struct SharedRecorder(Arc<dyn Recorder>);

impl SharedRecorder {
    /// Wrap an owned recorder.
    pub fn new(recorder: Arc<dyn Recorder>) -> Self {
        SharedRecorder(recorder)
    }

    /// The process-wide no-op recorder (no allocation after first use).
    pub fn noop() -> Self {
        static NOOP: OnceLock<Arc<NoopRecorder>> = OnceLock::new();
        let arc = NOOP.get_or_init(|| Arc::new(NoopRecorder)).clone();
        SharedRecorder(arc)
    }
}

impl Recorder for SharedRecorder {
    fn enabled(&self) -> bool {
        self.0.enabled()
    }

    fn add(&self, key: &str, delta: u64) {
        self.0.add(key, delta);
    }

    fn set(&self, key: &str, value: f64) {
        self.0.set(key, value);
    }

    fn observe(&self, key: &str, value: f64) {
        self.0.observe(key, value);
    }
}

impl Default for SharedRecorder {
    fn default() -> Self {
        SharedRecorder::noop()
    }
}

impl fmt::Debug for SharedRecorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SharedRecorder").field("enabled", &self.0.enabled()).finish()
    }
}

impl Deref for SharedRecorder {
    type Target = dyn Recorder;

    fn deref(&self) -> &(dyn Recorder + 'static) {
        &*self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_is_disabled_and_silent() {
        let rec = NoopRecorder;
        assert!(!rec.enabled());
        rec.add("k", 1);
        rec.set("k", 1.0);
        rec.observe("k", 1.0);
    }

    #[test]
    fn shared_defaults_to_noop_and_is_cheap_to_clone() {
        let rec = SharedRecorder::default();
        assert!(!rec.enabled());
        let clone = rec.clone();
        assert!(!clone.enabled());
        assert_eq!(format!("{rec:?}"), "SharedRecorder { enabled: false }");
    }
}
