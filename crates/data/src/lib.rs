//! # valmod-data
//!
//! Data-series substrate for the VALMOD reproduction: the validated
//! [`Series`] type (paper Definition 2.1), O(1) rolling subsequence
//! statistics for arbitrary lengths ([`stats::RollingStats`]), seeded
//! synthetic generators, stand-ins for the paper's five evaluation datasets
//! ([`datasets::Dataset`]), and text/binary I/O.
//!
//! ## Quick example
//!
//! ```
//! use valmod_data::datasets::Dataset;
//! use valmod_data::stats::RollingStats;
//!
//! let series = Dataset::Ecg.generate(2_000, 42);
//! let stats = RollingStats::new(series.values());
//! // Mean and σ of any subsequence, any length, in O(1):
//! let mu = stats.mean(100, 256);
//! let sigma = stats.std_dev(100, 256);
//! assert!(sigma >= 0.0 && mu.is_finite());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod datasets;
pub mod error;
pub mod generators;
pub mod io;
pub mod preprocess;
pub mod rng;
pub mod series;
pub mod stats;

pub use datasets::Dataset;
pub use error::{DataError, Result, ValmodError};
pub use series::{euclidean, znormalize, Series, SeriesSummary};
pub use stats::{LengthStats, RollingStats};
