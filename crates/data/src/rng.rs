//! A small, portable, seedable PRNG.
//!
//! Experiments must be bit-for-bit reproducible across library versions and
//! platforms. `rand`'s `StdRng` explicitly disclaims portability, so the data
//! substrate carries its own generator: **xoshiro256\*\*** (Blackman &
//! Vigna), seeded through **SplitMix64** as its authors recommend. Both are
//! public-domain algorithms implemented here from their reference
//! descriptions.

/// SplitMix64 — used to expand a 64-bit seed into xoshiro's 256-bit state.
#[derive(Debug, Clone, Copy)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    #[inline]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256\*\* — the repository's workhorse PRNG.
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Creates a generator whose 256-bit state is derived from `seed` via
    /// SplitMix64 (never all-zero).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        Xoshiro256 { s }
    }

    /// Next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // Take the top 53 bits; multiply by 2⁻⁵³.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo < hi);
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[lo, hi)` using Lemire-style rejection-free
    /// widening multiplication (slightly biased only below 2⁻⁶⁴, irrelevant
    /// for workload generation).
    #[inline]
    pub fn uniform_usize(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo < hi);
        let span = (hi - lo) as u64;
        let wide = (self.next_u64() as u128).wrapping_mul(span as u128);
        lo + (wide >> 64) as usize
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.uniform_usize(0, i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference outputs for seed 1234567 (from the public-domain C code).
        let mut sm = SplitMix64::new(1234567);
        let a = sm.next_u64();
        let b = sm.next_u64();
        assert_ne!(a, b);
        // Determinism: a fresh generator reproduces the stream.
        let mut sm2 = SplitMix64::new(1234567);
        assert_eq!(sm2.next_u64(), a);
        assert_eq!(sm2.next_u64(), b);
    }

    #[test]
    fn xoshiro_is_deterministic_and_seed_sensitive() {
        let mut a = Xoshiro256::seed_from_u64(42);
        let mut b = Xoshiro256::seed_from_u64(42);
        let mut c = Xoshiro256::seed_from_u64(43);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn f64_outputs_are_in_unit_interval_and_uniform_ish() {
        let mut rng = Xoshiro256::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn uniform_usize_covers_range_without_out_of_bounds() {
        let mut rng = Xoshiro256::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.uniform_usize(2, 12);
            assert!((2..12).contains(&v));
            seen[v - 2] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values in range should appear");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Xoshiro256::seed_from_u64(5);
        let mut v: Vec<usize> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle should move something");
    }

    #[test]
    fn clone_forks_the_stream() {
        let mut a = Xoshiro256::seed_from_u64(9);
        a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
