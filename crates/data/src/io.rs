//! Loading and saving data series.
//!
//! Two on-disk formats are supported:
//!
//! * **Text** — one value per line (or whitespace/comma separated), `#`
//!   comments allowed. This is the format of the UCI/PhysioNet exports the
//!   paper uses.
//! * **Binary** — raw little-endian `f64` samples, for fast round-tripping of
//!   large generated datasets.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::error::{DataError, Result};
use crate::series::Series;

/// Parses a series from text: values separated by newlines, commas, or
/// whitespace; blank lines and `#` comments ignored.
pub fn parse_text(text: &str) -> Result<Series> {
    let mut values = Vec::new();
    for (line_no, line) in text.lines().enumerate() {
        let line = match line.find('#') {
            Some(pos) => &line[..pos],
            None => line,
        };
        for token in line.split(|c: char| c == ',' || c.is_whitespace()) {
            if token.is_empty() {
                continue;
            }
            // Non-finite tokens ("inf", "NaN") parse as f64 but poison every
            // downstream z-normalisation, so reject them here where the line
            // number is still known.
            let value =
                token.parse::<f64>().ok().filter(|v| v.is_finite()).ok_or_else(|| {
                    DataError::Parse { line: line_no + 1, token: token.to_string() }
                })?;
            values.push(value);
        }
    }
    Series::new(values)
}

/// Loads a series from a text file (one value per line, `#` comments allowed).
pub fn load_text(path: impl AsRef<Path>) -> Result<Series> {
    let file = File::open(path)?;
    let mut reader = BufReader::new(file);
    let mut text = String::new();
    reader.read_to_string(&mut text)?;
    parse_text(&text)
}

/// Writes a series as text, one value per line (round-trip precision).
pub fn save_text(series: &Series, path: impl AsRef<Path>) -> Result<()> {
    let file = File::create(path)?;
    let mut w = BufWriter::new(file);
    for v in series.values() {
        // {:?} prints the shortest representation that round-trips.
        writeln!(w, "{v:?}")?;
    }
    w.flush()?;
    Ok(())
}

/// Loads a series of raw little-endian `f64` samples.
pub fn load_binary(path: impl AsRef<Path>) -> Result<Series> {
    let file = File::open(path)?;
    let mut reader = BufReader::new(file);
    let mut bytes = Vec::new();
    reader.read_to_end(&mut bytes)?;
    if bytes.len() % 8 != 0 {
        return Err(DataError::InvalidParameter(format!(
            "binary series file length {} is not a multiple of 8",
            bytes.len()
        )));
    }
    let values = bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]))
        .collect();
    Series::new(values)
}

/// Writes a series as raw little-endian `f64` samples.
pub fn save_binary(series: &Series, path: impl AsRef<Path>) -> Result<()> {
    let file = File::create(path)?;
    let mut w = BufWriter::new(file);
    for v in series.values() {
        w.write_all(&v.to_le_bytes())?;
    }
    w.flush()?;
    Ok(())
}

/// Loads either format by file extension: `.bin`/`.f64` → binary, anything
/// else → text.
pub fn load_auto(path: impl AsRef<Path>) -> Result<Series> {
    let p = path.as_ref();
    match p.extension().and_then(|e| e.to_str()) {
        Some("bin") | Some("f64") => load_binary(p),
        _ => load_text(p),
    }
}

/// Reads a series from any `BufRead` source of text.
pub fn read_text(reader: impl BufRead) -> Result<Series> {
    let mut text = String::new();
    let mut reader = reader;
    reader.read_to_string(&mut text)?;
    parse_text(&text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_text_handles_separators_and_comments() {
        let s = parse_text("1.0, 2.5\n# a comment\n3 4\n\n5.5 # trailing\n").unwrap();
        assert_eq!(s.values(), &[1.0, 2.5, 3.0, 4.0, 5.5]);
    }

    #[test]
    fn parse_text_reports_bad_token_with_line() {
        let err = parse_text("1.0\nnope\n").unwrap_err();
        match err {
            DataError::Parse { line, token } => {
                assert_eq!(line, 2);
                assert_eq!(token, "nope");
            }
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn parse_text_rejects_non_finite_tokens_with_line() {
        for (text, bad_line, bad_token) in
            [("1.0\ninf\n", 2, "inf"), ("NaN 2.0\n", 1, "NaN"), ("1.0\n2.0\n-inf\n", 3, "-inf")]
        {
            match parse_text(text).unwrap_err() {
                DataError::Parse { line, token } => {
                    assert_eq!(line, bad_line, "input {text:?}");
                    assert_eq!(token, bad_token, "input {text:?}");
                }
                other => panic!("unexpected error for {text:?}: {other}"),
            }
        }
    }

    #[test]
    fn binary_rejects_non_finite_samples_with_index() {
        let dir = std::env::temp_dir().join("valmod_io_test_nonfinite");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("nan.bin");
        let mut bytes = Vec::new();
        for v in [1.0f64, 2.0, f64::NAN, 4.0] {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        std::fs::write(&path, bytes).unwrap();
        match load_binary(&path).unwrap_err() {
            DataError::NonFinite { index } => assert_eq!(index, 2),
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn text_round_trip() {
        let dir = std::env::temp_dir().join("valmod_io_test_text");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("series.txt");
        let s = Series::new(vec![0.1, -2.5, 1e-9, 12345.678]).unwrap();
        save_text(&s, &path).unwrap();
        let back = load_text(&path).unwrap();
        assert_eq!(back.values(), s.values());
    }

    #[test]
    fn binary_round_trip() {
        let dir = std::env::temp_dir().join("valmod_io_test_bin");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("series.bin");
        let s = Series::new((0..1000).map(|i| (i as f64).sin()).collect()).unwrap();
        save_binary(&s, &path).unwrap();
        let back = load_binary(&path).unwrap();
        assert_eq!(back.values(), s.values());
        // Auto-detection by extension.
        let auto = load_auto(&path).unwrap();
        assert_eq!(auto.values(), s.values());
    }

    #[test]
    fn binary_rejects_truncated_file() {
        let dir = std::env::temp_dir().join("valmod_io_test_trunc");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.bin");
        std::fs::write(&path, [0u8; 12]).unwrap();
        assert!(load_binary(&path).is_err());
    }

    #[test]
    fn read_text_from_cursor() {
        let cursor = std::io::Cursor::new("7.5\n8.5\n");
        let s = read_text(cursor).unwrap();
        assert_eq!(s.values(), &[7.5, 8.5]);
    }
}
