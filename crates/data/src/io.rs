//! Loading and saving data series.
//!
//! Two on-disk formats are supported:
//!
//! * **Text** — one value per line (or whitespace/comma separated), `#`
//!   comments allowed. This is the format of the UCI/PhysioNet exports the
//!   paper uses.
//! * **Binary** — raw little-endian `f64` samples, for fast round-tripping of
//!   large generated datasets.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::error::{DataError, Result};
use crate::series::Series;

/// Parses a series from text: values separated by newlines, commas, or
/// whitespace; blank lines and `#` comments ignored.
pub fn parse_text(text: &str) -> Result<Series> {
    let mut values = Vec::new();
    for (line_no, line) in text.lines().enumerate() {
        let line = match line.find('#') {
            Some(pos) => &line[..pos],
            None => line,
        };
        for token in line.split(|c: char| c == ',' || c.is_whitespace()) {
            if token.is_empty() {
                continue;
            }
            // Non-finite tokens ("inf", "NaN") parse as f64 but poison every
            // downstream z-normalisation, so reject them here where the line
            // number is still known.
            let value =
                token.parse::<f64>().ok().filter(|v| v.is_finite()).ok_or_else(|| {
                    DataError::Parse { line: line_no + 1, token: token.to_string() }
                })?;
            values.push(value);
        }
    }
    Series::new(values)
}

/// Loads a series from a text file (one value per line, `#` comments allowed).
pub fn load_text(path: impl AsRef<Path>) -> Result<Series> {
    let file = File::open(path)?;
    let mut reader = BufReader::new(file);
    let mut text = String::new();
    reader.read_to_string(&mut text)?;
    parse_text(&text)
}

/// Writes a series as text, one value per line (round-trip precision).
pub fn save_text(series: &Series, path: impl AsRef<Path>) -> Result<()> {
    let file = File::create(path)?;
    let mut w = BufWriter::new(file);
    for v in series.values() {
        // {:?} prints the shortest representation that round-trips.
        writeln!(w, "{v:?}")?;
    }
    w.flush()?;
    Ok(())
}

/// Loads a series of raw little-endian `f64` samples.
pub fn load_binary(path: impl AsRef<Path>) -> Result<Series> {
    let file = File::open(path)?;
    let mut reader = BufReader::new(file);
    let mut bytes = Vec::new();
    reader.read_to_end(&mut bytes)?;
    if bytes.len() % 8 != 0 {
        return Err(DataError::InvalidParameter(format!(
            "binary series file length {} is not a multiple of 8",
            bytes.len()
        )));
    }
    let values = bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]))
        .collect();
    Series::new(values)
}

/// Writes a series as raw little-endian `f64` samples.
pub fn save_binary(series: &Series, path: impl AsRef<Path>) -> Result<()> {
    let file = File::create(path)?;
    let mut w = BufWriter::new(file);
    for v in series.values() {
        w.write_all(&v.to_le_bytes())?;
    }
    w.flush()?;
    Ok(())
}

/// Loads either format by file extension: `.bin`/`.f64` → binary, anything
/// else → text.
pub fn load_auto(path: impl AsRef<Path>) -> Result<Series> {
    let p = path.as_ref();
    match p.extension().and_then(|e| e.to_str()) {
        Some("bin") | Some("f64") => load_binary(p),
        _ => load_text(p),
    }
}

/// Reads a series from any `BufRead` source of text.
pub fn read_text(reader: impl BufRead) -> Result<Series> {
    let mut text = String::new();
    let mut reader = reader;
    reader.read_to_string(&mut text)?;
    parse_text(&text)
}

/// FNV-1a 64-bit hash — the workspace's checksum for binary file formats.
///
/// Not cryptographic: it detects torn writes and bit rot, which is all a
/// crash-recovery checksum needs, and it is dependency-free and byte-order
/// independent.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Writes `bytes` to `path` atomically: the payload goes to a temp file in
/// the same directory, is fsynced, and is then renamed over the target.
/// Readers therefore only ever observe the old complete file or the new
/// complete file — never a torn intermediate state.
pub fn write_atomic(path: impl AsRef<Path>, bytes: &[u8]) -> Result<()> {
    let path = path.as_ref();
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty()).unwrap_or(Path::new("."));
    let file_name = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| DataError::InvalidParameter(format!("bad path {}", path.display())))?;
    // Process-id suffix keeps concurrent writers from clobbering each
    // other's temp files (last rename still wins, atomically).
    let tmp = dir.join(format!(".{file_name}.tmp.{}", std::process::id()));
    let mut f = File::create(&tmp)?;
    f.write_all(bytes)?;
    f.sync_all()?;
    drop(f);
    if let Err(e) = std::fs::rename(&tmp, path) {
        let _ = std::fs::remove_file(&tmp);
        return Err(DataError::Io(e));
    }
    // Persist the rename itself (directory entry) where the platform
    // allows a directory to be opened for sync; ignore the failure on
    // platforms that do not.
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

/// Little-endian binary encoding/decoding helpers shared by the workspace's
/// binary file formats (snapshot and WAL files in the serve layer).
pub mod codec {
    /// Appends a `u32` in little-endian byte order.
    pub fn put_u32(out: &mut Vec<u8>, v: u32) {
        out.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` in little-endian byte order.
    pub fn put_u64(out: &mut Vec<u8>, v: u64) {
        out.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` in little-endian byte order (bit-preserving).
    pub fn put_f64(out: &mut Vec<u8>, v: f64) {
        out.extend_from_slice(&v.to_le_bytes());
    }

    /// A bounds-checked forward reader over a byte slice. Every read
    /// returns `None` instead of panicking when the slice is exhausted,
    /// which is exactly the behaviour torn-tail recovery needs.
    #[derive(Debug, Clone)]
    pub struct ByteCursor<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl<'a> ByteCursor<'a> {
        /// A cursor at the start of `bytes`.
        pub fn new(bytes: &'a [u8]) -> Self {
            ByteCursor { bytes, pos: 0 }
        }

        /// Current byte offset from the start.
        pub fn pos(&self) -> usize {
            self.pos
        }

        /// Bytes not yet consumed.
        pub fn remaining(&self) -> usize {
            self.bytes.len() - self.pos
        }

        /// Reads `n` raw bytes.
        pub fn take(&mut self, n: usize) -> Option<&'a [u8]> {
            let end = self.pos.checked_add(n)?;
            let slice = self.bytes.get(self.pos..end)?;
            self.pos = end;
            Some(slice)
        }

        /// Reads a little-endian `u32`.
        pub fn read_u32(&mut self) -> Option<u32> {
            self.take(4).map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
        }

        /// Reads a little-endian `u64`.
        pub fn read_u64(&mut self) -> Option<u64> {
            self.take(8)
                .map(|b| u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
        }

        /// Reads a little-endian `f64` (bit-preserving).
        pub fn read_f64(&mut self) -> Option<f64> {
            self.read_u64().map(f64::from_bits)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_text_handles_separators_and_comments() {
        let s = parse_text("1.0, 2.5\n# a comment\n3 4\n\n5.5 # trailing\n").unwrap();
        assert_eq!(s.values(), &[1.0, 2.5, 3.0, 4.0, 5.5]);
    }

    #[test]
    fn parse_text_reports_bad_token_with_line() {
        let err = parse_text("1.0\nnope\n").unwrap_err();
        match err {
            DataError::Parse { line, token } => {
                assert_eq!(line, 2);
                assert_eq!(token, "nope");
            }
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn parse_text_rejects_non_finite_tokens_with_line() {
        for (text, bad_line, bad_token) in
            [("1.0\ninf\n", 2, "inf"), ("NaN 2.0\n", 1, "NaN"), ("1.0\n2.0\n-inf\n", 3, "-inf")]
        {
            match parse_text(text).unwrap_err() {
                DataError::Parse { line, token } => {
                    assert_eq!(line, bad_line, "input {text:?}");
                    assert_eq!(token, bad_token, "input {text:?}");
                }
                other => panic!("unexpected error for {text:?}: {other}"),
            }
        }
    }

    #[test]
    fn binary_rejects_non_finite_samples_with_index() {
        let dir = std::env::temp_dir().join("valmod_io_test_nonfinite");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("nan.bin");
        let mut bytes = Vec::new();
        for v in [1.0f64, 2.0, f64::NAN, 4.0] {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        std::fs::write(&path, bytes).unwrap();
        match load_binary(&path).unwrap_err() {
            DataError::NonFinite { index } => assert_eq!(index, 2),
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn text_round_trip() {
        let dir = std::env::temp_dir().join("valmod_io_test_text");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("series.txt");
        let s = Series::new(vec![0.1, -2.5, 1e-9, 12345.678]).unwrap();
        save_text(&s, &path).unwrap();
        let back = load_text(&path).unwrap();
        assert_eq!(back.values(), s.values());
    }

    #[test]
    fn binary_round_trip() {
        let dir = std::env::temp_dir().join("valmod_io_test_bin");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("series.bin");
        let s = Series::new((0..1000).map(|i| (i as f64).sin()).collect()).unwrap();
        save_binary(&s, &path).unwrap();
        let back = load_binary(&path).unwrap();
        assert_eq!(back.values(), s.values());
        // Auto-detection by extension.
        let auto = load_auto(&path).unwrap();
        assert_eq!(auto.values(), s.values());
    }

    #[test]
    fn binary_rejects_truncated_file() {
        let dir = std::env::temp_dir().join("valmod_io_test_trunc");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.bin");
        std::fs::write(&path, [0u8; 12]).unwrap();
        assert!(load_binary(&path).is_err());
    }

    #[test]
    fn read_text_from_cursor() {
        let cursor = std::io::Cursor::new("7.5\n8.5\n");
        let s = read_text(cursor).unwrap();
        assert_eq!(s.values(), &[7.5, 8.5]);
    }

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
        // A single flipped bit changes the hash.
        assert_ne!(fnv1a64(b"foobar"), fnv1a64(b"foobas"));
    }

    #[test]
    fn write_atomic_replaces_and_leaves_no_temp_files() {
        let dir = std::env::temp_dir().join("valmod_io_test_atomic");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("target.bin");
        write_atomic(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        write_atomic(&path, b"second, longer payload").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second, longer payload");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "temp files left behind: {leftovers:?}");
    }

    #[test]
    fn codec_round_trips_and_bounds_checks() {
        use super::codec::{put_f64, put_u32, put_u64, ByteCursor};
        let mut buf = Vec::new();
        put_u32(&mut buf, 0xdead_beef);
        put_u64(&mut buf, u64::MAX - 7);
        put_f64(&mut buf, -0.0);
        put_f64(&mut buf, f64::MIN_POSITIVE);
        let mut c = ByteCursor::new(&buf);
        assert_eq!(c.read_u32(), Some(0xdead_beef));
        assert_eq!(c.read_u64(), Some(u64::MAX - 7));
        // Bit-preserving: -0.0 must come back as -0.0, not 0.0.
        assert_eq!(c.read_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(c.read_f64(), Some(f64::MIN_POSITIVE));
        assert_eq!(c.remaining(), 0);
        assert_eq!(c.read_u32(), None, "reads past the end return None");
        assert_eq!(c.pos(), buf.len(), "failed reads do not advance");
    }
}
