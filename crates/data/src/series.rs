//! The [`Series`] type: an owned, validated data series (paper Definition 2.1)
//! with subsequence views (Definition 2.2) and z-normalisation helpers.

use crate::error::{DataError, Result};

/// An owned data series `T ∈ ℝⁿ` — a sequence of finite real values.
///
/// The constructor validates finiteness once, so downstream numeric kernels
/// never have to re-check for NaN.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    values: Vec<f64>,
}

impl Series {
    /// Creates a series, validating that every sample is finite.
    pub fn new(values: Vec<f64>) -> Result<Self> {
        if let Some(index) = values.iter().position(|v| !v.is_finite()) {
            return Err(DataError::NonFinite { index });
        }
        Ok(Series { values })
    }

    /// Creates a series without validation. Only for inputs already known to
    /// be finite (e.g. output of in-repo generators).
    pub fn from_trusted(values: Vec<f64>) -> Self {
        debug_assert!(values.iter().all(|v| v.is_finite()));
        Series { values }
    }

    /// Number of samples `n`.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the series has no samples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Immutable access to the raw samples.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Consumes the series, returning the raw samples.
    pub fn into_values(self) -> Vec<f64> {
        self.values
    }

    /// Number of subsequences of length `l` (`n − ℓ + 1`), or 0 when the
    /// series is shorter than `l`.
    #[inline]
    pub fn num_subsequences(&self, l: usize) -> usize {
        if l == 0 || self.values.len() < l {
            0
        } else {
            self.values.len() - l + 1
        }
    }

    /// The subsequence `T_{i,ℓ}` starting at 0-based offset `i`.
    ///
    /// # Panics
    /// Panics if the subsequence runs past the end of the series.
    #[inline]
    pub fn subsequence(&self, i: usize, l: usize) -> &[f64] {
        &self.values[i..i + l]
    }

    /// Checked variant of [`Series::subsequence`].
    pub fn try_subsequence(&self, i: usize, l: usize) -> Result<&[f64]> {
        if l == 0 {
            return Err(DataError::InvalidParameter("subsequence length must be positive".into()));
        }
        match i.checked_add(l) {
            Some(end) if end <= self.values.len() => Ok(&self.values[i..end]),
            _ => Err(DataError::TooShort { len: self.values.len(), required: i.saturating_add(l) }),
        }
    }

    /// Returns a prefix snippet of the series (as used in the paper's
    /// scalability-over-size experiments, §6.1).
    pub fn prefix(&self, n: usize) -> Series {
        Series { values: self.values[..n.min(self.values.len())].to_vec() }
    }

    /// Summary statistics over the whole series (for Table 1 of the paper).
    pub fn summary(&self) -> SeriesSummary {
        let n = self.values.len();
        if n == 0 {
            return SeriesSummary {
                min: f64::NAN,
                max: f64::NAN,
                mean: f64::NAN,
                std_dev: f64::NAN,
                len: 0,
            };
        }
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        for &v in &self.values {
            min = min.min(v);
            max = max.max(v);
            sum += v;
        }
        let mean = sum / n as f64;
        let var = self.values.iter().map(|&v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        SeriesSummary { min, max, mean, std_dev: var.sqrt(), len: n }
    }
}

impl AsRef<[f64]> for Series {
    fn as_ref(&self) -> &[f64] {
        &self.values
    }
}

impl std::ops::Index<usize> for Series {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        &self.values[i]
    }
}

/// Whole-series summary statistics (min/max/mean/std/points — Table 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesSummary {
    /// Minimum sample value.
    pub min: f64,
    /// Maximum sample value.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Number of points.
    pub len: usize,
}

/// Z-normalises `sub` into a fresh vector: `(x − μ)/σ`.
///
/// A flat subsequence (σ = 0, or numerically indistinguishable from 0) maps
/// to the all-zero vector, the standard convention in the matrix-profile
/// literature.
pub fn znormalize(sub: &[f64]) -> Vec<f64> {
    let mut out = sub.to_vec();
    znormalize_into(sub, &mut out);
    out
}

/// Z-normalises `sub` into the caller-provided buffer (no allocation).
///
/// # Panics
/// Panics if `out.len() != sub.len()`.
pub fn znormalize_into(sub: &[f64], out: &mut [f64]) {
    assert_eq!(sub.len(), out.len());
    let l = sub.len();
    if l == 0 {
        return;
    }
    let mean = sub.iter().sum::<f64>() / l as f64;
    let var = sub.iter().map(|&v| (v - mean) * (v - mean)).sum::<f64>() / l as f64;
    let std = var.sqrt();
    if std <= f64::EPSILON * mean.abs().max(1.0) {
        out.fill(0.0);
        return;
    }
    let inv = 1.0 / std;
    for (o, &v) in out.iter_mut().zip(sub) {
        *o = (v - mean) * inv;
    }
}

/// Plain (non-normalised) Euclidean distance between two equal-length slices.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "euclidean distance needs equal lengths");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rejects_non_finite() {
        assert!(Series::new(vec![1.0, f64::NAN]).is_err());
        assert!(Series::new(vec![1.0, f64::INFINITY]).is_err());
        assert!(Series::new(vec![1.0, 2.0]).is_ok());
    }

    #[test]
    fn subsequence_counting() {
        let s = Series::new((0..10).map(|i| i as f64).collect()).unwrap();
        assert_eq!(s.num_subsequences(3), 8);
        assert_eq!(s.num_subsequences(10), 1);
        assert_eq!(s.num_subsequences(11), 0);
        assert_eq!(s.num_subsequences(0), 0);
    }

    #[test]
    fn subsequence_views() {
        let s = Series::new((0..10).map(|i| i as f64).collect()).unwrap();
        assert_eq!(s.subsequence(2, 3), &[2.0, 3.0, 4.0]);
        assert!(s.try_subsequence(8, 3).is_err());
        assert!(s.try_subsequence(0, 0).is_err());
        assert_eq!(s.try_subsequence(7, 3).unwrap(), &[7.0, 8.0, 9.0]);
    }

    #[test]
    fn prefix_clamps() {
        let s = Series::new(vec![1.0, 2.0, 3.0]).unwrap();
        assert_eq!(s.prefix(2).len(), 2);
        assert_eq!(s.prefix(99).len(), 3);
    }

    #[test]
    fn summary_basic() {
        let s = Series::new(vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let sum = s.summary();
        assert_eq!(sum.min, 1.0);
        assert_eq!(sum.max, 4.0);
        assert!((sum.mean - 2.5).abs() < 1e-12);
        assert!((sum.std_dev - (1.25f64).sqrt()).abs() < 1e-12);
        assert_eq!(sum.len, 4);
    }

    #[test]
    fn summary_of_empty_series_is_nan() {
        let s = Series::new(vec![]).unwrap();
        let sum = s.summary();
        assert!(sum.mean.is_nan());
        assert_eq!(sum.len, 0);
    }

    #[test]
    fn znormalize_has_zero_mean_unit_variance() {
        let z = znormalize(&[2.0, 4.0, 6.0, 8.0]);
        let mean: f64 = z.iter().sum::<f64>() / 4.0;
        let var: f64 = z.iter().map(|v| v * v).sum::<f64>() / 4.0;
        assert!(mean.abs() < 1e-12);
        assert!((var - 1.0).abs() < 1e-12);
    }

    #[test]
    fn znormalize_flat_is_zero() {
        assert_eq!(znormalize(&[5.0, 5.0, 5.0]), vec![0.0, 0.0, 0.0]);
        // Huge flat values must not explode via cancellation noise.
        assert_eq!(znormalize(&[1e15, 1e15, 1e15]), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn znormalize_is_shift_and_scale_invariant() {
        let base = [1.0, -3.0, 2.5, 0.0, 4.0];
        let shifted: Vec<f64> = base.iter().map(|v| v * 3.0 + 100.0).collect();
        let za = znormalize(&base);
        let zb = znormalize(&shifted);
        for (a, b) in za.iter().zip(&zb) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn euclidean_matches_hand_computation() {
        assert!((euclidean(&[0.0, 0.0], &[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert_eq!(euclidean(&[], &[]), 0.0);
    }
}
