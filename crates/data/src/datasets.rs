//! Synthetic stand-ins for the paper's five evaluation datasets.
//!
//! The real GAP / EEG(CAP) / ECG / EMG / ASTRO recordings are not
//! redistributable here, so each generator reproduces the *statistical
//! character* that drives VALMOD's behaviour (DESIGN.md §3):
//!
//! * **ECG** — regular quasi-periodic heartbeats ⇒ many near-identical
//!   subsequences, tight lower bounds, the paper's *best* case.
//! * **EMG** — bursty, heteroscedastic muscle noise ⇒ σ varies wildly with
//!   offset and length, loose lower bounds, the paper's *worst* case.
//! * **GAP** — daily/weekly seasonal electric load with demand spikes.
//! * **ASTRO** — smooth, tiny-amplitude X-ray flux with occasional flares.
//! * **EEG** — band-mixture oscillations with large amplitude swings.
//!
//! Moments are tuned towards the paper's Table 1 (scale/offset only — the
//! pruning behaviour depends on shape, not units).

use crate::generators::Gaussian;
use crate::series::Series;

/// The five benchmark datasets of the paper's evaluation (§6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// Electrocardiogram (driver-stress recording stand-in).
    Ecg,
    /// Electromyogram (driver-stress recording stand-in).
    Emg,
    /// Global active power (EDF electricity load stand-in).
    Gap,
    /// Hard X-ray light curve (AGN variability stand-in).
    Astro,
    /// Sleep EEG (CAP database stand-in).
    Eeg,
}

impl Dataset {
    /// All five datasets, in the paper's Table 1 order.
    pub const ALL: [Dataset; 5] =
        [Dataset::Ecg, Dataset::Gap, Dataset::Astro, Dataset::Emg, Dataset::Eeg];

    /// Short uppercase name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::Ecg => "ECG",
            Dataset::Emg => "EMG",
            Dataset::Gap => "GAP",
            Dataset::Astro => "ASTRO",
            Dataset::Eeg => "EEG",
        }
    }

    /// Generates `n` points of this dataset with the given seed.
    pub fn generate(self, n: usize, seed: u64) -> Series {
        match self {
            Dataset::Ecg => ecg_like(n, seed),
            Dataset::Emg => emg_like(n, seed),
            Dataset::Gap => gap_like(n, seed),
            Dataset::Astro => astro_like(n, seed),
            Dataset::Eeg => eeg_like(n, seed),
        }
    }
}

/// A smooth bump `exp(-x²/2w²)` centred at `c`.
#[inline]
fn bump(t: f64, c: f64, w: f64) -> f64 {
    let x = (t - c) / w;
    (-0.5 * x * x).exp()
}

/// Quasi-periodic ECG-like series: P wave, QRS complex, T wave repeated with
/// small period/amplitude jitter plus baseline wander.
pub fn ecg_like(n: usize, seed: u64) -> Series {
    let mut g = Gaussian::new(seed ^ 0xEC6);
    let mut out = vec![0.0; n];
    let base_period = 140.0;
    let mut beat_start = 0.0f64;
    while (beat_start as usize) < n {
        let period = base_period * (1.0 + 0.03 * g.sample());
        let amp = 1.0 + 0.05 * g.sample();
        let start = beat_start;
        let end = ((start + period) as usize).min(n);
        let first = start as usize;
        for (i, o) in out.iter_mut().enumerate().take(end).skip(first) {
            let phase = (i as f64 - start) / period; // 0..1 within a beat
                                                     // P, Q, R, S, T components of a stylised heartbeat.
            let v = 0.12 * bump(phase, 0.18, 0.025) - 0.18 * bump(phase, 0.355, 0.008)
                + 1.1 * bump(phase, 0.38, 0.012)
                - 0.25 * bump(phase, 0.405, 0.009)
                + 0.28 * bump(phase, 0.60, 0.045);
            *o += amp * v;
        }
        beat_start += period;
    }
    // Baseline wander + sensor noise, then scale towards Table 1 moments.
    let mut wander = 0.0;
    for (i, v) in out.iter_mut().enumerate() {
        wander = 0.999 * wander + 0.002 * g.sample();
        *v = (*v - 0.12 + wander + 0.01 * g.sample()) * 0.55 + 0.006 + 0.0 * i as f64;
    }
    Series::from_trusted(out)
}

/// Bursty EMG-like series: a low-amplitude noise floor interrupted by
/// contraction bursts whose envelope (and hence σ) varies strongly.
pub fn emg_like(n: usize, seed: u64) -> Series {
    let mut g = Gaussian::new(seed ^ 0xE36);
    let mut out = Vec::with_capacity(n);
    let mut i = 0usize;
    while i < n {
        // Quiet stretch.
        let quiet = 200 + g.uniform_usize(0, 600);
        for _ in 0..quiet.min(n - i) {
            out.push(0.004 * g.sample() - 0.005);
            i += 1;
            if i >= n {
                break;
            }
        }
        if i >= n {
            break;
        }
        // Burst with a raised-cosine envelope and heavy noise inside.
        let burst = 100 + g.uniform_usize(0, 500);
        let strength = 0.03 + 0.05 * g.uniform(0.0, 1.0);
        let blen = burst.min(n - i);
        for k in 0..blen {
            let env = 0.5 * (1.0 - (2.0 * std::f64::consts::PI * k as f64 / blen as f64).cos());
            out.push(strength * env * g.sample() - 0.005);
        }
        i += blen;
    }
    Series::from_trusted(out)
}

/// Seasonal power-load-like series: daily and weekly cycles, always-positive
/// demand, occasional usage spikes.
pub fn gap_like(n: usize, seed: u64) -> Series {
    let mut g = Gaussian::new(seed ^ 0x6A9);
    let day = 1440.0; // one sample per minute
    let week = day * 7.0;
    let mut spike = 0.0f64;
    let out = (0..n)
        .map(|i| {
            let t = i as f64;
            let daily = 0.9 * (2.0 * std::f64::consts::PI * t / day - 1.2).sin();
            let weekly = 0.25 * (2.0 * std::f64::consts::PI * t / week).sin();
            // Poisson-ish appliance spikes with exponential decay.
            if g.uniform(0.0, 1.0) < 0.002 {
                spike += 1.5 + g.uniform(0.0, 3.0);
            }
            spike *= 0.97;
            (1.10 + daily + weekly + 0.08 * g.sample() + spike).clamp(0.08, 10.67)
        })
        .collect();
    Series::from_trusted(out)
}

/// Astronomical light-curve-like series: a slowly drifting, very
/// low-amplitude flux with sparse transient flares.
pub fn astro_like(n: usize, seed: u64) -> Series {
    let mut g = Gaussian::new(seed ^ 0xA57);
    let mut drift = 0.0f64;
    let mut flare = 0.0f64;
    let out = (0..n)
        .map(|_| {
            drift = 0.9995 * drift + 0.000004 * g.sample();
            if g.uniform(0.0, 1.0) < 0.0005 {
                flare += 0.0008 + 0.0012 * g.uniform(0.0, 1.0);
            }
            flare *= 0.95;
            0.00003 + drift + flare + 0.00018 * g.sample()
        })
        .collect();
    Series::from_trusted(out)
}

/// Sleep-EEG-like series: a mixture of delta/theta/alpha/spindle bands whose
/// amplitudes wax and wane, plus measurement noise.
pub fn eeg_like(n: usize, seed: u64) -> Series {
    let mut g = Gaussian::new(seed ^ 0xEE6);
    // (frequency in cycles/sample at 100 Hz sampling, base amplitude)
    let bands: [(f64, f64); 4] = [(0.015, 28.0), (0.055, 14.0), (0.10, 9.0), (0.135, 6.0)];
    let mut envs = [1.0f64; 4];
    let mut phases = [0.0f64; 4];
    for (k, p) in phases.iter_mut().enumerate() {
        *p = g.uniform(0.0, std::f64::consts::TAU) + k as f64;
    }
    let out = (0..n)
        .map(|i| {
            let t = i as f64;
            let mut v = 3.34;
            for (k, &(freq, amp)) in bands.iter().enumerate() {
                envs[k] = (envs[k] + 0.002 * g.sample()).clamp(0.2, 2.5);
                v += amp * envs[k] * (std::f64::consts::TAU * freq * t + phases[k]).sin();
            }
            (v + 6.0 * g.sample()).clamp(-966.0, 920.0)
        })
        .collect();
    Series::from_trusted(out)
}

/// A deterministic prototypic "appliance signature" à la the TRACE dataset
/// (Fig. 2): idle, heat-up ramp, agitation oscillation, spin-down.
pub fn trace_signature(len: usize) -> Vec<f64> {
    assert!(len >= 8, "signature needs at least 8 points");
    (0..len)
        .map(|i| {
            let x = i as f64 / (len - 1) as f64; // 0..1
            if x < 0.15 {
                0.05
            } else if x < 0.35 {
                // heat-up ramp
                0.05 + (x - 0.15) / 0.20 * 0.9
            } else if x < 0.8 {
                // agitation: oscillation around the plateau (kept below the
                // Nyquist rate of the shortest Fig. 2 resampling, so the
                // signature survives speed changes)
                0.95 + 0.18 * (2.0 * std::f64::consts::PI * 5.0 * (x - 0.35)).sin()
            } else {
                // spin-down
                0.95 * (1.0 - (x - 0.8) / 0.2).max(0.0) + 0.05
            }
        })
        .collect()
}

/// Ground truth returned by [`epg_like`].
#[derive(Debug, Clone)]
pub struct EpgGroundTruth {
    /// Offsets of the "probing"-behaviour instances.
    pub probing_offsets: Vec<usize>,
    /// Length of each probing instance.
    pub probing_len: usize,
    /// Offsets of the "xylem-ingestion"-behaviour instances.
    pub ingestion_offsets: Vec<usize>,
    /// Length of each ingestion instance.
    pub ingestion_len: usize,
}

/// Electrical-Penetration-Graph-like series for the entomology case study
/// (paper Figs. 1 and 16): two *semantically different* repeated behaviours
/// of *slightly different lengths* planted into a drifting background.
///
/// * "Probing": an irregular multi-peak pattern of length `probing_len`.
/// * "Ingestion": a simple high-frequency sawtooth of length `ingestion_len`.
pub fn epg_like(
    n: usize,
    probing_len: usize,
    ingestion_len: usize,
    seed: u64,
) -> (Series, EpgGroundTruth) {
    assert!(n >= 8 * probing_len.max(ingestion_len), "series too short for the case study");
    let mut g = Gaussian::new(seed ^ 0xE96);
    // Drifting, noisy background.
    let mut out = Vec::with_capacity(n);
    let mut level = 0.0f64;
    for _ in 0..n {
        level += 0.05 * g.sample();
        out.push(level + 0.3 * g.sample());
    }
    // Probing pattern: three sharp dips of varying depth then a recovery.
    let probing: Vec<f64> = (0..probing_len)
        .map(|i| {
            let x = i as f64 / probing_len as f64;
            -3.0 * bump(x, 0.2, 0.04) - 4.5 * bump(x, 0.45, 0.05) - 2.0 * bump(x, 0.7, 0.03)
                + 1.2 * bump(x, 0.9, 0.06)
        })
        .collect();
    // Ingestion pattern: a regular sawtooth ("sucking" rhythm).
    let ingestion: Vec<f64> = (0..ingestion_len)
        .map(|i| {
            let cycles = 8.0;
            let phase = (i as f64 * cycles / ingestion_len as f64).fract();
            2.0 * phase - 1.0
        })
        .collect();
    let mut truth = EpgGroundTruth {
        probing_offsets: Vec::new(),
        probing_len,
        ingestion_offsets: Vec::new(),
        ingestion_len,
    };
    // Interleave two instances of each behaviour in four quarters:
    // probing, ingestion, probing, ingestion.
    let quarter = n / 4;
    for k in 0..4 {
        let is_probing = k % 2 == 0;
        let pattern: &[f64] = if is_probing { &probing } else { &ingestion };
        let lo = k * quarter;
        let hi = lo + quarter - pattern.len();
        let start = g.uniform_usize(lo, hi);
        let base = out[start];
        for (j, &p) in pattern.iter().enumerate() {
            out[start + j] = base + 2.5 * p + 0.05 * g.sample();
        }
        if is_probing {
            truth.probing_offsets.push(start);
        } else {
            truth.ingestion_offsets.push(start);
        }
    }
    (Series::from_trusted(out), truth)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_datasets_generate_requested_length() {
        for ds in Dataset::ALL {
            let s = ds.generate(5000, 1);
            assert_eq!(s.len(), 5000, "{}", ds.name());
            assert!(s.values().iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn datasets_are_deterministic_per_seed() {
        for ds in Dataset::ALL {
            assert_eq!(ds.generate(512, 9).values(), ds.generate(512, 9).values());
            assert_ne!(ds.generate(512, 9).values(), ds.generate(512, 10).values());
        }
    }

    #[test]
    fn ecg_is_roughly_periodic() {
        let s = ecg_like(4000, 3);
        // Autocorrelation at one beat (~140) should far exceed a random lag.
        let v = s.values();
        let corr = |lag: usize| -> f64 {
            v[..2000].iter().zip(&v[lag..2000 + lag]).map(|(a, b)| a * b).sum()
        };
        assert!(corr(140) > corr(70), "beat-period autocorrelation should dominate");
    }

    #[test]
    fn emg_variance_is_heteroscedastic() {
        let s = emg_like(20_000, 5);
        let v = s.values();
        let window_std = |w: &[f64]| {
            let m = w.iter().sum::<f64>() / w.len() as f64;
            (w.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / w.len() as f64).sqrt()
        };
        let stds: Vec<f64> = v.chunks(500).map(window_std).collect();
        let max = stds.iter().cloned().fold(0.0, f64::max);
        let min = stds.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max / min.max(1e-12) > 3.0, "EMG σ should vary strongly across windows");
    }

    #[test]
    fn gap_stays_in_physical_range() {
        let s = gap_like(10_000, 7);
        for &v in s.values() {
            assert!((0.08..=10.67).contains(&v));
        }
    }

    #[test]
    fn astro_amplitude_is_tiny() {
        let s = astro_like(10_000, 7);
        let sum = s.summary();
        assert!(sum.std_dev < 0.01, "ASTRO std {} too large", sum.std_dev);
    }

    #[test]
    fn eeg_has_large_swings() {
        let s = eeg_like(10_000, 7);
        let sum = s.summary();
        assert!(sum.std_dev > 10.0, "EEG std {} too small", sum.std_dev);
    }

    #[test]
    fn trace_signature_shape() {
        let sig = trace_signature(200);
        assert_eq!(sig.len(), 200);
        // Idle start, plateau in the middle, back down at the end.
        assert!(sig[0] < 0.1);
        assert!(sig[100] > 0.6);
        assert!(sig[199] < 0.2);
    }

    #[test]
    fn epg_plants_two_of_each_behaviour() {
        let (series, truth) = epg_like(20_000, 500, 600, 11);
        assert_eq!(truth.probing_offsets.len(), 2);
        assert_eq!(truth.ingestion_offsets.len(), 2);
        // Planted instances of the same family are close after z-normalisation.
        let z = |o: usize, l: usize| crate::series::znormalize(series.subsequence(o, l));
        let a = z(truth.probing_offsets[0], 500);
        let b = z(truth.probing_offsets[1], 500);
        assert!(crate::series::euclidean(&a, &b) < 6.0);
        let c = z(truth.ingestion_offsets[0], 600);
        let d = z(truth.ingestion_offsets[1], 600);
        assert!(crate::series::euclidean(&c, &d) < 6.0);
    }
}
