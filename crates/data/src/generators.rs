//! Deterministic synthetic series generators.
//!
//! Everything is seeded through the in-repo portable PRNG
//! ([`crate::rng::Xoshiro256`]), so every experiment in the repository is
//! exactly reproducible across platforms and library versions. Gaussian
//! sampling is implemented in-repo (Box–Muller) because `rand_distr` is not
//! among the approved offline dependencies.

use crate::rng::Xoshiro256;

/// A seeded Gaussian sampler (Box–Muller, with one cached spare variate).
#[derive(Debug, Clone)]
pub struct Gaussian {
    rng: Xoshiro256,
    spare: Option<f64>,
}

impl Gaussian {
    /// Creates a sampler from a seed.
    pub fn new(seed: u64) -> Self {
        Gaussian { rng: Xoshiro256::seed_from_u64(seed), spare: None }
    }

    /// Draws one standard-normal variate.
    pub fn sample(&mut self) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        // Box–Muller: u1 ∈ (0, 1] avoids ln(0).
        let u1: f64 = 1.0 - self.rng.next_f64();
        let u2: f64 = self.rng.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Draws a normal variate with the given mean and standard deviation.
    pub fn sample_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.sample()
    }

    /// Draws a uniform value in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        self.rng.uniform(lo, hi)
    }

    /// Draws a uniform integer in `[lo, hi)`.
    pub fn uniform_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.rng.uniform_usize(lo, hi)
    }
}

/// White Gaussian noise of length `n`.
pub fn gaussian_noise(n: usize, seed: u64) -> Vec<f64> {
    let mut g = Gaussian::new(seed);
    (0..n).map(|_| g.sample()).collect()
}

/// A Gaussian random walk (the canonical hard-to-prune motif workload).
pub fn random_walk(n: usize, seed: u64) -> Vec<f64> {
    let mut g = Gaussian::new(seed);
    let mut acc = 0.0;
    (0..n)
        .map(|_| {
            acc += g.sample();
            acc
        })
        .collect()
}

/// A sum of sinusoids plus noise.
///
/// `components` are `(frequency, amplitude)` pairs, with frequency in cycles
/// per sample.
pub fn sine_mixture(n: usize, components: &[(f64, f64)], noise_std: f64, seed: u64) -> Vec<f64> {
    let mut g = Gaussian::new(seed);
    (0..n)
        .map(|i| {
            let t = i as f64;
            let signal: f64 = components
                .iter()
                .map(|&(freq, amp)| amp * (2.0 * std::f64::consts::PI * freq * t).sin())
                .sum();
            signal + noise_std * g.sample()
        })
        .collect()
}

/// Description of a motif planted into a noise background.
#[derive(Debug, Clone)]
pub struct PlantedMotif {
    /// Offsets at which the pattern instances start.
    pub offsets: Vec<usize>,
    /// Length of each instance.
    pub length: usize,
}

/// Plants `instances` occurrences of a smooth random pattern of length
/// `motif_len` into a Gaussian random-walk background of length `n`.
///
/// Instances are amplitude-scaled copies with a little additive noise
/// (`jitter_std`), so the planted pair is by far the closest z-normalised
/// match in the series. Returns the series and the planted offsets.
///
/// # Panics
/// Panics if the instances cannot be placed without overlapping
/// (`instances * 2 * motif_len > n`).
pub fn plant_motif(
    n: usize,
    motif_len: usize,
    instances: usize,
    jitter_std: f64,
    seed: u64,
) -> (Vec<f64>, PlantedMotif) {
    assert!(instances >= 2, "need at least two instances to form a motif pair");
    assert!(
        instances * 2 * motif_len <= n,
        "cannot place {instances} non-overlapping instances of length {motif_len} in {n} points"
    );
    let mut g = Gaussian::new(seed);
    // Background: a mild random walk, scaled so planted patterns stand out.
    let mut series = Vec::with_capacity(n);
    let mut acc = 0.0;
    for _ in 0..n {
        acc += 0.5 * g.sample();
        series.push(acc);
    }
    // A smooth pattern: cumulative sum of noise, then detrended.
    let mut pattern = Vec::with_capacity(motif_len);
    let mut p = 0.0;
    for i in 0..motif_len {
        p += g.sample()
            + 3.0 * (2.0 * std::f64::consts::PI * 3.0 * i as f64 / motif_len as f64).cos();
        pattern.push(p);
    }
    // Evenly spread slots, jittered start inside each slot.
    let slot = n / instances;
    let mut offsets = Vec::with_capacity(instances);
    for k in 0..instances {
        let lo = k * slot;
        let hi = (lo + slot).min(n) - motif_len;
        let start = if hi > lo { g.uniform_usize(lo, hi) } else { lo };
        let scale = 1.0 + 0.05 * g.sample();
        let level = series[start];
        for (j, &pv) in pattern.iter().enumerate() {
            series[start + j] = level + scale * pv + jitter_std * g.sample();
        }
        // Reconnect the background after the pattern to avoid a cliff.
        if start + motif_len < n {
            let jump = series[start + motif_len - 1] - series[start + motif_len];
            for v in &mut series[start + motif_len..] {
                *v += jump;
            }
        }
        offsets.push(start);
    }
    (series, PlantedMotif { offsets, length: motif_len })
}

/// Linearly resamples `pattern` to `new_len` points (used by the Fig. 2
/// variable-speed signature experiment).
pub fn resample(pattern: &[f64], new_len: usize) -> Vec<f64> {
    assert!(!pattern.is_empty() && new_len > 0);
    if pattern.len() == 1 {
        return vec![pattern[0]; new_len];
    }
    if new_len == 1 {
        return vec![pattern[0]];
    }
    let scale = (pattern.len() - 1) as f64 / (new_len - 1) as f64;
    (0..new_len)
        .map(|i| {
            let x = i as f64 * scale;
            let lo = x.floor() as usize;
            let hi = (lo + 1).min(pattern.len() - 1);
            let frac = x - lo as f64;
            pattern[lo] * (1.0 - frac) + pattern[hi] * frac
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaussian_moments_are_standard_normal() {
        let mut g = Gaussian::new(7);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| g.sample()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(gaussian_noise(100, 42), gaussian_noise(100, 42));
        assert_ne!(gaussian_noise(100, 42), gaussian_noise(100, 43));
        assert_eq!(random_walk(50, 1), random_walk(50, 1));
    }

    #[test]
    fn random_walk_accumulates() {
        let w = random_walk(1000, 3);
        assert_eq!(w.len(), 1000);
        // A random walk is almost surely not bounded by tight constants.
        let range =
            w.iter().cloned().fold(f64::MIN, f64::max) - w.iter().cloned().fold(f64::MAX, f64::min);
        assert!(range > 1.0);
    }

    #[test]
    fn sine_mixture_is_periodic_when_noiseless() {
        let s = sine_mixture(200, &[(0.05, 1.0)], 0.0, 0);
        for i in 0..180 {
            assert!((s[i] - s[i + 20]).abs() < 1e-9, "period-20 signal should repeat");
        }
    }

    #[test]
    fn planted_motif_instances_are_near_identical() {
        let (series, planted) = plant_motif(4000, 100, 3, 0.01, 99);
        assert_eq!(planted.offsets.len(), 3);
        let a = crate::series::znormalize(&series[planted.offsets[0]..planted.offsets[0] + 100]);
        let b = crate::series::znormalize(&series[planted.offsets[1]..planted.offsets[1] + 100]);
        let d = crate::series::euclidean(&a, &b);
        // Nearly identical after z-normalisation.
        assert!(d < 1.0, "planted instances differ too much: {d}");
    }

    #[test]
    fn planted_offsets_do_not_overlap() {
        let (_, planted) = plant_motif(10_000, 200, 4, 0.05, 5);
        let mut offs = planted.offsets.clone();
        offs.sort_unstable();
        for w in offs.windows(2) {
            assert!(w[1] - w[0] >= 200, "instances overlap");
        }
    }

    #[test]
    #[should_panic(expected = "cannot place")]
    fn plant_motif_rejects_impossible_packing() {
        plant_motif(100, 30, 3, 0.0, 0);
    }

    #[test]
    fn resample_endpoints_and_identity() {
        let p = [0.0, 1.0, 4.0, 9.0];
        assert_eq!(resample(&p, 4), p.to_vec());
        let up = resample(&p, 7);
        assert_eq!(up.len(), 7);
        assert!((up[0] - 0.0).abs() < 1e-12);
        assert!((up[6] - 9.0).abs() < 1e-12);
        let down = resample(&p, 2);
        assert_eq!(down, vec![0.0, 9.0]);
    }

    #[test]
    fn resample_is_monotone_for_monotone_input() {
        let p: Vec<f64> = (0..50).map(|i| (i * i) as f64).collect();
        let r = resample(&p, 123);
        for w in r.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }
}
