//! Series preprocessing utilities: the operations a practitioner applies
//! before motif discovery (and that the paper's experiments imply — e.g.
//! down-sampling produced the variable-speed TRACE signatures of Fig. 2).

use crate::error::{DataError, Result};
use crate::series::Series;

/// Centred moving average with an odd window (edges use the available
/// samples, so output length equals input length).
pub fn moving_average(values: &[f64], window: usize) -> Result<Vec<f64>> {
    if window == 0 || window.is_multiple_of(2) {
        return Err(DataError::InvalidParameter(format!(
            "moving-average window must be odd and positive, got {window}"
        )));
    }
    let n = values.len();
    let half = window / 2;
    let mut prefix = Vec::with_capacity(n + 1);
    prefix.push(0.0);
    let mut acc = 0.0;
    for &v in values {
        acc += v;
        prefix.push(acc);
    }
    Ok((0..n)
        .map(|i| {
            let lo = i.saturating_sub(half);
            let hi = (i + half + 1).min(n);
            (prefix[hi] - prefix[lo]) / (hi - lo) as f64
        })
        .collect())
}

/// Downsamples by an integer factor, averaging each block (anti-aliasing by
/// block mean; the final partial block is averaged over what remains).
pub fn downsample(values: &[f64], factor: usize) -> Result<Vec<f64>> {
    if factor == 0 {
        return Err(DataError::InvalidParameter("downsample factor must be positive".into()));
    }
    Ok(values.chunks(factor).map(|chunk| chunk.iter().sum::<f64>() / chunk.len() as f64).collect())
}

/// First differences `x[i+1] − x[i]` (length shrinks by one). Differencing
/// removes level/trend, a common step before motif search on drifting data.
pub fn difference(values: &[f64]) -> Vec<f64> {
    values.windows(2).map(|w| w[1] - w[0]).collect()
}

/// Clips values into `[lo, hi]` (sensor despiking).
pub fn clip(values: &mut [f64], lo: f64, hi: f64) {
    debug_assert!(lo <= hi);
    for v in values.iter_mut() {
        *v = v.clamp(lo, hi);
    }
}

/// Replaces non-finite samples by linear interpolation between the nearest
/// finite neighbours (boundary gaps take the nearest finite value). Errors
/// when the input has no finite sample at all.
pub fn interpolate_gaps(values: &[f64]) -> Result<Series> {
    let n = values.len();
    let first_finite = values.iter().position(|v| v.is_finite());
    let Some(first) = first_finite else {
        return Err(DataError::InvalidParameter("no finite samples to interpolate from".into()));
    };
    let mut out = values.to_vec();
    // Leading gap.
    for v in out.iter_mut().take(first) {
        *v = values[first];
    }
    let mut i = first;
    while i < n {
        if out[i].is_finite() {
            i += 1;
            continue;
        }
        // Find the gap [i, j).
        let mut j = i;
        while j < n && !out[j].is_finite() {
            j += 1;
        }
        let left = out[i - 1];
        if j == n {
            for v in out.iter_mut().take(n).skip(i) {
                *v = left;
            }
        } else {
            let right = out[j];
            let span = (j - i + 1) as f64;
            for (k, v) in out.iter_mut().take(j).skip(i).enumerate() {
                let t = (k + 1) as f64 / span;
                *v = left * (1.0 - t) + right * t;
            }
        }
        i = j;
    }
    Series::new(out)
}

/// Splits a series into `k` near-equal contiguous segments (for per-segment
/// analysis or parallel dispatch). The first `n % k` segments get one extra
/// sample.
pub fn segments(values: &[f64], k: usize) -> Result<Vec<&[f64]>> {
    if k == 0 || k > values.len() {
        return Err(DataError::InvalidParameter(format!(
            "cannot split {} samples into {k} segments",
            values.len()
        )));
    }
    let base = values.len() / k;
    let extra = values.len() % k;
    let mut out = Vec::with_capacity(k);
    let mut start = 0;
    for s in 0..k {
        let len = base + usize::from(s < extra);
        out.push(&values[start..start + len]);
        start += len;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moving_average_smooths_and_preserves_length() {
        let noisy: Vec<f64> = (0..100).map(|i| (i % 2) as f64).collect();
        let smooth = moving_average(&noisy, 5).unwrap();
        assert_eq!(smooth.len(), 100);
        // Interior values of an alternating 0/1 signal average toward 0.5.
        for &v in &smooth[2..98] {
            assert!((v - 0.5).abs() < 0.11, "{v}");
        }
        assert!(moving_average(&noisy, 4).is_err());
        assert!(moving_average(&noisy, 0).is_err());
    }

    #[test]
    fn moving_average_window_one_is_identity() {
        let v = [1.0, -2.0, 3.5];
        assert_eq!(moving_average(&v, 1).unwrap(), v.to_vec());
    }

    #[test]
    fn downsample_block_means() {
        let v = [1.0, 3.0, 5.0, 7.0, 9.0];
        assert_eq!(downsample(&v, 2).unwrap(), vec![2.0, 6.0, 9.0]);
        assert_eq!(downsample(&v, 1).unwrap(), v.to_vec());
        assert!(downsample(&v, 0).is_err());
    }

    #[test]
    fn difference_removes_linear_trend() {
        let v: Vec<f64> = (0..50).map(|i| 3.0 * i as f64 + 7.0).collect();
        let d = difference(&v);
        assert_eq!(d.len(), 49);
        assert!(d.iter().all(|&x| (x - 3.0).abs() < 1e-12));
    }

    #[test]
    fn clip_bounds_values() {
        let mut v = [-5.0, 0.0, 5.0];
        clip(&mut v, -1.0, 1.0);
        assert_eq!(v, [-1.0, 0.0, 1.0]);
    }

    #[test]
    fn interpolate_fills_interior_gap_linearly() {
        let v = [1.0, f64::NAN, f64::NAN, 4.0];
        let s = interpolate_gaps(&v).unwrap();
        assert_eq!(s.values(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn interpolate_extends_boundary_gaps() {
        let v = [f64::NAN, 2.0, f64::NAN];
        let s = interpolate_gaps(&v).unwrap();
        assert_eq!(s.values(), &[2.0, 2.0, 2.0]);
        assert!(interpolate_gaps(&[f64::NAN, f64::NAN]).is_err());
    }

    #[test]
    fn segments_partition_everything() {
        let v: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let segs = segments(&v, 3).unwrap();
        assert_eq!(segs.len(), 3);
        assert_eq!(segs[0].len(), 4); // 10 = 4 + 3 + 3
        let total: usize = segs.iter().map(|s| s.len()).sum();
        assert_eq!(total, 10);
        assert!(segments(&v, 0).is_err());
        assert!(segments(&v, 11).is_err());
    }
}
