//! The single workspace error enum.
//!
//! Every crate in the stack reports failures through [`ValmodError`]:
//! the data substrate's parse/validation failures, the core driver's
//! parameter rejections, and the service layer's overload and protocol
//! errors all live in one enum with context-preserving variants, so a
//! failure crosses crate boundaries without stringly conversions. The
//! historical per-crate names (`DataError`, `ServeError`) remain as type
//! aliases — variants are constructible and matchable through an alias,
//! so existing call sites keep working.
//!
//! Every variant maps to a stable machine-readable [`ValmodError::kind`]
//! string used on the service wire; overload (`busy`) and deadline
//! misses are ordinary, expected errors — the scheduler degrades by
//! *reporting* them, never by panicking or dropping connections.

use std::fmt;
use std::io;

/// Alias kept for source compatibility with the data substrate's
/// original error type.
pub type DataError = ValmodError;

/// Errors produced anywhere in the VALMOD stack, from file loading to
/// query serving.
#[derive(Debug)]
pub enum ValmodError {
    /// An I/O failure: series file access or a service socket.
    Io(io::Error),
    /// A value in a text file could not be parsed as a finite `f64`.
    Parse {
        /// 1-based line number of the offending value.
        line: usize,
        /// The raw token that failed to parse.
        token: String,
    },
    /// A non-finite value (NaN or ±∞) was encountered where a finite sample
    /// is required.
    NonFinite {
        /// Index of the offending sample.
        index: usize,
    },
    /// The series is too short for the requested operation.
    TooShort {
        /// Actual series length.
        len: usize,
        /// Minimum length required.
        required: usize,
    },
    /// An invalid parameter combination (empty range, zero length, …).
    InvalidParameter(String),
    /// The bounded request queue is full; retry later (load shedding).
    Busy,
    /// The request's deadline passed before a result could be delivered.
    DeadlineExceeded,
    /// The engine is shutting down and accepts no new work.
    ShuttingDown,
    /// No series is loaded under the given name.
    UnknownSeries(String),
    /// A series with this name already exists (and `replace` was not set).
    SeriesExists(String),
    /// A request line could not be parsed or is missing fields.
    Protocol(String),
}

impl ValmodError {
    /// The stable machine-readable error category used on the wire.
    pub fn kind(&self) -> &'static str {
        match self {
            ValmodError::Io(_) => "io",
            ValmodError::Parse { .. } => "parse",
            ValmodError::NonFinite { .. } => "non_finite",
            ValmodError::TooShort { .. } => "too_short",
            ValmodError::InvalidParameter(_) => "invalid_parameter",
            ValmodError::Busy => "busy",
            ValmodError::DeadlineExceeded => "deadline",
            ValmodError::ShuttingDown => "shutting_down",
            ValmodError::UnknownSeries(_) => "unknown_series",
            ValmodError::SeriesExists(_) => "series_exists",
            ValmodError::Protocol(_) => "protocol",
        }
    }
}

impl fmt::Display for ValmodError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValmodError::Io(e) => write!(f, "I/O error: {e}"),
            ValmodError::Parse { line, token } => {
                write!(f, "cannot parse {token:?} as a finite number (line {line})")
            }
            ValmodError::NonFinite { index } => {
                write!(f, "non-finite sample at index {index}")
            }
            ValmodError::TooShort { len, required } => {
                write!(f, "series of length {len} is shorter than required {required}")
            }
            ValmodError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            ValmodError::Busy => write!(f, "request queue is full; retry later"),
            ValmodError::DeadlineExceeded => write!(f, "deadline exceeded"),
            ValmodError::ShuttingDown => write!(f, "server is shutting down"),
            ValmodError::UnknownSeries(name) => write!(f, "no series named {name:?} is loaded"),
            ValmodError::SeriesExists(name) => {
                write!(f, "series {name:?} already exists (pass \"replace\": true to overwrite)")
            }
            ValmodError::Protocol(msg) => write!(f, "protocol error: {msg}"),
        }
    }
}

impl std::error::Error for ValmodError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ValmodError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ValmodError {
    fn from(e: io::Error) -> Self {
        ValmodError::Io(e)
    }
}

/// Convenience alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, ValmodError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = DataError::Parse { line: 3, token: "abc".into() };
        assert!(e.to_string().contains("line 3"));
        let e = DataError::TooShort { len: 5, required: 10 };
        assert!(e.to_string().contains('5') && e.to_string().contains("10"));
        let e = DataError::NonFinite { index: 42 };
        assert!(e.to_string().contains("42"));
        let e = DataError::InvalidParameter("l_min > l_max".into());
        assert!(e.to_string().contains("l_min"));
        let e = ValmodError::UnknownSeries("sensor".into());
        assert!(e.to_string().contains("sensor"));
    }

    #[test]
    fn io_error_converts_and_chains() {
        let io_err = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: DataError = io_err.into();
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn kinds_are_stable_and_distinct() {
        let errs = [
            ValmodError::Io(io::Error::other("net")),
            ValmodError::Parse { line: 1, token: "x".into() },
            ValmodError::NonFinite { index: 0 },
            ValmodError::TooShort { len: 1, required: 2 },
            ValmodError::InvalidParameter("p".into()),
            ValmodError::Busy,
            ValmodError::DeadlineExceeded,
            ValmodError::ShuttingDown,
            ValmodError::UnknownSeries("x".into()),
            ValmodError::SeriesExists("x".into()),
            ValmodError::Protocol("bad".into()),
        ];
        let kinds: Vec<_> = errs.iter().map(|e| e.kind()).collect();
        let mut dedup = kinds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), kinds.len(), "kinds must be distinct: {kinds:?}");
        for e in &errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn variants_work_through_the_legacy_alias() {
        // DataError is an alias of ValmodError; construction and
        // matching through it must keep compiling across the workspace.
        let e: DataError = DataError::NonFinite { index: 7 };
        assert!(matches!(e, ValmodError::NonFinite { index: 7 }));
        assert_eq!(e.kind(), "non_finite");
    }
}
