//! Error type for the data substrate.

use std::fmt;
use std::io;

/// Errors produced while loading, constructing, or validating data series.
#[derive(Debug)]
pub enum DataError {
    /// An I/O failure while reading or writing a series file.
    Io(io::Error),
    /// A value in a text file could not be parsed as a finite `f64`.
    Parse {
        /// 1-based line number of the offending value.
        line: usize,
        /// The raw token that failed to parse.
        token: String,
    },
    /// A non-finite value (NaN or ±∞) was encountered where a finite sample
    /// is required.
    NonFinite {
        /// Index of the offending sample.
        index: usize,
    },
    /// The series is too short for the requested operation.
    TooShort {
        /// Actual series length.
        len: usize,
        /// Minimum length required.
        required: usize,
    },
    /// An invalid parameter combination (empty range, zero length, …).
    InvalidParameter(String),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::Io(e) => write!(f, "I/O error: {e}"),
            DataError::Parse { line, token } => {
                write!(f, "cannot parse {token:?} as a number (line {line})")
            }
            DataError::NonFinite { index } => {
                write!(f, "non-finite sample at index {index}")
            }
            DataError::TooShort { len, required } => {
                write!(f, "series of length {len} is shorter than required {required}")
            }
            DataError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl std::error::Error for DataError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DataError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for DataError {
    fn from(e: io::Error) -> Self {
        DataError::Io(e)
    }
}

/// Convenience alias used throughout the data substrate.
pub type Result<T> = std::result::Result<T, DataError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = DataError::Parse { line: 3, token: "abc".into() };
        assert!(e.to_string().contains("line 3"));
        let e = DataError::TooShort { len: 5, required: 10 };
        assert!(e.to_string().contains('5') && e.to_string().contains("10"));
        let e = DataError::NonFinite { index: 42 };
        assert!(e.to_string().contains("42"));
        let e = DataError::InvalidParameter("l_min > l_max".into());
        assert!(e.to_string().contains("l_min"));
    }

    #[test]
    fn io_error_converts_and_chains() {
        let io_err = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: DataError = io_err.into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
