//! Rolling subsequence statistics.
//!
//! Every matrix-profile distance (paper Eq. 3) and every Eq. 2 lower bound
//! needs per-subsequence means and standard deviations, for *many* lengths.
//! [`RollingStats`] precomputes compensated prefix sums once (`O(n)`) and then
//! answers `μ(i, ℓ)` / `σ(i, ℓ)` for any offset and any length in `O(1)`.
//!
//! Numerical policy (DESIGN.md §7): the series is centred by its global mean
//! before the prefix sums are built. Z-normalised distances are invariant to
//! that shift, and centring keeps `Σx` and `Σx²` small so the classic
//! `ss/ℓ − μ²` variance formula stays well-conditioned. True (uncentred)
//! means are recovered by adding the stored offset back.

use crate::error::{DataError, Result};

/// Precomputed prefix sums supporting O(1) subsequence mean/σ queries for
/// arbitrary lengths.
#[derive(Debug, Clone)]
pub struct RollingStats {
    /// `prefix[i] = Σ_{k<i} (x_k − offset)`, length n+1.
    prefix: Vec<f64>,
    /// `prefix_sq[i] = Σ_{k<i} (x_k − offset)²`, length n+1.
    prefix_sq: Vec<f64>,
    /// `run[i]` = length of the constant run of samples ending at `i`
    /// (saturating). Lets σ queries report exact zeros for constant
    /// windows, where the `ss/ℓ − μ²` formula would return cancellation
    /// noise (~1e-7·|x|) that fools flat-subsequence detection.
    run: Vec<u32>,
    /// Global mean subtracted before accumulation.
    offset: f64,
    n: usize,
}

impl RollingStats {
    /// Builds the prefix sums for `series`, centring by its global mean.
    pub fn new(series: &[f64]) -> Self {
        let n = series.len();
        let offset = if n == 0 { 0.0 } else { neumaier_sum(series.iter().copied()) / n as f64 };
        Self::with_offset(series, offset)
    }

    /// Builds the prefix sums for `series` centred by an explicit `offset`
    /// instead of the series' own mean.
    ///
    /// Incremental ingestion needs this: a series that grows by appends must
    /// keep the offset pinned at its load-time value, so the prefix sums over
    /// the original samples — and every distance derived from them — stay
    /// bit-identical after the append (the left-to-right compensated
    /// accumulation makes each `prefix[i]` depend only on samples before `i`).
    pub fn with_offset(series: &[f64], offset: f64) -> Self {
        let n = series.len();
        let mut prefix = Vec::with_capacity(n + 1);
        let mut prefix_sq = Vec::with_capacity(n + 1);
        prefix.push(0.0);
        prefix_sq.push(0.0);
        // Neumaier-compensated running sums: the compensation terms keep the
        // prefix arrays accurate even for millions of points.
        let (mut s, mut cs) = (0.0f64, 0.0f64);
        let (mut q, mut cq) = (0.0f64, 0.0f64);
        let mut run = Vec::with_capacity(n);
        for (i, &x) in series.iter().enumerate() {
            let v = x - offset;
            add_compensated(&mut s, &mut cs, v);
            add_compensated(&mut q, &mut cq, v * v);
            prefix.push(s + cs);
            prefix_sq.push(q + cq);
            run.push(constant_run(&run, i > 0 && x == series[i - 1]));
        }
        RollingStats { prefix, prefix_sq, run, offset, n }
    }

    /// Length of the underlying series.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the underlying series is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Mean of the subsequence starting at `i` with length `l`.
    ///
    /// # Panics
    /// Debug-panics when the subsequence is out of range.
    #[inline]
    pub fn mean(&self, i: usize, l: usize) -> f64 {
        debug_assert!(l > 0 && i + l <= self.n);
        (self.prefix[i + l] - self.prefix[i]) / l as f64 + self.offset
    }

    /// Population standard deviation of the subsequence starting at `i` with
    /// length `l`. Negative variance from rounding is clamped to zero.
    #[inline]
    pub fn std_dev(&self, i: usize, l: usize) -> f64 {
        debug_assert!(l > 0 && i + l <= self.n);
        if self.run[i + l - 1] as usize >= l {
            return 0.0; // exactly constant window
        }
        let inv_l = 1.0 / l as f64;
        let m = (self.prefix[i + l] - self.prefix[i]) * inv_l;
        let ss = (self.prefix_sq[i + l] - self.prefix_sq[i]) * inv_l;
        (ss - m * m).max(0.0).sqrt()
    }

    /// Centred sum `Σ (x − offset)` over the subsequence — used by kernels
    /// that work in the centred domain.
    #[inline]
    pub fn centered_sum(&self, i: usize, l: usize) -> f64 {
        self.prefix[i + l] - self.prefix[i]
    }

    /// Centred squared sum `Σ (x − offset)²` over the subsequence.
    #[inline]
    pub fn centered_sq_sum(&self, i: usize, l: usize) -> f64 {
        self.prefix_sq[i + l] - self.prefix_sq[i]
    }

    /// The global-mean offset subtracted during construction.
    #[inline]
    pub fn offset(&self) -> f64 {
        self.offset
    }

    /// Materialises mean/σ vectors for every subsequence of length `l`
    /// (`n − ℓ + 1` entries) — the layout STOMP's inner loop wants.
    pub fn per_length(&self, l: usize) -> Result<LengthStats> {
        if l == 0 {
            return Err(DataError::InvalidParameter("length must be positive".into()));
        }
        if self.n < l {
            return Err(DataError::TooShort { len: self.n, required: l });
        }
        let count = self.n - l + 1;
        let mut means = Vec::with_capacity(count);
        let mut stds = Vec::with_capacity(count);
        for i in 0..count {
            means.push(self.mean(i, l));
            stds.push(self.std_dev(i, l));
        }
        Ok(LengthStats { l, means, stds })
    }
}

/// Per-length materialised subsequence statistics.
#[derive(Debug, Clone)]
pub struct LengthStats {
    /// Subsequence length these statistics describe.
    pub l: usize,
    /// `means[i] = μ(T_{i,ℓ})`.
    pub means: Vec<f64>,
    /// `stds[i] = σ(T_{i,ℓ})`.
    pub stds: Vec<f64>,
}

impl LengthStats {
    /// Number of subsequences covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.means.len()
    }

    /// Whether no subsequence is covered.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.means.is_empty()
    }
}

/// The run length for the next sample given the runs so far and whether the
/// sample equals its predecessor.
#[inline]
pub(crate) fn constant_run(runs: &[u32], extends: bool) -> u32 {
    if extends {
        runs.last().copied().unwrap_or(0).saturating_add(1)
    } else {
        1
    }
}

#[inline]
fn add_compensated(sum: &mut f64, comp: &mut f64, value: f64) {
    let t = *sum + value;
    if sum.abs() >= value.abs() {
        *comp += (*sum - t) + value;
    } else {
        *comp += (value - t) + *sum;
    }
    *sum = t;
}

/// Neumaier (improved Kahan) summation over an iterator.
pub fn neumaier_sum(values: impl IntoIterator<Item = f64>) -> f64 {
    let (mut s, mut c) = (0.0f64, 0.0f64);
    for v in values {
        add_compensated(&mut s, &mut c, v);
    }
    s + c
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_mean_std(sub: &[f64]) -> (f64, f64) {
        let l = sub.len() as f64;
        let m = sub.iter().sum::<f64>() / l;
        let v = sub.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / l;
        (m, v.sqrt())
    }

    #[test]
    fn matches_naive_statistics() {
        let series: Vec<f64> = (0..200).map(|i| (i as f64 * 0.37).sin() * 5.0 + 3.0).collect();
        let rs = RollingStats::new(&series);
        for &l in &[1usize, 2, 7, 50, 200] {
            for i in (0..=series.len() - l).step_by(13) {
                let (m, s) = naive_mean_std(&series[i..i + l]);
                assert!((rs.mean(i, l) - m).abs() < 1e-9, "mean l={l} i={i}");
                // σ near 0 amplifies prefix-sum rounding through the sqrt
                // (√1e-14 ≈ 1e-7), so compare variances tightly and σ loosely.
                let (v_fast, v_naive) = (rs.std_dev(i, l) * rs.std_dev(i, l), s * s);
                assert!((v_fast - v_naive).abs() < 1e-9, "var l={l} i={i}");
                assert!((rs.std_dev(i, l) - s).abs() < 1e-6, "std l={l} i={i}");
            }
        }
    }

    #[test]
    fn large_offset_remains_accurate() {
        // Series riding on a huge DC offset: naive ss/l − μ² in the raw domain
        // would lose most significant digits; centring must save us.
        let series: Vec<f64> = (0..1000).map(|i| 1e9 + (i as f64 * 0.1).sin()).collect();
        let rs = RollingStats::new(&series);
        let (m, s) = naive_mean_std(&series[100..200]);
        assert!((rs.mean(100, 100) - m).abs() / m.abs() < 1e-12);
        assert!((rs.std_dev(100, 100) - s).abs() < 1e-6);
        assert!(rs.std_dev(100, 100) > 0.1, "σ must not collapse to 0");
    }

    #[test]
    fn flat_subsequence_has_zero_std() {
        let mut series = vec![2.0; 50];
        series.extend((0..50).map(|i| i as f64));
        let rs = RollingStats::new(&series);
        assert_eq!(rs.std_dev(0, 50), 0.0);
        assert!(rs.std_dev(40, 20) > 0.0);
    }

    #[test]
    fn flat_window_inside_varied_series_is_exactly_zero() {
        // A constant stretch embedded in varied data: the prefix-sum
        // variance would be cancellation noise (~1e-7·|x|), which is why σ
        // must come from the exact constant-run check instead.
        let mut series: Vec<f64> = (0..160).map(|i| (i as f64 * 0.37).sin() * 40.0).collect();
        series.extend(std::iter::repeat_n(17.25, 30));
        series.extend((0..40).map(|i| i as f64));
        let rs = RollingStats::new(&series);
        assert_eq!(rs.std_dev(160, 30), 0.0);
        assert_eq!(rs.std_dev(165, 14), 0.0);
        assert!(rs.std_dev(150, 30) > 0.0, "partially flat windows keep a real σ");
        assert!(rs.std_dev(185, 14) > 0.0);
    }

    #[test]
    fn per_length_materialisation() {
        let series: Vec<f64> = (0..64).map(|i| (i % 7) as f64).collect();
        let rs = RollingStats::new(&series);
        let ls = rs.per_length(16).unwrap();
        assert_eq!(ls.len(), 64 - 16 + 1);
        for i in 0..ls.len() {
            let (m, s) = naive_mean_std(&series[i..i + 16]);
            assert!((ls.means[i] - m).abs() < 1e-10);
            assert!((ls.stds[i] - s).abs() < 1e-10);
        }
    }

    #[test]
    fn per_length_rejects_bad_lengths() {
        let rs = RollingStats::new(&[1.0, 2.0, 3.0]);
        assert!(rs.per_length(0).is_err());
        assert!(rs.per_length(4).is_err());
        assert!(rs.per_length(3).is_ok());
    }

    #[test]
    fn neumaier_beats_naive_on_ill_conditioned_sum() {
        // 1 + 1e100 + 1 - 1e100 = 2, naive f64 gives 0.
        let values = [1.0, 1e100, 1.0, -1e100];
        assert_eq!(neumaier_sum(values), 2.0);
    }

    #[test]
    fn pinned_offset_makes_prefixes_stable_under_append() {
        let series: Vec<f64> = (0..300).map(|i| (i as f64 * 0.13).sin() * 7.0 + 2.0).collect();
        let base = RollingStats::new(&series[..200]);
        let grown = RollingStats::with_offset(&series, base.offset());
        // Every statistic over the original 200 samples is bit-identical.
        for &l in &[1usize, 5, 32] {
            for i in (0..=200 - l).step_by(7) {
                assert_eq!(base.mean(i, l).to_bits(), grown.mean(i, l).to_bits(), "mean {i} {l}");
                assert_eq!(
                    base.std_dev(i, l).to_bits(),
                    grown.std_dev(i, l).to_bits(),
                    "std {i} {l}"
                );
                assert_eq!(base.centered_sum(i, l).to_bits(), grown.centered_sum(i, l).to_bits());
            }
        }
        // And `new` is exactly `with_offset` at the derived mean.
        let derived = neumaier_sum(series[..200].iter().copied()) / 200.0;
        assert_eq!(base.offset().to_bits(), derived.to_bits());
    }

    #[test]
    fn empty_series_is_handled() {
        let rs = RollingStats::new(&[]);
        assert!(rs.is_empty());
        assert_eq!(rs.len(), 0);
        assert!(rs.per_length(1).is_err());
    }
}
