//! Property-based tests for the data substrate.

use proptest::prelude::*;
use valmod_data::generators::resample;
use valmod_data::io::parse_text;
use valmod_data::series::{znormalize, Series};
use valmod_data::stats::{neumaier_sum, RollingStats};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rolling_stats_match_naive_for_any_window(values in prop::collection::vec(-1e4..1e4f64, 4..200),
                                                 pick in 0usize..1000) {
        let rs = RollingStats::new(&values);
        let n = values.len();
        let l = 1 + pick % n;
        let i = (pick / n) % (n - l + 1);
        let window = &values[i..i + l];
        let mean = window.iter().sum::<f64>() / l as f64;
        let var = window.iter().map(|&v| (v - mean) * (v - mean)).sum::<f64>() / l as f64;
        let scale = 1.0 + mean.abs();
        prop_assert!((rs.mean(i, l) - mean).abs() / scale < 1e-9);
        prop_assert!((rs.std_dev(i, l) * rs.std_dev(i, l) - var).abs() < 1e-6 * (1.0 + var));
    }

    #[test]
    fn znormalize_output_is_standardized(values in prop::collection::vec(-1e3..1e3f64, 2..100)) {
        let z = znormalize(&values);
        let n = z.len() as f64;
        let mean = z.iter().sum::<f64>() / n;
        let var = z.iter().map(|v| v * v).sum::<f64>() / n - mean * mean;
        prop_assert!(mean.abs() < 1e-8);
        // Either standardised or the flat convention (all zero).
        let flat = z.iter().all(|&v| v == 0.0);
        prop_assert!(flat || (var - 1.0).abs() < 1e-6, "var = {}", var);
    }

    #[test]
    fn series_validation_accepts_all_finite(values in prop::collection::vec(-1e300..1e300f64, 0..50)) {
        prop_assert!(Series::new(values).is_ok());
    }

    #[test]
    fn parse_round_trips_values(values in prop::collection::vec(-1e6..1e6f64, 0..50)) {
        let text: String = values.iter().map(|v| format!("{v:?}\n")).collect();
        let series = parse_text(&text).unwrap();
        prop_assert_eq!(series.values(), &values[..]);
    }

    #[test]
    fn resample_preserves_endpoints_and_range(values in prop::collection::vec(-1e3..1e3f64, 2..60),
                                              new_len in 2usize..120) {
        let r = resample(&values, new_len);
        prop_assert_eq!(r.len(), new_len);
        prop_assert!((r[0] - values[0]).abs() < 1e-9);
        prop_assert!((r[new_len - 1] - values[values.len() - 1]).abs() < 1e-9);
        // Linear interpolation can never leave the convex hull of the input.
        let (lo, hi) = values.iter().fold((f64::MAX, f64::MIN), |(lo, hi), &v| (lo.min(v), hi.max(v)));
        for &v in &r {
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
        }
    }

    #[test]
    fn neumaier_sum_is_at_least_as_accurate_as_naive(values in prop::collection::vec(-1e12..1e12f64, 0..200)) {
        // Oracle: sum in descending magnitude order with f64 (a decent proxy
        // for the true value at these ranges), plus exact equality on empties.
        let fast = neumaier_sum(values.iter().copied());
        let naive: f64 = values.iter().sum();
        let spread: f64 = values.iter().map(|v| v.abs()).sum::<f64>().max(1.0);
        prop_assert!((fast - naive).abs() / spread < 1e-9);
    }
}
