//! Property tests for [`valmod_fft::PlanCache`]: a cached plan must be
//! indistinguishable — bit for bit — from building a fresh plan per call.
//!
//! The cache shares its convolution core with the free functions, so these
//! properties pin the contract that makes the matrix-profile workspace
//! refactor safe: swapping fresh plans for cached ones cannot perturb a
//! single output bit, on either the naive or the FFT path, and for Bluestein
//! sizes (1, primes, n−1) that have no power-of-two structure.

use proptest::prelude::*;
use valmod_fft::real::{convolve, sliding_dot_product};
use valmod_fft::{BluesteinPlan, Complex, PlanCache};

fn finite_f64() -> impl Strategy<Value = f64> {
    -1e3..1e3f64
}

fn assert_bits_eq(cached: &[f64], fresh: &[f64], what: &str) {
    assert_eq!(cached.len(), fresh.len(), "{what}: length mismatch");
    for (i, (c, f)) in cached.iter().zip(fresh).enumerate() {
        assert_eq!(c.to_bits(), f.to_bits(), "{what}: bit mismatch at {i}: {c} vs {f}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Cached sliding dot products are bit-identical to fresh-plan ones for
    /// every query length, including both sides of the naive/FFT threshold,
    /// and stay identical when the same cache is reused.
    #[test]
    fn cached_sliding_dot_product_is_bit_identical(
        series in prop::collection::vec(finite_f64(), 40..400),
        m_frac in 0.05..1.0f64,
    ) {
        let m = ((series.len() as f64 * m_frac) as usize).max(1);
        let query = &series[..m];
        let fresh = sliding_dot_product(query, &series);
        let mut cache = PlanCache::new();
        let mut out = Vec::new();
        for round in 0..2 {
            cache.sliding_dot_product_into(query, &series, &mut out);
            assert_bits_eq(&out, &fresh, &format!("sdp m={m} round={round}"));
        }
    }

    /// Cached convolutions are bit-identical to the free function, for
    /// mixed sizes that exercise different power-of-two plan sizes from one
    /// shared cache.
    #[test]
    fn cached_convolution_is_bit_identical(
        a in prop::collection::vec(finite_f64(), 1..200),
        b in prop::collection::vec(finite_f64(), 1..200),
    ) {
        let mut cache = PlanCache::new();
        let mut out = Vec::new();
        cache.convolve_into(&a, &b, &mut out);
        assert_bits_eq(&out, &convolve(&a, &b), "convolve a·b");
        // Swapped operands hit a plan of the same size: a guaranteed reuse.
        cache.convolve_into(&b, &a, &mut out);
        assert_bits_eq(&out, &convolve(&b, &a), "convolve b·a");
    }

    /// Cached Bluestein transforms (sizes with no power-of-two structure:
    /// 1, primes, n−1 for power-of-two n) are bit-identical to fresh plans,
    /// forward and inverse.
    #[test]
    fn cached_bluestein_is_bit_identical(
        seed in prop::collection::vec(finite_f64(), 256),
        size_idx in 0usize..12,
    ) {
        // 1, small primes, and 2^k − 1 sizes — all forced through Bluestein.
        let sizes = [1usize, 2, 3, 5, 7, 11, 13, 31, 61, 63, 127, 255];
        let n = sizes[size_idx];
        let input: Vec<Complex> = (0..n)
            .map(|i| Complex::new(seed[i % seed.len()], seed[(i * 7 + 3) % seed.len()]))
            .collect();
        let fresh_plan = BluesteinPlan::new(n);
        let mut cache = PlanCache::new();
        for round in 0..2 {
            let cached_fwd = cache.dft(&input);
            let fresh_fwd = fresh_plan.forward(&input);
            let cached_inv = cache.idft(&input);
            let fresh_inv = fresh_plan.inverse(&input);
            for (i, ((c, f), (ci, fi))) in cached_fwd
                .iter()
                .zip(&fresh_fwd)
                .zip(cached_inv.iter().zip(&fresh_inv))
                .enumerate()
            {
                prop_assert_eq!(c.re.to_bits(), f.re.to_bits(), "fwd re n={} i={} round={}", n, i, round);
                prop_assert_eq!(c.im.to_bits(), f.im.to_bits(), "fwd im n={} i={} round={}", n, i, round);
                prop_assert_eq!(ci.re.to_bits(), fi.re.to_bits(), "inv re n={} i={} round={}", n, i, round);
                prop_assert_eq!(ci.im.to_bits(), fi.im.to_bits(), "inv im n={} i={} round={}", n, i, round);
            }
        }
        // One plan built, three lookups served from cache.
        prop_assert_eq!(cache.misses(), 1);
        prop_assert_eq!(cache.hits(), 3);
    }
}

/// Deterministic spot check outside proptest: a long mixed workload (many
/// lengths interleaved, as a VALMOD range sweep issues them) never diverges
/// from the fresh-plan reference, and the cache actually gets hits.
#[test]
fn interleaved_range_sweep_stays_bit_identical() {
    let series: Vec<f64> = (0..1500).map(|i| ((i * 131 + 17) % 509) as f64 / 254.0 - 1.0).collect();
    let mut cache = PlanCache::new();
    let mut out = Vec::new();
    for l in (8..200).step_by(13).chain((8..200).step_by(13)) {
        let query = &series[l..l + l];
        cache.sliding_dot_product_into(query, &series, &mut out);
        assert_bits_eq(&out, &sliding_dot_product(query, &series), &format!("l={l}"));
    }
    assert!(cache.hits() > cache.misses(), "second lap must be all cache hits");
}
