//! Property-based tests for the FFT substrate.

use proptest::prelude::*;
use valmod_fft::complex::Complex;
use valmod_fft::radix2::{fft, ifft, naive_dft, Direction};
use valmod_fft::real::{convolve, convolve_naive, sliding_dot_product, sliding_dot_product_naive};
use valmod_fft::BluesteinPlan;

fn finite_f64() -> impl Strategy<Value = f64> {
    // Keep magnitudes moderate so oracle comparisons stay well-conditioned.
    -1e3..1e3f64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fft_round_trip_recovers_input(values in prop::collection::vec((finite_f64(), finite_f64()), 1..129)) {
        let n = values.len().next_power_of_two();
        let mut buf: Vec<Complex> = values.iter().map(|&(r, i)| Complex::new(r, i)).collect();
        buf.resize(n, Complex::ZERO);
        let original = buf.clone();
        fft(&mut buf);
        ifft(&mut buf);
        for (a, b) in buf.iter().zip(&original) {
            prop_assert!((*a - *b).abs() < 1e-6, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn fft_is_linear(xs in prop::collection::vec(finite_f64(), 8..=8),
                     ys in prop::collection::vec(finite_f64(), 8..=8),
                     alpha in -10.0..10.0f64) {
        let x: Vec<Complex> = xs.iter().map(|&v| Complex::from_real(v)).collect();
        let y: Vec<Complex> = ys.iter().map(|&v| Complex::from_real(v)).collect();
        let combined: Vec<Complex> = x.iter().zip(&y).map(|(a, b)| *a * alpha + *b).collect();

        let mut fx = x.clone();
        fft(&mut fx);
        let mut fy = y.clone();
        fft(&mut fy);
        let mut fc = combined;
        fft(&mut fc);
        for ((a, b), c) in fx.iter().zip(&fy).zip(&fc) {
            prop_assert!((*a * alpha + *b - *c).abs() < 1e-6);
        }
    }

    #[test]
    fn bluestein_matches_naive(values in prop::collection::vec(finite_f64(), 1..60)) {
        let input: Vec<Complex> = values.iter().map(|&v| Complex::from_real(v)).collect();
        let fast = BluesteinPlan::new(input.len()).forward(&input);
        let slow = naive_dft(&input, Direction::Forward);
        for (a, b) in fast.iter().zip(&slow) {
            prop_assert!((*a - *b).abs() < 1e-5, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn convolution_matches_naive(a in prop::collection::vec(finite_f64(), 1..120),
                                 b in prop::collection::vec(finite_f64(), 1..120)) {
        let fast = convolve(&a, &b);
        let slow = convolve_naive(&a, &b);
        prop_assert_eq!(fast.len(), slow.len());
        let scale: f64 = 1.0 + slow.iter().map(|v| v.abs()).fold(0.0, f64::max);
        for (x, y) in fast.iter().zip(&slow) {
            prop_assert!((x - y).abs() / scale < 1e-9, "{} vs {}", x, y);
        }
    }

    #[test]
    fn sliding_dot_product_matches_naive(series in prop::collection::vec(finite_f64(), 8..300),
                                         qstart in 0usize..8, qlen in 2usize..8) {
        prop_assume!(qstart + qlen <= series.len());
        let query = series[qstart..qstart + qlen].to_vec();
        let fast = sliding_dot_product(&query, &series);
        let slow = sliding_dot_product_naive(&query, &series);
        prop_assert_eq!(fast.len(), slow.len());
        let scale: f64 = 1.0 + slow.iter().map(|v| v.abs()).fold(0.0, f64::max);
        for (x, y) in fast.iter().zip(&slow) {
            prop_assert!((x - y).abs() / scale < 1e-9);
        }
    }
}
