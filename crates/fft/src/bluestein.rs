//! Bluestein's algorithm: an exact DFT for *arbitrary* sizes, expressed as a
//! convolution of power-of-two length and therefore computable with the
//! radix-2 kernel.
//!
//! The matrix-profile pipeline mostly pads to powers of two (convolution does
//! not care about trailing zeros), but an exact-size transform is occasionally
//! useful — e.g. spectral summaries of a whole dataset — and having it keeps
//! the FFT substrate complete.

use crate::complex::Complex;
use crate::radix2::Radix2Plan;

/// A reusable exact-size DFT plan based on Bluestein's chirp-z trick.
#[derive(Debug, Clone)]
pub struct BluesteinPlan {
    n: usize,
    m: usize,
    /// Chirp `a[k] = e^{-iπk²/n}`.
    chirp: Vec<Complex>,
    /// Forward FFT of the zero-padded conjugate chirp (the convolution kernel).
    kernel_fft: Vec<Complex>,
    inner: Radix2Plan,
}

impl BluesteinPlan {
    /// Builds a plan for an arbitrary positive size `n`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "Bluestein size must be positive");
        let m = (2 * n - 1).next_power_of_two();
        // k² mod 2n computed incrementally to avoid overflow for large n.
        let mut chirp = Vec::with_capacity(n);
        let two_n = 2 * n as u64;
        let mut ksq = 0u64; // k² mod 2n
        for k in 0..n as u64 {
            // (k+1)² = k² + 2k + 1
            if k > 0 {
                ksq = (ksq + 2 * (k - 1) + 1) % two_n;
            }
            let theta = -std::f64::consts::PI * ksq as f64 / n as f64;
            chirp.push(Complex::cis(theta));
        }
        let inner = Radix2Plan::new(m);
        let mut kernel = vec![Complex::ZERO; m];
        kernel[0] = chirp[0].conj();
        for k in 1..n {
            let c = chirp[k].conj();
            kernel[k] = c;
            kernel[m - k] = c;
        }
        inner.forward(&mut kernel);
        BluesteinPlan { n, m, chirp, kernel_fft: kernel, inner }
    }

    /// The transform size.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always false; present for API symmetry.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Forward DFT of `input` (any length equal to the plan size).
    pub fn forward(&self, input: &[Complex]) -> Vec<Complex> {
        assert_eq!(input.len(), self.n);
        let mut work = vec![Complex::ZERO; self.m];
        for k in 0..self.n {
            work[k] = input[k] * self.chirp[k];
        }
        self.inner.forward(&mut work);
        for (w, k) in work.iter_mut().zip(&self.kernel_fft) {
            *w *= *k;
        }
        self.inner.inverse(&mut work);
        (0..self.n).map(|k| work[k] * self.chirp[k]).collect()
    }

    /// Inverse DFT (normalised by `1/n`).
    pub fn inverse(&self, input: &[Complex]) -> Vec<Complex> {
        assert_eq!(input.len(), self.n);
        // DFT⁻¹(x) = conj(DFT(conj(x))) / n
        let conj: Vec<Complex> = input.iter().map(|z| z.conj()).collect();
        let mut out = self.forward(&conj);
        let scale = 1.0 / self.n as f64;
        for z in &mut out {
            *z = z.conj().scale(scale);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::radix2::{naive_dft, Direction};

    fn ramp(n: usize) -> Vec<Complex> {
        (0..n).map(|i| Complex::new((i as f64).sin() * 3.0, (i as f64 * 0.3).cos())).collect()
    }

    #[test]
    fn matches_naive_dft_for_awkward_sizes() {
        for &n in &[1usize, 2, 3, 5, 7, 12, 31, 100, 243] {
            let input = ramp(n);
            let fast = BluesteinPlan::new(n).forward(&input);
            let slow = naive_dft(&input, Direction::Forward);
            for (i, (a, b)) in fast.iter().zip(&slow).enumerate() {
                assert!((*a - *b).abs() < 1e-7 * n as f64, "n={n} idx={i}: {a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn round_trip_arbitrary_size() {
        for &n in &[3usize, 17, 50, 129] {
            let input = ramp(n);
            let plan = BluesteinPlan::new(n);
            let back = plan.inverse(&plan.forward(&input));
            for (a, b) in back.iter().zip(&input) {
                assert!((*a - *b).abs() < 1e-8 * n as f64);
            }
        }
    }

    #[test]
    fn agrees_with_radix2_on_powers_of_two() {
        let n = 64;
        let input = ramp(n);
        let blue = BluesteinPlan::new(n).forward(&input);
        let mut fast = input.clone();
        crate::radix2::fft(&mut fast);
        for (a, b) in blue.iter().zip(&fast) {
            assert!((*a - *b).abs() < 1e-8);
        }
    }

    #[test]
    fn size_one_is_identity() {
        let input = vec![Complex::new(4.2, -1.0)];
        let out = BluesteinPlan::new(1).forward(&input);
        assert!((out[0] - input[0]).abs() < 1e-12);
    }
}
