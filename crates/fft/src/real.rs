//! Real-input convolution and cross-correlation on top of the complex FFT.
//!
//! Two real sequences are packed into one complex buffer (one in the real
//! lane, one in the imaginary lane), so a convolution costs two FFTs instead
//! of three. Correctness of the unpacking identity is covered by tests
//! against direct `O(nm)` evaluation.

use crate::complex::Complex;
use crate::radix2::Radix2Plan;

/// Below this size the naive loop beats FFT setup cost. Shared by the free
/// functions and [`crate::plan_cache::PlanCache`] so both take the same path
/// for any given input shape (a precondition of their bit-identity).
pub(crate) const NAIVE_THRESHOLD: usize = 32;

/// The packed-FFT convolution core: both lanes of `plan`-sized `buf`/`spec`
/// scratch are caller-provided, so a cached plan and a fresh plan of the same
/// size run exactly the same floating-point operations.
///
/// `plan.len()` must be `>= a.len() + b.len() - 1`.
pub(crate) fn convolve_fft_into(
    a: &[f64],
    b: &[f64],
    plan: &Radix2Plan,
    buf: &mut Vec<Complex>,
    spec: &mut Vec<Complex>,
    out: &mut Vec<f64>,
) {
    let out_len = a.len() + b.len() - 1;
    let m = plan.len();
    debug_assert!(m >= out_len, "plan of size {m} too small for output {out_len}");
    // Pack: real lane = a, imaginary lane = b.
    buf.clear();
    buf.resize(m, Complex::ZERO);
    for (i, &x) in a.iter().enumerate() {
        buf[i].re = x;
    }
    for (i, &x) in b.iter().enumerate() {
        buf[i].im = x;
    }
    plan.forward(buf);
    // For packed z = a + ib: A[k] = (Z[k] + conj(Z[m-k]))/2, B[k] = (Z[k] - conj(Z[m-k]))/(2i).
    // The product C[k] = A[k]·B[k] is assembled directly.
    spec.clear();
    spec.resize(m, Complex::ZERO);
    for k in 0..m {
        let zk = buf[k];
        let zmk = buf[(m - k) % m].conj();
        let ak = (zk + zmk).scale(0.5);
        let bk = (zk - zmk) * Complex::new(0.0, -0.5);
        spec[k] = ak * bk;
    }
    plan.inverse(spec);
    out.clear();
    out.extend(spec[..out_len].iter().map(|z| z.re));
}

/// Full linear convolution of two real sequences (`len = a.len() + b.len() - 1`),
/// computed in `O(n log n)` via a packed complex FFT.
pub fn convolve(a: &[f64], b: &[f64]) -> Vec<f64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    if a.len().min(b.len()) <= NAIVE_THRESHOLD {
        return convolve_naive(a, b);
    }
    let out_len = a.len() + b.len() - 1;
    let m = out_len.next_power_of_two();
    let plan = Radix2Plan::new(m);
    let (mut buf, mut spec, mut out) = (Vec::new(), Vec::new(), Vec::new());
    convolve_fft_into(a, b, &plan, &mut buf, &mut spec, &mut out);
    out
}

/// Direct `O(nm)` convolution into a caller-provided buffer (cleared first).
pub(crate) fn convolve_naive_into(a: &[f64], b: &[f64], out: &mut Vec<f64>) {
    out.clear();
    if a.is_empty() || b.is_empty() {
        return;
    }
    out.resize(a.len() + b.len() - 1, 0.0);
    for (i, &x) in a.iter().enumerate() {
        for (j, &y) in b.iter().enumerate() {
            out[i + j] += x * y;
        }
    }
}

/// Direct `O(nm)` convolution, used as the small-size fast path and test oracle.
pub fn convolve_naive(a: &[f64], b: &[f64]) -> Vec<f64> {
    let mut out = Vec::new();
    convolve_naive_into(a, b, &mut out);
    out
}

/// Valid-mode cross-correlation: `out[j] = Σ_{p} query[p] · series[j + p]`
/// for `j ∈ [0, series.len() - query.len()]`.
///
/// This is the "sliding dot product" at the heart of MASS and STOMP
/// (Algorithm 3, line 5 of the paper). Returns an empty vector when the query
/// is longer than the series.
pub fn sliding_dot_product(query: &[f64], series: &[f64]) -> Vec<f64> {
    let m = query.len();
    let n = series.len();
    if m == 0 || n < m {
        return Vec::new();
    }
    // Cross-correlation = convolution with the reversed query; full convolution
    // index m-1+j holds Σ query[p]·series[j+p].
    let reversed: Vec<f64> = query.iter().rev().copied().collect();
    let full = convolve(&reversed, series);
    full[m - 1..n].to_vec()
}

/// Naive `O(nm)` sliding dot product, the test oracle for
/// [`sliding_dot_product`].
pub fn sliding_dot_product_naive(query: &[f64], series: &[f64]) -> Vec<f64> {
    let m = query.len();
    let n = series.len();
    if m == 0 || n < m {
        return Vec::new();
    }
    (0..=n - m).map(|j| query.iter().zip(&series[j..j + m]).map(|(q, s)| q * s).sum()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn convolution_matches_naive() {
        let a: Vec<f64> = (0..200).map(|i| ((i * i) % 17) as f64 - 8.0).collect();
        let b: Vec<f64> = (0..77).map(|i| (i as f64 * 0.37).sin()).collect();
        let fast = convolve(&a, &b);
        let slow = convolve_naive(&a, &b);
        assert_eq!(fast.len(), slow.len());
        for (x, y) in fast.iter().zip(&slow) {
            assert!((x - y).abs() < 1e-8, "{x} vs {y}");
        }
    }

    #[test]
    fn convolution_is_commutative() {
        let a = [1.0, -2.0, 3.0];
        let b = [0.5, 4.0];
        assert_eq!(convolve_naive(&a, &b), convolve_naive(&b, &a));
    }

    #[test]
    fn convolution_with_delta_is_identity() {
        let a = [3.0, 1.0, 4.0, 1.0, 5.0];
        let out = convolve(&a, &[1.0]);
        assert_eq!(out, a.to_vec());
    }

    #[test]
    fn empty_inputs_yield_empty_output() {
        assert!(convolve(&[], &[1.0]).is_empty());
        assert!(convolve(&[1.0], &[]).is_empty());
        assert!(sliding_dot_product(&[], &[1.0]).is_empty());
        assert!(sliding_dot_product(&[1.0, 2.0], &[1.0]).is_empty());
    }

    #[test]
    fn sliding_dot_product_matches_naive_small() {
        let series: Vec<f64> =
            (0..50).map(|i| (i as f64 * 0.2).cos() * 2.0 + i as f64 * 0.01).collect();
        let query = &series[10..18];
        let fast = sliding_dot_product(query, &series);
        let slow = sliding_dot_product_naive(query, &series);
        assert_eq!(fast.len(), series.len() - query.len() + 1);
        for (x, y) in fast.iter().zip(&slow) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn sliding_dot_product_matches_naive_large() {
        // Large enough to take the FFT path.
        let series: Vec<f64> =
            (0..4000).map(|i| ((i * 31 + 7) % 101) as f64 / 50.0 - 1.0).collect();
        let query = &series[1234..1234 + 257];
        let fast = sliding_dot_product(query, &series);
        let slow = sliding_dot_product_naive(query, &series);
        for (i, (x, y)) in fast.iter().zip(&slow).enumerate() {
            assert!((x - y).abs() < 1e-6, "idx {i}: {x} vs {y}");
        }
    }

    #[test]
    fn self_dot_product_peaks_at_own_offset() {
        let series: Vec<f64> = (0..500).map(|i| (i as f64 * 0.05).sin()).collect();
        let q = &series[100..164];
        let qt = sliding_dot_product(q, &series);
        // The dot product of the (non-normalised) query with itself is the
        // energy maximum among all same-phase alignments.
        let self_val = qt[100];
        let energy: f64 = q.iter().map(|x| x * x).sum();
        assert!((self_val - energy).abs() < 1e-7);
    }
}
