//! # valmod-fft
//!
//! A self-contained FFT substrate for the VALMOD reproduction.
//!
//! The matrix-profile algorithms (MASS, STOMP — paper Algorithm 3, line 5)
//! need one `O(n log n)` sliding dot product per matrix-profile computation;
//! everything else is incremental. This crate provides that kernel from
//! scratch, with no external numeric dependencies:
//!
//! * [`complex::Complex`] — a minimal complex number.
//! * [`radix2`] — an in-place iterative radix-2 Cooley–Tukey FFT with
//!   reusable plans.
//! * [`bluestein`] — exact DFT for arbitrary sizes (chirp-z).
//! * [`real`] — packed real convolution and the
//!   [`real::sliding_dot_product`] used by MASS/STOMP.
//! * [`plan_cache`] — a [`plan_cache::PlanCache`] of plans and scratch
//!   buffers so repeated transforms (one per length in a VALMOD range sweep)
//!   stop paying plan construction and allocation; cached calls are
//!   bit-identical to the free functions.
//!
//! ## Quick example
//!
//! ```
//! use valmod_fft::real::sliding_dot_product;
//!
//! let series: Vec<f64> = (0..128).map(|i| (i as f64 * 0.1).sin()).collect();
//! let query = &series[10..26];
//! let qt = sliding_dot_product(query, &series);
//! assert_eq!(qt.len(), series.len() - query.len() + 1);
//! // The query matches itself exactly at offset 10.
//! let energy: f64 = query.iter().map(|x| x * x).sum();
//! assert!((qt[10] - energy).abs() < 1e-9);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bluestein;
pub mod complex;
pub mod plan_cache;
pub mod radix2;
pub mod real;

pub use bluestein::BluesteinPlan;
pub use complex::Complex;
pub use plan_cache::PlanCache;
pub use radix2::{fft, ifft, Direction, Radix2Plan};
pub use real::{convolve, sliding_dot_product};
