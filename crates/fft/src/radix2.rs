//! Iterative radix-2 Cooley–Tukey FFT for power-of-two sizes.
//!
//! The transform is in-place over a `&mut [Complex]` whose length must be a
//! power of two. Twiddle factors are precomputed once per [`Radix2Plan`] so a
//! plan can be reused across many transforms of the same size — the benchmark
//! harness transforms thousands of equal-length buffers.

use crate::complex::Complex;

/// Direction of a transform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// The forward DFT: `X[k] = Σ x[n] e^{-2πikn/N}`.
    Forward,
    /// The inverse DFT **without** the `1/N` normalisation; callers that need
    /// a true inverse should scale afterwards (or use [`Radix2Plan::inverse`]).
    Backward,
}

/// A reusable FFT plan for a fixed power-of-two size.
#[derive(Debug, Clone)]
pub struct Radix2Plan {
    n: usize,
    /// `twiddles[k] = e^{-2πik/n}` for `k < n/2`.
    twiddles: Vec<Complex>,
    /// Bit-reversal permutation table.
    rev: Vec<u32>,
}

impl Radix2Plan {
    /// Builds a plan for size `n`.
    ///
    /// # Panics
    /// Panics if `n` is zero or not a power of two.
    pub fn new(n: usize) -> Self {
        assert!(n.is_power_of_two(), "radix-2 FFT size must be a power of two, got {n}");
        let half = n / 2;
        let mut twiddles = Vec::with_capacity(half);
        let step = -2.0 * std::f64::consts::PI / n as f64;
        for k in 0..half {
            twiddles.push(Complex::cis(step * k as f64));
        }
        let bits = n.trailing_zeros();
        let mut rev = vec![0u32; n];
        for i in 1..n {
            rev[i] = (rev[i >> 1] >> 1) | (((i as u32) & 1) << (bits.saturating_sub(1)));
        }
        Radix2Plan { n, twiddles, rev }
    }

    /// The transform size this plan was built for.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` for the degenerate size-0 plan (never constructible, but
    /// keeps clippy's `len_without_is_empty` satisfied).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// In-place forward DFT.
    pub fn forward(&self, buf: &mut [Complex]) {
        self.transform(buf, Direction::Forward);
    }

    /// In-place inverse DFT, including the `1/N` normalisation.
    pub fn inverse(&self, buf: &mut [Complex]) {
        self.transform(buf, Direction::Backward);
        let scale = 1.0 / self.n as f64;
        for z in buf.iter_mut() {
            *z = z.scale(scale);
        }
    }

    /// In-place transform in the given direction (unnormalised).
    pub fn transform(&self, buf: &mut [Complex], dir: Direction) {
        assert_eq!(buf.len(), self.n, "buffer length {} != plan size {}", buf.len(), self.n);
        let n = self.n;
        if n <= 1 {
            return;
        }
        // Bit-reversal permutation.
        for i in 0..n {
            let j = self.rev[i] as usize;
            if i < j {
                buf.swap(i, j);
            }
        }
        // Butterfly passes. For stage length `len`, the twiddle stride through
        // the precomputed table is `n / len`.
        let mut len = 2usize;
        while len <= n {
            let half = len / 2;
            let stride = n / len;
            for start in (0..n).step_by(len) {
                let mut tw = 0usize;
                for k in 0..half {
                    let w = match dir {
                        Direction::Forward => self.twiddles[tw],
                        Direction::Backward => self.twiddles[tw].conj(),
                    };
                    let a = buf[start + k];
                    let b = buf[start + k + half] * w;
                    buf[start + k] = a + b;
                    buf[start + k + half] = a - b;
                    tw += stride;
                }
            }
            len <<= 1;
        }
    }
}

/// One-shot forward FFT of a power-of-two-length buffer.
pub fn fft(buf: &mut [Complex]) {
    Radix2Plan::new(buf.len()).forward(buf);
}

/// One-shot normalised inverse FFT of a power-of-two-length buffer.
pub fn ifft(buf: &mut [Complex]) {
    Radix2Plan::new(buf.len()).inverse(buf);
}

/// Naive `O(n²)` DFT used as a test oracle.
pub fn naive_dft(input: &[Complex], dir: Direction) -> Vec<Complex> {
    let n = input.len();
    let sign = match dir {
        Direction::Forward => -1.0,
        Direction::Backward => 1.0,
    };
    (0..n)
        .map(|k| {
            let mut acc = Complex::ZERO;
            for (j, &x) in input.iter().enumerate() {
                let theta = sign * 2.0 * std::f64::consts::PI * (k * j % n) as f64 / n as f64;
                acc += x * Complex::cis(theta);
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[Complex], b: &[Complex], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((*x - *y).abs() < tol, "mismatch at {i}: {x:?} vs {y:?} (tol {tol})");
        }
    }

    fn ramp(n: usize) -> Vec<Complex> {
        (0..n).map(|i| Complex::new(i as f64, (i as f64) * 0.5 - 1.0)).collect()
    }

    #[test]
    fn matches_naive_dft_across_sizes() {
        for &n in &[1usize, 2, 4, 8, 16, 64, 256] {
            let input = ramp(n);
            let mut fast = input.clone();
            fft(&mut fast);
            let slow = naive_dft(&input, Direction::Forward);
            assert_close(&fast, &slow, 1e-8 * n as f64);
        }
    }

    #[test]
    fn inverse_round_trips() {
        for &n in &[2usize, 8, 32, 128, 1024] {
            let input = ramp(n);
            let mut buf = input.clone();
            fft(&mut buf);
            ifft(&mut buf);
            assert_close(&buf, &input, 1e-9 * n as f64);
        }
    }

    #[test]
    fn delta_transforms_to_constant() {
        let mut buf = vec![Complex::ZERO; 16];
        buf[0] = Complex::ONE;
        fft(&mut buf);
        for z in &buf {
            assert!((*z - Complex::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn constant_transforms_to_delta() {
        let mut buf = vec![Complex::ONE; 8];
        fft(&mut buf);
        assert!((buf[0] - Complex::from_real(8.0)).abs() < 1e-12);
        for z in &buf[1..] {
            assert!(z.abs() < 1e-12);
        }
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let input = ramp(64);
        let time_energy: f64 = input.iter().map(|z| z.norm_sqr()).sum();
        let mut buf = input;
        fft(&mut buf);
        let freq_energy: f64 = buf.iter().map(|z| z.norm_sqr()).sum::<f64>() / 64.0;
        assert!((time_energy - freq_energy).abs() / time_energy < 1e-12);
    }

    #[test]
    fn plan_is_reusable() {
        let plan = Radix2Plan::new(32);
        for seed in 0..4 {
            let input: Vec<Complex> =
                (0..32).map(|i| Complex::new(((i * 7 + seed) % 13) as f64, 0.0)).collect();
            let mut buf = input.clone();
            plan.forward(&mut buf);
            assert_close(&buf, &naive_dft(&input, Direction::Forward), 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        Radix2Plan::new(12);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn rejects_wrong_buffer_length() {
        let plan = Radix2Plan::new(8);
        let mut buf = vec![Complex::ZERO; 4];
        plan.forward(&mut buf);
    }
}
