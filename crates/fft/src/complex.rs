//! A minimal complex-number type.
//!
//! The FFT substrate deliberately avoids external numeric crates; this type
//! provides exactly the operations the transforms need, with `#[inline]`
//! arithmetic so the compiler can keep butterflies in registers.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from rectangular coordinates.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Creates `e^{iθ} = cos θ + i sin θ`.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        let (sin, cos) = theta.sin_cos();
        Complex { re: cos, im: sin }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex { re: self.re, im: -self.im }
    }

    /// Squared modulus `re² + im²`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus (absolute value).
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Complex { re: self.re * s, im: self.im * s }
    }

    /// Fused `self * b + c`, the FFT butterfly workhorse.
    #[inline]
    pub fn mul_add(self, b: Complex, c: Complex) -> Self {
        Complex {
            re: self.re * b.re - self.im * b.im + c.re,
            im: self.re * b.im + self.im * b.re + c.im,
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex { re: self.re + rhs.re, im: self.im + rhs.im }
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex { re: self.re - rhs.re, im: self.im - rhs.im }
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex { re: self.re * rhs.re - self.im * rhs.im, im: self.re * rhs.im + self.im * rhs.re }
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: Complex) -> Complex {
        let d = rhs.norm_sqr();
        Complex {
            re: (self.re * rhs.re + self.im * rhs.im) / d,
            im: (self.im * rhs.re - self.re * rhs.im) / d,
        }
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex { re: -self.re, im: -self.im }
    }
}

impl Sum for Complex {
    fn sum<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, Add::add)
    }
}

impl fmt::Debug for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl From<f64> for Complex {
    #[inline]
    fn from(re: f64) -> Self {
        Complex::from_real(re)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex, b: Complex) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn arithmetic_identities() {
        let z = Complex::new(3.0, -4.0);
        assert!(close(z + Complex::ZERO, z));
        assert!(close(z * Complex::ONE, z));
        assert!(close(z - z, Complex::ZERO));
        assert!(close(z * Complex::I, Complex::new(4.0, 3.0)));
    }

    #[test]
    fn conjugate_and_modulus() {
        let z = Complex::new(3.0, 4.0);
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.norm_sqr(), 25.0);
        assert!(close(z * z.conj(), Complex::from_real(25.0)));
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Complex::new(1.5, -2.25);
        let b = Complex::new(-0.5, 3.0);
        assert!(close(a * b / b, a));
    }

    #[test]
    fn cis_lies_on_unit_circle() {
        for k in 0..16 {
            let theta = k as f64 * std::f64::consts::PI / 8.0;
            let z = Complex::cis(theta);
            assert!((z.abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn euler_identity() {
        let z = Complex::cis(std::f64::consts::PI);
        assert!(close(z, Complex::new(-1.0, 0.0)));
    }

    #[test]
    fn mul_add_matches_separate_ops() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(-3.0, 0.5);
        let c = Complex::new(0.25, -0.75);
        assert!(close(a.mul_add(b, c), a * b + c));
    }

    #[test]
    fn sum_over_iterator() {
        let s: Complex = (0..4).map(|k| Complex::new(k as f64, -(k as f64))).sum();
        assert!(close(s, Complex::new(6.0, -6.0)));
    }
}
