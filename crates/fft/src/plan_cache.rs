//! A reusable cache of FFT plans and scratch buffers.
//!
//! `ComputeMatrixProfile` across a length range ℓmin..ℓmax issues one sliding
//! dot product per length (and more during lower-bound refinement), and each
//! one used to build a fresh [`Radix2Plan`] — recomputing the same twiddle
//! table and bit-reversal permutation over and over — plus four transient
//! allocations. [`PlanCache`] keeps plans keyed by transform size and reuses
//! one set of scratch buffers, so the steady-state cost of a cached call is
//! the transform itself.
//!
//! ## Bit-identity contract
//!
//! A cached call produces *bit-identical* output to the corresponding free
//! function ([`crate::real::convolve`], [`crate::real::sliding_dot_product`]):
//! both route through the same `convolve_fft_into` core with the same
//! naive-path threshold, and a plan is a pure function of its size, so a
//! cached plan and a fresh plan run exactly the same floating-point
//! operations. `tests/plan_cache_props.rs` asserts this property over random
//! inputs, including Bluestein sizes (1, primes, n−1).

use std::collections::HashMap;

use crate::bluestein::BluesteinPlan;
use crate::complex::Complex;
use crate::radix2::Radix2Plan;
use crate::real::{convolve_fft_into, convolve_naive_into, NAIVE_THRESHOLD};

/// Caches radix-2 and Bluestein plans by transform size, together with the
/// scratch buffers the packed real convolution needs.
///
/// Not thread-safe by design (no interior mutability): each worker owns its
/// own cache, typically inside a `valmod_mp` `Workspace`.
#[derive(Debug, Default)]
pub struct PlanCache {
    radix2: HashMap<usize, Radix2Plan>,
    bluestein: HashMap<usize, BluesteinPlan>,
    buf: Vec<Complex>,
    spec: Vec<Complex>,
    reversed: Vec<f64>,
    full: Vec<f64>,
    hits: u64,
    misses: u64,
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of times a plan lookup was served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of times a plan had to be built.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of plans currently cached (radix-2 plus Bluestein).
    pub fn plans(&self) -> usize {
        self.radix2.len() + self.bluestein.len()
    }

    /// Drops every cached plan and scratch buffer (counters are kept).
    pub fn clear(&mut self) {
        self.radix2.clear();
        self.bluestein.clear();
        self.buf = Vec::new();
        self.spec = Vec::new();
        self.reversed = Vec::new();
        self.full = Vec::new();
    }

    /// The radix-2 plan for power-of-two size `n`, built on first use.
    pub fn radix2(&mut self, n: usize) -> &Radix2Plan {
        match self.radix2.entry(n) {
            std::collections::hash_map::Entry::Occupied(e) => {
                self.hits += 1;
                e.into_mut()
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                self.misses += 1;
                v.insert(Radix2Plan::new(n))
            }
        }
    }

    /// The Bluestein plan for arbitrary size `n > 0`, built on first use.
    pub fn bluestein(&mut self, n: usize) -> &BluesteinPlan {
        match self.bluestein.entry(n) {
            std::collections::hash_map::Entry::Occupied(e) => {
                self.hits += 1;
                e.into_mut()
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                self.misses += 1;
                v.insert(BluesteinPlan::new(n))
            }
        }
    }

    /// Forward DFT of arbitrary size via a cached Bluestein plan.
    /// Bit-identical to `BluesteinPlan::new(input.len()).forward(input)`.
    pub fn dft(&mut self, input: &[Complex]) -> Vec<Complex> {
        self.bluestein(input.len()).forward(input)
    }

    /// Inverse DFT of arbitrary size via a cached Bluestein plan.
    /// Bit-identical to `BluesteinPlan::new(input.len()).inverse(input)`.
    pub fn idft(&mut self, input: &[Complex]) -> Vec<Complex> {
        self.bluestein(input.len()).inverse(input)
    }

    /// Full linear convolution into `out` (cleared first). Bit-identical to
    /// [`crate::real::convolve`].
    pub fn convolve_into(&mut self, a: &[f64], b: &[f64], out: &mut Vec<f64>) {
        out.clear();
        if a.is_empty() || b.is_empty() {
            return;
        }
        if a.len().min(b.len()) <= NAIVE_THRESHOLD {
            convolve_naive_into(a, b, out);
            return;
        }
        let out_len = a.len() + b.len() - 1;
        let size = out_len.next_power_of_two();
        let PlanCache { radix2, buf, spec, hits, misses, .. } = self;
        let plan = match radix2.entry(size) {
            std::collections::hash_map::Entry::Occupied(e) => {
                *hits += 1;
                e.into_mut()
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                *misses += 1;
                v.insert(Radix2Plan::new(size))
            }
        };
        convolve_fft_into(a, b, plan, buf, spec, out);
    }

    /// Sliding dot product into `out` (cleared first). Bit-identical to
    /// [`crate::real::sliding_dot_product`]; `out` is empty when the query is
    /// empty or longer than the series.
    pub fn sliding_dot_product_into(&mut self, query: &[f64], series: &[f64], out: &mut Vec<f64>) {
        out.clear();
        let m = query.len();
        let n = series.len();
        if m == 0 || n < m {
            return;
        }
        // Cross-correlation = convolution with the reversed query; the
        // reversed query and the full convolution live in cache scratch.
        let mut reversed = std::mem::take(&mut self.reversed);
        reversed.clear();
        reversed.extend(query.iter().rev());
        let mut full = std::mem::take(&mut self.full);
        self.convolve_into(&reversed, series, &mut full);
        out.extend_from_slice(&full[m - 1..n]);
        self.reversed = reversed;
        self.full = full;
    }

    /// Sliding dot product returning a fresh vector (cached plans, but an
    /// allocation per call); see
    /// [`sliding_dot_product_into`](Self::sliding_dot_product_into).
    pub fn sliding_dot_product(&mut self, query: &[f64], series: &[f64]) -> Vec<f64> {
        let mut out = Vec::new();
        self.sliding_dot_product_into(query, series, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::real::{convolve, sliding_dot_product};

    fn series(n: usize) -> Vec<f64> {
        (0..n).map(|i| ((i * 37 + 11) % 101) as f64 / 50.0 - 1.0).collect()
    }

    #[test]
    fn cached_convolution_is_bit_identical_to_free_function() {
        let a = series(300);
        let b = series(130);
        let mut cache = PlanCache::new();
        let mut out = Vec::new();
        for _ in 0..3 {
            cache.convolve_into(&a, &b, &mut out);
            let fresh = convolve(&a, &b);
            assert_eq!(out.len(), fresh.len());
            for (x, y) in out.iter().zip(&fresh) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        assert_eq!(cache.misses(), 1, "one plan built");
        assert_eq!(cache.hits(), 2, "two reuses");
    }

    #[test]
    fn cached_sliding_dot_product_matches_free_function_on_both_paths() {
        // Small query (naive path) and large query (FFT path).
        let t = series(600);
        let mut cache = PlanCache::new();
        for m in [4, 32, 33, 64] {
            let q = &t[10..10 + m];
            let cached = cache.sliding_dot_product(q, &t);
            let fresh = sliding_dot_product(q, &t);
            assert_eq!(cached.len(), fresh.len(), "m={m}");
            for (x, y) in cached.iter().zip(&fresh) {
                assert_eq!(x.to_bits(), y.to_bits(), "m={m}");
            }
        }
    }

    #[test]
    fn degenerate_inputs_yield_empty_output() {
        let mut cache = PlanCache::new();
        let mut out = vec![1.0];
        cache.sliding_dot_product_into(&[], &[1.0, 2.0], &mut out);
        assert!(out.is_empty());
        cache.sliding_dot_product_into(&[1.0, 2.0], &[1.0], &mut out);
        assert!(out.is_empty());
        cache.convolve_into(&[], &[1.0], &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn clear_drops_plans_but_keeps_counters() {
        let t = series(500);
        let mut cache = PlanCache::new();
        cache.sliding_dot_product(&t[0..64], &t);
        assert!(cache.plans() > 0);
        let misses = cache.misses();
        cache.clear();
        assert_eq!(cache.plans(), 0);
        assert_eq!(cache.misses(), misses);
    }

    #[test]
    fn bluestein_plans_are_cached() {
        let mut cache = PlanCache::new();
        let input: Vec<Complex> = (0..7).map(|i| Complex::new(i as f64, -(i as f64))).collect();
        let a = cache.dft(&input);
        let b = cache.dft(&input);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.re.to_bits(), y.re.to_bits());
            assert_eq!(x.im.to_bits(), y.im.to_bits());
        }
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 1);
    }
}
