//! Microbench: end-to-end VALMOD across ranges and p values (the Fig. 8/12/
//! 14 shapes in Criterion form, at sub-second scale).

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use valmod_core::valmod::{Valmod, ValmodConfig};
use valmod_data::datasets::Dataset;
use valmod_mp::ProfiledSeries;

fn bench_valmod_range(c: &mut Criterion) {
    let ps = ProfiledSeries::new(&Dataset::Ecg.generate(2_000, 1));
    let mut group = c.benchmark_group("valmod/range");
    group.sample_size(10);
    for range in [4usize, 16, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(range), &range, |b, &range| {
            let runner = Valmod::from_config(ValmodConfig::new(64, 64 + range).with_p(20));
            b.iter(|| black_box(runner.run_on(&ps).unwrap()))
        });
    }
    group.finish();
}

fn bench_valmod_p(c: &mut Criterion) {
    let ps = ProfiledSeries::new(&Dataset::Gap.generate(2_000, 1));
    let mut group = c.benchmark_group("valmod/p");
    group.sample_size(10);
    for p in [5usize, 50, 150] {
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            let runner = Valmod::from_config(ValmodConfig::new(64, 80).with_p(p));
            b.iter(|| black_box(runner.run_on(&ps).unwrap()))
        });
    }
    group.finish();
}

fn bench_valmod_datasets(c: &mut Criterion) {
    let mut group = c.benchmark_group("valmod/dataset");
    group.sample_size(10);
    for ds in Dataset::ALL {
        let ps = ProfiledSeries::new(&ds.generate(2_000, 1));
        group.bench_with_input(BenchmarkId::from_parameter(ds.name()), &ds, |b, _| {
            let runner = Valmod::from_config(ValmodConfig::new(64, 80).with_p(20));
            b.iter(|| black_box(runner.run_on(&ps).unwrap()))
        });
    }
    group.finish();
}

fn bench_valmod_threads(c: &mut Criterion) {
    let ps = ProfiledSeries::new(&Dataset::Ecg.generate(2_000, 1));
    let mut group = c.benchmark_group("valmod/threads");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &threads| {
            let runner =
                Valmod::from_config(ValmodConfig::new(64, 80).with_p(20).with_threads(threads));
            b.iter(|| black_box(runner.run_on(&ps).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_valmod_range,
    bench_valmod_p,
    bench_valmod_datasets,
    bench_valmod_threads
);
criterion_main!(benches);
