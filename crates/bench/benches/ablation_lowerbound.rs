//! Ablation (DESIGN.md §5): the Eq. 2 lower bound vs no lower bound.
//!
//! "No lower bound" means recomputing a fresh matrix profile per length —
//! exactly the STOMP-per-length baseline. The ratio between the two is the
//! paper's headline claim in microcosm.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use valmod_baselines::stomp_range::stomp_range;
use valmod_core::valmod::{Valmod, ValmodConfig};
use valmod_data::datasets::Dataset;
use valmod_mp::{ExclusionPolicy, ProfiledSeries};

fn bench_lb_vs_none(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/lowerbound");
    group.sample_size(10);
    for ds in [Dataset::Ecg, Dataset::Emg] {
        let ps = ProfiledSeries::new(&ds.generate(1_500, 1));
        let (l_min, l_max) = (48usize, 64usize);
        group.bench_with_input(BenchmarkId::new("valmod_with_eq2", ds.name()), &ds, |b, _| {
            let runner = Valmod::from_config(ValmodConfig::new(l_min, l_max).with_p(20));
            b.iter(|| black_box(runner.run_on(&ps).unwrap()))
        });
        group.bench_with_input(
            BenchmarkId::new("no_bound_stomp_per_length", ds.name()),
            &ds,
            |b, _| {
                b.iter(|| {
                    black_box(stomp_range(&ps, l_min, l_max, ExclusionPolicy::HALF, 1).unwrap())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_lb_vs_none);
criterion_main!(benches);
