//! Observability overhead: the instrumented STOMP kernel with the default
//! no-op recorder must be indistinguishable from the raw kernel (the
//! acceptance bar is ≤1% — in practice it is within measurement noise,
//! because every metric site is gated on `Recorder::enabled()` before any
//! clock read or atomic touch). The third variant attaches a live
//! [`Registry`] to show what recording actually costs when switched on.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use valmod_data::datasets::Dataset;
use valmod_mp::{stomp_parallel, stomp_parallel_with, ExclusionPolicy, ProfiledSeries};
use valmod_obs::{Registry, SharedRecorder};

fn bench_recorder_overhead(c: &mut Criterion) {
    let ps = ProfiledSeries::new(&Dataset::Ecg.generate(2_000, 1));
    let (l, threads) = (64usize, 2usize);

    let mut group = c.benchmark_group("obs_overhead");
    group.bench_function("stomp_raw", |b| {
        b.iter(|| black_box(stomp_parallel(&ps, l, ExclusionPolicy::HALF, threads).unwrap()))
    });
    group.bench_function("stomp_noop_recorder", |b| {
        let noop = SharedRecorder::noop();
        b.iter(|| {
            black_box(stomp_parallel_with(&ps, l, ExclusionPolicy::HALF, threads, &noop).unwrap())
        })
    });
    group.bench_function("stomp_live_registry", |b| {
        let recorder = SharedRecorder::from(Registry::new());
        b.iter(|| {
            black_box(
                stomp_parallel_with(&ps, l, ExclusionPolicy::HALF, threads, &recorder).unwrap(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_recorder_overhead);
criterion_main!(benches);
