//! Microbench: single-length motif discovery across methods — STOMP vs
//! QuickMotif vs STAMP (and PAA/R-tree construction on its own), the
//! fixed-length backdrop of Figs. 8 and 13.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use valmod_baselines::quick_motif::{quick_motif, QuickMotifConfig};
use valmod_data::datasets::Dataset;
use valmod_index::rtree::RTree;
use valmod_mp::stomp::stomp;
use valmod_mp::{ExclusionPolicy, ProfiledSeries};

fn bench_single_length(c: &mut Criterion) {
    let mut group = c.benchmark_group("single_length_motif");
    group.sample_size(10);
    for ds in [Dataset::Ecg, Dataset::Emg] {
        let ps = ProfiledSeries::new(&ds.generate(2_000, 1));
        group.bench_with_input(BenchmarkId::new("stomp", ds.name()), &ds, |b, _| {
            b.iter(|| black_box(stomp(&ps, 64, ExclusionPolicy::HALF).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("quick_motif", ds.name()), &ds, |b, _| {
            b.iter(|| {
                black_box(
                    quick_motif(&ps, 64, ExclusionPolicy::HALF, &QuickMotifConfig::default())
                        .unwrap(),
                )
            })
        });
    }
    group.finish();
}

fn bench_rtree_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("rtree_bulk_load");
    for n in [1_000usize, 10_000] {
        let points: Vec<Vec<f64>> =
            (0..n).map(|i| (0..8).map(|k| ((i * (k + 3)) as f64 * 0.01).sin()).collect()).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(RTree::bulk_load(&points, 16, 8)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_single_length, bench_rtree_build);
criterion_main!(benches);
