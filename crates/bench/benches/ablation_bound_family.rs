//! Ablation (DESIGN.md §5): VALMOD's per-profile σ-ratio bound vs the
//! MOEN-style global σ-ratio bound.
//!
//! Both are exact; the difference is pure pruning power. The paper's §6.2
//! attributes VALMOD's advantage precisely to this factor: the global ratio
//! decays monotonically, the per-profile ratio can even grow.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use valmod_baselines::moen::moen;
use valmod_core::valmod::{Valmod, ValmodConfig};
use valmod_data::datasets::Dataset;
use valmod_mp::{ExclusionPolicy, ProfiledSeries};

fn bench_bound_families(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/bound_family");
    group.sample_size(10);
    for ds in [Dataset::Ecg, Dataset::Astro] {
        let ps = ProfiledSeries::new(&ds.generate(1_200, 1));
        let (l_min, l_max) = (48usize, 60usize);
        group.bench_with_input(
            BenchmarkId::new("per_profile_sigma_ratio", ds.name()),
            &ds,
            |b, _| {
                let runner = Valmod::from_config(ValmodConfig::new(l_min, l_max).with_p(20));
                b.iter(|| black_box(runner.run_on(&ps).unwrap()))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("global_sigma_ratio_moen", ds.name()),
            &ds,
            |b, _| {
                b.iter(|| {
                    black_box(
                        moen(&ps, l_min, l_max, ExclusionPolicy::HALF, std::time::Duration::MAX)
                            .unwrap(),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_bound_families);
criterion_main!(benches);
