//! Microbench: the FFT substrate — radix-2 plans, Bluestein, and the
//! sliding dot product vs its naive O(nm) form (the DESIGN.md §5 "FFT vs
//! naive first dot-product" ablation; the crossover justifies using the FFT
//! only for the first profile row).

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use valmod_data::generators::random_walk;
use valmod_fft::complex::Complex;
use valmod_fft::real::{sliding_dot_product, sliding_dot_product_naive};
use valmod_fft::{BluesteinPlan, Radix2Plan};

fn bench_radix2(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft/radix2");
    for n in [256usize, 1024, 4096] {
        let plan = Radix2Plan::new(n);
        let input: Vec<Complex> =
            (0..n).map(|i| Complex::new((i as f64).sin(), (i as f64).cos())).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut buf = input.clone();
                plan.forward(&mut buf);
                black_box(buf[0])
            })
        });
    }
    group.finish();
}

fn bench_bluestein(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft/bluestein");
    for n in [250usize, 1000] {
        let plan = BluesteinPlan::new(n);
        let input: Vec<Complex> = (0..n).map(|i| Complex::from_real((i as f64).sin())).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(plan.forward(&input)))
        });
    }
    group.finish();
}

fn bench_sliding_dot(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft/sliding_dot_product");
    let series = random_walk(8192, 7);
    for m in [64usize, 256, 1024] {
        let query = series[100..100 + m].to_vec();
        group.bench_with_input(BenchmarkId::new("fft", m), &m, |b, _| {
            b.iter(|| black_box(sliding_dot_product(&query, &series)))
        });
        group.bench_with_input(BenchmarkId::new("naive", m), &m, |b, _| {
            b.iter(|| black_box(sliding_dot_product_naive(&query, &series)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_radix2, bench_bluestein, bench_sliding_dot);
criterion_main!(benches);
