//! Microbench: the Eq. 3 distance kernel, the Eq. 2 lower bound, and the
//! bounded lower-bound heap — the inner loops of `ComputeMatrixProfile`.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use valmod_core::lb::{lb_base, lb_key, lb_scale};
use valmod_core::profile::{DpEntry, PartialProfile};
use valmod_data::generators::random_walk;
use valmod_mp::distance::{dist_from_qt, zdist_naive};

fn bench_distance_kernels(c: &mut Criterion) {
    let series = random_walk(4096, 3);
    let l = 256usize;
    let a = &series[0..l];
    let b = &series[2000..2000 + l];
    let stats = |x: &[f64]| {
        let m = x.iter().sum::<f64>() / x.len() as f64;
        let v = x.iter().map(|&v| (v - m) * (v - m)).sum::<f64>() / x.len() as f64;
        (m, v.sqrt())
    };
    let (ma, sa) = stats(a);
    let (mb, sb) = stats(b);
    let qt: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();

    let mut group = c.benchmark_group("distance");
    group.bench_function("eq3_from_dot_product", |bch| {
        bch.iter(|| black_box(dist_from_qt(black_box(qt), l, ma, sa, mb, sb)))
    });
    group.bench_function("naive_znorm_euclidean", |bch| {
        bch.iter(|| black_box(zdist_naive(black_box(a), black_box(b))))
    });
    group.finish();
}

fn bench_lower_bound(c: &mut Criterion) {
    let mut group = c.benchmark_group("lower_bound");
    group.bench_function("eq2_key", |b| {
        b.iter(|| black_box(lb_key(black_box(0.73), black_box(256))))
    });
    group.bench_function("eq2_base_plus_scale", |b| {
        b.iter(|| {
            let base = lb_base(black_box(0.73), black_box(256));
            black_box(lb_scale(base, black_box(1.7), black_box(2.3)))
        })
    });
    group.finish();
}

fn bench_profile_heap(c: &mut Criterion) {
    let mut group = c.benchmark_group("listdp_heap");
    for p in [5usize, 50, 150] {
        group.bench_with_input(BenchmarkId::new("offer_stream", p), &p, |b, &p| {
            b.iter(|| {
                let mut prof = PartialProfile::new(0, 64, 1.0, p);
                for i in 0..2000usize {
                    let key = ((i * 2654435761) % 1000) as f64;
                    prof.offer(DpEntry { neighbor: i, qt: 0.0, dist: key, lb_key: key });
                }
                black_box(prof.max_lb_key())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_distance_kernels, bench_lower_bound, bench_profile_heap);
criterion_main!(benches);
