//! Microbench: STOMP, STAMP, the harvesting `ComputeMatrixProfile`, and one
//! `ComputeSubMP` step — the building blocks whose ratio explains VALMOD's
//! headline speed-up.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use valmod_core::compute_mp::{compute_matrix_profile, compute_matrix_profile_parallel};
use valmod_core::sub_mp::{compute_sub_mp, compute_sub_mp_threaded};
use valmod_data::datasets::Dataset;
use valmod_mp::parallel::stomp_parallel;
use valmod_mp::stamp::stamp;
use valmod_mp::stomp::stomp;
use valmod_mp::streaming::StreamingProfile;
use valmod_mp::{ExclusionPolicy, ProfiledSeries};

const N: usize = 2_000;
const L: usize = 64;

fn prepared() -> ProfiledSeries {
    ProfiledSeries::new(&Dataset::Ecg.generate(N, 1))
}

fn bench_profiles(c: &mut Criterion) {
    let ps = prepared();
    let mut group = c.benchmark_group("matrix_profile");
    group.sample_size(10);
    group.bench_function("stomp", |b| {
        b.iter(|| black_box(stomp(&ps, L, ExclusionPolicy::HALF).unwrap()))
    });
    group.bench_function("stamp_full", |b| {
        b.iter(|| black_box(stamp(&ps, L, ExclusionPolicy::HALF, usize::MAX, 3).unwrap()))
    });
    for p in [5usize, 50] {
        group.bench_with_input(BenchmarkId::new("compute_mp_with_harvest", p), &p, |b, &p| {
            b.iter(|| black_box(compute_matrix_profile(&ps, L, p, ExclusionPolicy::HALF).unwrap()))
        });
    }
    group.finish();
}

fn bench_sub_mp_step(c: &mut Criterion) {
    let ps = prepared();
    let mut group = c.benchmark_group("sub_mp_step");
    group.sample_size(20);
    for p in [5usize, 50] {
        let state = compute_matrix_profile(&ps, L, p, ExclusionPolicy::HALF).unwrap();
        group.bench_with_input(BenchmarkId::new("one_length", p), &p, |b, _| {
            b.iter_batched(
                || state.partials.clone(),
                |mut partials| {
                    black_box(compute_sub_mp(&ps, &mut partials, L + 1, ExclusionPolicy::HALF))
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    for threads in [2usize, 4, 8] {
        let state = compute_matrix_profile(&ps, L, 50, ExclusionPolicy::HALF).unwrap();
        group.bench_with_input(
            BenchmarkId::new("one_length_p50_threads", threads),
            &threads,
            |b, &threads| {
                b.iter_batched(
                    || state.partials.clone(),
                    |mut partials| {
                        black_box(compute_sub_mp_threaded(
                            &ps,
                            &mut partials,
                            L + 1,
                            ExclusionPolicy::HALF,
                            threads,
                        ))
                    },
                    criterion::BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
}

fn bench_parallel_and_streaming(c: &mut Criterion) {
    let ps = prepared();
    let mut group = c.benchmark_group("profile_variants");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("stomp_parallel", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    black_box(stomp_parallel(&ps, L, ExclusionPolicy::HALF, threads).unwrap())
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("compute_mp_parallel_p50", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    black_box(
                        compute_matrix_profile_parallel(&ps, L, 50, ExclusionPolicy::HALF, threads)
                            .unwrap(),
                    )
                })
            },
        );
    }
    // Streaming: cost of one O(n) append at n = 2 000.
    let series = Dataset::Ecg.generate(N, 1);
    let stream = StreamingProfile::new(series.values(), L, ExclusionPolicy::HALF).unwrap();
    group.bench_function("streaming_append", |b| {
        b.iter_batched(
            || stream.clone(),
            |mut s| {
                s.append(black_box(0.123)).unwrap();
                black_box(s.len())
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_profiles, bench_sub_mp_step, bench_parallel_and_streaming);
criterion_main!(benches);
