//! Microbench: the serve layer's query path — a cold VALMOD computation
//! through the engine's queue/worker machinery versus a cache hit answered
//! at admission. The gap is the whole point of the service layer: repeated
//! interactive queries should cost microseconds, not the full kernel.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use valmod_data::datasets::Dataset;
use valmod_mp::ExclusionPolicy;
use valmod_serve::engine::{EngineConfig, QueryEngine, QueryKind, QuerySpec};

const N: usize = 1_500;

fn spec(name: &str) -> QuerySpec {
    QuerySpec {
        series: name.into(),
        kind: QueryKind::Motifs { top: 3 },
        l_min: 32,
        l_max: 44,
        p: 8,
        policy: ExclusionPolicy::HALF,
        deadline: None,
    }
}

fn bench_engine_query(c: &mut Criterion) {
    let series = Dataset::Ecg.generate(N, 1).values().to_vec();

    let mut group = c.benchmark_group("serve_query");
    group.sample_size(10);

    // Cold: result and fragment caches disabled, every query runs the full
    // VALMOD kernel behind the queue — queue + snapshot + compute + encode.
    let cold = QueryEngine::new(
        EngineConfig::builder().cache_bytes(0).fragment_cache_bytes(0).build().unwrap(),
    );
    cold.load("ecg", series.clone(), &[], ExclusionPolicy::HALF, false).unwrap();
    group.bench_function("cold", |b| b.iter(|| black_box(cold.query(spec("ecg")).unwrap())));

    // Planned: result cache off but fragments warm, so each query is a
    // planner composition over cached per-length fragments.
    let planned = QueryEngine::new(EngineConfig::builder().cache_bytes(0).build().unwrap());
    planned.load("ecg", series.clone(), &[], ExclusionPolicy::HALF, false).unwrap();
    planned.query(spec("ecg")).unwrap(); // prime the fragment cache
    group.bench_function("planned", |b| {
        b.iter(|| {
            let out = planned.query(spec("ecg")).unwrap();
            debug_assert!(!out.cached);
            black_box(out)
        })
    });

    // Cached: the same query answered from the result cache at admission,
    // without consuming a queue slot.
    let cached = QueryEngine::new(EngineConfig::builder().build().unwrap());
    cached.load("ecg", series.clone(), &[], ExclusionPolicy::HALF, false).unwrap();
    let warm = cached.query(spec("ecg")).unwrap();
    assert!(!warm.cached);
    group.bench_function("cached", |b| {
        b.iter(|| {
            let out = cached.query(spec("ecg")).unwrap();
            debug_assert!(out.cached);
            black_box(out)
        })
    });

    group.finish();
    cold.shutdown();
    cold.join();
    planned.shutdown();
    planned.join();
    cached.shutdown();
    cached.join();
}

criterion_group!(benches, bench_engine_query);
criterion_main!(benches);
