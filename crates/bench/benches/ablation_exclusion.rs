//! Ablation (DESIGN.md §5): the exclusion-zone policy — the paper's `ℓ/2`
//! vs the common STOMP default `ℓ/4`.
//!
//! A smaller zone admits more candidate pairs (slightly more work, and
//! motifs may sit closer together); both remain exact. This bench shows the
//! run-time effect is marginal, supporting the paper's choice as a
//! semantics (not performance) decision.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use valmod_core::valmod::{Valmod, ValmodConfig};
use valmod_data::datasets::Dataset;
use valmod_mp::{ExclusionPolicy, ProfiledSeries};

fn bench_exclusion_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/exclusion_zone");
    group.sample_size(10);
    let ps = ProfiledSeries::new(&Dataset::Ecg.generate(1_500, 1));
    for (name, policy) in
        [("half_l", ExclusionPolicy::HALF), ("quarter_l", ExclusionPolicy::QUARTER)]
    {
        group.bench_with_input(BenchmarkId::from_parameter(name), &policy, |b, &policy| {
            let runner =
                Valmod::from_config(ValmodConfig::new(48, 60).with_p(20).with_policy(policy));
            b.iter(|| black_box(runner.run_on(&ps).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_exclusion_policies);
criterion_main!(benches);
