//! Microbench: the motif-set expansion (Algorithm 6) — the step Fig. 15
//! shows to be orders of magnitude cheaper than building VALMP.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use valmod_core::motif_sets::compute_var_length_motif_sets;
use valmod_core::valmod::{Valmod, ValmodConfig};
use valmod_data::datasets::Dataset;
use valmod_mp::{ExclusionPolicy, ProfiledSeries};

fn bench_sets(c: &mut Criterion) {
    let ps = ProfiledSeries::new(&Dataset::Gap.generate(2_000, 1));
    let runner = Valmod::from_config(ValmodConfig::new(64, 80).with_p(20).with_pair_tracking(80));
    let out = runner.run_on(&ps).unwrap();
    let tracker = out.best_pairs.unwrap();

    let mut group = c.benchmark_group("motif_sets");
    for d in [2.0f64, 4.0, 6.0] {
        group.bench_with_input(BenchmarkId::new("radius_factor", format!("{d}")), &d, |b, &d| {
            b.iter(|| {
                black_box(compute_var_length_motif_sets(&ps, &tracker, d, ExclusionPolicy::HALF))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sets);
criterion_main!(benches);
