//! The benchmark parameter grid (paper Table 2), scaled for laptop runs.
//!
//! Paper values → scaled defaults (factor 1/8 on lengths, 1/50 on sizes):
//!
//! | dimension | paper | here (scale = 1) |
//! |---|---|---|
//! | motif length ℓ_min | 256, 512, 1024, **2048**¹, 4096 | 32, 64, **128**, 256, 512 |
//! | motif range ℓ_max − ℓ_min | **100**, 150, 200, 400, 600 | **13**, 19, 25, 50, 75 |
//! | series size | 0.1M, 0.2M, **0.5M**, 0.8M, 1M | 2k, 4k, **10k**, 16k, 20k |
//! | p | 5, 10, 15, 20, **50**, 100, 150 | unchanged |
//!
//! ¹ The paper's bold (default) column marks ℓ_min = 256 and size 0.1M for
//! some experiments; we centre the grid instead, which keeps every sweep's
//! non-varying dimensions moderate. `VALMOD_BENCH_SCALE` multiplies sizes
//! and lengths together so ratios are preserved.

use valmod_data::datasets::Dataset;

/// Global scale factor read from `VALMOD_BENCH_SCALE`.
#[derive(Debug, Clone, Copy)]
pub struct Scale(pub f64);

impl Scale {
    /// Reads the scale from the environment (default 1.0, clamped ≥ 0.1).
    pub fn from_env() -> Self {
        let v = std::env::var("VALMOD_BENCH_SCALE")
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .unwrap_or(1.0);
        Scale(v.max(0.1))
    }

    /// Applies the scale to a base quantity, keeping it at least `min`.
    pub fn apply(&self, base: usize, min: usize) -> usize {
        ((base as f64 * self.0).round() as usize).max(min)
    }
}

/// The per-algorithm deadline read from `VALMOD_BENCH_DEADLINE_SECS`
/// (default 60 s).
pub fn deadline() -> std::time::Duration {
    let secs = std::env::var("VALMOD_BENCH_DEADLINE_SECS")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(60);
    std::time::Duration::from_secs(secs)
}

/// One benchmark configuration (a row of Table 2 with defaults filled in).
#[derive(Debug, Clone, Copy)]
pub struct BenchParams {
    /// Smallest motif length.
    pub l_min: usize,
    /// `ℓ_max = ℓ_min + range`.
    pub range: usize,
    /// Series size in points.
    pub n: usize,
    /// Retained entries per distance profile.
    pub p: usize,
    /// Generator seed.
    pub seed: u64,
    /// Worker threads for profile computations (1 = sequential,
    /// 0 = all available cores).
    pub threads: usize,
}

impl BenchParams {
    /// The default (bold) configuration at the given scale.
    pub fn default_at(scale: Scale) -> Self {
        BenchParams {
            l_min: scale.apply(128, 8),
            range: scale.apply(13, 4),
            n: scale.apply(10_000, 512),
            p: 50,
            seed: 20_180_610, // SIGMOD'18 opening day
            threads: 1,
        }
    }

    /// The largest length searched.
    pub fn l_max(&self) -> usize {
        self.l_min + self.range
    }

    /// The sweep values of the motif-length dimension (Fig. 8).
    pub fn length_sweep(scale: Scale) -> Vec<usize> {
        [32usize, 64, 128, 256, 512].iter().map(|&b| scale.apply(b, 8)).collect()
    }

    /// The sweep values of the motif-range dimension (Fig. 12).
    pub fn range_sweep(scale: Scale) -> Vec<usize> {
        [13usize, 19, 25, 50, 75].iter().map(|&b| scale.apply(b, 2)).collect()
    }

    /// The sweep values of the series-size dimension (Fig. 13).
    pub fn size_sweep(scale: Scale) -> Vec<usize> {
        [2_000usize, 4_000, 10_000, 16_000, 20_000].iter().map(|&b| scale.apply(b, 256)).collect()
    }

    /// The sweep values of `p` (Fig. 14; paper Table 2's last column).
    pub fn p_sweep() -> Vec<usize> {
        vec![50, 100, 150]
    }

    /// The sweep values of the thread-count dimension (scalability runs).
    pub fn thread_sweep() -> Vec<usize> {
        vec![1, 2, 4, 8]
    }

    /// All five datasets in the paper's presentation order.
    pub fn datasets() -> [Dataset; 5] {
        Dataset::ALL
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_params_are_consistent() {
        let p = BenchParams::default_at(Scale(1.0));
        assert!(p.l_max() > p.l_min);
        assert!(p.n > 4 * p.l_max(), "series must dwarf the longest motif");
    }

    #[test]
    fn scale_multiplies_with_floors() {
        let s = Scale(0.5);
        assert_eq!(s.apply(100, 8), 50);
        assert_eq!(s.apply(10, 8), 8);
        let sweep = BenchParams::length_sweep(Scale(2.0));
        assert_eq!(sweep, vec![64, 128, 256, 512, 1024]);
    }

    #[test]
    fn sweeps_are_monotone() {
        for sweep in [
            BenchParams::length_sweep(Scale(1.0)),
            BenchParams::range_sweep(Scale(1.0)),
            BenchParams::size_sweep(Scale(1.0)),
        ] {
            for w in sweep.windows(2) {
                assert!(w[0] < w[1]);
            }
        }
    }
}
