//! The pinned bench-regression suite guarding the diagonal-blocked kernel.
//!
//! Unlike the figure/table binaries (which reproduce the paper's plots),
//! this suite exists to catch *performance regressions* in the hot path: it
//! times the pre-rewrite row kernel ([`valmod_mp::stomp::stomp_row`]) and
//! the diagonal-blocked kernel ([`valmod_mp::diagonal`]) over the same
//! inputs **in the same run**, so every report carries its own baseline —
//! machine speed differences cancel out of the speedup column.
//!
//! The suite is pinned: entry names are stable identifiers
//! (`stomp/n16384/l256`, `valmod/n8192/l64..96`, …) so successive
//! `BENCH_core.json` snapshots diff cleanly. `valmod bench` (the CLI) runs
//! it and writes the JSON; CI runs the `--smoke` variant, which shrinks the
//! sizes but keeps every entry name's *shape*, and only asserts the JSON is
//! well-formed — wall-clock numbers are never gated in CI.

use std::time::Instant;

use valmod_core::prelude::*;
use valmod_data::generators::random_walk;
use valmod_mp::diagonal::stomp_diagonal_ws;
use valmod_mp::stomp::stomp_row;
use valmod_mp::workspace::Workspace;
use valmod_mp::{ExclusionPolicy, ProfiledSeries, StreamingProfile};
use valmod_obs::SharedRecorder;

/// One timed comparison of the pinned suite.
#[derive(Debug, Clone)]
pub struct BenchEntry {
    /// Stable identifier, e.g. `stomp/n16384/l256`.
    pub name: String,
    /// Entry family: `stomp`, `compute_mp`, `valmod`, `streaming`,
    /// `cluster`, `planner`, `append`, or `serve_mixed`.
    pub kind: &'static str,
    /// Series size in points.
    pub n: usize,
    /// Subsequence length (`ℓ_min` for range entries).
    pub l: usize,
    /// Timed iterations per kernel (the median is reported).
    pub iters: usize,
    /// Median wall-clock of the pre-rewrite baseline kernel, when the entry
    /// has one (the row kernel / row-streamed harvest); `None` for entries
    /// that only track the current implementation over time.
    pub baseline_ms: Option<f64>,
    /// Median wall-clock of the current implementation.
    pub current_ms: f64,
}

impl BenchEntry {
    /// `baseline / current`, when a baseline was measured (> 1 = faster).
    pub fn speedup(&self) -> Option<f64> {
        self.baseline_ms.map(|b| b / self.current_ms.max(1e-9))
    }
}

/// The full suite result, serialisable to the `BENCH_core.json` schema.
#[derive(Debug, Clone)]
pub struct RegressionReport {
    /// Whether the shrunken smoke variant ran.
    pub smoke: bool,
    /// All entries, in pinned order.
    pub entries: Vec<BenchEntry>,
}

fn push_json_f64(out: &mut String, value: f64) {
    // All timings are finite; keep a stable, diff-friendly precision.
    out.push_str(&format!("{value:.4}"));
}

impl RegressionReport {
    /// Serialises to the versioned `BENCH_core.json` document.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256 + 160 * self.entries.len());
        s.push_str("{\"schema\":\"valmod-bench-regression/v1\",\"suite\":\"core\",");
        s.push_str(&format!("\"smoke\":{},\"entries\":[", self.smoke));
        for (k, e) in self.entries.iter().enumerate() {
            if k > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"name\":\"{}\",\"kind\":\"{}\",\"n\":{},\"l\":{},\"iters\":{},",
                e.name, e.kind, e.n, e.l, e.iters
            ));
            if let Some(b) = e.baseline_ms {
                s.push_str("\"baseline_ms\":");
                push_json_f64(&mut s, b);
                s.push(',');
            }
            s.push_str("\"current_ms\":");
            push_json_f64(&mut s, e.current_ms);
            if let Some(x) = e.speedup() {
                s.push_str(",\"speedup\":");
                push_json_f64(&mut s, x);
            }
            s.push('}');
        }
        s.push_str("]}");
        s
    }

    /// A human-readable table of the entries.
    pub fn table(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "{:<28} {:>10} {:>12} {:>12} {:>8}\n",
            "entry", "iters", "baseline_ms", "current_ms", "speedup"
        ));
        for e in &self.entries {
            let base = e.baseline_ms.map_or("-".into(), |b| format!("{b:.3}"));
            let speed = e.speedup().map_or("-".into(), |x| format!("{x:.2}x"));
            s.push_str(&format!(
                "{:<28} {:>10} {:>12} {:>12.3} {:>8}\n",
                e.name, e.iters, base, e.current_ms, speed
            ));
        }
        s
    }
}

/// Median wall-clock of `iters` runs of `f`, in milliseconds. The closure's
/// result is returned through `std::hint::black_box` inside `f` itself (the
/// callers bind the profile to a sink), so the work cannot be elided.
fn median_ms<F: FnMut()>(iters: usize, mut f: F) -> f64 {
    let iters = iters.max(1);
    let mut samples: Vec<f64> = (0..iters)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn iters_for(n: usize) -> usize {
    if n <= 16_384 {
        3
    } else {
        1
    }
}

const SEED: u64 = 20_180_610; // matches the figure binaries

/// Runs the pinned suite. `smoke = true` shrinks every size so the whole
/// run finishes in a few seconds (used by CI to validate the plumbing);
/// `smoke = false` runs the real sizes (STOMP at 2^14..2^17 points).
pub fn run_suite(smoke: bool) -> RegressionReport {
    let mut entries = Vec::new();

    // --- STOMP kernel: row streamer vs diagonal-blocked, same inputs. ---
    let stomp_sizes: &[(usize, usize)] = if smoke {
        &[(1_024, 64), (2_048, 64)]
    } else {
        &[(16_384, 256), (32_768, 256), (65_536, 256), (131_072, 256)]
    };
    let mut ws = Workspace::new();
    for &(n, l) in stomp_sizes {
        let ps = ProfiledSeries::from_values(&random_walk(n, SEED)).unwrap();
        let iters = iters_for(n);
        let mut sink = 0.0f64;
        let row_ms = median_ms(iters, || {
            let p = stomp_row(&ps, l, ExclusionPolicy::HALF).unwrap();
            sink += std::hint::black_box(p.mp[0]);
        });
        let diag_ms = median_ms(iters, || {
            let p = stomp_diagonal_ws(&ps, l, ExclusionPolicy::HALF, &mut ws).unwrap();
            sink += std::hint::black_box(p.mp[0]);
        });
        std::hint::black_box(sink);
        entries.push(BenchEntry {
            name: format!("stomp/n{n}/l{l}"),
            kind: "stomp",
            n,
            l,
            iters,
            baseline_ms: Some(row_ms),
            current_ms: diag_ms,
        });
    }

    // --- Harvesting matrix profile: row-chunked (the pre-fusion path,
    // still used by the parallel harvest) vs the fused diagonal harvest. ---
    let (hn, hl, hp) = if smoke { (1_024, 32, 8) } else { (8_192, 128, 50) };
    {
        let ps = ProfiledSeries::from_values(&random_walk(hn, SEED)).unwrap();
        let iters = iters_for(hn);
        let mut sink = 0usize;
        // threads=2 forces the row-streamed chunk kernel even on 1 core;
        // it is the surviving pre-fusion implementation.
        let row_ms = median_ms(iters, || {
            let h =
                valmod_core::compute_matrix_profile_parallel(&ps, hl, hp, ExclusionPolicy::HALF, 2)
                    .unwrap();
            sink += std::hint::black_box(h.partials.len());
        });
        let mut hws = Workspace::new();
        let fused_ms = median_ms(iters, || {
            let h = valmod_core::compute_matrix_profile_ws(
                &ps,
                hl,
                hp,
                ExclusionPolicy::HALF,
                &mut hws,
            )
            .unwrap();
            sink += std::hint::black_box(h.partials.len());
        });
        std::hint::black_box(sink);
        entries.push(BenchEntry {
            name: format!("compute_mp/n{hn}/l{hl}/p{hp}"),
            kind: "compute_mp",
            n: hn,
            l: hl,
            iters,
            baseline_ms: Some(row_ms),
            current_ms: fused_ms,
        });
    }

    // --- VALMOD range sweep: current implementation only (tracked over
    // time; the interesting baseline is the previous snapshot). ---
    let (vn, vl_min, vl_max, vp) = if smoke { (1_024, 24, 32, 8) } else { (8_192, 64, 96, 50) };
    {
        let series = Series::new(random_walk(vn, SEED)).unwrap();
        let iters = iters_for(vn);
        let mut sink = 0usize;
        let run_ms = median_ms(iters, || {
            let out = Valmod::new(vl_min, vl_max).p(vp).run(&series).unwrap();
            sink += std::hint::black_box(out.per_length.len());
        });
        std::hint::black_box(sink);
        entries.push(BenchEntry {
            name: format!("valmod/n{vn}/l{vl_min}..{vl_max}/p{vp}"),
            kind: "valmod",
            n: vn,
            l: vl_min,
            iters,
            baseline_ms: None,
            current_ms: run_ms,
        });
    }

    // --- Streaming append throughput: current implementation only. ---
    let (sn, sl, appended) = if smoke { (2_048, 32, 256) } else { (16_384, 128, 4_096) };
    {
        let values = random_walk(sn + appended, SEED);
        let iters = iters_for(sn);
        let mut sink = 0.0f64;
        let append_ms = median_ms(iters, || {
            let mut sp = StreamingProfile::new(&values[..sn], sl, ExclusionPolicy::HALF).unwrap();
            sp.extend(&values[sn..]).unwrap();
            sink += std::hint::black_box(sp.profile().mp[0]);
        });
        std::hint::black_box(sink);
        entries.push(BenchEntry {
            name: format!("streaming/n{sn}/l{sl}/append{appended}"),
            kind: "streaming",
            n: sn,
            l: sl,
            iters,
            baseline_ms: None,
            current_ms: append_ms,
        });
    }

    // --- Cluster scaling: the same STOMP case dispatched across 1/2/4
    // in-process workers over loopback TCP. The 1-worker time is the
    // baseline for the multi-worker entries, so the speedup column reads
    // directly as scaling efficiency. Series shipping (`load_job`) is
    // inside the timed region — the number is end-to-end job latency.
    let (cn, cl) = if smoke { (2_048, 64) } else { (131_072, 256) };
    {
        use valmod_cluster::{
            run_distributed, spawn_local_workers, CoordinatorConfig, JobSpec, WorkerConfig,
        };
        let values = random_walk(cn, SEED);
        let mut one_worker_ms = None;
        for w in [1usize, 2, 4] {
            let workers = spawn_local_workers(w, WorkerConfig::default()).unwrap();
            let addrs: Vec<String> = workers.iter().map(|x| x.addr()).collect();
            let cfg = CoordinatorConfig { parts_per_length: 2 * w, ..CoordinatorConfig::default() };
            let iters = if smoke { 2 } else { 1 };
            let mut sink = 0usize;
            let ms = median_ms(iters, || {
                let spec = JobSpec::new("bench", values.clone(), cl, cl);
                let run = run_distributed(&spec, &addrs, &cfg, &SharedRecorder::noop()).unwrap();
                sink += std::hint::black_box(run.output.profiles.len());
            });
            std::hint::black_box(sink);
            for worker in workers {
                worker.shutdown();
            }
            if w == 1 {
                one_worker_ms = Some(ms);
            }
            entries.push(BenchEntry {
                name: format!("cluster/n{cn}/l{cl}/w{w}"),
                kind: "cluster",
                n: cn,
                l: cl,
                iters,
                baseline_ms: if w == 1 { None } else { one_worker_ms },
                current_ms: ms,
            });
        }
    }

    // --- Serve query planner: a warm overlapping-range sweep composed from
    // the fragment cache vs the same sweep on an engine with a zero
    // fragment budget (every query a full recompute). Both engines run with
    // the result cache off, so the column isolates fragment reuse. The
    // warm engine is primed outside the timed region. ---
    let (pn, plo, phi, pp) = if smoke { (2_048, 24, 48, 8) } else { (8_192, 64, 96, 50) };
    {
        use valmod_serve::engine::{EngineConfig, QueryEngine, QueryKind, QuerySpec};
        let engine = |fragment_bytes: usize| {
            QueryEngine::new(
                EngineConfig::builder()
                    .workers(1)
                    .queue_depth(32)
                    .cache_bytes(0)
                    .fragment_cache_bytes(fragment_bytes)
                    .default_deadline(std::time::Duration::from_secs(600))
                    .build()
                    .unwrap(),
            )
        };
        let spec = |kind: QueryKind| QuerySpec {
            series: "bench".into(),
            kind,
            l_min: plo,
            l_max: phi,
            p: pp,
            policy: ExclusionPolicy::HALF,
            deadline: None,
        };
        // Motifs and discords with varying ranking knobs all share one
        // fragment key, so the whole sweep reuses the primed fragments.
        let sweep = [
            QueryKind::Motifs { top: 3 },
            QueryKind::Discords { top: 2 },
            QueryKind::Motifs { top: 5 },
            QueryKind::Discords { top: 4 },
        ];
        let values = random_walk(pn, SEED);
        let iters = if smoke { 2 } else { 1 };
        let mut sink = 0usize;

        let warm = engine(64 << 20);
        warm.load("bench", values.clone(), &[], ExclusionPolicy::HALF, false).unwrap();
        warm.query(spec(QueryKind::Motifs { top: 3 })).unwrap(); // prime
        let warm_ms = median_ms(iters, || {
            for kind in sweep.clone() {
                let out = warm.query(spec(kind)).unwrap();
                sink += std::hint::black_box(out.payload.encode().len());
            }
        });
        warm.shutdown();
        warm.join();

        let cold = engine(0);
        cold.load("bench", values, &[], ExclusionPolicy::HALF, false).unwrap();
        let cold_ms = median_ms(iters, || {
            for kind in sweep.clone() {
                let out = cold.query(spec(kind)).unwrap();
                sink += std::hint::black_box(out.payload.encode().len());
            }
        });
        cold.shutdown();
        cold.join();

        std::hint::black_box(sink);
        entries.push(BenchEntry {
            name: format!("planner/n{pn}/l{plo}..{phi}/sweep{}", sweep.len()),
            kind: "planner",
            n: pn,
            l: plo,
            iters,
            baseline_ms: Some(cold_ms),
            current_ms: warm_ms,
        });
    }

    // --- Incremental append→query: a warm engine whose parked fragment
    // states are lazily extended over each APPEND batch vs a zero-budget
    // engine that recomputes from scratch. Single-length queries so the
    // revival is pure tail extension (O(k·n)) against a cold O(n²) STOMP;
    // both engines replay the same LOAD + APPEND schedule, and the append
    // itself sits inside the timed region on both sides. ---
    let (an, al, ak) = if smoke { (2_048, 32, 64) } else { (8_192, 64, 128) };
    {
        use valmod_serve::engine::{EngineConfig, QueryEngine, QueryKind, QuerySpec};
        let engine = |fragment_bytes: usize| {
            QueryEngine::new(
                EngineConfig::builder()
                    .workers(1)
                    .queue_depth(32)
                    .cache_bytes(0)
                    .fragment_cache_bytes(fragment_bytes)
                    .default_deadline(std::time::Duration::from_secs(600))
                    .build()
                    .unwrap(),
            )
        };
        let spec = || QuerySpec {
            series: "bench".into(),
            kind: QueryKind::Motifs { top: 3 },
            l_min: al,
            l_max: al,
            p: 5,
            policy: ExclusionPolicy::HALF,
            deadline: None,
        };
        let iters = if smoke { 3 } else { 2 };
        let values = random_walk(an + ak * iters, SEED);
        let mut sink = 0usize;

        let warm = engine(64 << 20);
        warm.load("bench", values[..an].to_vec(), &[], ExclusionPolicy::HALF, false).unwrap();
        warm.query(spec()).unwrap(); // prime: parks the segment state
        let mut warm_n = an;
        let warm_ms = median_ms(iters, || {
            warm.append("bench", &values[warm_n..warm_n + ak]).unwrap();
            warm_n += ak;
            let out = warm.query(spec()).unwrap();
            sink += std::hint::black_box(out.payload.encode().len());
        });
        warm.shutdown();
        warm.join();

        let cold = engine(0);
        cold.load("bench", values[..an].to_vec(), &[], ExclusionPolicy::HALF, false).unwrap();
        cold.query(spec()).unwrap(); // symmetric first compute
        let mut cold_n = an;
        let cold_ms = median_ms(iters, || {
            cold.append("bench", &values[cold_n..cold_n + ak]).unwrap();
            cold_n += ak;
            let out = cold.query(spec()).unwrap();
            sink += std::hint::black_box(out.payload.encode().len());
        });
        cold.shutdown();
        cold.join();

        std::hint::black_box(sink);
        entries.push(BenchEntry {
            name: format!("append/n{an}/l{al}/k{ak}"),
            kind: "append",
            n: an,
            l: al,
            iters,
            baseline_ms: Some(cold_ms),
            current_ms: warm_ms,
        });
    }

    // --- Sharded serve engine under a mixed concurrent workload: four
    // independent per-series op streams (hot fixed-length MOTIFS,
    // single-length DISCORDS, APPEND batches, STATS probes, each op
    // followed by a short client think-time) executed by one client
    // thread running the streams back to back vs four threads running
    // one stream each. The series carry a hot length and the engine is
    // primed outside the timed region, so the timed ops are the live
    // steady state — hot-profile answers, cache hits, O(k·n) streaming
    // appends, and single-length fragment revivals, not initial O(n²)
    // colds (those serialise on any worker pool and would drown the
    // concurrency signal on a small host). Total work is identical on
    // both sides; the speedup column is the concurrency win of the
    // striped store — think-times alone overlap, so four threads must
    // land at or above 1.0x even on a single core. ---
    let (mn, ml, mops) = if smoke { (2_048, 32, 20) } else { (8_192, 64, 20) };
    {
        use valmod_serve::engine::{EngineConfig, QueryEngine, QueryKind, QuerySpec};

        fn mixed_spec(name: &str, kind: QueryKind, ml: usize) -> QuerySpec {
            QuerySpec {
                series: name.into(),
                kind,
                l_min: ml,
                l_max: ml,
                p: 8,
                policy: ExclusionPolicy::HALF,
                deadline: None,
            }
        }

        fn mixed_stream(engine: &QueryEngine, stream: usize, ml: usize, mops: usize) {
            let name = format!("s{stream}");
            let tail = random_walk(mops * 16, SEED + 500 + stream as u64);
            for j in 0..mops {
                match j % 5 {
                    4 => {
                        engine.append(&name, &tail[j * 16..(j + 1) * 16]).unwrap();
                    }
                    3 => {
                        std::hint::black_box(engine.stats());
                    }
                    rest => {
                        let kind = if rest == 2 {
                            QueryKind::Discords { top: 2 }
                        } else {
                            QueryKind::Motifs { top: 3 }
                        };
                        engine.query(mixed_spec(&name, kind, ml)).unwrap();
                    }
                }
                // Client round-trip think-time: the part of a real mixed
                // workload that trivially overlaps across threads.
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }

        let run = |threads: usize| -> f64 {
            // Budgets are per-stripe after the split (DEFAULT_STRIPES = 8),
            // so they must hold a full-size series' parked fragment state
            // per stripe — a starved stripe silently degrades every
            // post-append query to a cold recompute and drowns the
            // concurrency signal in kernel time.
            let engine = std::sync::Arc::new(QueryEngine::new(
                EngineConfig::builder()
                    .workers(4)
                    .queue_depth(64)
                    .cache_bytes(64 << 20)
                    .fragment_cache_bytes(64 << 20)
                    .default_deadline(std::time::Duration::from_secs(600))
                    .build()
                    .unwrap(),
            ));
            for s in 0..4 {
                let name = format!("s{s}");
                let values = random_walk(mn, SEED + s as u64);
                engine.load(&name, values, &[ml], ExclusionPolicy::HALF, false).unwrap();
                // Prime the discord shape: the timed streams then pay a
                // single-length fragment revival after each append, never
                // the initial cold compute.
                engine.query(mixed_spec(&name, QueryKind::Discords { top: 2 }, ml)).unwrap();
            }
            let start = Instant::now();
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let engine = std::sync::Arc::clone(&engine);
                    std::thread::spawn(move || {
                        let mut s = t;
                        while s < 4 {
                            mixed_stream(&engine, s, ml, mops);
                            s += threads;
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            let ms = start.elapsed().as_secs_f64() * 1e3;
            engine.shutdown();
            engine.join();
            ms
        };

        let one_ms = run(1);
        let four_ms = run(4);
        entries.push(BenchEntry {
            name: format!("serve_mixed/n{mn}/series4/threads{{1,4}}"),
            kind: "serve_mixed",
            n: mn,
            l: ml,
            iters: 1,
            baseline_ms: Some(one_ms),
            current_ms: four_ms,
        });
    }

    RegressionReport { smoke, entries }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_suite_produces_every_pinned_entry_kind() {
        let report = run_suite(true);
        let kinds: Vec<&str> = report.entries.iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&"stomp"));
        assert!(kinds.contains(&"compute_mp"));
        assert!(kinds.contains(&"valmod"));
        assert!(kinds.contains(&"streaming"));
        assert!(kinds.contains(&"cluster"));
        assert!(kinds.contains(&"planner"));
        assert!(kinds.contains(&"append"));
        assert!(kinds.contains(&"serve_mixed"));
        for e in &report.entries {
            assert!(e.current_ms > 0.0, "{}: non-positive timing", e.name);
            if let Some(b) = e.baseline_ms {
                assert!(b > 0.0, "{}: non-positive baseline", e.name);
            }
        }
    }

    #[test]
    fn json_round_trips_through_the_wire_parser() {
        let report = run_suite(true);
        let json = report.to_json();
        let value = valmod_serve::Value::parse(&json).expect("self-emitted JSON must parse");
        assert_eq!(
            value.get("schema").and_then(|v| v.as_str()),
            Some("valmod-bench-regression/v1")
        );
        let entries = value.get("entries").and_then(|v| v.as_arr()).unwrap();
        assert_eq!(entries.len(), report.entries.len());
        for (e, v) in report.entries.iter().zip(entries) {
            assert_eq!(v.get("name").and_then(|x| x.as_str()), Some(e.name.as_str()));
            let cur = v.get("current_ms").and_then(|x| x.as_f64()).unwrap();
            assert!((cur - e.current_ms).abs() < 1e-3);
            assert_eq!(v.get("baseline_ms").is_some(), e.baseline_ms.is_some());
            assert_eq!(v.get("speedup").is_some(), e.baseline_ms.is_some());
        }
    }

    #[test]
    fn table_lists_every_entry() {
        let report = RegressionReport {
            smoke: true,
            entries: vec![BenchEntry {
                name: "stomp/n1024/l64".into(),
                kind: "stomp",
                n: 1024,
                l: 64,
                iters: 3,
                baseline_ms: Some(2.0),
                current_ms: 1.0,
            }],
        };
        let t = report.table();
        assert!(t.contains("stomp/n1024/l64"));
        assert!(t.contains("2.00x"));
        assert_eq!(report.entries[0].speedup(), Some(2.0));
    }
}
