//! # valmod-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! VALMOD evaluation (paper §6). One binary per experiment — see DESIGN.md
//! §4 for the experiment index — plus Criterion microbenches for the hot
//! kernels and the DESIGN.md §5 ablations.
//!
//! ## Scaling
//!
//! The paper ran on 0.1M–1M-point series with subsequence lengths 256–4096
//! on a Xeon with 32 GB of RAM. The binaries here default to laptop-scale
//! parameters with the same *ratios* (DESIGN.md §3) and honour two
//! environment variables:
//!
//! * `VALMOD_BENCH_SCALE` — multiplies series sizes and lengths
//!   (default 1.0; set 4 or more to approach paper scale).
//! * `VALMOD_BENCH_DEADLINE_SECS` — per-algorithm wall-clock budget before
//!   an entry is reported as `DNF` (default 60), mirroring the paper's
//!   "failed to terminate within a reasonable amount of time".
//!
//! Every binary prints a human-readable table and writes machine-readable
//! CSV under `target/experiments/`.
//!
//! ## Regression guarding
//!
//! Separate from the paper-reproduction binaries, [`regression`] holds the
//! pinned suite behind `valmod bench`: it times the row kernel and the
//! diagonal-blocked kernel over identical inputs in the same run and emits
//! the `BENCH_core.json` snapshot checked into `docs/baselines/`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod params;
pub mod regression;
pub mod report;
pub mod runner;

pub use params::{BenchParams, Scale};
pub use regression::{run_suite, BenchEntry, RegressionReport};
pub use report::Report;
pub use runner::{run_algorithm, AlgoResult, Algorithm};
