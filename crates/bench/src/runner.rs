//! Shared algorithm runner: executes one of the four compared algorithms on
//! a configuration with a deadline, reporting wall-clock time or `DNF`.

use std::time::{Duration, Instant};

use valmod_baselines::moen::moen;
use valmod_baselines::quick_motif::{quick_motif_range_with_deadline, QuickMotifConfig};
use valmod_baselines::stomp_range::stomp_range_with_deadline;
use valmod_core::valmod::{Valmod, ValmodConfig};
use valmod_mp::exclusion::ExclusionPolicy;
use valmod_mp::ProfiledSeries;

use crate::params::BenchParams;

/// The four algorithms of the paper's comparative evaluation (§6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// VALMOD (this paper).
    Valmod,
    /// STOMP run once per length.
    StompRange,
    /// QuickMotif run once per length.
    QuickMotif,
    /// MOEN-style variable-length enumeration.
    Moen,
}

impl Algorithm {
    /// All four, in the paper's plotting order.
    pub const ALL: [Algorithm; 4] =
        [Algorithm::Valmod, Algorithm::StompRange, Algorithm::QuickMotif, Algorithm::Moen];

    /// Column label.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Valmod => "VALMOD",
            Algorithm::StompRange => "STOMP",
            Algorithm::QuickMotif => "QUICKMOTIF",
            Algorithm::Moen => "MOEN",
        }
    }
}

/// Outcome of one run.
#[derive(Debug, Clone, Copy)]
pub enum AlgoResult {
    /// Finished within the deadline.
    Finished {
        /// Wall-clock seconds.
        secs: f64,
        /// The best motif distance found (cross-checking between algorithms).
        best_dist: f64,
    },
    /// Did not finish within the deadline.
    Dnf {
        /// Seconds consumed before giving up.
        secs: f64,
    },
    /// The configuration is invalid for this series (e.g. too short).
    Skipped,
}

impl AlgoResult {
    /// Formats the cell for the text table.
    pub fn cell(&self) -> String {
        match self {
            AlgoResult::Finished { secs, .. } => format!("{secs:>9.3}s"),
            AlgoResult::Dnf { .. } => format!("{:>10}", "DNF"),
            AlgoResult::Skipped => format!("{:>10}", "-"),
        }
    }

    /// CSV field: seconds, or empty for DNF/skip.
    pub fn csv(&self) -> String {
        match self {
            AlgoResult::Finished { secs, .. } => format!("{secs:.6}"),
            AlgoResult::Dnf { .. } => "DNF".into(),
            AlgoResult::Skipped => String::new(),
        }
    }

    /// The best distance, when available.
    pub fn best_dist(&self) -> Option<f64> {
        match self {
            AlgoResult::Finished { best_dist, .. } => Some(*best_dist),
            _ => None,
        }
    }
}

/// Runs `algo` on the prepared series with the given parameters.
pub fn run_algorithm(
    algo: Algorithm,
    ps: &ProfiledSeries,
    params: &BenchParams,
    deadline: Duration,
) -> AlgoResult {
    let policy = ExclusionPolicy::HALF;
    let (l_min, l_max) = (params.l_min, params.l_max());
    if ps.num_subsequences(l_max) < 2 {
        return AlgoResult::Skipped;
    }
    let start = Instant::now();
    let best = match algo {
        Algorithm::Valmod => {
            let cfg = ValmodConfig {
                l_min,
                l_max,
                p: params.p,
                policy,
                track_pairs: 0,
                threads: params.threads,
            };
            match Valmod::from_config(cfg).run_on(ps) {
                // Length-normalised, like `best_norm` below, so the
                // cross-algorithm agreement check compares like with like.
                Ok(out) => out.best_motif().map(|m| m.norm_dist()),
                Err(_) => return AlgoResult::Skipped,
            }
        }
        Algorithm::StompRange => {
            match stomp_range_with_deadline(ps, l_min, l_max, policy, params.threads, deadline) {
                Ok((motifs, truncated)) => {
                    if truncated {
                        return AlgoResult::Dnf { secs: start.elapsed().as_secs_f64() };
                    }
                    best_norm(motifs.iter().flatten())
                }
                Err(_) => return AlgoResult::Skipped,
            }
        }
        Algorithm::QuickMotif => {
            let qm_cfg = QuickMotifConfig::default();
            match quick_motif_range_with_deadline(ps, l_min, l_max, policy, &qm_cfg, deadline) {
                Ok((motifs, truncated)) => {
                    if truncated {
                        return AlgoResult::Dnf { secs: start.elapsed().as_secs_f64() };
                    }
                    best_norm(motifs.iter().flatten())
                }
                Err(_) => return AlgoResult::Skipped,
            }
        }
        Algorithm::Moen => match moen(ps, l_min, l_max, policy, deadline) {
            Ok(out) => {
                if out.truncated {
                    return AlgoResult::Dnf { secs: start.elapsed().as_secs_f64() };
                }
                best_norm(out.motifs.iter().flatten())
            }
            Err(_) => return AlgoResult::Skipped,
        },
    };
    // VALMOD has no internal deadline: it is the system under test and is
    // expected to finish; still, honour the budget when reporting.
    let secs = start.elapsed().as_secs_f64();
    match best {
        Some(d) => AlgoResult::Finished { secs, best_dist: d },
        None => AlgoResult::Skipped,
    }
}

/// The smallest length-normalised distance among per-length motifs (making
/// results of different ranges comparable across algorithms).
fn best_norm<'a>(motifs: impl Iterator<Item = &'a valmod_mp::motif::MotifPair>) -> Option<f64> {
    motifs.map(|m| m.norm_dist()).fold(None, |acc, d| match acc {
        Some(a) if a <= d => Some(a),
        _ => Some(d),
    })
}

/// Runs one sweep dimension across all five datasets and the four
/// algorithms, printing the paper-style table and writing the CSV. `rows`
/// holds `(row label, parameters)` pairs; the series for each dataset/row is
/// generated at `params.n` points.
pub fn run_sweep(experiment: &str, title: &str, rows: &[(String, BenchParams)]) {
    use crate::report::Report;
    use valmod_data::datasets::Dataset;

    let deadline = crate::params::deadline();
    let mut report = Report::new(
        experiment,
        &["dataset", "row", "n", "l_min", "l_max", "p", "VALMOD", "STOMP", "QUICKMOTIF", "MOEN"],
    );
    report.headline(title);
    for ds in Dataset::ALL {
        report.line(&format!("\n[{}]", ds.name()));
        report.line(&format!(
            "{:>16} {:>10} {:>10} {:>10} {:>10}",
            "config",
            Algorithm::Valmod.name(),
            Algorithm::StompRange.name(),
            Algorithm::QuickMotif.name(),
            Algorithm::Moen.name()
        ));
        for (label, params) in rows {
            let series = ds.generate(params.n, params.seed);
            let ps = ProfiledSeries::new(&series);
            let results: Vec<AlgoResult> = Algorithm::ALL
                .iter()
                .map(|&algo| run_algorithm(algo, &ps, params, deadline))
                .collect();
            report.line(&format!(
                "{:>16} {} {} {} {}",
                label,
                results[0].cell(),
                results[1].cell(),
                results[2].cell(),
                results[3].cell()
            ));
            // Cross-check: all finishers must agree on the best motif.
            // (Strict equality is asserted in the test suite at controlled
            // scale; here allow for incremental-dot-product drift near zero
            // distances and warn loudly instead of aborting the sweep.)
            let dists: Vec<f64> = results.iter().filter_map(|r| r.best_dist()).collect();
            for w in dists.windows(2) {
                if (w[0] - w[1]).abs() > 1e-3 * w[0].abs().max(1e-3) {
                    report.line(&format!(
                        "  !! WARNING: algorithms disagree on {} / {label}: {dists:?}",
                        ds.name()
                    ));
                }
            }
            report.csv_row(&[
                ds.name().into(),
                label.clone(),
                params.n.to_string(),
                params.l_min.to_string(),
                params.l_max().to_string(),
                params.p.to_string(),
                results[0].csv(),
                results[1].csv(),
                results[2].csv(),
                results[3].csv(),
            ]);
        }
    }
    report.finish().expect("write CSV");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Scale;
    use valmod_data::datasets::Dataset;

    #[test]
    fn all_algorithms_agree_on_the_best_motif() {
        let series = Dataset::Ecg.generate(1500, 1);
        let ps = ProfiledSeries::new(&series);
        let params = BenchParams { l_min: 32, range: 6, n: 1500, p: 10, seed: 1, threads: 1 };
        let deadline = Duration::from_secs(120);
        let mut dists = Vec::new();
        for algo in Algorithm::ALL {
            match run_algorithm(algo, &ps, &params, deadline) {
                AlgoResult::Finished { best_dist, .. } => dists.push((algo.name(), best_dist)),
                other => panic!("{} did not finish: {other:?}", algo.name()),
            }
        }
        for w in dists.windows(2) {
            assert!((w[0].1 - w[1].1).abs() < 1e-6, "algorithms disagree: {:?}", dists);
        }
    }

    #[test]
    fn skipped_when_series_too_short() {
        let series = Dataset::Ecg.generate(64, 1);
        let ps = ProfiledSeries::new(&series);
        let params = BenchParams { l_min: 64, range: 8, n: 64, p: 10, seed: 1, threads: 1 };
        for algo in Algorithm::ALL {
            assert!(matches!(
                run_algorithm(algo, &ps, &params, Duration::from_secs(5)),
                AlgoResult::Skipped
            ));
        }
    }

    #[test]
    fn default_scale_params_run_quickly_enough_for_tests() {
        let scale = Scale(0.2);
        let params = BenchParams::default_at(scale);
        assert!(params.n <= 2_000);
    }
}
