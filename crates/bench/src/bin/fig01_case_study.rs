//! Figures 1 and 16: the entomology case study. On the EPG-like series the
//! top motif *changes identity* between the shorter and the longer end of
//! the search range — a fixed-length search at either length would have
//! reported only one behaviour.

use valmod_bench::params::Scale;
use valmod_bench::report::Report;
use valmod_core::valmod::{Valmod, ValmodConfig};
use valmod_data::datasets::epg_like;

fn main() {
    let scale = Scale::from_env();
    let n = scale.apply(30_000, 6_000);
    let (probing_len, ingestion_len) = (scale.apply(500, 100), scale.apply(620, 124));
    let (series, truth) = epg_like(n, probing_len, ingestion_len, 7);

    let l_min = probing_len * 9 / 10;
    let l_max = ingestion_len * 11 / 10;
    let cfg = ValmodConfig::new(l_min, l_max).with_p(12);
    let out = Valmod::from_config(cfg.clone()).run(&series).expect("range fits the series");

    let mut report = Report::new(
        "fig01_case_study",
        &["length", "offset_a", "offset_b", "dist", "norm_dist", "identity"],
    );
    report.headline(&format!(
        "Fig. 1/16: EPG case study (n={n}, probing len {probing_len} at {:?}, ingestion len {ingestion_len} at {:?})",
        truth.probing_offsets, truth.ingestion_offsets
    ));
    let classify = |offset: usize, l: usize| -> &'static str {
        let near =
            |offs: &[usize], plen: usize| offs.iter().any(|&o| offset + l > o && offset < o + plen);
        if near(&truth.probing_offsets, truth.probing_len) {
            "probing"
        } else if near(&truth.ingestion_offsets, truth.ingestion_len) {
            "ingestion"
        } else {
            "background"
        }
    };
    report.line(&format!(
        "{:>7} {:>9} {:>9} {:>9} {:>10}  identity",
        "length", "offset A", "offset B", "dist", "norm dist"
    ));
    let mut identities = Vec::new();
    for r in out.per_length.iter().step_by(((l_max - l_min) / 12).max(1)) {
        if let Some(m) = r.motif {
            let ident = classify(m.a, m.l);
            report.line(&format!(
                "{:>7} {:>9} {:>9} {:>9.3} {:>10.4}  {}",
                m.l,
                m.a,
                m.b,
                m.dist,
                m.norm_dist(),
                ident
            ));
            report.csv_row(&[
                m.l.to_string(),
                m.a.to_string(),
                m.b.to_string(),
                format!("{:.6}", m.dist),
                format!("{:.6}", m.norm_dist()),
                ident.into(),
            ]);
            identities.push((m.l, ident));
        }
    }
    let kinds: std::collections::HashSet<&str> =
        identities.iter().map(|&(_, k)| k).filter(|&k| k != "background").collect();
    report.line(&format!(
        "\nshape check: the per-length motif switches identity across the range\n\
         (behaviours surfaced: {kinds:?}) — the Fig. 1 observation that motif\n\
         length choice is critical and unforgiving."
    ));
    report.finish().expect("write CSV");
}
