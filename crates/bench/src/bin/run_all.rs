//! Runs every experiment binary in sequence (DESIGN.md §4). Equivalent to
//! invoking each `table*`/`fig*` binary; useful for regenerating
//! EXPERIMENTS.md in one go:
//!
//! ```text
//! cargo run --release -p valmod-bench --bin run_all
//! ```

use std::process::Command;

fn main() {
    let experiments = [
        "table01_datasets",
        "table02_parameters",
        "fig01_case_study",
        "fig02_length_normalization",
        "fig08_motif_length",
        "fig09_lb_margin",
        "fig10_tlb",
        "fig11_distance_distribution",
        "fig12_motif_range",
        "fig13_series_size",
        "fig14_param_p",
        "fig15_motif_sets",
    ];
    let me = std::env::current_exe().expect("own path");
    let bin_dir = me.parent().expect("bin dir").to_path_buf();
    let mut failed = Vec::new();
    for exp in experiments {
        println!("\n############ {exp} ############");
        let path = bin_dir.join(exp);
        let status = if path.exists() {
            Command::new(&path).status()
        } else {
            // Fall back to cargo when binaries were not pre-built.
            Command::new("cargo")
                .args(["run", "--release", "-q", "-p", "valmod-bench", "--bin", exp])
                .status()
        };
        match status {
            Ok(s) if s.success() => {}
            other => {
                eprintln!("experiment {exp} failed: {other:?}");
                failed.push(exp);
            }
        }
    }
    if failed.is_empty() {
        println!("\nall experiments completed; CSVs under target/experiments/");
    } else {
        eprintln!("\nfailed experiments: {failed:?}");
        std::process::exit(1);
    }
}
