//! Figure 11: the distribution of pairwise subsequence distances on ECG and
//! EMG, at a short and a long length. The paper's shape: EMG's distribution
//! shifts into many high values at the long length (hurting the bound),
//! while ECG's stays comparatively uniform across lengths.
//!
//! The histogram is a registry `HistogramSnapshot` produced by
//! `distance_distribution`, bucketed linearly up to the z-normalised
//! maximum `2·sqrt(l)`.

use valmod_bench::params::{BenchParams, Scale};
use valmod_bench::report::Report;
use valmod_core::instrument::distance_distribution;
use valmod_data::datasets::Dataset;
use valmod_mp::{ExclusionPolicy, ProfiledSeries};

fn main() {
    let scale = Scale::from_env();
    let default = BenchParams::default_at(scale);
    let sweep = BenchParams::length_sweep(scale);
    let lengths = [sweep[0] + default.range, sweep[sweep.len() - 1] + default.range];
    let bins = 25usize;

    let mut report = Report::new(
        "fig11_distance_distribution",
        &["dataset", "length", "bin_right_edge_over_max", "frequency"],
    );
    report.headline(&format!(
        "Fig. 11: distribution of pairwise subsequence distances (n={})",
        default.n
    ));
    for ds in [Dataset::Ecg, Dataset::Emg] {
        let series = ds.generate(default.n, default.seed);
        let ps = ProfiledSeries::new(&series);
        for &l in &lengths {
            if ps.num_subsequences(l) < 2 {
                report.line(&format!("[{} l={l}] skipped (series too short)", ds.name()));
                continue;
            }
            // Stride rows for tractability; shape is preserved.
            let stride = (ps.num_subsequences(l) / 400).max(1);
            let h = distance_distribution(&ps, l, bins, stride, ExclusionPolicy::HALF).unwrap();
            let max = 2.0 * (l as f64).sqrt();
            report.line(&format!(
                "\n[{} l={l}] {} distances, max possible {:.2}, mean {:.2}",
                ds.name(),
                h.count,
                max,
                h.mean()
            ));
            // The overflow bucket stays empty (no z-normalised distance
            // exceeds 2*sqrt(l)); report the `bins` real buckets.
            let freqs = h.frequencies();
            for (b, &f) in freqs.iter().take(bins).enumerate() {
                let edge = h.bounds[b] / max;
                let bar = "#".repeat((f * 200.0).round() as usize);
                report.line(&format!("  ≤{edge:>5.2}·max {f:>7.4} {bar}"));
                report.csv_row(&[
                    ds.name().into(),
                    l.to_string(),
                    format!("{edge:.4}"),
                    format!("{f:.6}"),
                ]);
            }
        }
    }
    report.finish().expect("write CSV");
}
