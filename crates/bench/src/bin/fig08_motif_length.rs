//! Figure 8: scalability over the motif length ℓ_min.
//!
//! Expected shape (paper §6.2): VALMOD is stable across lengths; QuickMotif
//! is erratic (PAA quality depends on the length); STOMP pays the full
//! per-length cost times the range; MOEN degrades as its bound loosens.

use valmod_bench::params::{BenchParams, Scale};
use valmod_bench::runner::run_sweep;

fn main() {
    let scale = Scale::from_env();
    let default = BenchParams::default_at(scale);
    let rows: Vec<(String, BenchParams)> = BenchParams::length_sweep(scale)
        .into_iter()
        .map(|l_min| (format!("l_min={l_min}"), BenchParams { l_min, ..default }))
        .collect();
    run_sweep(
        "fig08_motif_length",
        &format!(
            "Fig. 8: scalability over motif length (n={}, range={}, p={})",
            default.n, default.range, default.p
        ),
        &rows,
    );
}
