//! Figure 13: scalability over the data-series size.
//!
//! Expected shape (paper §6.2): every algorithm is superlinear in n, but
//! VALMOD's constant stays small and stable across datasets; QuickMotif can
//! win narrowly on the easiest data (ECG) and blow up elsewhere.

use valmod_bench::params::{BenchParams, Scale};
use valmod_bench::runner::run_sweep;

fn main() {
    let scale = Scale::from_env();
    let default = BenchParams::default_at(scale);
    let rows: Vec<(String, BenchParams)> = BenchParams::size_sweep(scale)
        .into_iter()
        .map(|n| (format!("n={n}"), BenchParams { n, ..default }))
        .collect();
    run_sweep(
        "fig13_series_size",
        &format!(
            "Fig. 13: scalability over series size (l_min={}, range={}, p={})",
            default.l_min, default.range, default.p
        ),
        &rows,
    );
}
