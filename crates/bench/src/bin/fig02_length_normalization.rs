//! Figure 2: why `sqrt(1/ℓ)` is the right length correction.
//!
//! A prototypic signature (TRACE-like) is expressed at several speeds by
//! resampling; the distance between two noisy instances of the signature is
//! computed at every length under three corrections. The paper's finding:
//! raw ED is biased toward short lengths, ED/ℓ toward long lengths, and
//! `ED·sqrt(1/ℓ)` is nearly invariant. Each series is normalised by its
//! maximum (the paper's right-hand panel) so the bias direction is visible.

use valmod_bench::report::Report;
use valmod_core::ranking::LengthCorrection;
use valmod_data::datasets::trace_signature;
use valmod_data::generators::{resample, Gaussian};
use valmod_mp::distance::zdist_naive;

fn main() {
    // Generate at higher resolution than any target length, so every length
    // is a genuine resample (otherwise the native length keeps un-smoothed
    // noise and spikes out of the otherwise flat sqrt-corrected series).
    let base_len = 1024;
    let signature = trace_signature(base_len);
    let mut g = Gaussian::new(7);
    // Two noisy instances of the signature (different noise draws).
    let noisy = |g: &mut Gaussian, sig: &[f64]| -> Vec<f64> {
        sig.iter().map(|&v| v + 0.02 * g.sample()).collect()
    };
    let inst_a = noisy(&mut g, &signature);
    let inst_b = noisy(&mut g, &signature);

    let lengths: Vec<usize> = (64..=512).step_by(32).collect();
    let mut raw = Vec::new();
    let mut by_len = Vec::new();
    let mut sqrt_inv = Vec::new();
    for &l in &lengths {
        let a = resample(&inst_a, l);
        let b = resample(&inst_b, l);
        let d = zdist_naive(&a, &b);
        raw.push(LengthCorrection::None.apply(d, l));
        by_len.push(LengthCorrection::DivideByLength.apply(d, l));
        sqrt_inv.push(LengthCorrection::SqrtInverse.apply(d, l));
    }
    let norm = |v: &[f64]| -> Vec<f64> {
        let max = v.iter().cloned().fold(0.0, f64::max).max(1e-300);
        v.iter().map(|x| x / max).collect()
    };
    let (raw_n, by_len_n, sqrt_n) = (norm(&raw), norm(&by_len), norm(&sqrt_inv));

    let mut report = Report::new(
        "fig02_length_normalization",
        &["length", "euclidean", "eucl_div_len", "eucl_sqrt_inv_len"],
    );
    report.headline("Fig. 2: length corrections (each series divided by its own max)");
    report.line(&format!("{:>7} {:>12} {:>12} {:>16}", "length", "ED", "ED/len", "ED*sqrt(1/len)"));
    for (k, &l) in lengths.iter().enumerate() {
        report.line(&format!(
            "{:>7} {:>12.4} {:>12.4} {:>16.4}",
            l, raw_n[k], by_len_n[k], sqrt_n[k]
        ));
        report.csv_row(&[
            l.to_string(),
            format!("{:.6}", raw_n[k]),
            format!("{:.6}", by_len_n[k]),
            format!("{:.6}", sqrt_n[k]),
        ]);
    }

    // The paper's verdict, quantified: spread (max−min of the max-normalised
    // series) should be largest for raw ED, large for ED/len, small for the
    // sqrt correction.
    let spread = |v: &[f64]| {
        v.iter().cloned().fold(f64::MIN, f64::max) - v.iter().cloned().fold(f64::MAX, f64::min)
    };
    report.line(&format!(
        "\nspread over lengths:  ED {:.3}   ED/len {:.3}   ED*sqrt(1/len) {:.3}",
        spread(&raw_n),
        spread(&by_len_n),
        spread(&sqrt_n)
    ));
    report.line("(smaller spread = more length-invariant; the paper's §3 claim)");
    report.finish().expect("write CSV");
}
