//! Figure 14: the effect of parameter `p`.
//!
//! Left panel: total VALMOD time for p ∈ {50, 100, 150} — the paper finds no
//! significant advantage from larger p. Right panel: the size of the matrix
//! profile subset (`subMP`) produced by `ComputeSubMP` at each length
//! iteration — which shrinks the same way regardless of p, while always
//! containing the motif.

use std::time::Instant;

use valmod_bench::params::{BenchParams, Scale};
use valmod_bench::report::Report;
use valmod_core::valmod::{Valmod, ValmodConfig};
use valmod_data::datasets::Dataset;
use valmod_mp::{ExclusionPolicy, ProfiledSeries};

fn main() {
    let scale = Scale::from_env();
    let default = BenchParams::default_at(scale);

    let mut report = Report::new(
        "fig14_param_p",
        &["dataset", "p", "total_secs", "length_offset", "submp_size"],
    );
    report.headline(&format!(
        "Fig. 14: effect of p (n={}, l_min={}, range={})",
        default.n, default.l_min, default.range
    ));
    for ds in Dataset::ALL {
        let series = ds.generate(default.n, default.seed);
        let ps = ProfiledSeries::new(&series);
        report.line(&format!("\n[{}]", ds.name()));
        for p in BenchParams::p_sweep() {
            let cfg = ValmodConfig {
                l_min: default.l_min,
                l_max: default.l_max(),
                p,
                policy: ExclusionPolicy::HALF,
                track_pairs: 0,
                threads: default.threads,
            };
            let start = Instant::now();
            let out = match Valmod::from_config(cfg.clone()).run_on(&ps) {
                Ok(out) => out,
                Err(e) => {
                    report.line(&format!("  p={p}: skipped ({e})"));
                    continue;
                }
            };
            let secs = start.elapsed().as_secs_f64();
            // subMP size per iteration (every 4th length printed).
            let sizes: Vec<(usize, usize)> =
                out.per_length.iter().map(|r| (r.l - default.l_min, r.known_entries)).collect();
            report.line(&format!(
                "  p={p:<4} total {secs:>8.3}s  subMP sizes: {}",
                sizes
                    .iter()
                    .step_by(4)
                    .map(|(off, s)| format!("+{off}:{s}"))
                    .collect::<Vec<_>>()
                    .join(" ")
            ));
            for (off, size) in &sizes {
                report.csv_row(&[
                    ds.name().into(),
                    p.to_string(),
                    format!("{secs:.6}"),
                    off.to_string(),
                    size.to_string(),
                ]);
            }
        }
    }
    report.line(
        "\nshape check: total time is flat in p (left panel); subMP size decays\n\
         with the length offset identically for every p (right panel).",
    );
    report.finish().expect("write CSV");
}
