//! Service-layer baseline: cold vs cached query latency over real loopback
//! TCP, and cache-hit throughput under 1/4/8 concurrent clients.
//!
//! Prints a table and records `target/experiments/bench_serve.json` so
//! later PRs can compare scheduler or cache changes against this PR's
//! numbers (the committed copy lives at `docs/baselines/bench_serve.json`).

use std::time::Instant;

use valmod_bench::report::Report;
use valmod_data::datasets::Dataset;
use valmod_mp::ExclusionPolicy;
use valmod_serve::engine::{EngineConfig, QueryEngine, QueryKind, QuerySpec};
use valmod_serve::{Client, Server, Value};

const N: usize = 4_000;
const COLD_SAMPLES: usize = 8;
const CACHED_SAMPLES: usize = 200;
const QUERIES_PER_CLIENT: usize = 200;

fn spec(l_min: usize, l_max: usize) -> QuerySpec {
    QuerySpec {
        series: "ecg".into(),
        kind: QueryKind::Motifs { top: 3 },
        l_min,
        l_max,
        p: 8,
        policy: ExclusionPolicy::HALF,
        deadline: None,
    }
}

#[derive(Debug)]
struct LatencyStats {
    mean_ms: f64,
    min_ms: f64,
    max_ms: f64,
    samples: usize,
}

fn summarize(samples: &[f64]) -> LatencyStats {
    let sum: f64 = samples.iter().sum();
    LatencyStats {
        mean_ms: sum / samples.len() as f64,
        min_ms: samples.iter().cloned().fold(f64::INFINITY, f64::min),
        max_ms: samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        samples: samples.len(),
    }
}

fn latency_json(s: &LatencyStats) -> Value {
    Value::obj(vec![
        ("mean_ms", s.mean_ms.into()),
        ("min_ms", s.min_ms.into()),
        ("max_ms", s.max_ms.into()),
        ("samples", s.samples.into()),
    ])
}

fn main() {
    let mut report = Report::new("bench_serve", &["metric", "clients", "value_ms_or_qps"]);
    report.headline(&format!("serve layer: cold vs cached latency over loopback TCP (n={N})"));

    let engine =
        QueryEngine::new(EngineConfig::builder().workers(4).queue_depth(64).build().unwrap());
    let server = Server::bind("127.0.0.1:0", engine).expect("bind ephemeral port");
    let addr = server.local_addr().unwrap();
    let server_thread = std::thread::spawn(move || server.run().expect("server run"));

    let series = Dataset::Ecg.generate(N, 1).values().to_vec();
    let mut client = Client::connect(addr).expect("connect");
    client.load("ecg", series, vec![], false).expect("load");

    // Cold latency: each query uses a distinct length range, so every one
    // misses the cache and runs the full kernel.
    let mut cold = Vec::with_capacity(COLD_SAMPLES);
    for i in 0..COLD_SAMPLES {
        let start = Instant::now();
        let resp = client.query(spec(32 + i, 44 + i)).expect("cold query");
        assert_eq!(resp.cached, Some(false));
        cold.push(start.elapsed().as_secs_f64() * 1e3);
    }
    let cold = summarize(&cold);

    // Cached latency: the same query repeated — answered at admission from
    // the result cache, so this measures protocol + cache overhead.
    client.query(spec(32, 44)).ok(); // ensure it is resident
    let mut cached = Vec::with_capacity(CACHED_SAMPLES);
    for _ in 0..CACHED_SAMPLES {
        let start = Instant::now();
        let resp = client.query(spec(32, 44)).expect("cached query");
        assert_eq!(resp.cached, Some(true));
        cached.push(start.elapsed().as_secs_f64() * 1e3);
    }
    let cached = summarize(&cached);

    report.line(&format!(
        "cold   mean {:>9.3} ms  (min {:.3}, max {:.3}, {} samples)",
        cold.mean_ms, cold.min_ms, cold.max_ms, cold.samples
    ));
    report.line(&format!(
        "cached mean {:>9.3} ms  (min {:.3}, max {:.3}, {} samples)",
        cached.mean_ms, cached.min_ms, cached.max_ms, cached.samples
    ));
    report.csv_row(&["cold_mean".into(), "1".into(), format!("{:.6}", cold.mean_ms)]);
    report.csv_row(&["cached_mean".into(), "1".into(), format!("{:.6}", cached.mean_ms)]);

    // Concurrent cache-hit throughput: C clients hammer the same cached
    // query; wall-clock over total queries gives queries/second.
    let mut concurrency = Vec::new();
    for clients in [1usize, 4, 8] {
        let start = Instant::now();
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                std::thread::spawn(move || {
                    let mut c = Client::connect(addr).expect("connect");
                    for _ in 0..QUERIES_PER_CLIENT {
                        let resp = c.query(spec(32, 44)).expect("query");
                        assert_eq!(resp.cached, Some(true));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("client thread");
        }
        let wall = start.elapsed().as_secs_f64();
        let total = clients * QUERIES_PER_CLIENT;
        let qps = total as f64 / wall;
        report.line(&format!(
            "{clients} client(s): {total:>5} cached queries in {:>7.1} ms  ({qps:>9.0} q/s)",
            wall * 1e3
        ));
        report.csv_row(&["cached_qps".into(), clients.to_string(), format!("{qps:.1}")]);
        concurrency.push(Value::obj(vec![
            ("clients", clients.into()),
            ("total_queries", total.into()),
            ("wall_ms", (wall * 1e3).into()),
            ("qps", qps.into()),
        ]));
    }

    client.shutdown().expect("shutdown");
    server_thread.join().expect("server joins");

    // JSON baseline (encoded with the serve crate's own Value writer).
    let json = Value::obj(vec![
        ("n", N.into()),
        ("query", Value::str("motifs top=3 l=32..44 p=8")),
        ("workers", 4usize.into()),
        ("cold", latency_json(&cold)),
        ("cached", latency_json(&cached)),
        ("concurrency", Value::Arr(concurrency)),
    ]);
    let path = Report::dir().join("bench_serve.json");
    std::fs::create_dir_all(Report::dir()).expect("experiments dir");
    std::fs::write(&path, format!("{}\n", json.encode())).expect("write json");
    report.line(&format!("[json] {}", path.display()));
    report.finish().expect("write CSV");
}
