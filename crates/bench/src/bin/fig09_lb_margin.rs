//! Figure 9: the margin `maxLB − minDist` per partial distance profile, for
//! the shortest and longest lengths of the Fig. 8 sweep, on the best-case
//! (ECG) and worst-case (EMG) datasets.
//!
//! A positive margin means the `ComputeSubMP` line-16 validity condition
//! held — the profile was resolved without recomputation. The margins come
//! straight from the metric registry: `lb_probe` attaches a recorder to the
//! production `ComputeSubMP` advance, and the `core.lb.margin` histogram
//! (normalised by the maximum distance `2·sqrt(l)`) is what the algorithm
//! actually measured. The paper's shape: ECG keeps positive margins at both
//! lengths; EMG's margins collapse below zero at the long length.

use valmod_bench::params::{BenchParams, Scale};
use valmod_bench::report::Report;
use valmod_core::instrument::lb_probe;
use valmod_data::datasets::Dataset;
use valmod_mp::{ExclusionPolicy, ProfiledSeries};

fn main() {
    let scale = Scale::from_env();
    let default = BenchParams::default_at(scale);
    // Paper: anchors 256 and 4096 advanced by the default range (→ 356 and
    // 4196); scaled equivalents from the length sweep's extremes.
    let sweep = BenchParams::length_sweep(scale);
    let (short_anchor, long_anchor) = (sweep[0], sweep[sweep.len() - 1]);
    let range = default.range;

    let mut report = Report::new(
        "fig09_lb_margin",
        &["dataset", "anchor", "target", "bucket_upper_edge", "frequency", "positive_fraction"],
    );
    report.headline(&format!(
        "Fig. 9: maxLB - minDist per distance profile, normalised by 2*sqrt(l) (n={}, p={})",
        default.n, default.p
    ));
    for ds in [Dataset::Ecg, Dataset::Emg] {
        let series = ds.generate(default.n, default.seed);
        let ps = ProfiledSeries::new(&series);
        for anchor in [short_anchor, long_anchor] {
            let target = anchor + range;
            if ps.num_subsequences(target) < 2 {
                report.line(&format!(
                    "[{} l={}→{}] skipped (series too short)",
                    ds.name(),
                    anchor,
                    target
                ));
                continue;
            }
            let snap = lb_probe(&ps, anchor, target, default.p, ExclusionPolicy::HALF).unwrap();
            let margins = snap.histogram("core.lb.margin").expect("margin histogram");
            let valid = snap.counter("core.lb.valid_rows").unwrap_or(0);
            let nonvalid = snap.counter("core.lb.nonvalid_rows").unwrap_or(0);
            let positive = margins.fraction_above(0.0);
            report.line(&format!(
                "\n[{} anchor={} target={}] positive-margin fraction {:.3}; \
                 {} rows resolved by the bound, {} recomputed",
                ds.name(),
                anchor,
                target,
                positive,
                valid,
                nonvalid
            ));
            for (b, f) in margins.frequencies().iter().enumerate() {
                let edge = margins.bounds.get(b).copied().unwrap_or(f64::INFINITY);
                let bar = "#".repeat((f * 200.0).round() as usize);
                report.line(&format!("  margin ≤{edge:>6.3} {f:>7.4} {bar}"));
                report.csv_row(&[
                    ds.name().into(),
                    anchor.to_string(),
                    target.to_string(),
                    format!("{edge:.4}"),
                    format!("{f:.6}"),
                    format!("{positive:.6}"),
                ]);
            }
        }
    }
    report.line(
        "\nshape check: ECG keeps a healthy positive-margin fraction at both lengths;\n\
         EMG's margins are ~never positive (pruning fails there — paper §6.2).",
    );
    report.finish().expect("write CSV");
}
