//! Figure 9: the margin `maxLB − minDist` per partial distance profile, for
//! the shortest and longest lengths of the Fig. 8 sweep, on the best-case
//! (ECG) and worst-case (EMG) datasets.
//!
//! A positive margin means the `ComputeSubMP` line-16 validity condition
//! held — the profile was resolved without recomputation. The paper's shape:
//! ECG keeps positive margins at both lengths; EMG's margins collapse below
//! zero at the long length.

use valmod_bench::params::{BenchParams, Scale};
use valmod_bench::report::Report;
use valmod_core::instrument::probe_at_length;
use valmod_data::datasets::Dataset;
use valmod_mp::{ExclusionPolicy, ProfiledSeries};

fn main() {
    let scale = Scale::from_env();
    let default = BenchParams::default_at(scale);
    // Paper: anchors 256 and 4096 advanced by the default range (→ 356 and
    // 4196); scaled equivalents from the length sweep's extremes.
    let sweep = BenchParams::length_sweep(scale);
    let (short_anchor, long_anchor) = (sweep[0], sweep[sweep.len() - 1]);
    let range = default.range;

    let mut report = Report::new(
        "fig09_lb_margin",
        &["dataset", "anchor", "target", "row_bucket", "mean_margin", "positive_fraction"],
    );
    report.headline(&format!(
        "Fig. 9: maxLB - minDist per distance profile (n={}, p={})",
        default.n, default.p
    ));
    for ds in [Dataset::Ecg, Dataset::Emg] {
        let series = ds.generate(default.n, default.seed);
        let ps = ProfiledSeries::new(&series);
        for anchor in [short_anchor, long_anchor] {
            let target = anchor + range;
            if ps.num_subsequences(target) < 2 {
                report.line(&format!(
                    "[{} l={}→{}] skipped (series too short)",
                    ds.name(),
                    anchor,
                    target
                ));
                continue;
            }
            let probes =
                probe_at_length(&ps, anchor, target, default.p, ExclusionPolicy::HALF).unwrap();
            let finite: Vec<f64> =
                probes.iter().filter(|p| p.margin.is_finite()).map(|p| p.margin).collect();
            let positive =
                finite.iter().filter(|&&m| m > 0.0).count() as f64 / finite.len().max(1) as f64;
            report.line(&format!(
                "\n[{} anchor={} target={}] positive-margin fraction: {:.3}",
                ds.name(),
                anchor,
                target,
                positive
            ));
            // Bucket the profiles into 10 offset deciles (the x-axis of the
            // paper's scatter, summarised).
            let buckets = 10usize;
            for b in 0..buckets {
                let lo = b * finite.len() / buckets;
                let hi = ((b + 1) * finite.len() / buckets).max(lo + 1).min(finite.len());
                let slice = &finite[lo..hi.max(lo + 1).min(finite.len())];
                if slice.is_empty() {
                    continue;
                }
                let mean = slice.iter().sum::<f64>() / slice.len() as f64;
                report.line(&format!("  offsets {lo:>7}..{hi:<7} mean margin {mean:>10.4}"));
                report.csv_row(&[
                    ds.name().into(),
                    anchor.to_string(),
                    target.to_string(),
                    format!("{lo}-{hi}"),
                    format!("{mean:.6}"),
                    format!("{positive:.6}"),
                ]);
            }
        }
    }
    report.line(
        "\nshape check: ECG keeps a healthy positive-margin fraction at both lengths;\n\
         EMG's margins are ~never positive (pruning fails there — paper §6.2).",
    );
    report.finish().expect("write CSV");
}
