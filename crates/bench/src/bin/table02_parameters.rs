//! Table 2: the benchmark parameter grid (paper values and their scaled
//! equivalents actually used by the figure binaries).

use valmod_bench::params::{BenchParams, Scale};
use valmod_bench::report::Report;

fn main() {
    let scale = Scale::from_env();
    let mut report = Report::new(
        "table02_parameters",
        &["dimension", "paper_values", "scaled_values", "default"],
    );
    report.headline(&format!("Table 2: benchmark parameters (scale = {})", scale.0));

    let rows: Vec<(&str, &str, String, String)> = vec![
        (
            "motif length (l_min)",
            "256 512 1024 2048 4096",
            join(&BenchParams::length_sweep(scale)),
            BenchParams::default_at(scale).l_min.to_string(),
        ),
        (
            "motif range (l_max - l_min)",
            "100 150 200 400 600",
            join(&BenchParams::range_sweep(scale)),
            BenchParams::default_at(scale).range.to_string(),
        ),
        (
            "data series size (points)",
            "0.1M 0.2M 0.5M 0.8M 1M",
            join(&BenchParams::size_sweep(scale)),
            BenchParams::default_at(scale).n.to_string(),
        ),
        (
            "p (entries stored)",
            "50 100 150",
            join(&BenchParams::p_sweep()),
            BenchParams::default_at(scale).p.to_string(),
        ),
    ];
    report.line(&format!("{:<28} {:<28} {:<30} {:>8}", "dimension", "paper", "scaled", "default"));
    for (dim, paper, scaled, default) in rows {
        report.line(&format!("{dim:<28} {paper:<28} {scaled:<30} {default:>8}"));
        report.csv_row(&[dim.into(), paper.into(), scaled.clone(), default.clone()]);
    }
    report.finish().expect("write CSV");
}

fn join(v: &[usize]) -> String {
    v.iter().map(|x| x.to_string()).collect::<Vec<_>>().join(" ")
}
