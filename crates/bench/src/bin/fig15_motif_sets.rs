//! Figure 15: time to discover variable-length motif *sets*, against the
//! time to build VALMP — varying K (with D = 4) and varying the radius
//! factor D (with K = 40).
//!
//! The paper's shape: the motif-set step is orders of magnitude cheaper
//! than VALMP itself, making exploratory tuning of D interactive.

use std::time::Instant;

use valmod_bench::params::{BenchParams, Scale};
use valmod_bench::report::Report;
use valmod_core::motif_sets::compute_var_length_motif_sets;
use valmod_core::valmod::{Valmod, ValmodConfig};
use valmod_data::datasets::Dataset;
use valmod_mp::{ExclusionPolicy, ProfiledSeries};

fn main() {
    let scale = Scale::from_env();
    let default = BenchParams::default_at(scale);
    let ks = [10usize, 20, 40, 60, 80];
    let ds_factors = [2.0f64, 3.0, 4.0, 5.0, 6.0];
    let k_max = *ks.iter().max().unwrap();

    let mut report = Report::new(
        "fig15_motif_sets",
        &["dataset", "valmp_secs", "sweep", "value", "topk_secs", "sets", "total_frequency"],
    );
    report.headline(&format!(
        "Fig. 15: motif-set discovery time vs VALMP time (n={}, l_min={}, range={}, p={})",
        default.n, default.l_min, default.range, default.p
    ));
    for ds in Dataset::ALL {
        let series = ds.generate(default.n, default.seed);
        let ps = ProfiledSeries::new(&series);
        let cfg = ValmodConfig {
            l_min: default.l_min,
            l_max: default.l_max(),
            p: default.p,
            policy: ExclusionPolicy::HALF,
            track_pairs: k_max,
            threads: default.threads,
        };
        let start = Instant::now();
        let out = match Valmod::from_config(cfg.clone()).run_on(&ps) {
            Ok(out) => out,
            Err(e) => {
                report.line(&format!("[{}] skipped ({e})", ds.name()));
                continue;
            }
        };
        let valmp_secs = start.elapsed().as_secs_f64();
        let tracker = out.best_pairs.expect("tracking enabled");
        report.line(&format!("\n[{}] VALMP time: {valmp_secs:.3}s", ds.name()));

        report.line("  (a) varying K (D = 4):");
        for &k in &ks {
            // Restrict to the best k tracked pairs.
            let mut limited = valmod_core::pairs::BestKPairs::new(k);
            // Re-offer in order; snapshots are cloned from the full tracker.
            let subset: Vec<_> = tracker.pairs().iter().take(k).cloned().collect();
            let sub_tracker = rebuild(&mut limited, subset);
            let t = Instant::now();
            let (sets, _) =
                compute_var_length_motif_sets(&ps, sub_tracker, 4.0, ExclusionPolicy::HALF);
            let secs = t.elapsed().as_secs_f64();
            let freq: usize = sets.iter().map(|s| s.frequency()).sum();
            report.line(&format!(
                "    K={k:<3} {secs:>10.6}s   {} sets, total frequency {freq}",
                sets.len()
            ));
            report.csv_row(&[
                ds.name().into(),
                format!("{valmp_secs:.6}"),
                "K".into(),
                k.to_string(),
                format!("{secs:.6}"),
                sets.len().to_string(),
                freq.to_string(),
            ]);
        }

        report.line("  (b) varying radius factor D (K = 40):");
        for &d in &ds_factors {
            let mut limited = valmod_core::pairs::BestKPairs::new(40);
            let subset: Vec<_> = tracker.pairs().iter().take(40).cloned().collect();
            let sub_tracker = rebuild(&mut limited, subset);
            let t = Instant::now();
            let (sets, _) =
                compute_var_length_motif_sets(&ps, sub_tracker, d, ExclusionPolicy::HALF);
            let secs = t.elapsed().as_secs_f64();
            let freq: usize = sets.iter().map(|s| s.frequency()).sum();
            report.line(&format!(
                "    D={d:<3} {secs:>10.6}s   {} sets, total frequency {freq}",
                sets.len()
            ));
            report.csv_row(&[
                ds.name().into(),
                format!("{valmp_secs:.6}"),
                "D".into(),
                format!("{d}"),
                format!("{secs:.6}"),
                sets.len().to_string(),
                freq.to_string(),
            ]);
        }
    }
    report.line(
        "\nshape check: the top-K-sets step is orders of magnitude faster than\n\
         building VALMP (paper: 3–6 orders, depending on dataset).",
    );
    report.finish().expect("write CSV");
}

/// Rebuilds a bounded tracker from pre-ranked candidates (cheap clone-based
/// restriction used only by this binary).
fn rebuild(
    limited: &mut valmod_core::pairs::BestKPairs,
    subset: Vec<valmod_core::pairs::PairCandidate>,
) -> &valmod_core::pairs::BestKPairs {
    limited.extend_sorted(subset);
    limited
}
