//! Figure 12: scalability over the motif length *range*.
//!
//! Expected shape (paper §6.2): VALMOD degrades gracefully with the range
//! (each extra length is a near-linear `ComputeSubMP` pass), while STOMP and
//! QuickMotif pay a full quadratic/index run per extra length and MOEN's
//! decayed bound forces wholesale recomputation.

use valmod_bench::params::{BenchParams, Scale};
use valmod_bench::runner::run_sweep;

fn main() {
    let scale = Scale::from_env();
    let default = BenchParams::default_at(scale);
    let rows: Vec<(String, BenchParams)> = BenchParams::range_sweep(scale)
        .into_iter()
        .map(|range| (format!("range={range}"), BenchParams { range, ..default }))
        .collect();
    run_sweep(
        "fig12_motif_range",
        &format!(
            "Fig. 12: scalability over motif range (n={}, l_min={}, p={})",
            default.n, default.l_min, default.p
        ),
        &rows,
    );
}
