//! Table 1: characteristics of the evaluation datasets (min, max, mean,
//! std-dev, number of points) — here, of their synthetic stand-ins.

use valmod_bench::params::Scale;
use valmod_bench::report::Report;
use valmod_data::datasets::Dataset;

fn main() {
    let scale = Scale::from_env();
    // Paper sizes: 0.5M–2M points; scaled default 20k–80k.
    let mut report =
        Report::new("table01_datasets", &["dataset", "min", "max", "mean", "std_dev", "points"]);
    report.headline("Table 1: characteristics of the datasets (synthetic stand-ins)");
    report.line(&format!(
        "{:>8} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "dataset", "MIN", "MAX", "MEAN", "STD-DEV", "points"
    ));
    for ds in Dataset::ALL {
        let n = match ds {
            Dataset::Gap | Dataset::Astro => scale.apply(40_000, 4_000),
            Dataset::Eeg => scale.apply(10_000, 1_000),
            _ => scale.apply(20_000, 2_000),
        };
        let series = ds.generate(n, 20_180_610);
        let s = series.summary();
        report.line(&format!(
            "{:>8} {:>12.5} {:>12.5} {:>12.5} {:>12.5} {:>10}",
            ds.name(),
            s.min,
            s.max,
            s.mean,
            s.std_dev,
            s.len
        ));
        report.csv_row(&[
            ds.name().into(),
            format!("{:.6}", s.min),
            format!("{:.6}", s.max),
            format!("{:.6}", s.mean),
            format!("{:.6}", s.std_dev),
            s.len.to_string(),
        ]);
    }
    report.finish().expect("write CSV");
}
