//! Figure 10: average tightness of the lower bound (TLB = LB/dist) per
//! partial distance profile, ECG vs EMG, short vs long anchor lengths.

use valmod_bench::params::{BenchParams, Scale};
use valmod_bench::report::Report;
use valmod_core::instrument::probe_at_length;
use valmod_data::datasets::Dataset;
use valmod_mp::{ExclusionPolicy, ProfiledSeries};

fn main() {
    let scale = Scale::from_env();
    let default = BenchParams::default_at(scale);
    let sweep = BenchParams::length_sweep(scale);
    let (short_anchor, long_anchor) = (sweep[0], sweep[sweep.len() - 1]);
    let range = default.range;

    let mut report =
        Report::new("fig10_tlb", &["dataset", "anchor", "target", "decile", "mean_tlb"]);
    report.headline(&format!(
        "Fig. 10: average TLB per distance profile (n={}, p={})",
        default.n, default.p
    ));
    for ds in [Dataset::Ecg, Dataset::Emg] {
        let series = ds.generate(default.n, default.seed);
        let ps = ProfiledSeries::new(&series);
        for anchor in [short_anchor, long_anchor] {
            let target = anchor + range;
            if ps.num_subsequences(target) < 2 {
                report.line(&format!(
                    "[{} l={}→{}] skipped (series too short)",
                    ds.name(),
                    anchor,
                    target
                ));
                continue;
            }
            let probes =
                probe_at_length(&ps, anchor, target, default.p, ExclusionPolicy::HALF).unwrap();
            let tlbs: Vec<f64> = probes.iter().map(|p| p.mean_tlb).collect();
            let overall = tlbs.iter().sum::<f64>() / tlbs.len().max(1) as f64;
            report.line(&format!(
                "\n[{} anchor={} target={}] overall mean TLB: {:.4}",
                ds.name(),
                anchor,
                target,
                overall
            ));
            let buckets = 10usize;
            for b in 0..buckets {
                let lo = b * tlbs.len() / buckets;
                let hi = ((b + 1) * tlbs.len() / buckets).min(tlbs.len());
                if lo >= hi {
                    continue;
                }
                let mean = tlbs[lo..hi].iter().sum::<f64>() / (hi - lo) as f64;
                report.line(&format!("  offsets {lo:>7}..{hi:<7} mean TLB {mean:>7.4}"));
                report.csv_row(&[
                    ds.name().into(),
                    anchor.to_string(),
                    target.to_string(),
                    b.to_string(),
                    format!("{mean:.6}"),
                ]);
            }
        }
    }
    report.finish().expect("write CSV");
}
