//! Figure 10: average tightness of the lower bound (TLB = LB/dist) per
//! partial distance profile, ECG vs EMG, short vs long anchor lengths.
//!
//! The TLB values come from the metric registry: `lb_probe` runs the
//! production `ComputeSubMP` advance with a recorder attached, and the
//! `core.lb.tlb` histogram holds the per-profile mean tightness exactly as
//! the algorithm computed it.

use valmod_bench::params::{BenchParams, Scale};
use valmod_bench::report::Report;
use valmod_core::instrument::lb_probe;
use valmod_data::datasets::Dataset;
use valmod_mp::{ExclusionPolicy, ProfiledSeries};

fn main() {
    let scale = Scale::from_env();
    let default = BenchParams::default_at(scale);
    let sweep = BenchParams::length_sweep(scale);
    let (short_anchor, long_anchor) = (sweep[0], sweep[sweep.len() - 1]);
    let range = default.range;

    let mut report = Report::new(
        "fig10_tlb",
        &["dataset", "anchor", "target", "bucket_upper_edge", "frequency", "mean_tlb"],
    );
    report.headline(&format!(
        "Fig. 10: average TLB per distance profile (n={}, p={})",
        default.n, default.p
    ));
    for ds in [Dataset::Ecg, Dataset::Emg] {
        let series = ds.generate(default.n, default.seed);
        let ps = ProfiledSeries::new(&series);
        for anchor in [short_anchor, long_anchor] {
            let target = anchor + range;
            if ps.num_subsequences(target) < 2 {
                report.line(&format!(
                    "[{} l={}→{}] skipped (series too short)",
                    ds.name(),
                    anchor,
                    target
                ));
                continue;
            }
            let snap = lb_probe(&ps, anchor, target, default.p, ExclusionPolicy::HALF).unwrap();
            let tlb = snap.histogram("core.lb.tlb").expect("tlb histogram");
            let overall = tlb.mean();
            report.line(&format!(
                "\n[{} anchor={} target={}] overall mean TLB {:.4} (p50 {:.4}, p90 {:.4})",
                ds.name(),
                anchor,
                target,
                overall,
                tlb.quantile(0.5),
                tlb.quantile(0.9)
            ));
            for (b, f) in tlb.frequencies().iter().enumerate() {
                let edge = tlb.bounds.get(b).copied().unwrap_or(f64::INFINITY);
                let bar = "#".repeat((f * 200.0).round() as usize);
                report.line(&format!("  TLB ≤{edge:>6.3} {f:>7.4} {bar}"));
                report.csv_row(&[
                    ds.name().into(),
                    anchor.to_string(),
                    target.to_string(),
                    format!("{edge:.4}"),
                    format!("{f:.6}"),
                    format!("{overall:.6}"),
                ]);
            }
        }
    }
    report.line(
        "\nshape check: ECG's TLB stays near 1 at both lengths; EMG's drops\n\
         toward 0 at the long length (the bound loses its grip — paper §6.2).",
    );
    report.finish().expect("write CSV");
}
