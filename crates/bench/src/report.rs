//! Experiment output: aligned text tables on stdout plus CSV files under
//! `target/experiments/`.

use std::fs;
use std::io::Write;
use std::path::PathBuf;

/// A simple two-sink report: pretty rows to stdout, raw rows to a CSV file.
#[derive(Debug)]
pub struct Report {
    csv_path: PathBuf,
    csv: Vec<String>,
}

impl Report {
    /// Starts a report for experiment `name` (e.g. `"fig08_motif_length"`),
    /// with the given CSV header columns.
    pub fn new(name: &str, header: &[&str]) -> Self {
        let csv_path = Self::dir().join(format!("{name}.csv"));
        Report { csv_path, csv: vec![header.join(",")] }
    }

    /// The directory CSVs are written to (created on demand).
    pub fn dir() -> PathBuf {
        let base = std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".into());
        PathBuf::from(base).join("experiments")
    }

    /// Prints a headline on stdout.
    pub fn headline(&self, text: &str) {
        println!("\n=== {text} ===");
    }

    /// Prints one pretty line on stdout.
    pub fn line(&self, text: &str) {
        println!("{text}");
    }

    /// Appends one CSV row.
    pub fn csv_row(&mut self, fields: &[String]) {
        self.csv.push(fields.join(","));
    }

    /// Flushes the CSV file; returns its path.
    pub fn finish(self) -> std::io::Result<PathBuf> {
        fs::create_dir_all(Self::dir())?;
        let mut f = fs::File::create(&self.csv_path)?;
        for row in &self.csv {
            writeln!(f, "{row}")?;
        }
        println!("\n[csv] {}", self.csv_path.display());
        Ok(self.csv_path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_writes_csv() {
        let mut r = Report::new("unit_test_report", &["a", "b"]);
        r.csv_row(&["1".into(), "2".into()]);
        r.csv_row(&["3".into(), "4".into()]);
        let path = r.finish().unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "a,b\n1,2\n3,4\n");
        std::fs::remove_file(path).ok();
    }
}
