//! Property-based tests for the partitioned-merge algebra the cluster
//! layer rests on: computing a STOMP pass as diagonal-range partials and
//! min-merging them must be **bit-identical** to the unpartitioned pass,
//! for *arbitrary* partitions — any cut points, any merge order, with
//! duplicated and overlapping ranges thrown in.

use proptest::prelude::*;
use valmod_data::generators::{random_walk, sine_mixture};
use valmod_data::rng::Xoshiro256;
use valmod_mp::stomp::stomp;
use valmod_mp::{
    merge_partial, stomp_diagonal_range_ws, ExclusionPolicy, ProfiledSeries, Workspace,
};

fn make_series(kind: u8, n: usize, seed: u64) -> Vec<f64> {
    match kind % 2 {
        0 => random_walk(n, seed),
        _ => sine_mixture(n, &[(0.03, 1.0), (0.011, 0.4)], 0.2, seed),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn arbitrary_partitions_merge_bit_identically(
        kind in 0u8..2,
        seed in 0u64..500,
        l in 8usize..24,
        cuts in proptest::collection::vec(0.0f64..1.0, 0..6),
        order_seed in 0u64..1000,
        dup_on in 0u8..2,
        dup_at in 0.0f64..1.0,
    ) {
        let series = make_series(kind, 240, seed);
        let ps = ProfiledSeries::from_values(&series).unwrap();
        let policy = ExclusionPolicy::HALF;
        let reference = stomp(&ps, l, policy).unwrap();
        let ndp = reference.len();
        let radius = reference.exclusion_radius.min(ndp);

        // Arbitrary cut points over the diagonal index space [radius, ndp].
        let mut ks: Vec<usize> = cuts
            .iter()
            .map(|f| radius + ((ndp - radius) as f64 * f) as usize)
            .collect();
        ks.push(radius);
        ks.push(ndp);
        ks.sort_unstable();
        ks.dedup();
        let mut ranges: Vec<(usize, usize)> = ks.windows(2).map(|w| (w[0], w[1])).collect();
        // Optionally duplicate one range: the merge is idempotent, so a
        // shard computed twice (redispatch!) must change nothing.
        if dup_on == 1 && !ranges.is_empty() {
            let i = (((ranges.len() - 1) as f64) * dup_at) as usize;
            ranges.push(ranges[i]);
        }
        // Merge in an arbitrary order: the fold is commutative.
        let mut rng = Xoshiro256::seed_from_u64(order_seed);
        rng.shuffle(&mut ranges);

        // Identity element: an empty range yields an all-infinite partial.
        let mut ws = Workspace::new();
        let mut merged = stomp_diagonal_range_ws(&ps, l, policy, (0, 0), &mut ws).unwrap();
        for &(k_start, k_end) in &ranges {
            let partial =
                stomp_diagonal_range_ws(&ps, l, policy, (k_start, k_end), &mut ws).unwrap();
            merge_partial(&mut merged, &partial);
        }

        for i in 0..ndp {
            prop_assert_eq!(
                merged.mp[i].to_bits(),
                reference.mp[i].to_bits(),
                "slot {} differs: {} vs {} (ranges {:?})",
                i, merged.mp[i], reference.mp[i], ranges
            );
            prop_assert_eq!(merged.ip[i], reference.ip[i], "index {} differs", i);
        }
    }
}
