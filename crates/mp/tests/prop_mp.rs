//! Property-based tests for the matrix-profile substrate.

use proptest::prelude::*;
use valmod_data::generators::{random_walk, sine_mixture};
use valmod_mp::distance::zdist_naive;
use valmod_mp::distance_profile::{self_distance_profile, self_distance_profile_naive};
use valmod_mp::stomp::{matrix_profile_naive, stomp};
use valmod_mp::{ExclusionPolicy, ProfiledSeries};

fn make_series(kind: u8, n: usize, seed: u64) -> Vec<f64> {
    match kind % 2 {
        0 => random_walk(n, seed),
        _ => sine_mixture(n, &[(0.03, 1.0), (0.011, 0.4)], 0.2, seed),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn distance_profile_matches_naive(kind in 0u8..2, seed in 0u64..1000,
                                      i in 0usize..180, l in 4usize..24) {
        let series = make_series(kind, 200, seed);
        prop_assume!(i + l <= 200);
        let ps = ProfiledSeries::from_values(&series).unwrap();
        let policy = ExclusionPolicy::HALF;
        let fast = self_distance_profile(&ps, i, l, &policy);
        let slow = self_distance_profile_naive(&ps, i, l, &policy);
        for (j, (a, b)) in fast.iter().zip(&slow).enumerate() {
            if a.is_infinite() || b.is_infinite() {
                prop_assert_eq!(a.is_infinite(), b.is_infinite(), "j={}", j);
            } else {
                prop_assert!((a - b).abs() < 1e-6, "j={}: {} vs {}", j, a, b);
            }
        }
    }

    #[test]
    fn stomp_matches_naive_profile(kind in 0u8..2, seed in 0u64..500, l in 6usize..20) {
        let series = make_series(kind, 150, seed);
        let ps = ProfiledSeries::from_values(&series).unwrap();
        let fast = stomp(&ps, l, ExclusionPolicy::HALF).unwrap();
        let slow = matrix_profile_naive(&ps, l, ExclusionPolicy::HALF).unwrap();
        for i in 0..fast.len() {
            if fast.mp[i].is_infinite() || slow.mp[i].is_infinite() {
                prop_assert_eq!(fast.mp[i].is_infinite(), slow.mp[i].is_infinite());
            } else {
                prop_assert!((fast.mp[i] - slow.mp[i]).abs() < 1e-6,
                    "i={}: {} vs {}", i, fast.mp[i], slow.mp[i]);
            }
        }
    }

    #[test]
    fn profile_index_points_at_claimed_distance(kind in 0u8..2, seed in 0u64..500) {
        let series = make_series(kind, 180, seed);
        let ps = ProfiledSeries::from_values(&series).unwrap();
        let l = 16usize;
        let profile = stomp(&ps, l, ExclusionPolicy::HALF).unwrap();
        for i in (0..profile.len()).step_by(11) {
            if !profile.mp[i].is_finite() {
                continue;
            }
            let j = profile.ip[i];
            let d = zdist_naive(&series[i..i + l], &series[j..j + l]);
            prop_assert!((d - profile.mp[i]).abs() < 1e-6,
                "ip[{}]={} gives {} but mp claims {}", i, j, d, profile.mp[i]);
            // And the neighbour is non-trivial.
            prop_assert!(i.abs_diff(j) >= profile.exclusion_radius);
        }
    }

    #[test]
    fn triangle_inequality_holds_for_znorm_distance(seed in 0u64..500) {
        // z-normalised ED is a true metric on the normalised vectors.
        let series = random_walk(100, seed);
        let l = 16usize;
        let sub = |o: usize| &series[o..o + l];
        let (a, b, c) = (sub(0), sub(40), sub(80));
        let (dab, dbc, dac) = (zdist_naive(a, b), zdist_naive(b, c), zdist_naive(a, c));
        prop_assert!(dac <= dab + dbc + 1e-9);
        prop_assert!(dab <= dac + dbc + 1e-9);
    }

    #[test]
    fn distance_is_symmetric_and_nonnegative(seed in 0u64..500, i in 0usize..80, j in 0usize..80) {
        let series = random_walk(120, seed);
        let l = 20usize;
        prop_assume!(i + l <= 120 && j + l <= 120);
        let d1 = zdist_naive(&series[i..i + l], &series[j..j + l]);
        let d2 = zdist_naive(&series[j..j + l], &series[i..i + l]);
        prop_assert!(d1 >= 0.0);
        prop_assert!((d1 - d2).abs() < 1e-12);
        if i == j {
            prop_assert!(d1 < 1e-9);
        }
    }
}
