//! Property-based equivalence: a `StreamingProfile` after `k` appends must
//! match batch STOMP over the grown series — the invariant the serve
//! layer's hot fixed-length path depends on.

use proptest::prelude::*;
use valmod_data::generators::{random_walk, sine_mixture};
use valmod_mp::stomp::stomp;
use valmod_mp::{ExclusionPolicy, ProfiledSeries, StreamingProfile};

fn make_series(kind: u8, n: usize, seed: u64) -> Vec<f64> {
    match kind % 2 {
        0 => random_walk(n, seed),
        _ => sine_mixture(n, &[(0.03, 1.0), (0.011, 0.4)], 0.2, seed),
    }
}

/// Asserts the streamed profile over `series` (seeded with the first
/// `seed_len` points, the rest appended one by one) equals the batch
/// profile, in squared/linear distance to `tol` and in exclusion-zone
/// structure.
fn assert_stream_equals_batch(series: &[f64], seed_len: usize, l: usize, policy: ExclusionPolicy) {
    let mut stream = StreamingProfile::new(&series[..seed_len], l, policy).expect("seed profile");
    stream.extend(&series[seed_len..]).expect("appends");
    let streamed = stream.profile();

    let ps = ProfiledSeries::from_values(series).unwrap();
    let batch = stomp(&ps, l, policy).unwrap();

    assert_eq!(streamed.len(), batch.len(), "profile row counts must agree");
    let radius = policy.radius(l);
    for i in 0..batch.len() {
        let (s, b) = (streamed.mp[i], batch.mp[i]);
        if s.is_infinite() || b.is_infinite() {
            assert_eq!(s.is_infinite(), b.is_infinite(), "row {i}: finiteness disagrees");
            continue;
        }
        // Compare in squared distance too: the tolerance must hold for the
        // quantity VALMOD's lower bound is phrased in.
        assert!((s - b).abs() < 1e-6, "row {i}: streamed {s} vs batch {b}");
        assert!((s * s - b * b).abs() < 1e-5, "row {i}: squared {} vs {}", s * s, b * b);
        // The claimed neighbour must honour the exclusion zone.
        assert!(
            i.abs_diff(streamed.ip[i]) >= radius,
            "row {i}: neighbour {} inside exclusion radius {radius}",
            streamed.ip[i]
        );
        assert!(streamed.ip[i] < batch.len(), "row {i}: neighbour out of range");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn streaming_after_k_appends_equals_batch(kind in 0u8..2, seed in 0u64..1000,
                                              k in 1usize..80, l in 6usize..24) {
        // Seed length floats so the seed/append boundary lands everywhere
        // relative to the exclusion zone.
        let seed_len = 200 - k;
        prop_assume!(seed_len >= 2 * l);
        let series = make_series(kind, 200, seed);
        assert_stream_equals_batch(&series, seed_len, l, ExclusionPolicy::HALF);
    }

    #[test]
    fn streaming_matches_batch_under_quarter_exclusion(seed in 0u64..500, k in 1usize..40) {
        let series = make_series(0, 160, seed);
        assert_stream_equals_batch(&series, 160 - k, 12, ExclusionPolicy::QUARTER);
    }

    #[test]
    fn constant_stretch_appends_agree_with_batch(seed in 0u64..500, run in 12usize..40,
                                                 level in -4i32..4) {
        // A flat run makes subsequence std hit zero — the degenerate case
        // where streamed and batch profiles must still tell the same story
        // (both may report inf or both a finite correction).
        let mut series = make_series(1, 160, seed);
        series.extend(std::iter::repeat_n(level as f64, run));
        series.extend(make_series(0, 40, seed + 1));
        assert_stream_equals_batch(&series, 160, 14, ExclusionPolicy::HALF);
    }

    #[test]
    fn newest_window_neighbour_is_outside_the_exclusion_zone(seed in 0u64..500, k in 1usize..50) {
        let series = make_series(0, 150, seed);
        let l = 10usize;
        let mut stream = StreamingProfile::new(&series[..150 - k], l, ExclusionPolicy::HALF).unwrap();
        for (step, &v) in series[150 - k..].iter().enumerate() {
            stream.append(v).unwrap();
            let profile = stream.profile();
            let newest = profile.len() - 1;
            if profile.mp[newest].is_finite() {
                prop_assert!(newest.abs_diff(profile.ip[newest]) >= profile.exclusion_radius,
                    "step {}: newest neighbour {} too close", step, profile.ip[newest]);
            }
        }
    }
}
