//! A reusable arena of kernel scratch buffers.
//!
//! Every matrix-profile computation needs the same transient state: the
//! FFT-seeded first dot-product row, per-offset rolling statistics, the
//! in-flight diagonal QT values, and (during lower-bound refinement) a
//! recomputed dot-product row. [`Workspace`] owns all of it, plus a
//! [`PlanCache`] of FFT plans, so a VALMOD sweep over ℓmin..ℓmax — dozens of
//! `ComputeMatrixProfile`/`ComputeSubMP` calls — allocates each buffer once
//! and reuses every FFT plan instead of rebuilding per length.
//!
//! A workspace never changes results: the plan cache is bit-identical to
//! fresh plans by construction, and buffers are fully overwritten before
//! use. It is deliberately not thread-safe; parallel kernels give each
//! worker its own thread-local scratch and share only the read-only seeds.

use valmod_fft::PlanCache;

use crate::context::ProfiledSeries;

/// Default diagonal block width (in diagonals) for the blocked STOMP kernel.
///
/// 256 diagonals keep the in-flight QT values (2 KiB) plus the touched
/// series window comfortably inside L1 while leaving enough width for the
/// update loop to vectorise.
pub const DEFAULT_BLOCK: usize = 256;

/// Reusable buffers + FFT plan cache for the matrix-profile kernels.
#[derive(Debug)]
pub struct Workspace {
    /// Cached FFT plans and convolution scratch.
    pub(crate) plans: PlanCache,
    /// `⟨T_0, T_j⟩` seeds for every diagonal (filled per kernel call).
    pub(crate) qt_first: Vec<f64>,
    /// In-flight QT values of the current diagonal block.
    pub(crate) diag: Vec<f64>,
    /// Per-offset subsequence means on the centred series.
    pub(crate) means: Vec<f64>,
    /// Per-offset subsequence standard deviations.
    pub(crate) stds: Vec<f64>,
    /// Generic dot-product row scratch (lower-bound refinement).
    pub(crate) qt: Vec<f64>,
    block: usize,
    uses: u64,
}

impl Default for Workspace {
    fn default() -> Self {
        Self::new()
    }
}

impl Workspace {
    /// A workspace with the default diagonal block width.
    pub fn new() -> Self {
        Self::with_block(DEFAULT_BLOCK)
    }

    /// A workspace with an explicit diagonal block width (`>= 1`; the oracle
    /// harness exercises degenerate widths like 1 and widths beyond `n`).
    pub fn with_block(block: usize) -> Self {
        Workspace {
            plans: PlanCache::new(),
            qt_first: Vec::new(),
            diag: Vec::new(),
            means: Vec::new(),
            stds: Vec::new(),
            qt: Vec::new(),
            block: block.max(1),
            uses: 0,
        }
    }

    /// The diagonal block width used by the blocked kernel.
    #[inline]
    pub fn block(&self) -> usize {
        self.block
    }

    /// The FFT plan cache (exposed for counter snapshots).
    #[inline]
    pub fn plan_cache(&self) -> &PlanCache {
        &self.plans
    }

    /// How many kernel invocations have used this workspace.
    #[inline]
    pub fn uses(&self) -> u64 {
        self.uses
    }

    /// Marks one kernel use; returns `true` when this is a *re*use (the
    /// buffers and plans of an earlier call are being recycled).
    pub(crate) fn note_use(&mut self) -> bool {
        self.uses += 1;
        self.uses > 1
    }

    /// `⟨T_i, T_j⟩` for all `j`, via the cached FFT plans into workspace
    /// scratch. Bit-identical to
    /// [`self_qt`](crate::distance_profile::self_qt).
    pub fn self_qt(&mut self, ps: &ProfiledSeries, i: usize, l: usize) -> &[f64] {
        let t = ps.centered();
        let Workspace { plans, qt, .. } = self;
        plans.sliding_dot_product_into(&t[i..i + l], t, qt);
        qt
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance_profile::self_qt;
    use valmod_data::generators::random_walk;

    #[test]
    fn workspace_self_qt_is_bit_identical_to_free_function() {
        let ps = ProfiledSeries::from_values(&random_walk(400, 11)).unwrap();
        let mut ws = Workspace::new();
        for l in [8usize, 33, 64] {
            for i in [0usize, 5, 100] {
                let cached = ws.self_qt(&ps, i, l).to_vec();
                let fresh = self_qt(&ps, i, l);
                assert_eq!(cached.len(), fresh.len());
                for (a, b) in cached.iter().zip(&fresh) {
                    assert_eq!(a.to_bits(), b.to_bits(), "l={l} i={i}");
                }
            }
        }
    }

    #[test]
    fn block_width_is_clamped_to_at_least_one() {
        assert_eq!(Workspace::with_block(0).block(), 1);
        assert_eq!(Workspace::with_block(7).block(), 7);
        assert_eq!(Workspace::new().block(), DEFAULT_BLOCK);
    }

    #[test]
    fn uses_count_reuses() {
        let mut ws = Workspace::new();
        assert!(!ws.note_use());
        assert!(ws.note_use());
        assert_eq!(ws.uses(), 2);
    }
}
