//! Distance profiles (paper Definition 2.4) and the MASS algorithm.
//!
//! A distance profile holds the z-normalised distance between one query
//! subsequence and every subsequence of the series. The `O(n log n)` path
//! computes the dot-product vector once by FFT (`valmod-fft`) and applies
//! Eq. 3; trivial matches inside the exclusion zone are set to `+∞`.

use valmod_fft::real::sliding_dot_product;

use crate::context::ProfiledSeries;
use crate::distance::{dist_from_qt, zdist_naive};
use crate::exclusion::ExclusionPolicy;

/// Computes the dot-product vector `QT[j] = ⟨T_{i,ℓ}, T_{j,ℓ}⟩` (centred
/// domain) for a query subsequence of the same series, via FFT.
pub fn self_qt(ps: &ProfiledSeries, i: usize, l: usize) -> Vec<f64> {
    let query = &ps.centered()[i..i + l];
    sliding_dot_product(query, ps.centered())
}

/// One first-row seed `⟨T_0, T_j⟩` by direct left-to-right summation.
///
/// This is THE seed expression of both STOMP kernels and the tail-extension
/// path (`crate::extend`): unlike an FFT sliding dot product — whose bits
/// depend on the transform size and therefore on `n` — a direct sum over the
/// first `l` samples depends only on `t[..l]` and `t[j..j+l]`, so growing the
/// series never changes the seed of an existing diagonal. Every cell of the
/// distance matrix chains from these seeds through the same recurrence, which
/// is what makes incremental extension bit-identical to a cold recompute.
#[inline]
pub fn seed_qt(t: &[f64], j: usize, l: usize) -> f64 {
    t[..l].iter().zip(&t[j..j + l]).map(|(&a, &b)| a * b).sum()
}

/// Fills `out` with the full first row of seeds `qt[j] = ⟨T_0, T_j⟩` for
/// `j ∈ [0, ndp)`, by direct summation (see [`seed_qt`]).
pub fn seed_qt_row_into(t: &[f64], l: usize, ndp: usize, out: &mut Vec<f64>) {
    out.clear();
    out.reserve(ndp);
    out.extend((0..ndp).map(|j| seed_qt(t, j, l)));
}

/// Fills `out` with the distance profile of `T_{i,ℓ}` given its precomputed
/// dot-product vector `qt`. Entries inside the exclusion zone become `+∞`.
pub fn dp_from_qt_into(
    ps: &ProfiledSeries,
    qt: &[f64],
    i: usize,
    l: usize,
    policy: &ExclusionPolicy,
    out: &mut Vec<f64>,
) {
    let ndp = qt.len();
    debug_assert_eq!(ndp, ps.num_subsequences(l));
    out.clear();
    out.reserve(ndp);
    let mean_i = ps.mean_c(i, l);
    let std_i = ps.std(i, l);
    let radius = policy.radius(l);
    for (j, &q) in qt.iter().enumerate() {
        if i.abs_diff(j) < radius {
            out.push(f64::INFINITY);
        } else {
            out.push(dist_from_qt(q, l, mean_i, std_i, ps.mean_c(j, l), ps.std(j, l)));
        }
    }
}

/// Full distance profile of subsequence `T_{i,ℓ}` against its own series
/// (`O(n log n)`), exclusion zone included.
pub fn self_distance_profile(
    ps: &ProfiledSeries,
    i: usize,
    l: usize,
    policy: &ExclusionPolicy,
) -> Vec<f64> {
    let qt = self_qt(ps, i, l);
    let mut out = Vec::new();
    dp_from_qt_into(ps, &qt, i, l, policy, &mut out);
    out
}

/// MASS: the distance profile of an *external* query against a series
/// (no exclusion zone — the query is not part of the series).
///
/// Correlation is invariant to independent shifts of either input, so the
/// raw query can be matched against the centred series as long as each side
/// is paired with the mean of its own domain.
pub fn mass(query: &[f64], ps: &ProfiledSeries) -> Vec<f64> {
    let l = query.len();
    let ndp = ps.num_subsequences(l);
    if l == 0 || ndp == 0 {
        return Vec::new();
    }
    let qt = sliding_dot_product(query, ps.centered());
    let mean_q = query.iter().sum::<f64>() / l as f64;
    let var_q = query.iter().map(|&v| (v - mean_q) * (v - mean_q)).sum::<f64>() / l as f64;
    let std_q = var_q.sqrt();
    (0..ndp).map(|j| dist_from_qt(qt[j], l, mean_q, std_q, ps.mean_c(j, l), ps.std(j, l))).collect()
}

/// Naive `O(nℓ)` distance profile — the oracle for the fast paths.
pub fn self_distance_profile_naive(
    ps: &ProfiledSeries,
    i: usize,
    l: usize,
    policy: &ExclusionPolicy,
) -> Vec<f64> {
    let ndp = ps.num_subsequences(l);
    let centered = ps.centered();
    let query = &centered[i..i + l];
    let radius = policy.radius(l);
    (0..ndp)
        .map(|j| {
            if i.abs_diff(j) < radius {
                f64::INFINITY
            } else {
                zdist_naive(query, &centered[j..j + l])
            }
        })
        .collect()
}

/// Minimum of a distance profile and the offset achieving it, ignoring `+∞`
/// entries. Returns `None` when every entry is excluded.
pub fn profile_min(dp: &[f64]) -> Option<(usize, f64)> {
    let mut best: Option<(usize, f64)> = None;
    for (j, &d) in dp.iter().enumerate() {
        if d.is_finite() && best.is_none_or(|(_, bd)| d < bd) {
            best = Some((j, d));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use valmod_data::generators::random_walk;

    fn ps(n: usize, seed: u64) -> ProfiledSeries {
        ProfiledSeries::from_values(&random_walk(n, seed)).unwrap()
    }

    #[test]
    fn fast_profile_matches_naive() {
        let ps = ps(300, 1);
        let policy = ExclusionPolicy::HALF;
        for &(i, l) in &[(0usize, 16usize), (120, 16), (283, 16), (50, 7), (0, 64)] {
            let fast = self_distance_profile(&ps, i, l, &policy);
            let slow = self_distance_profile_naive(&ps, i, l, &policy);
            assert_eq!(fast.len(), slow.len());
            for (j, (a, b)) in fast.iter().zip(&slow).enumerate() {
                if a.is_infinite() || b.is_infinite() {
                    assert_eq!(a.is_infinite(), b.is_infinite(), "i={i} l={l} j={j}");
                } else {
                    assert!((a - b).abs() < 1e-7, "i={i} l={l} j={j}: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn exclusion_zone_is_infinite() {
        let ps = ps(100, 2);
        let policy = ExclusionPolicy::HALF;
        let dp = self_distance_profile(&ps, 40, 10, &policy);
        let radius = policy.radius(10);
        for (j, &d) in dp.iter().enumerate() {
            if 40usize.abs_diff(j) < radius {
                assert!(d.is_infinite(), "j={j} should be excluded");
            } else {
                assert!(d.is_finite());
            }
        }
    }

    #[test]
    fn mass_finds_planted_query() {
        let series = random_walk(500, 3);
        let ps = ProfiledSeries::from_values(&series).unwrap();
        // Take an in-series window as external query: its profile minimum
        // must be (numerically) zero at its own offset.
        let query = series[200..232].to_vec();
        let dp = mass(&query, &ps);
        assert_eq!(dp.len(), 500 - 32 + 1);
        let (arg, min) =
            dp.iter().enumerate().min_by(|a, b| a.1.total_cmp(b.1)).map(|(j, &d)| (j, d)).unwrap();
        assert_eq!(arg, 200);
        // Near-zero distances amplify FFT rounding through sqrt(2ℓ·ε).
        assert!(min < 1e-3, "self-match distance {min}");
    }

    #[test]
    fn mass_is_shift_invariant_in_query() {
        let series = random_walk(300, 4);
        let ps = ProfiledSeries::from_values(&series).unwrap();
        let query: Vec<f64> = series[50..80].to_vec();
        let shifted: Vec<f64> = query.iter().map(|v| v + 1000.0).collect();
        let a = mass(&query, &ps);
        let b = mass(&shifted, &ps);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn profile_min_ignores_infinities() {
        assert_eq!(profile_min(&[f64::INFINITY, 3.0, 1.0, f64::INFINITY]), Some((2, 1.0)));
        assert_eq!(profile_min(&[f64::INFINITY, f64::INFINITY]), None);
        assert_eq!(profile_min(&[]), None);
    }

    #[test]
    fn direct_seeds_are_prefix_stable_and_close_to_fft() {
        let series = random_walk(400, 9);
        let ps_small = ProfiledSeries::from_values(&series[..300]).unwrap();
        let ps_big = ProfiledSeries::with_offset(&series, ps_small.offset()).unwrap();
        let l = 24;
        let fft = self_qt(&ps_small, 0, l);
        for (j, &row_qt) in fft.iter().enumerate().take(ps_small.num_subsequences(l)) {
            let small = seed_qt(ps_small.centered(), j, l);
            let big = seed_qt(ps_big.centered(), j, l);
            // Growing the series cannot move a direct seed by a single bit…
            assert_eq!(small.to_bits(), big.to_bits(), "j={j}");
            // …and the seed agrees with the FFT row to rounding.
            assert!((small - row_qt).abs() < 1e-6 * small.abs().max(1.0), "j={j}");
        }
        let mut row = Vec::new();
        seed_qt_row_into(ps_big.centered(), l, ps_big.num_subsequences(l), &mut row);
        assert_eq!(row.len(), ps_big.num_subsequences(l));
        assert_eq!(row[5].to_bits(), seed_qt(ps_big.centered(), 5, l).to_bits());
    }

    #[test]
    fn mass_empty_cases() {
        let ps = ps(10, 5);
        assert!(mass(&[], &ps).is_empty());
        let long_query = vec![0.0; 20];
        assert!(mass(&long_query, &ps).is_empty());
    }
}
