//! STAMPI-style streaming matrix profile: maintain the profile of a fixed
//! subsequence length as points are appended (Yeh et al., ICDM 2016, §IV —
//! the incremental variant of the matrix-profile family).
//!
//! Appending one point creates exactly one new subsequence; its dot products
//! against all existing subsequences follow from the *previous* newest row in
//! `O(1)` per column, so each append costs `O(n)` — no FFT needed after the
//! seed. The new row updates both the new offset's entry and, symmetrically,
//! every older offset whose nearest neighbour the newcomer beats.
//!
//! Note the well-known streaming caveat: older entries only ever *improve*
//! (distances are min-folded), which is exactly the semantics of the batch
//! profile over the grown series.

use valmod_data::error::{DataError, Result};
use valmod_obs::{Recorder, SharedRecorder};

use crate::context::ProfiledSeries;
use crate::distance::dist_from_qt;
use crate::exclusion::ExclusionPolicy;
use crate::matrix_profile::MatrixProfile;
use crate::stomp::stomp;

/// A matrix profile maintained incrementally under appends.
#[derive(Debug, Clone)]
pub struct StreamingProfile {
    l: usize,
    policy: ExclusionPolicy,
    /// Centring offset fixed at construction (shift-invariance makes any
    /// constant valid; fixing it keeps appends O(n)).
    offset: f64,
    /// Centred samples.
    values: Vec<f64>,
    /// Prefix sums of centred samples / their squares.
    prefix: Vec<f64>,
    prefix_sq: Vec<f64>,
    /// `run[i]` = length of the constant run ending at sample `i`
    /// (saturating), for exact σ = 0 on constant windows — mirrors
    /// `RollingStats` so streamed and batch profiles classify flat
    /// subsequences identically.
    run: Vec<u32>,
    /// Dot products of the newest subsequence against all others.
    last_qt: Vec<f64>,
    /// The retired dot-product row, recycled as the next append's buffer so
    /// steady-state appends allocate nothing.
    qt_scratch: Vec<f64>,
    mp: Vec<f64>,
    ip: Vec<usize>,
    /// Measurement sink; defaults to the no-op recorder.
    recorder: SharedRecorder,
}

impl StreamingProfile {
    /// Builds the initial profile from a seed series (batch STOMP), ready
    /// for appends.
    pub fn new(seed: &[f64], l: usize, policy: ExclusionPolicy) -> Result<Self> {
        let ps = ProfiledSeries::from_values(seed)?;
        let initial = stomp(&ps, l, policy)?;
        let offset = ps.offset();
        let values: Vec<f64> = ps.centered().to_vec();
        let mut prefix = Vec::with_capacity(values.len() + 1);
        let mut prefix_sq = Vec::with_capacity(values.len() + 1);
        prefix.push(0.0);
        prefix_sq.push(0.0);
        let (mut s, mut q) = (0.0, 0.0);
        let mut run: Vec<u32> = Vec::with_capacity(values.len());
        for (i, &v) in values.iter().enumerate() {
            s += v;
            q += v * v;
            prefix.push(s);
            prefix_sq.push(q);
            let extends = i > 0 && v == values[i - 1];
            run.push(if extends { run[i - 1].saturating_add(1) } else { 1 });
        }
        // Seed the newest-row dot products (the last subsequence vs all).
        let ndp = values.len() - l + 1;
        let last = ndp - 1;
        let last_qt: Vec<f64> = (0..ndp)
            .map(|j| values[last..last + l].iter().zip(&values[j..j + l]).map(|(a, b)| a * b).sum())
            .collect();
        Ok(StreamingProfile {
            l,
            policy,
            offset,
            values,
            prefix,
            prefix_sq,
            run,
            last_qt,
            qt_scratch: Vec::new(),
            mp: initial.mp,
            ip: initial.ip,
            recorder: SharedRecorder::noop(),
        })
    }

    /// Replaces the measurement sink. Each accepted [`append`](Self::append)
    /// then records its wall time into `mp.streaming.append_us` and counts
    /// `mp.streaming.appends`.
    pub fn with_recorder(mut self, recorder: SharedRecorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Current number of samples.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// The fixed subsequence length this profile is maintained at.
    #[inline]
    pub fn subsequence_len(&self) -> usize {
        self.l
    }

    /// The exclusion policy fixed at construction.
    #[inline]
    pub fn policy(&self) -> ExclusionPolicy {
        self.policy
    }

    /// Whether the stream holds no samples (never true after `new`).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Nearest-neighbour distance of the newest complete window (the value
    /// a live monitor thresholds on) — `None` before any window is complete
    /// or when every pair is excluded.
    pub fn newest_nn_dist(&self) -> Option<f64> {
        self.mp.last().copied().filter(|d| d.is_finite())
    }

    /// The current profile (same semantics as batch STOMP over all samples
    /// seen so far).
    pub fn profile(&self) -> MatrixProfile {
        MatrixProfile {
            l: self.l,
            mp: self.mp.clone(),
            ip: self.ip.clone(),
            exclusion_radius: self.policy.radius(self.l),
        }
    }

    fn mean(&self, i: usize) -> f64 {
        (self.prefix[i + self.l] - self.prefix[i]) / self.l as f64
    }

    fn std(&self, i: usize) -> f64 {
        if self.run[i + self.l - 1] as usize >= self.l {
            return 0.0; // exactly constant window
        }
        let inv = 1.0 / self.l as f64;
        let m = (self.prefix[i + self.l] - self.prefix[i]) * inv;
        let ss = (self.prefix_sq[i + self.l] - self.prefix_sq[i]) * inv;
        (ss - m * m).max(0.0).sqrt()
    }

    /// Appends one sample, updating the profile in `O(n)`.
    pub fn append(&mut self, raw: f64) -> Result<()> {
        if !raw.is_finite() {
            return Err(DataError::NonFinite { index: self.values.len() });
        }
        let recorder = self.recorder.clone();
        let _span = valmod_obs::span!(&recorder, "mp.streaming.append_us");
        if recorder.enabled() {
            recorder.add("mp.streaming.appends", 1);
        }
        self.append_unchecked(raw);
        Ok(())
    }

    /// The `O(n)` profile update for one already-validated sample — shared
    /// by [`append`](Self::append) and [`extend`](Self::extend) so the two
    /// produce bit-identical profiles; instrumentation lives in the callers.
    fn append_unchecked(&mut self, raw: f64) {
        let v = raw - self.offset;
        let extends = self.values.last().is_some_and(|&prev| prev == v);
        self.values.push(v);
        self.prefix.push(self.prefix.last().unwrap() + v);
        self.prefix_sq.push(self.prefix_sq.last().unwrap() + v * v);
        self.run.push(if extends {
            self.run.last().copied().unwrap_or(0).saturating_add(1)
        } else {
            1
        });

        let l = self.l;
        let n = self.values.len();
        let ndp = n - l + 1;
        let new = ndp - 1; // offset of the new subsequence
        let t = &self.values;
        // New row's dot products from the previous newest row:
        // ⟨T_new, T_j⟩ = ⟨T_{new−1}, T_{j−1}⟩ − t[new−1]t[j−1] + t[new+l−1]t[j+l−1].
        // The buffer is the row retired two appends ago (zero-allocation
        // steady state); every slot is overwritten below.
        let mut qt = std::mem::take(&mut self.qt_scratch);
        qt.clear();
        qt.resize(ndp, 0.0);
        for j in (1..ndp).rev() {
            qt[j] = self.last_qt[j - 1] - t[new - 1] * t[j - 1] + t[new + l - 1] * t[j + l - 1];
        }
        qt[0] = t[0..l].iter().zip(&t[new..new + l]).map(|(a, b)| a * b).sum();

        let radius = self.policy.radius(l);
        let mean_new = self.mean(new);
        let std_new = self.std(new);
        let mut best = f64::INFINITY;
        let mut arg = usize::MAX;
        self.mp.push(f64::INFINITY);
        self.ip.push(usize::MAX);
        for (j, &q) in qt.iter().enumerate().take(ndp - 1) {
            if new.abs_diff(j) < radius {
                continue;
            }
            let d = dist_from_qt(q, l, self.mean(j), self.std(j), mean_new, std_new);
            if d < best {
                best = d;
                arg = j;
            }
            // Symmetric fold into the older offset.
            if d < self.mp[j] {
                self.mp[j] = d;
                self.ip[j] = new;
            }
        }
        self.mp[new] = best;
        self.ip[new] = arg;
        self.qt_scratch = std::mem::replace(&mut self.last_qt, qt);
    }

    /// Appends a batch of samples, all-or-nothing: the batch is validated
    /// up front, so a non-finite sample rejects the whole call and leaves
    /// the profile exactly as it was (callers that mirror the stream into
    /// other state never desynchronise).
    ///
    /// The resulting profile is bit-identical to `k` individual
    /// [`append`](Self::append) calls, but the batch is instrumented as ONE
    /// unit: one `mp.streaming.extend_us` span and one
    /// `mp.streaming.batch_extends` count per call (plus `k` on
    /// `mp.streaming.appends`), so per-append observability cost does not
    /// scale with the batch size.
    pub fn extend(&mut self, samples: &[f64]) -> Result<()> {
        if let Some(bad) = samples.iter().position(|v| !v.is_finite()) {
            return Err(DataError::NonFinite { index: self.values.len() + bad });
        }
        if samples.is_empty() {
            return Ok(());
        }
        let recorder = self.recorder.clone();
        let _span = valmod_obs::span!(&recorder, "mp.streaming.extend_us");
        if recorder.enabled() {
            recorder.add("mp.streaming.batch_extends", 1);
            recorder.add("mp.streaming.appends", samples.len() as u64);
        }
        for &s in samples {
            self.append_unchecked(s);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use valmod_data::generators::{plant_motif, random_walk};

    fn check_equals_batch(series: &[f64], seed_len: usize, l: usize) {
        let mut stream = StreamingProfile::new(&series[..seed_len], l, ExclusionPolicy::HALF)
            .expect("seed profile");
        stream.extend(&series[seed_len..]).unwrap();
        let streamed = stream.profile();

        // Batch oracle over the whole series. The streaming profile centres
        // by the *seed* mean, the batch by the full mean — distances are
        // shift-invariant, so they must agree.
        let ps = ProfiledSeries::from_values(series).unwrap();
        let batch = stomp(&ps, l, ExclusionPolicy::HALF).unwrap();
        assert_eq!(streamed.len(), batch.len());
        for i in 0..batch.len() {
            if streamed.mp[i].is_infinite() || batch.mp[i].is_infinite() {
                assert_eq!(streamed.mp[i].is_infinite(), batch.mp[i].is_infinite(), "row {i}");
            } else {
                assert!(
                    (streamed.mp[i] - batch.mp[i]).abs() < 1e-6,
                    "row {i}: streamed {} vs batch {}",
                    streamed.mp[i],
                    batch.mp[i]
                );
            }
        }
    }

    #[test]
    fn streaming_equals_batch_on_random_walk() {
        let series = random_walk(300, 77);
        check_equals_batch(&series, 120, 16);
    }

    #[test]
    fn streaming_equals_batch_point_by_point() {
        let series = random_walk(150, 79);
        check_equals_batch(&series, 40, 10);
    }

    #[test]
    fn streaming_detects_a_late_motif() {
        // Plant a motif whose second occurrence arrives only via appends.
        let (series, planted) = plant_motif(1200, 40, 2, 0.001, 81);
        let cut = planted.offsets[1].saturating_sub(10);
        let mut stream =
            StreamingProfile::new(&series[..cut.max(100)], 40, ExclusionPolicy::HALF).unwrap();
        stream.extend(&series[cut.max(100)..]).unwrap();
        let profile = stream.profile();
        let (a, b, d) = profile.motif_pair().unwrap();
        assert!(d < 1.0, "planted motif distance {d}");
        let mut got = [a, b];
        got.sort_unstable();
        assert!(got[0].abs_diff(planted.offsets[0]) <= 2);
        assert!(got[1].abs_diff(planted.offsets[1]) <= 2);
    }

    #[test]
    fn append_rejects_non_finite() {
        let series = random_walk(100, 83);
        let mut stream = StreamingProfile::new(&series, 10, ExclusionPolicy::HALF).unwrap();
        assert!(stream.append(f64::NAN).is_err());
        assert!(stream.append(1.5).is_ok());
    }

    #[test]
    fn recorder_sees_appends_and_batches() {
        let reg = valmod_obs::Registry::new();
        let series = random_walk(100, 87);
        let mut stream = StreamingProfile::new(&series, 10, ExclusionPolicy::HALF)
            .unwrap()
            .with_recorder(SharedRecorder::from(reg.clone()));
        stream.extend(&[0.5, 1.5, -0.5]).unwrap();
        assert!(stream.append(f64::NAN).is_err());
        let snap = reg.snapshot();
        assert_eq!(snap.counter("mp.streaming.appends"), Some(3), "rejected appends not counted");
        assert_eq!(snap.counter("mp.streaming.batch_extends"), Some(1));
        // One span per *batch*, not per sample — per-append observability
        // cost must not scale with the batch size.
        assert_eq!(snap.histogram("mp.streaming.extend_us").unwrap().count, 1);
        assert_eq!(snap.histogram("mp.streaming.append_us").map(|h| h.count).unwrap_or(0), 0);

        stream.append(2.5).unwrap();
        stream.extend(&[]).unwrap();
        let snap = reg.snapshot();
        assert_eq!(snap.counter("mp.streaming.appends"), Some(4));
        assert_eq!(snap.counter("mp.streaming.batch_extends"), Some(1), "empty batch not counted");
        assert_eq!(snap.histogram("mp.streaming.append_us").unwrap().count, 1);
        assert_eq!(snap.histogram("mp.streaming.extend_us").unwrap().count, 1);
    }

    #[test]
    fn batched_extend_is_bit_identical_to_per_sample_appends() {
        let series = random_walk(220, 91);
        let mut batched = StreamingProfile::new(&series[..140], 12, ExclusionPolicy::HALF).unwrap();
        let mut one_by_one = batched.clone();
        batched.extend(&series[140..]).unwrap();
        for &s in &series[140..] {
            one_by_one.append(s).unwrap();
        }
        let (a, b) = (batched.profile(), one_by_one.profile());
        assert_eq!(a.len(), b.len());
        for i in 0..a.len() {
            assert_eq!(a.mp[i].to_bits(), b.mp[i].to_bits(), "row {i}");
            assert_eq!(a.ip[i], b.ip[i], "row {i}");
        }
    }

    #[test]
    fn extend_is_all_or_nothing() {
        let series = random_walk(100, 85);
        let mut stream = StreamingProfile::new(&series, 10, ExclusionPolicy::HALF).unwrap();
        let before = stream.len();
        let err = stream.extend(&[1.0, 2.0, f64::INFINITY, 3.0]).unwrap_err();
        assert!(matches!(err, DataError::NonFinite { index } if index == before + 2));
        assert_eq!(stream.len(), before, "a rejected batch must not apply partially");
        stream.extend(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(stream.len(), before + 3);
        assert_eq!(stream.subsequence_len(), 10);
        assert_eq!(stream.policy(), ExclusionPolicy::HALF);
    }
}
