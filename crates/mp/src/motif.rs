//! Extracting ranked motif pairs from a matrix profile (paper Definition 2.3
//! and the "ranked list of subsequence pairs" that follows it).

use crate::matrix_profile::MatrixProfile;

/// A motif pair: the two closest non-trivially-matching subsequences of a
/// given length.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MotifPair {
    /// Offset of the first subsequence (always ≤ `b`).
    pub a: usize,
    /// Offset of the second subsequence.
    pub b: usize,
    /// Subsequence length.
    pub l: usize,
    /// Z-normalised Euclidean distance between the pair.
    pub dist: f64,
}

impl MotifPair {
    /// Creates a pair with offsets ordered.
    pub fn new(x: usize, y: usize, l: usize, dist: f64) -> Self {
        let (a, b) = if x <= y { (x, y) } else { (y, x) };
        MotifPair { a, b, l, dist }
    }

    /// The paper's §3 length-normalised distance (`dist · sqrt(1/ℓ)`), used
    /// to rank motifs of different lengths.
    #[inline]
    pub fn norm_dist(&self) -> f64 {
        crate::distance::length_normalize(self.dist, self.l)
    }
}

/// Extracts the top-`k` motif pairs from a matrix profile.
///
/// After a pair is selected, offsets within the exclusion radius of either
/// of its members are suppressed, so successive pairs describe genuinely
/// different regions (the usual "remove the motif pair, the second smallest
/// becomes the new motif pair" semantics, made non-trivial).
///
/// Tie-breaking is deterministic: candidates are sorted by distance with a
/// *stable* sort over ascending offsets, so equal-distance rows resolve to
/// the smaller owner offset first — the same order whatever kernel (row,
/// diagonal, parallel) produced the profile.
pub fn top_motifs(profile: &MatrixProfile, k: usize) -> Vec<MotifPair> {
    let ndp = profile.len();
    let radius = profile.exclusion_radius;
    let mut suppressed = vec![false; ndp];
    // Candidates sorted ascending by distance.
    let mut order: Vec<usize> = (0..ndp).filter(|&i| profile.mp[i].is_finite()).collect();
    order.sort_by(|&x, &y| profile.mp[x].total_cmp(&profile.mp[y]));

    let mut out = Vec::with_capacity(k.min(8));
    for &i in &order {
        if out.len() >= k {
            break;
        }
        let j = profile.ip[i];
        if j == usize::MAX || suppressed[i] || suppressed[j] {
            continue;
        }
        out.push(MotifPair::new(i, j, profile.l, profile.mp[i]));
        for &center in &[i, j] {
            let lo = center.saturating_sub(radius.saturating_sub(1));
            let hi = (center + radius).min(ndp);
            for s in suppressed.iter_mut().take(hi).skip(lo) {
                *s = true;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ProfiledSeries;
    use crate::exclusion::ExclusionPolicy;
    use crate::stomp::stomp;
    use valmod_data::generators::plant_motif;

    #[test]
    fn pair_constructor_orders_offsets() {
        let p = MotifPair::new(9, 4, 8, 1.5);
        assert_eq!((p.a, p.b), (4, 9));
    }

    #[test]
    fn norm_dist_applies_sqrt_inverse_length() {
        let p = MotifPair::new(0, 10, 16, 4.0);
        assert!((p.norm_dist() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn top_motifs_returns_distinct_regions() {
        let (series, _) = plant_motif(4000, 50, 4, 0.01, 31);
        let ps = ProfiledSeries::from_values(&series).unwrap();
        let profile = stomp(&ps, 50, ExclusionPolicy::HALF).unwrap();
        let motifs = top_motifs(&profile, 3);
        assert!(!motifs.is_empty());
        // Distances must be non-decreasing.
        for w in motifs.windows(2) {
            assert!(w[0].dist <= w[1].dist + 1e-12);
        }
        // All involved offsets pairwise distinct beyond the exclusion radius.
        let mut offsets = Vec::new();
        for m in &motifs {
            offsets.push(m.a);
            offsets.push(m.b);
        }
        for (x, &i) in offsets.iter().enumerate() {
            for &j in &offsets[x + 1..] {
                assert!(i.abs_diff(j) >= profile.exclusion_radius, "{i} vs {j} overlap");
            }
        }
    }

    #[test]
    fn equal_distance_pairs_resolve_to_the_smaller_offset() {
        // Hand-built profile with an exact three-way distance tie, far
        // enough apart that suppression never hides a candidate. The stable
        // sort over ascending offsets must pick owners 0, 20, 40 in order.
        let mut mp = vec![f64::INFINITY; 50];
        let mut ip = vec![usize::MAX; 50];
        for &(i, j) in &[(0usize, 10usize), (20, 30), (40, 49)] {
            mp[i] = 1.0;
            ip[i] = j;
            mp[j] = 1.0;
            ip[j] = i;
        }
        let profile = MatrixProfile { l: 8, mp, ip, exclusion_radius: 4 };
        let motifs = top_motifs(&profile, 3);
        let pairs: Vec<(usize, usize)> = motifs.iter().map(|m| (m.a, m.b)).collect();
        assert_eq!(pairs, vec![(0, 10), (20, 30), (40, 49)]);
        // The same profile with rows permuted in value-equal ways (swap the
        // stored direction of each pair) selects the same pairs.
        let mut ip2 = vec![usize::MAX; 50];
        let mut mp2 = vec![f64::INFINITY; 50];
        for &(i, j) in &[(10usize, 0usize), (30, 20), (49, 40)] {
            mp2[i] = 1.0;
            ip2[i] = j;
            mp2[j] = 1.0;
            ip2[j] = i;
        }
        let swapped = MatrixProfile { l: 8, mp: mp2, ip: ip2, exclusion_radius: 4 };
        let again: Vec<(usize, usize)> =
            top_motifs(&swapped, 3).iter().map(|m| (m.a, m.b)).collect();
        assert_eq!(again, pairs);
    }

    #[test]
    fn requesting_more_motifs_than_exist_is_fine() {
        let (series, _) = plant_motif(1500, 40, 2, 0.01, 5);
        let ps = ProfiledSeries::from_values(&series).unwrap();
        let profile = stomp(&ps, 40, ExclusionPolicy::HALF).unwrap();
        let motifs = top_motifs(&profile, 1000);
        assert!(!motifs.is_empty());
        assert!(motifs.len() < 1000);
    }

    #[test]
    fn zero_k_returns_empty() {
        let profile =
            MatrixProfile { l: 4, mp: vec![1.0, 2.0], ip: vec![1, 0], exclusion_radius: 1 };
        assert!(top_motifs(&profile, 0).is_empty());
    }
}
