//! [`ProfiledSeries`]: a data series prepared for matrix-profile computation.
//!
//! All profile kernels work in the *centred* domain (series minus its global
//! mean). Z-normalised distances are invariant under that shift, while the
//! dot products and `QT/ℓ − μμ` cancellations in Eq. 3 become far better
//! conditioned (DESIGN.md §7).

use valmod_data::error::{DataError, Result};
use valmod_data::series::Series;
use valmod_data::stats::RollingStats;

/// A series packaged with its rolling statistics, centred by the global mean.
#[derive(Debug, Clone)]
pub struct ProfiledSeries {
    centered: Vec<f64>,
    stats: RollingStats,
}

impl ProfiledSeries {
    /// Prepares `series` for profile computation (O(n)).
    pub fn new(series: &Series) -> Self {
        let stats = RollingStats::new(series.values());
        let offset = stats.offset();
        let centered = series.values().iter().map(|&v| v - offset).collect();
        ProfiledSeries { centered, stats }
    }

    /// Builds directly from raw samples.
    pub fn from_values(values: &[f64]) -> Result<Self> {
        let series = Series::new(values.to_vec())?;
        Ok(ProfiledSeries::new(&series))
    }

    /// Prepares `values` centred by an explicit `offset` instead of the
    /// series' own mean.
    ///
    /// This is the frame a growing series must be profiled in: pinning the
    /// offset at its load-time value keeps the centred samples — and every
    /// dot product and statistic over the original prefix — bit-identical
    /// after an append, which is what makes incremental tail extension of
    /// cached profiles exact (see `valmod_mp::extend`).
    pub fn with_offset(values: &[f64], offset: f64) -> Result<Self> {
        let series = Series::new(values.to_vec())?;
        let stats = RollingStats::with_offset(series.values(), offset);
        let centered = series.values().iter().map(|&v| v - offset).collect();
        Ok(ProfiledSeries { centered, stats })
    }

    /// Number of samples.
    #[inline]
    pub fn len(&self) -> usize {
        self.centered.len()
    }

    /// Whether the series is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.centered.is_empty()
    }

    /// The centred samples (`x − global mean`); the domain every kernel
    /// computes dot products in.
    #[inline]
    pub fn centered(&self) -> &[f64] {
        &self.centered
    }

    /// The global mean that was subtracted.
    #[inline]
    pub fn offset(&self) -> f64 {
        self.stats.offset()
    }

    /// Rolling statistics over the original series.
    #[inline]
    pub fn stats(&self) -> &RollingStats {
        &self.stats
    }

    /// Centred mean `μ(T_{i,ℓ}) − offset` of a subsequence (the mean in the
    /// domain of [`ProfiledSeries::centered`]).
    #[inline]
    pub fn mean_c(&self, i: usize, l: usize) -> f64 {
        self.stats.centered_sum(i, l) / l as f64
    }

    /// Standard deviation of a subsequence (shift-invariant, so identical in
    /// raw and centred domains).
    #[inline]
    pub fn std(&self, i: usize, l: usize) -> f64 {
        self.stats.std_dev(i, l)
    }

    /// Number of subsequences of length `l`.
    #[inline]
    pub fn num_subsequences(&self, l: usize) -> usize {
        if l == 0 || self.centered.len() < l {
            0
        } else {
            self.centered.len() - l + 1
        }
    }

    /// Validates that at least two non-overlapping subsequences of length `l`
    /// exist, returning the subsequence count.
    pub fn require_pairs(&self, l: usize) -> Result<usize> {
        if l == 0 {
            return Err(DataError::InvalidParameter("subsequence length must be positive".into()));
        }
        let ndp = self.num_subsequences(l);
        if ndp < 2 {
            return Err(DataError::TooShort { len: self.centered.len(), required: l + 1 });
        }
        Ok(ndp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn centering_preserves_std_and_shifts_mean() {
        let series = Series::new(vec![10.0, 12.0, 14.0, 16.0]).unwrap();
        let ps = ProfiledSeries::new(&series);
        assert!((ps.offset() - 13.0).abs() < 1e-12);
        assert!((ps.mean_c(0, 2) - (11.0 - 13.0)).abs() < 1e-12);
        assert!((ps.std(0, 2) - 1.0).abs() < 1e-12);
        assert!((ps.centered()[0] - (-3.0)).abs() < 1e-12);
    }

    #[test]
    fn require_pairs_validates() {
        let ps = ProfiledSeries::from_values(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(ps.require_pairs(3).unwrap(), 2);
        assert!(ps.require_pairs(4).is_err());
        assert!(ps.require_pairs(0).is_err());
    }

    #[test]
    fn from_values_rejects_nan() {
        assert!(ProfiledSeries::from_values(&[1.0, f64::NAN]).is_err());
        assert!(ProfiledSeries::with_offset(&[1.0, f64::NAN], 0.0).is_err());
    }

    #[test]
    fn pinned_offset_keeps_the_centred_prefix_stable() {
        let values: Vec<f64> = (0..120).map(|i| (i as f64 * 0.31).cos() * 3.0 + 1.5).collect();
        let base = ProfiledSeries::from_values(&values[..80]).unwrap();
        let grown = ProfiledSeries::with_offset(&values, base.offset()).unwrap();
        assert_eq!(grown.len(), 120);
        for i in 0..80 {
            assert_eq!(base.centered()[i].to_bits(), grown.centered()[i].to_bits(), "sample {i}");
        }
        for &(i, l) in &[(0usize, 8usize), (30, 16), (60, 20)] {
            assert_eq!(base.mean_c(i, l).to_bits(), grown.mean_c(i, l).to_bits());
            assert_eq!(base.std(i, l).to_bits(), grown.std(i, l).to_bits());
        }
    }
}
