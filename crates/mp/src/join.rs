//! AB-joins: the matrix profile between two *different* series (Yeh et al.,
//! ICDM 2016 — "all pairs similarity join"). For each subsequence of `A`,
//! the distance to its nearest neighbour among the subsequences of `B`.
//!
//! No exclusion zone applies (the series are distinct), and the join is not
//! symmetric: `join(A, B)` answers "does anything in B look like this part
//! of A?", the primitive behind template search (e.g. finding earthquake
//! waveforms from a catalogue of templates).

use valmod_data::error::{DataError, Result};

use crate::context::ProfiledSeries;
use crate::distance_profile::mass;
use crate::matrix_profile::MatrixProfile;

/// The AB-join profile: for each subsequence `A_{i,ℓ}`, the distance to and
/// offset of its nearest neighbour in `B`.
pub fn ab_join(a: &ProfiledSeries, b: &ProfiledSeries, l: usize) -> Result<MatrixProfile> {
    if l == 0 {
        return Err(DataError::InvalidParameter("join length must be positive".into()));
    }
    let na = a.num_subsequences(l);
    let nb = b.num_subsequences(l);
    if na == 0 || nb == 0 {
        return Err(DataError::TooShort { len: a.len().min(b.len()), required: l });
    }
    let mut mp = vec![f64::INFINITY; na];
    let mut ip = vec![usize::MAX; na];
    // One MASS pass per subsequence of A against all of B: O(na · nb log nb)
    // worst case, but each profile is an independent O(nb log nb) FFT pass.
    let a_vals = a.centered();
    for i in 0..na {
        let dp = mass(&a_vals[i..i + l], b);
        for (j, &d) in dp.iter().enumerate() {
            if d < mp[i] {
                mp[i] = d;
                ip[i] = j;
            }
        }
    }
    Ok(MatrixProfile { l, mp, ip, exclusion_radius: 0 })
}

/// The smallest join distance and the offsets achieving it: the closest
/// cross-series pair (`None` if either side has no subsequence).
pub fn closest_cross_pair(
    a: &ProfiledSeries,
    b: &ProfiledSeries,
    l: usize,
) -> Result<Option<(usize, usize, f64)>> {
    let join = ab_join(a, b, l)?;
    let mut best: Option<(usize, f64)> = None;
    for (i, &d) in join.mp.iter().enumerate() {
        if d.is_finite() && best.is_none_or(|(_, bd)| d < bd) {
            best = Some((i, d));
        }
    }
    Ok(best.map(|(i, d)| (i, join.ip[i], d)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::zdist_naive;
    use valmod_data::generators::random_walk;

    #[test]
    fn join_matches_naive_nearest_neighbours() {
        let a = random_walk(120, 1);
        let b = random_walk(150, 2);
        let (pa, pb) =
            (ProfiledSeries::from_values(&a).unwrap(), ProfiledSeries::from_values(&b).unwrap());
        let l = 16;
        let join = ab_join(&pa, &pb, l).unwrap();
        for i in 0..join.len() {
            let mut best = f64::INFINITY;
            for j in 0..=(b.len() - l) {
                best = best.min(zdist_naive(&a[i..i + l], &b[j..j + l]));
            }
            assert!((join.mp[i] - best).abs() < 1e-6, "row {i}: {} vs {best}", join.mp[i]);
        }
    }

    #[test]
    fn planted_template_is_found_across_series() {
        let mut a = random_walk(400, 3);
        let b = random_walk(300, 4);
        // Copy a window of B into A (an exact cross-series match).
        let template: Vec<f64> = b[100..148].to_vec();
        a[200..248].copy_from_slice(&template);
        let (pa, pb) =
            (ProfiledSeries::from_values(&a).unwrap(), ProfiledSeries::from_values(&b).unwrap());
        let (i, j, d) = closest_cross_pair(&pa, &pb, 48).unwrap().unwrap();
        assert_eq!((i, j), (200, 100));
        assert!(d < 1e-3, "cross distance {d}");
    }

    #[test]
    fn join_is_not_symmetric_but_min_is() {
        let a = random_walk(100, 5);
        let b = random_walk(140, 6);
        let (pa, pb) =
            (ProfiledSeries::from_values(&a).unwrap(), ProfiledSeries::from_values(&b).unwrap());
        let ab = closest_cross_pair(&pa, &pb, 12).unwrap().unwrap();
        let ba = closest_cross_pair(&pb, &pa, 12).unwrap().unwrap();
        // The global closest pair is the same in both directions.
        assert!((ab.2 - ba.2).abs() < 1e-7);
        assert_eq!((ab.0, ab.1), (ba.1, ba.0));
    }

    #[test]
    fn join_rejects_degenerate_inputs() {
        let a = ProfiledSeries::from_values(&random_walk(20, 1)).unwrap();
        let b = ProfiledSeries::from_values(&random_walk(5, 2)).unwrap();
        assert!(ab_join(&a, &b, 0).is_err());
        assert!(ab_join(&a, &b, 10).is_err()); // b too short
    }
}
