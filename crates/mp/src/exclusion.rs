//! Trivial-match exclusion zones (paper §2, discussion under Definition 2.5).
//!
//! A subsequence trivially matches itself and its near-identical shifted
//! copies; the matrix profile therefore ignores neighbours within an
//! exclusion zone around each query. The paper sets the zone to `ℓ/2`; STOMP
//! implementations often use `ℓ/4`. The policy is a rational fraction of the
//! subsequence length so both (and ablations between them) are expressible.

/// A rational exclusion-zone policy: neighbours with `|i − j| < radius(ℓ)`
/// are trivial matches, where `radius(ℓ) = max(1, ⌈ℓ·num/den⌉)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExclusionPolicy {
    num: usize,
    den: usize,
}

impl ExclusionPolicy {
    /// The paper's default: `ℓ/2`.
    pub const HALF: ExclusionPolicy = ExclusionPolicy { num: 1, den: 2 };
    /// The common STOMP default: `ℓ/4` (used in ablations).
    pub const QUARTER: ExclusionPolicy = ExclusionPolicy { num: 1, den: 4 };

    /// Creates a policy excluding `|i − j| < ⌈ℓ·num/den⌉`.
    ///
    /// # Panics
    /// Panics if `den == 0`.
    pub fn new(num: usize, den: usize) -> Self {
        assert!(den > 0, "exclusion denominator must be positive");
        ExclusionPolicy { num, den }
    }

    /// The exclusion radius for subsequence length `l` (at least 1: a
    /// subsequence never matches itself).
    #[inline]
    pub fn radius(&self, l: usize) -> usize {
        ((l * self.num).div_ceil(self.den)).max(1)
    }

    /// Numerator of the exclusion fraction.
    #[inline]
    pub fn num(&self) -> usize {
        self.num
    }

    /// Denominator of the exclusion fraction (always positive).
    #[inline]
    pub fn den(&self) -> usize {
        self.den
    }

    /// The policy with its fraction reduced to lowest terms — `2/4` and
    /// `1/2` exclude exactly the same pairs at every length, so cache keys
    /// and equality checks should use this canonical form.
    pub fn reduced(&self) -> ExclusionPolicy {
        if self.num == 0 {
            return ExclusionPolicy { num: 0, den: 1 };
        }
        let g = gcd(self.num, self.den);
        ExclusionPolicy { num: self.num / g, den: self.den / g }
    }

    /// Whether offsets `i` and `j` are trivial matches at length `l`.
    #[inline]
    pub fn is_trivial(&self, i: usize, j: usize, l: usize) -> bool {
        i.abs_diff(j) < self.radius(l)
    }
}

fn gcd(mut a: usize, mut b: usize) -> usize {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

impl Default for ExclusionPolicy {
    /// Defaults to the paper's `ℓ/2`.
    fn default() -> Self {
        ExclusionPolicy::HALF
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn half_policy_radius() {
        let p = ExclusionPolicy::HALF;
        assert_eq!(p.radius(8), 4);
        assert_eq!(p.radius(9), 5); // ceil
        assert_eq!(p.radius(1), 1);
    }

    #[test]
    fn radius_is_at_least_one() {
        let p = ExclusionPolicy::new(0, 10);
        assert_eq!(p.radius(100), 1);
        assert!(p.is_trivial(5, 5, 100));
        assert!(!p.is_trivial(5, 6, 100));
    }

    #[test]
    fn trivial_match_is_symmetric() {
        let p = ExclusionPolicy::HALF;
        for (i, j) in [(0usize, 3usize), (10, 14), (7, 7)] {
            assert_eq!(p.is_trivial(i, j, 8), p.is_trivial(j, i, 8));
        }
    }

    #[test]
    fn quarter_is_tighter_than_half() {
        assert!(ExclusionPolicy::QUARTER.radius(100) < ExclusionPolicy::HALF.radius(100));
    }

    #[test]
    #[should_panic(expected = "denominator")]
    fn zero_denominator_rejected() {
        ExclusionPolicy::new(1, 0);
    }

    #[test]
    fn reduced_reaches_lowest_terms() {
        assert_eq!(ExclusionPolicy::new(2, 4).reduced(), ExclusionPolicy::HALF);
        assert_eq!(ExclusionPolicy::new(3, 12).reduced(), ExclusionPolicy::QUARTER);
        assert_eq!(ExclusionPolicy::new(0, 7).reduced(), ExclusionPolicy::new(0, 1));
        assert_eq!(ExclusionPolicy::HALF.reduced(), ExclusionPolicy::HALF);
        // Reduction never changes the excluded set.
        for l in [1usize, 7, 8, 100] {
            assert_eq!(ExclusionPolicy::new(2, 4).radius(l), ExclusionPolicy::HALF.radius(l));
        }
    }
}
