//! Trivial-match exclusion zones (paper §2, discussion under Definition 2.5).
//!
//! A subsequence trivially matches itself and its near-identical shifted
//! copies; the matrix profile therefore ignores neighbours within an
//! exclusion zone around each query. The paper sets the zone to `ℓ/2`; STOMP
//! implementations often use `ℓ/4`. The policy is a rational fraction of the
//! subsequence length so both (and ablations between them) are expressible.

/// A rational exclusion-zone policy: neighbours with `|i − j| < radius(ℓ)`
/// are trivial matches, where `radius(ℓ) = max(1, ⌈ℓ·num/den⌉)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExclusionPolicy {
    num: usize,
    den: usize,
}

impl ExclusionPolicy {
    /// The paper's default: `ℓ/2`.
    pub const HALF: ExclusionPolicy = ExclusionPolicy { num: 1, den: 2 };
    /// The common STOMP default: `ℓ/4` (used in ablations).
    pub const QUARTER: ExclusionPolicy = ExclusionPolicy { num: 1, den: 4 };

    /// Creates a policy excluding `|i − j| < ⌈ℓ·num/den⌉`.
    ///
    /// # Panics
    /// Panics if `den == 0`.
    pub fn new(num: usize, den: usize) -> Self {
        assert!(den > 0, "exclusion denominator must be positive");
        ExclusionPolicy { num, den }
    }

    /// The exclusion radius for subsequence length `l` (at least 1: a
    /// subsequence never matches itself).
    #[inline]
    pub fn radius(&self, l: usize) -> usize {
        ((l * self.num).div_ceil(self.den)).max(1)
    }

    /// Whether offsets `i` and `j` are trivial matches at length `l`.
    #[inline]
    pub fn is_trivial(&self, i: usize, j: usize, l: usize) -> bool {
        i.abs_diff(j) < self.radius(l)
    }
}

impl Default for ExclusionPolicy {
    /// Defaults to the paper's `ℓ/2`.
    fn default() -> Self {
        ExclusionPolicy::HALF
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn half_policy_radius() {
        let p = ExclusionPolicy::HALF;
        assert_eq!(p.radius(8), 4);
        assert_eq!(p.radius(9), 5); // ceil
        assert_eq!(p.radius(1), 1);
    }

    #[test]
    fn radius_is_at_least_one() {
        let p = ExclusionPolicy::new(0, 10);
        assert_eq!(p.radius(100), 1);
        assert!(p.is_trivial(5, 5, 100));
        assert!(!p.is_trivial(5, 6, 100));
    }

    #[test]
    fn trivial_match_is_symmetric() {
        let p = ExclusionPolicy::HALF;
        for (i, j) in [(0usize, 3usize), (10, 14), (7, 7)] {
            assert_eq!(p.is_trivial(i, j, 8), p.is_trivial(j, i, 8));
        }
    }

    #[test]
    fn quarter_is_tighter_than_half() {
        assert!(ExclusionPolicy::QUARTER.radius(100) < ExclusionPolicy::HALF.radius(100));
    }

    #[test]
    #[should_panic(expected = "denominator")]
    fn zero_denominator_rejected() {
        ExclusionPolicy::new(1, 0);
    }
}
