//! Discord (anomaly) extraction from a matrix profile — the paper's §8
//! future-work direction ("discovery of shapelets and discords"), realised
//! here because VALMP already carries everything needed.

use crate::matrix_profile::MatrixProfile;

/// A discord: a subsequence unusually far from its nearest neighbour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Discord {
    /// Offset of the anomalous subsequence.
    pub offset: usize,
    /// Offset of its nearest neighbour.
    pub nn: usize,
    /// Distance to that nearest neighbour (large ⇒ anomalous).
    pub nn_dist: f64,
    /// Subsequence length.
    pub l: usize,
}

/// Extracts the top-`k` discords: offsets with the largest finite
/// nearest-neighbour distances, suppressing the exclusion zone around each
/// selected discord so the k results describe distinct regions.
///
/// Tie-breaking is deterministic: the descending sort is *stable* over
/// ascending offsets, so equal-distance rows resolve to the smaller offset
/// first, independent of which kernel produced the profile.
pub fn top_discords(profile: &MatrixProfile, k: usize) -> Vec<Discord> {
    let ndp = profile.len();
    let radius = profile.exclusion_radius;
    let mut suppressed = vec![false; ndp];
    let mut order: Vec<usize> = (0..ndp).filter(|&i| profile.mp[i].is_finite()).collect();
    order.sort_by(|&x, &y| profile.mp[y].total_cmp(&profile.mp[x]));

    let mut out = Vec::new();
    for &i in &order {
        if out.len() >= k {
            break;
        }
        if suppressed[i] {
            continue;
        }
        out.push(Discord { offset: i, nn: profile.ip[i], nn_dist: profile.mp[i], l: profile.l });
        let lo = i.saturating_sub(radius.saturating_sub(1));
        let hi = (i + radius).min(ndp);
        for s in suppressed.iter_mut().take(hi).skip(lo) {
            *s = true;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ProfiledSeries;
    use crate::exclusion::ExclusionPolicy;
    use crate::stomp::stomp;
    use valmod_data::generators::sine_mixture;

    #[test]
    fn planted_anomaly_is_the_top_discord() {
        // A clean periodic signal with one corrupted window.
        let mut series = sine_mixture(2000, &[(0.02, 1.0)], 0.01, 3);
        for (k, v) in series[900..950].iter_mut().enumerate() {
            *v += ((k * k % 13) as f64 - 6.0) * 0.8;
        }
        let ps = ProfiledSeries::from_values(&series).unwrap();
        let profile = stomp(&ps, 50, ExclusionPolicy::HALF).unwrap();
        let discords = top_discords(&profile, 1);
        assert_eq!(discords.len(), 1);
        let d = discords[0];
        assert!(
            (860..=950).contains(&d.offset),
            "discord at {} should overlap the corrupted window",
            d.offset
        );
    }

    #[test]
    fn equal_distance_discords_resolve_to_the_smaller_offset() {
        // Exact ties at the top: the stable descending sort keeps ascending
        // offsets within each distance class.
        let mut mp = vec![0.5; 40];
        let mut ip: Vec<usize> = (0..40).map(|i| (i + 20) % 40).collect();
        for &i in &[5usize, 15, 25] {
            mp[i] = 2.0; // three-way tie for the largest distance
        }
        mp[35] = 1.0;
        ip[35] = 0;
        let profile = MatrixProfile { l: 8, mp, ip, exclusion_radius: 4 };
        let discords = top_discords(&profile, 4);
        let offsets: Vec<usize> = discords.iter().map(|d| d.offset).collect();
        assert_eq!(offsets, vec![5, 15, 25, 35]);
    }

    #[test]
    fn discords_are_sorted_and_distinct() {
        let series = sine_mixture(1500, &[(0.03, 1.0), (0.011, 0.4)], 0.05, 9);
        let ps = ProfiledSeries::from_values(&series).unwrap();
        let profile = stomp(&ps, 40, ExclusionPolicy::HALF).unwrap();
        let discords = top_discords(&profile, 4);
        for w in discords.windows(2) {
            assert!(w[0].nn_dist >= w[1].nn_dist - 1e-12);
            assert!(w[0].offset.abs_diff(w[1].offset) >= profile.exclusion_radius);
        }
    }
}
