//! Multi-threaded STOMP.
//!
//! The paper (§2) notes that matrix-profile computation parallelises
//! trivially ("GPUs, cloud computing, and other HPC environments"). This is
//! the CPU version: rows are split into contiguous chunks, each worker seeds
//! its chunk's first dot-product row with one FFT pass and then applies the
//! `O(1)`-per-cell STOMP update within the chunk. Chunks own disjoint slices
//! of the output, so no synchronisation is needed beyond the scoped join.

use valmod_data::error::Result;

use crate::context::ProfiledSeries;
use crate::distance_profile::{dp_from_qt_into, profile_min, self_qt};
use crate::exclusion::ExclusionPolicy;
use crate::matrix_profile::MatrixProfile;

/// Computes the matrix profile with `threads` workers (1 = sequential
/// fallback identical to [`crate::stomp::stomp`]).
pub fn stomp_parallel(
    ps: &ProfiledSeries,
    l: usize,
    policy: ExclusionPolicy,
    threads: usize,
) -> Result<MatrixProfile> {
    let ndp = ps.require_pairs(l)?;
    let threads = threads.clamp(1, ndp);
    let mut mp = vec![f64::INFINITY; ndp];
    let mut ip = vec![usize::MAX; ndp];

    // Contiguous row chunks; each worker owns matching slices of mp/ip.
    let chunk_len = ndp.div_ceil(threads);
    std::thread::scope(|scope| {
        let mut mp_rest: &mut [f64] = &mut mp;
        let mut ip_rest: &mut [usize] = &mut ip;
        let mut start = 0usize;
        while start < ndp {
            let len = chunk_len.min(ndp - start);
            let (mp_chunk, mp_tail) = mp_rest.split_at_mut(len);
            let (ip_chunk, ip_tail) = ip_rest.split_at_mut(len);
            mp_rest = mp_tail;
            ip_rest = ip_tail;
            let chunk_start = start;
            scope.spawn(move || {
                compute_chunk(ps, l, &policy, chunk_start, mp_chunk, ip_chunk);
            });
            start += len;
        }
    });
    Ok(MatrixProfile { l, mp, ip, exclusion_radius: policy.radius(l) })
}

/// Computes rows `[chunk_start, chunk_start + mp_chunk.len())`.
fn compute_chunk(
    ps: &ProfiledSeries,
    l: usize,
    policy: &ExclusionPolicy,
    chunk_start: usize,
    mp_chunk: &mut [f64],
    ip_chunk: &mut [usize],
) {
    let ndp = ps.num_subsequences(l);
    let t = ps.centered();
    // Seed: the full dot-product vector of the chunk's first row (FFT).
    let mut qt = self_qt(ps, chunk_start, l);
    let mut dp = Vec::with_capacity(ndp);
    for (k, (mp_out, ip_out)) in mp_chunk.iter_mut().zip(ip_chunk.iter_mut()).enumerate() {
        let i = chunk_start + k;
        if k > 0 {
            // STOMP update, descending j (paper Alg. 3 lines 10–12).
            for j in (1..ndp).rev() {
                qt[j] = qt[j - 1] - t[i - 1] * t[j - 1] + t[i + l - 1] * t[j + l - 1];
            }
            // First column by symmetry: ⟨T_0, T_i⟩ = ⟨T_i, T_0⟩, computed
            // directly (cheap O(ℓ); avoids sharing the seed row across
            // chunks).
            qt[0] = t[0..l].iter().zip(&t[i..i + l]).map(|(a, b)| a * b).sum();
        }
        dp_from_qt_into(ps, &qt, i, l, policy, &mut dp);
        match profile_min(&dp) {
            Some((j, d)) => {
                *mp_out = d;
                *ip_out = j;
            }
            None => {
                *mp_out = f64::INFINITY;
                *ip_out = usize::MAX;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stomp::stomp;
    use valmod_data::generators::random_walk;

    fn check(n: usize, l: usize, threads: usize, seed: u64) {
        let ps = ProfiledSeries::from_values(&random_walk(n, seed)).unwrap();
        let seq = stomp(&ps, l, ExclusionPolicy::HALF).unwrap();
        let par = stomp_parallel(&ps, l, ExclusionPolicy::HALF, threads).unwrap();
        assert_eq!(seq.len(), par.len());
        for i in 0..seq.len() {
            if seq.mp[i].is_infinite() || par.mp[i].is_infinite() {
                assert_eq!(seq.mp[i].is_infinite(), par.mp[i].is_infinite(), "row {i}");
            } else {
                assert!(
                    (seq.mp[i] - par.mp[i]).abs() < 1e-7,
                    "row {i}: {} vs {}",
                    seq.mp[i],
                    par.mp[i]
                );
            }
        }
    }

    #[test]
    fn matches_sequential_stomp_various_thread_counts() {
        for threads in [1usize, 2, 3, 7, 16] {
            check(350, 24, threads, 31);
        }
    }

    #[test]
    fn more_threads_than_rows_is_fine() {
        check(40, 8, 64, 5);
    }

    #[test]
    fn single_thread_is_the_sequential_algorithm() {
        check(200, 16, 1, 9);
    }
}
