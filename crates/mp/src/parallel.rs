//! Multi-threaded STOMP.
//!
//! The paper (§2) notes that matrix-profile computation parallelises
//! trivially ("GPUs, cloud computing, and other HPC environments").
//! [`stomp_parallel`] partitions the *diagonals* of the distance matrix into
//! cell-balanced contiguous ranges (see [`crate::diagonal`]), one blocked
//! traversal per worker, and merges the per-worker profiles with the
//! lexicographic min — which is associative, so the result is bit-identical
//! to the sequential kernel for any thread count.
//!
//! The older row-chunked machinery stays: [`stomp_rows`] is a visitor-based
//! kernel that hands each row's distance profile *and* dot-product vector to
//! a closure, and [`row_chunks`] splits rows across workers. `valmod-core`'s
//! chunked lower-bound harvest still builds on them (harvesting needs full
//! rows), as do the differential oracles.

use valmod_data::error::Result;
use valmod_obs::{Recorder, SharedRecorder};

use crate::context::ProfiledSeries;
use crate::distance_profile::{dp_from_qt_into, self_qt};
use crate::exclusion::ExclusionPolicy;
use crate::matrix_profile::MatrixProfile;

/// Resolves a user-facing thread-count knob: `0` means "use all available
/// cores" (falling back to 1 if the count cannot be queried).
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        threads
    }
}

/// Splits `ndp` rows into at most `threads` contiguous `(start, len)`
/// chunks. Every chunk is non-empty and the chunks cover `[0, ndp)` in
/// order; with `ndp` not divisible by the thread count the last chunk is
/// short.
pub fn row_chunks(ndp: usize, threads: usize) -> Vec<(usize, usize)> {
    if ndp == 0 {
        return Vec::new();
    }
    let threads = resolve_threads(threads).clamp(1, ndp);
    let chunk_len = ndp.div_ceil(threads);
    let mut chunks = Vec::with_capacity(threads);
    let mut start = 0;
    while start < ndp {
        let len = chunk_len.min(ndp - start);
        chunks.push((start, len));
        start += len;
    }
    chunks
}

/// Streams rows `[row_start, row_start + row_len)` of the self-join distance
/// matrix to `visit`, which receives `(row, distance_profile, qt)` where
/// `qt[j] = ⟨T_row, T_j⟩` on the centered series.
///
/// The first row of the range is seeded with one FFT pass
/// ([`self_qt`]); subsequent rows use the `O(1)`-per-cell STOMP update, with
/// column 0 recovered by symmetry (`⟨T_i, T_0⟩ = ⟨T_0, T_i⟩`, a direct
/// `O(ℓ)` dot product) so chunks never need each other's state. The caller
/// must have validated `l` (e.g. via [`ProfiledSeries::require_pairs`]) and
/// `row_start + row_len <= ndp`.
pub fn stomp_rows<F>(
    ps: &ProfiledSeries,
    l: usize,
    policy: &ExclusionPolicy,
    row_start: usize,
    row_len: usize,
    mut visit: F,
) where
    F: FnMut(usize, &[f64], &[f64]),
{
    if row_len == 0 {
        return;
    }
    let ndp = ps.num_subsequences(l);
    debug_assert!(row_start + row_len <= ndp);
    let t = ps.centered();
    // Seed: the full dot-product vector of the range's first row (FFT).
    let mut qt = self_qt(ps, row_start, l);
    let mut dp = Vec::with_capacity(ndp);
    for i in row_start..row_start + row_len {
        if i > row_start {
            // STOMP update, descending j (paper Alg. 3 lines 10–12).
            for j in (1..ndp).rev() {
                qt[j] = qt[j - 1] - t[i - 1] * t[j - 1] + t[i + l - 1] * t[j + l - 1];
            }
            // First column by symmetry: ⟨T_0, T_i⟩ = ⟨T_i, T_0⟩, computed
            // directly (cheap O(ℓ); avoids sharing the seed row across
            // chunks).
            qt[0] = t[0..l].iter().zip(&t[i..i + l]).map(|(a, b)| a * b).sum();
        }
        dp_from_qt_into(ps, &qt, i, l, policy, &mut dp);
        visit(i, &dp, &qt);
    }
}

/// Computes the matrix profile with `threads` workers (1 = sequential
/// fallback identical to [`crate::stomp::stomp`]; 0 = all available cores).
pub fn stomp_parallel(
    ps: &ProfiledSeries,
    l: usize,
    policy: ExclusionPolicy,
    threads: usize,
) -> Result<MatrixProfile> {
    stomp_parallel_with(ps, l, policy, threads, &SharedRecorder::noop())
}

/// [`stomp_parallel`] with instrumentation: the whole parallel traversal is
/// timed into `mp.diag.parallel_us`, the single FFT seed into
/// `mp.mass.calls`, the row total into `mp.stomp.rows`, and the block count
/// into `mp.diag.blocks`. With a disabled recorder the only cost is one
/// `enabled()` branch per call.
pub fn stomp_parallel_with(
    ps: &ProfiledSeries,
    l: usize,
    policy: ExclusionPolicy,
    threads: usize,
    recorder: &SharedRecorder,
) -> Result<MatrixProfile> {
    let mut ws = crate::workspace::Workspace::new();
    let profile = {
        let _span = valmod_obs::span!(recorder, "mp.diag.parallel_us");
        crate::diagonal::stomp_diagonal_parallel_ws(ps, l, policy, threads, &mut ws)?
    };
    if recorder.enabled() {
        // One FFT-seeded first row; every other cell uses the O(1) update.
        recorder.add("mp.mass.calls", 1);
        recorder.add("mp.stomp.rows", profile.len() as u64);
        recorder.add(
            "mp.diag.blocks",
            crate::diagonal::block_count(profile.len(), policy.radius(l), ws.block()),
        );
    }
    Ok(profile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stomp::stomp;
    use valmod_data::generators::random_walk;

    fn check(n: usize, l: usize, threads: usize, seed: u64) {
        let ps = ProfiledSeries::from_values(&random_walk(n, seed)).unwrap();
        let seq = stomp(&ps, l, ExclusionPolicy::HALF).unwrap();
        let par = stomp_parallel(&ps, l, ExclusionPolicy::HALF, threads).unwrap();
        assert_eq!(seq.len(), par.len());
        for i in 0..seq.len() {
            if seq.mp[i].is_infinite() || par.mp[i].is_infinite() {
                assert_eq!(seq.mp[i].is_infinite(), par.mp[i].is_infinite(), "row {i}");
            } else {
                assert!(
                    (seq.mp[i] - par.mp[i]).abs() < 1e-7,
                    "row {i}: {} vs {}",
                    seq.mp[i],
                    par.mp[i]
                );
            }
        }
    }

    #[test]
    fn matches_sequential_stomp_various_thread_counts() {
        for threads in [1usize, 2, 3, 7, 16] {
            check(350, 24, threads, 31);
        }
    }

    #[test]
    fn more_threads_than_rows_is_fine() {
        check(40, 8, 64, 5);
    }

    #[test]
    fn single_thread_is_the_sequential_algorithm() {
        check(200, 16, 1, 9);
    }

    #[test]
    fn zero_threads_means_all_cores() {
        check(120, 12, 0, 13);
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }

    #[test]
    fn row_chunks_cover_exactly_once() {
        for (ndp, threads) in [(10, 3), (7, 7), (5, 16), (1, 1), (100, 7), (0, 4)] {
            let chunks = row_chunks(ndp, threads);
            let mut next = 0;
            for &(start, len) in &chunks {
                assert_eq!(start, next);
                assert!(len > 0);
                next += len;
            }
            assert_eq!(next, ndp);
        }
    }

    #[test]
    fn visitor_sees_each_row_once_with_qt() {
        let ps = ProfiledSeries::from_values(&random_walk(80, 2)).unwrap();
        let l = 8;
        let t = ps.centered();
        let mut rows = Vec::new();
        stomp_rows(&ps, l, &ExclusionPolicy::HALF, 3, 5, |i, dp, qt| {
            rows.push(i);
            assert_eq!(dp.len(), qt.len());
            // qt really is the dot-product row of the centered series.
            for (j, &q) in qt.iter().enumerate().step_by(17) {
                let direct: f64 = t[i..i + l].iter().zip(&t[j..j + l]).map(|(a, b)| a * b).sum();
                assert!((q - direct).abs() < 1e-6, "qt[{j}] at row {i}");
            }
        });
        assert_eq!(rows, vec![3, 4, 5, 6, 7]);
    }
}
