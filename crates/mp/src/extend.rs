//! Incremental tail extension of matrix profiles.
//!
//! A growing series invalidates nothing about the distance matrix it already
//! paid for: appending `k` samples adds `k` new columns (and rows, by
//! symmetry) and leaves every existing cell untouched — *provided the series
//! is profiled in a pinned frame* ([`ProfiledSeries::with_offset`]), so the
//! centred samples and rolling statistics over the original prefix do not
//! move. This module turns that observation into an exact `O(k·n)` update:
//!
//! * [`stomp_with_tail`] computes a cold profile and captures a
//!   [`TailState`] — the in-flight QT values of the matrix's last column,
//!   which every still-growing diagonal chains through.
//! * [`extend_profile`] walks the new columns with the *same* recurrence,
//!   seed expression, and distance call as the diagonal kernel
//!   ([`crate::diagonal`]), min-folding new cells into the old profile with
//!   [`lex_update`].
//!
//! ## Why the result is bit-identical to a cold recompute
//!
//! Both kernels chain every cell `(i, j)` from the direct-sum seed
//! `⟨T_0, T_{j−i}⟩` ([`seed_qt`]) along its diagonal, one left-associated
//! update per step. The extension continues those exact chains from the
//! stored last-column values, so each new cell's QT — and therefore its
//! distance — carries the same bits a cold run over `n + k` samples would
//! produce. The lexicographic `(distance, index)` min-fold is associative,
//! commutative, and idempotent, so folding the new cells into the old
//! profile equals folding all cells from scratch. The `extend` oracle in
//! `valmod-check` holds this to `to_bits` equality under randomized append
//! schedules.

use valmod_data::error::{DataError, Result};

use crate::context::ProfiledSeries;
use crate::diagonal::{diagonal_cells, lex_update};
use crate::distance::dist_from_qt;
use crate::distance_profile::seed_qt;
use crate::exclusion::ExclusionPolicy;
use crate::matrix_profile::MatrixProfile;
use crate::workspace::Workspace;

/// The resumable tail of a matrix-profile computation at one length: the
/// QT values of the last column of the distance matrix, which are exactly
/// the chain heads every diagonal needs to keep growing.
#[derive(Debug, Clone)]
pub struct TailState {
    l: usize,
    radius: usize,
    n: usize,
    offset_bits: u64,
    /// `qt[i] = ⟨T_{i,ℓ}, T_{ndp−1,ℓ}⟩` for `i ∈ [0, ndp−1−radius]`
    /// (centred domain) — the last computed cell of diagonal `ndp−1−i`.
    qt: Vec<f64>,
}

impl TailState {
    /// Subsequence length the state describes.
    #[inline]
    pub fn l(&self) -> usize {
        self.l
    }

    /// Number of samples the state has been advanced to.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The exclusion radius baked into the traversal.
    #[inline]
    pub fn radius(&self) -> usize {
        self.radius
    }

    /// Approximate heap bytes held (for cache byte-budget accounting).
    pub fn heap_bytes(&self) -> usize {
        self.qt.len() * std::mem::size_of::<f64>()
    }

    /// Validates that `ps` is a grown version of the series this state was
    /// captured on — same pinned offset, no fewer samples — without
    /// advancing anything. Returns `(old_ndp, new_ndp)`. Callers that fold
    /// extension cells into their own structures should call this *before*
    /// resizing those structures, so a rejected series leaves them intact.
    pub fn check_grow(&self, ps: &ProfiledSeries) -> Result<(usize, usize)> {
        self.check(ps)
    }

    fn check(&self, ps: &ProfiledSeries) -> Result<(usize, usize)> {
        if ps.offset().to_bits() != self.offset_bits {
            return Err(DataError::InvalidParameter(
                "tail extension requires the pinned profiling offset of the original series".into(),
            ));
        }
        if ps.len() < self.n {
            return Err(DataError::InvalidParameter(format!(
                "tail extension cannot shrink a series ({} -> {} samples)",
                self.n,
                ps.len()
            )));
        }
        Ok((self.n - self.l + 1, ps.len() - self.l + 1))
    }
}

/// [`crate::stomp::stomp`] plus a captured [`TailState`]: the cold half of
/// the incremental pipeline. Bit-identical profile to the plain kernel (the
/// capture only *reads* QT values the traversal produces anyway).
pub fn stomp_with_tail(
    ps: &ProfiledSeries,
    l: usize,
    policy: ExclusionPolicy,
) -> Result<(MatrixProfile, TailState)> {
    let mut ws = Workspace::new();
    stomp_with_tail_ws(ps, l, policy, &mut ws)
}

/// [`stomp_with_tail`] over a caller-held [`Workspace`].
pub fn stomp_with_tail_ws(
    ps: &ProfiledSeries,
    l: usize,
    policy: ExclusionPolicy,
    ws: &mut Workspace,
) -> Result<(MatrixProfile, TailState)> {
    let ndp = ps.require_pairs(l)?;
    let mut mp = vec![f64::INFINITY; ndp];
    let mut ip = vec![usize::MAX; ndp];
    let state = capture_cells(ps, l, policy, ws, |i, j, _q, d| {
        lex_update(&mut mp[i], &mut ip[i], d, j);
        lex_update(&mut mp[j], &mut ip[j], d, i);
    })?;
    Ok((MatrixProfile { l, mp, ip, exclusion_radius: policy.radius(l) }, state))
}

/// Runs the cold diagonal traversal, streaming every cell `(i, j, qt, dist)`
/// to `visit` exactly as [`diagonal_cells`] does, while capturing the
/// [`TailState`] — the QT values of the matrix's last column. This lets
/// callers with richer per-cell folds (e.g. `valmod-core`'s fused
/// lower-bound harvest) become extension-ready without a second pass.
pub fn capture_cells<F>(
    ps: &ProfiledSeries,
    l: usize,
    policy: ExclusionPolicy,
    ws: &mut Workspace,
    mut visit: F,
) -> Result<TailState>
where
    F: FnMut(usize, usize, f64, f64),
{
    let ndp = ps.require_pairs(l)?;
    let radius = policy.radius(l);
    let mut last = vec![0.0f64; ndp.saturating_sub(radius)];
    diagonal_cells(ps, l, &policy, ws, |i, j, q, d| {
        visit(i, j, q, d);
        if j == ndp - 1 {
            // The final cell of diagonal ndp−1−i: the chain head a future
            // extension continues from.
            last[i] = q;
        }
    })?;
    Ok(TailState { l, radius, n: ps.len(), offset_bits: ps.offset().to_bits(), qt: last })
}

/// Streams every cell the series growth added — `(i, j, qt, dist)` with
/// `j ≥ old_ndp`, `j − i ≥ radius` — to `visit`, advancing the state to
/// `ps.len()` samples. Cells arrive column by column (ascending `j`, then
/// ascending `i`), each exactly once. Returns `(old_ndp, new_ndp)`.
///
/// `ps` must be the grown series profiled with the *same pinned offset* the
/// state was captured under; anything else is rejected. This is the shared
/// walk under [`extend_profile`] and the anchor-segment extension in
/// `valmod-core` (which additionally harvests the new cells into its
/// partial profiles).
pub fn extend_cells<F>(
    state: &mut TailState,
    ps: &ProfiledSeries,
    mut visit: F,
) -> Result<(usize, usize)>
where
    F: FnMut(usize, usize, f64, f64),
{
    let (old_ndp, new_ndp) = state.check(ps)?;
    let (l, radius) = (state.l, state.radius);
    let t = ps.centered();
    for r in old_ndp..new_ndp {
        let Some(imax) = r.checked_sub(radius) else { continue };
        // Column r chains cell (i, r) from cell (i−1, r−1) of the previous
        // column — update in place, descending, exactly the diagonal-step
        // expression of the blocked kernel (same association, same operand
        // order), then seed the new diagonal r at row 0 directly.
        state.qt.resize(imax + 1, 0.0);
        for i in (1..=imax).rev() {
            state.qt[i] = state.qt[i - 1] - t[i - 1] * t[r - 1] + t[i + l - 1] * t[r + l - 1];
        }
        state.qt[0] = seed_qt(t, r, l);
        let (mean_r, std_r) = (ps.mean_c(r, l), ps.std(r, l));
        for (i, &q) in state.qt.iter().enumerate() {
            let d = dist_from_qt(q, l, ps.mean_c(i, l), ps.std(i, l), mean_r, std_r);
            visit(i, r, q, d);
        }
    }
    state.n = ps.len();
    Ok((old_ndp, new_ndp))
}

/// Extends a cached per-length profile over the state's `n` samples to cover
/// all of `ps` — `O(k·n)` for `k` appended samples, bit-identical (`to_bits`)
/// to recomputing the profile cold over the grown series.
pub fn extend_profile(
    profile: &mut MatrixProfile,
    state: &mut TailState,
    ps: &ProfiledSeries,
) -> Result<()> {
    if profile.l != state.l {
        return Err(DataError::InvalidParameter(format!(
            "tail extension length mismatch: profile l={}, state l={}",
            profile.l, state.l
        )));
    }
    let (old_ndp, new_ndp) = state.check(ps)?;
    if profile.len() != old_ndp {
        return Err(DataError::InvalidParameter(format!(
            "tail extension row mismatch: profile has {} rows, state covers {old_ndp}",
            profile.len()
        )));
    }
    profile.mp.resize(new_ndp, f64::INFINITY);
    profile.ip.resize(new_ndp, usize::MAX);
    let (mp, ip) = (&mut profile.mp, &mut profile.ip);
    extend_cells(state, ps, |i, j, _q, d| {
        lex_update(&mut mp[i], &mut ip[i], d, j);
        lex_update(&mut mp[j], &mut ip[j], d, i);
    })?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stomp::stomp;
    use valmod_data::generators::{plant_motif, random_walk};

    fn assert_bits(a: &MatrixProfile, b: &MatrixProfile, what: &str) {
        assert_eq!(a.len(), b.len(), "{what}: length");
        for i in 0..a.len() {
            assert_eq!(a.mp[i].to_bits(), b.mp[i].to_bits(), "{what}: mp[{i}]");
            assert_eq!(a.ip[i], b.ip[i], "{what}: ip[{i}]");
        }
    }

    #[test]
    fn capture_does_not_change_the_profile() {
        let ps = ProfiledSeries::from_values(&random_walk(300, 11)).unwrap();
        for l in [8usize, 20] {
            let plain = stomp(&ps, l, ExclusionPolicy::HALF).unwrap();
            let (captured, state) = stomp_with_tail(&ps, l, ExclusionPolicy::HALF).unwrap();
            assert_bits(&captured, &plain, &format!("l={l}"));
            assert_eq!(state.n(), 300);
            assert_eq!(state.l(), l);
        }
    }

    #[test]
    fn extension_is_bit_identical_to_cold_stomp_across_schedules() {
        let series = random_walk(420, 23);
        for schedule in [vec![1usize, 1, 1], vec![7, 40, 1, 52], vec![120]] {
            let base_n = 420 - schedule.iter().sum::<usize>();
            let base = ProfiledSeries::from_values(&series[..base_n]).unwrap();
            let offset = base.offset();
            let (mut profile, mut state) =
                stomp_with_tail(&base, 16, ExclusionPolicy::HALF).unwrap();
            let mut n = base_n;
            for &k in &schedule {
                n += k;
                let grown = ProfiledSeries::with_offset(&series[..n], offset).unwrap();
                extend_profile(&mut profile, &mut state, &grown).unwrap();
                let cold = stomp(&grown, 16, ExclusionPolicy::HALF).unwrap();
                assert_bits(&profile, &cold, &format!("schedule {schedule:?} at n={n}"));
            }
        }
    }

    #[test]
    fn extension_works_on_structured_data_and_other_policies() {
        let (series, _) = plant_motif(600, 48, 3, 0.02, 31);
        let base = ProfiledSeries::from_values(&series[..500]).unwrap();
        let (mut profile, mut state) =
            stomp_with_tail(&base, 48, ExclusionPolicy::QUARTER).unwrap();
        let grown = ProfiledSeries::with_offset(&series, base.offset()).unwrap();
        extend_profile(&mut profile, &mut state, &grown).unwrap();
        let cold = stomp(&grown, 48, ExclusionPolicy::QUARTER).unwrap();
        assert_bits(&profile, &cold, "planted/quarter");
    }

    #[test]
    fn zero_sample_extension_is_a_no_op() {
        let ps = ProfiledSeries::from_values(&random_walk(200, 3)).unwrap();
        let (mut profile, mut state) = stomp_with_tail(&ps, 12, ExclusionPolicy::HALF).unwrap();
        let before = profile.clone();
        extend_profile(&mut profile, &mut state, &ps).unwrap();
        assert_bits(&profile, &before, "no-op");
        assert_eq!(state.n(), 200);
    }

    #[test]
    fn nearly_all_excluded_series_grows_into_validity() {
        // 12 samples at ℓ=10: every pair trivial (all-∞ profile). Growing to
        // 40 samples must introduce the first finite entries, identically to
        // a cold run.
        let series = random_walk(40, 7);
        let base = ProfiledSeries::from_values(&series[..12]).unwrap();
        let (mut profile, mut state) = stomp_with_tail(&base, 10, ExclusionPolicy::HALF).unwrap();
        assert!(profile.mp.iter().all(|d| d.is_infinite()));
        let grown = ProfiledSeries::with_offset(&series, base.offset()).unwrap();
        extend_profile(&mut profile, &mut state, &grown).unwrap();
        let cold = stomp(&grown, 10, ExclusionPolicy::HALF).unwrap();
        assert_bits(&profile, &cold, "grown into validity");
        assert!(profile.mp.iter().any(|d| d.is_finite()));
    }

    #[test]
    fn mismatched_frames_and_shrinking_are_rejected() {
        let series = random_walk(260, 9);
        let base = ProfiledSeries::from_values(&series[..200]).unwrap();
        let (mut profile, mut state) = stomp_with_tail(&base, 16, ExclusionPolicy::HALF).unwrap();
        // A grown series profiled in its own (drifted) frame is refused.
        let drifted = ProfiledSeries::from_values(&series).unwrap();
        assert!(extend_profile(&mut profile, &mut state, &drifted).is_err());
        // So is a shorter series.
        let short = ProfiledSeries::with_offset(&series[..150], base.offset()).unwrap();
        assert!(extend_profile(&mut profile, &mut state, &short).is_err());
        // And a length-mismatched profile.
        let (mut other, _) = stomp_with_tail(&base, 20, ExclusionPolicy::HALF).unwrap();
        let grown = ProfiledSeries::with_offset(&series, base.offset()).unwrap();
        assert!(extend_profile(&mut other, &mut state, &grown).is_err());
    }
}
