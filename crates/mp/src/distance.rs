//! Z-normalised Euclidean distances (paper Eq. 3) and their naive oracles.
//!
//! ## Flat-subsequence convention
//!
//! Z-normalisation is undefined for a constant subsequence (σ = 0). We follow
//! the standard matrix-profile convention — a flat subsequence z-normalises
//! to the all-zero vector — which induces:
//!
//! * both flat → distance 0;
//! * exactly one flat → distance `sqrt(ℓ)` (the energy of a z-normalised
//!   vector is ℓ).
//!
//! The fast dot-product path and the naive path agree on this convention, so
//! every oracle test can compare them bit-tightly.

use valmod_data::series::znormalize_into;

/// Relative threshold below which a σ is treated as zero (flat subsequence).
/// Matches the threshold used by [`valmod_data::series::znormalize`].
#[inline]
pub fn is_flat(sigma: f64, mean: f64) -> bool {
    sigma <= f64::EPSILON * mean.abs().max(1.0)
}

/// The Pearson correlation between two subsequences of length `l`, from
/// their (centred-domain) dot product and statistics, clamped to [−1, 1].
///
/// `qt` must be the dot product of the two subsequences in the same domain
/// (raw or centred) that `mean_i`/`mean_j` are expressed in.
#[inline]
pub fn correlation(qt: f64, l: usize, mean_i: f64, std_i: f64, mean_j: f64, std_j: f64) -> f64 {
    let lf = l as f64;
    let q = (qt / lf - mean_i * mean_j) / (std_i * std_j);
    q.clamp(-1.0, 1.0)
}

/// Z-normalised Euclidean distance from a dot product (paper Eq. 3):
/// `d = sqrt(2ℓ(1 − q))`, with the flat-subsequence convention above.
#[inline]
pub fn dist_from_qt(qt: f64, l: usize, mean_i: f64, std_i: f64, mean_j: f64, std_j: f64) -> f64 {
    let flat_i = is_flat(std_i, mean_i);
    let flat_j = is_flat(std_j, mean_j);
    if flat_i || flat_j {
        return if flat_i && flat_j { 0.0 } else { (l as f64).sqrt() };
    }
    let q = correlation(qt, l, mean_i, std_i, mean_j, std_j);
    (2.0 * l as f64 * (1.0 - q)).max(0.0).sqrt()
}

/// Naive z-normalised Euclidean distance: z-normalise both subsequences and
/// take the plain Euclidean distance. The oracle for every fast path.
pub fn zdist_naive(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "z-distance needs equal lengths");
    let mut za = a.to_vec();
    let mut zb = b.to_vec();
    znormalize_into(a, &mut za);
    znormalize_into(b, &mut zb);
    za.iter().zip(&zb).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt()
}

/// Early-abandoning z-normalised squared distance: returns `None` as soon as
/// the partial squared sum exceeds `threshold_sq` (used by the QuickMotif
/// refinement step).
pub fn zdist_sq_early_abandon(
    a: &[f64],
    b: &[f64],
    mean_a: f64,
    std_a: f64,
    mean_b: f64,
    std_b: f64,
    threshold_sq: f64,
) -> Option<f64> {
    debug_assert_eq!(a.len(), b.len());
    let l = a.len();
    let flat_a = is_flat(std_a, mean_a);
    let flat_b = is_flat(std_b, mean_b);
    if flat_a || flat_b {
        let d_sq = if flat_a && flat_b { 0.0 } else { l as f64 };
        return (d_sq <= threshold_sq).then_some(d_sq);
    }
    let inv_a = 1.0 / std_a;
    let inv_b = 1.0 / std_b;
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b) {
        let d = (x - mean_a) * inv_a - (y - mean_b) * inv_b;
        acc += d * d;
        if acc > threshold_sq {
            return None;
        }
    }
    Some(acc)
}

/// The paper's §3 length-normalisation: multiply a distance by `sqrt(1/ℓ)`
/// so motifs of different lengths become comparable (and the ranking no
/// longer has a bias toward either extreme of the length range).
#[inline]
pub fn length_normalize(dist: f64, l: usize) -> f64 {
    dist * (1.0 / l as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qt(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }

    fn mean_std(x: &[f64]) -> (f64, f64) {
        let l = x.len() as f64;
        let m = x.iter().sum::<f64>() / l;
        let v = x.iter().map(|&v| (v - m) * (v - m)).sum::<f64>() / l;
        (m, v.sqrt())
    }

    #[test]
    fn fast_path_matches_naive() {
        let a = [1.0, 3.0, 2.0, 5.0, 4.0, 4.5];
        let b = [0.2, -1.0, 0.8, 2.0, 1.5, 1.0];
        let (ma, sa) = mean_std(&a);
        let (mb, sb) = mean_std(&b);
        let fast = dist_from_qt(qt(&a, &b), a.len(), ma, sa, mb, sb);
        let slow = zdist_naive(&a, &b);
        assert!((fast - slow).abs() < 1e-10, "{fast} vs {slow}");
    }

    #[test]
    fn identical_shape_has_zero_distance() {
        let a = [1.0, 2.0, 4.0, 8.0];
        let b: Vec<f64> = a.iter().map(|v| v * 3.0 + 7.0).collect();
        assert!(zdist_naive(&a, &b) < 1e-9);
        let (ma, sa) = mean_std(&a);
        let (mb, sb) = mean_std(&b);
        assert!(dist_from_qt(qt(&a, &b), 4, ma, sa, mb, sb) < 1e-7);
    }

    #[test]
    fn anti_correlated_reaches_maximum() {
        let a = [1.0, -1.0, 1.0, -1.0];
        let b = [-1.0, 1.0, -1.0, 1.0];
        let d = zdist_naive(&a, &b);
        // Max distance is sqrt(4ℓ) = 4 for ℓ = 4.
        assert!((d - 4.0).abs() < 1e-9);
        let (ma, sa) = mean_std(&a);
        let (mb, sb) = mean_std(&b);
        assert!((dist_from_qt(qt(&a, &b), 4, ma, sa, mb, sb) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn flat_conventions_match_between_paths() {
        let flat = [2.0, 2.0, 2.0, 2.0];
        let wavy = [0.0, 1.0, 0.0, -1.0];
        // Naive: znorm(flat) = 0 ⇒ dist = sqrt(Σ z_wavy²) = sqrt(ℓ) = 2.
        assert!((zdist_naive(&flat, &wavy) - 2.0).abs() < 1e-9);
        let (mf, sf) = mean_std(&flat);
        let (mw, sw) = mean_std(&wavy);
        assert!((dist_from_qt(qt(&flat, &wavy), 4, mf, sf, mw, sw) - 2.0).abs() < 1e-9);
        // Both flat ⇒ 0.
        assert_eq!(zdist_naive(&flat, &[5.0; 4]), 0.0);
        assert_eq!(dist_from_qt(qt(&flat, &[5.0; 4]), 4, mf, sf, 5.0, 0.0), 0.0);
    }

    #[test]
    fn correlation_is_clamped() {
        // Rounding could push q epsilon-above 1; the distance must stay ≥ 0.
        let q = correlation(100.0, 4, 0.0, 1.0, 0.0, 1.0);
        assert_eq!(q, 1.0);
        let q = correlation(-100.0, 4, 0.0, 1.0, 0.0, 1.0);
        assert_eq!(q, -1.0);
    }

    #[test]
    fn early_abandon_agrees_when_not_abandoning() {
        let a = [1.0, 3.0, 2.0, 5.0];
        let b = [4.0, 1.0, 2.5, 2.0];
        let (ma, sa) = mean_std(&a);
        let (mb, sb) = mean_std(&b);
        let full = zdist_naive(&a, &b);
        let got = zdist_sq_early_abandon(&a, &b, ma, sa, mb, sb, f64::INFINITY).unwrap();
        assert!((got.sqrt() - full).abs() < 1e-10);
    }

    #[test]
    fn early_abandon_abandons() {
        let a = [1.0, 3.0, 2.0, 5.0];
        let b = [4.0, 1.0, 2.5, 2.0];
        let (ma, sa) = mean_std(&a);
        let (mb, sb) = mean_std(&b);
        assert!(zdist_sq_early_abandon(&a, &b, ma, sa, mb, sb, 1e-6).is_none());
    }

    #[test]
    fn length_normalization_factor() {
        assert!((length_normalize(4.0, 16) - 1.0).abs() < 1e-12);
        assert_eq!(length_normalize(0.0, 5), 0.0);
    }
}
