//! STOMP (Zhu et al., ICDM 2016; paper Algorithm 3 without the lower-bound
//! harvesting): the `O(n²)` matrix-profile computation with O(1) dot-product
//! row updates.
//!
//! [`stomp`] is the public entry point; since the diagonal-blocked rewrite
//! it delegates to [`crate::diagonal::stomp_diagonal_ws`], which is
//! bit-identical to the row traversal here but cache-friendly. The
//! row-by-row machinery stays as [`StompDriver`] / [`stomp_row`]: it is the
//! differential oracle for the diagonal kernel (`valmod-check`'s
//! `diagonal-vs-row`) and the row streamer the chunked parallel harvest in
//! `valmod-core` builds on.

use valmod_data::error::Result;

use crate::context::ProfiledSeries;
use crate::distance_profile::{dp_from_qt_into, profile_min};
use crate::exclusion::ExclusionPolicy;
use crate::matrix_profile::MatrixProfile;

/// Streams the rows of the all-pairs distance matrix: row `i` is the
/// distance profile of `T_{i,ℓ}`, produced in `O(n)` after an `O(nℓ)`
/// directly-summed first row.
#[derive(Debug)]
pub struct StompDriver<'a> {
    ps: &'a ProfiledSeries,
    l: usize,
    policy: ExclusionPolicy,
    ndp: usize,
    /// `QT[j] = ⟨T_{row,ℓ}, T_{j,ℓ}⟩` for the *current* row (centred domain).
    qt: Vec<f64>,
    /// First-row dot products `⟨T_{0,ℓ}, T_{j,ℓ}⟩`, which by symmetry seed
    /// `QT[0]` of every later row.
    qt_first: Vec<f64>,
    next_row: usize,
}

impl<'a> StompDriver<'a> {
    /// Prepares a driver; computes the first-row dot products by direct
    /// summation — the same prefix-stable seeds the diagonal kernel uses
    /// ([`crate::distance_profile::seed_qt`]), so the two kernels keep
    /// chaining every cell from bit-identical starting points.
    pub fn new(ps: &'a ProfiledSeries, l: usize, policy: ExclusionPolicy) -> Result<Self> {
        let ndp = ps.require_pairs(l)?;
        let mut qt_first = Vec::new();
        crate::distance_profile::seed_qt_row_into(ps.centered(), l, ndp, &mut qt_first);
        Ok(StompDriver { ps, l, policy, ndp, qt: qt_first.clone(), qt_first, next_row: 0 })
    }

    /// Number of rows (= number of subsequences).
    #[inline]
    pub fn ndp(&self) -> usize {
        self.ndp
    }

    /// Subsequence length.
    #[inline]
    pub fn l(&self) -> usize {
        self.l
    }

    /// The exclusion policy in use.
    #[inline]
    pub fn policy(&self) -> &ExclusionPolicy {
        &self.policy
    }

    /// Dot products of the row most recently produced by
    /// [`StompDriver::next_row`] (centred domain).
    #[inline]
    pub fn qt(&self) -> &[f64] {
        &self.qt
    }

    /// Advances to the next row, filling `dp_out` with its distance profile
    /// (`+∞` inside the exclusion zone). Returns the row index, or `None`
    /// after the last row.
    pub fn next_row(&mut self, dp_out: &mut Vec<f64>) -> Option<usize> {
        if self.next_row >= self.ndp {
            return None;
        }
        let i = self.next_row;
        if i > 0 {
            // Paper Alg. 3 lines 10–12: update QT in place, descending j.
            let t = self.ps.centered();
            let l = self.l;
            for j in (1..self.ndp).rev() {
                self.qt[j] = self.qt[j - 1] - t[i - 1] * t[j - 1] + t[i + l - 1] * t[j + l - 1];
            }
            // Symmetry: QT_i[0] = ⟨T_0, T_i⟩ = qt_first[i].
            self.qt[0] = self.qt_first[i];
        }
        dp_from_qt_into(self.ps, &self.qt, i, self.l, &self.policy, dp_out);
        self.next_row += 1;
        Some(i)
    }
}

/// Computes the full matrix profile with STOMP (`O(n²)` time, `O(n)` space).
///
/// Runs the diagonal-blocked kernel ([`crate::diagonal`]) with a fresh
/// [`crate::workspace::Workspace`]; callers computing many profiles should
/// hold a workspace and use
/// [`stomp_diagonal_ws`](crate::diagonal::stomp_diagonal_ws) directly to
/// reuse FFT plans and buffers. Output is bit-identical to [`stomp_row`].
pub fn stomp(ps: &ProfiledSeries, l: usize, policy: ExclusionPolicy) -> Result<MatrixProfile> {
    let mut ws = crate::workspace::Workspace::new();
    crate::diagonal::stomp_diagonal_ws(ps, l, policy, &mut ws)
}

/// The row-by-row STOMP kernel: the pre-rewrite traversal, kept as the
/// differential oracle for the diagonal-blocked kernel.
pub fn stomp_row(ps: &ProfiledSeries, l: usize, policy: ExclusionPolicy) -> Result<MatrixProfile> {
    let mut driver = StompDriver::new(ps, l, policy)?;
    let ndp = driver.ndp();
    let mut mp = vec![f64::INFINITY; ndp];
    let mut ip = vec![usize::MAX; ndp];
    let mut dp = Vec::with_capacity(ndp);
    while let Some(i) = driver.next_row(&mut dp) {
        if let Some((j, d)) = profile_min(&dp) {
            mp[i] = d;
            ip[i] = j;
        }
    }
    Ok(MatrixProfile { l, mp, ip, exclusion_radius: policy.radius(l) })
}

/// Naive `O(n²ℓ)` matrix profile — the oracle for STOMP and STAMP.
pub fn matrix_profile_naive(
    ps: &ProfiledSeries,
    l: usize,
    policy: ExclusionPolicy,
) -> Result<MatrixProfile> {
    let ndp = ps.require_pairs(l)?;
    let mut mp = vec![f64::INFINITY; ndp];
    let mut ip = vec![usize::MAX; ndp];
    for i in 0..ndp {
        let dp = crate::distance_profile::self_distance_profile_naive(ps, i, l, &policy);
        if let Some((j, d)) = profile_min(&dp) {
            mp[i] = d;
            ip[i] = j;
        }
    }
    Ok(MatrixProfile { l, mp, ip, exclusion_radius: policy.radius(l) })
}

#[cfg(test)]
mod tests {
    use super::*;
    use valmod_data::generators::{plant_motif, random_walk};

    #[test]
    fn stomp_matches_naive_oracle() {
        let ps = ProfiledSeries::from_values(&random_walk(400, 7)).unwrap();
        for &l in &[8usize, 16, 50] {
            let fast = stomp(&ps, l, ExclusionPolicy::HALF).unwrap();
            let slow = matrix_profile_naive(&ps, l, ExclusionPolicy::HALF).unwrap();
            assert_eq!(fast.len(), slow.len());
            for i in 0..fast.len() {
                assert!(
                    (fast.mp[i] - slow.mp[i]).abs() < 1e-6,
                    "l={l} i={i}: {} vs {}",
                    fast.mp[i],
                    slow.mp[i]
                );
                // Nearest-neighbour index can legitimately differ on exact
                // ties; distances must agree.
            }
        }
    }

    #[test]
    fn stomp_finds_planted_motif() {
        let (series, planted) = plant_motif(3000, 64, 2, 0.001, 21);
        let ps = ProfiledSeries::from_values(&series).unwrap();
        let profile = stomp(&ps, 64, ExclusionPolicy::HALF).unwrap();
        let (a, b, d) = profile.motif_pair().unwrap();
        let mut expect = planted.offsets.clone();
        expect.sort_unstable();
        let mut got = [a, b];
        got.sort_unstable();
        // Allow a few samples of slack: the background may align slightly
        // better a step or two away.
        assert!(got[0].abs_diff(expect[0]) <= 2, "{got:?} vs {expect:?}");
        assert!(got[1].abs_diff(expect[1]) <= 2, "{got:?} vs {expect:?}");
        assert!(d < 1.0, "planted pair distance {d}");
    }

    #[test]
    fn driver_rows_match_one_shot_profiles() {
        let ps = ProfiledSeries::from_values(&random_walk(200, 3)).unwrap();
        let policy = ExclusionPolicy::HALF;
        let mut driver = StompDriver::new(&ps, 12, policy).unwrap();
        let mut dp = Vec::new();
        while let Some(i) = driver.next_row(&mut dp) {
            let direct = crate::distance_profile::self_distance_profile(&ps, i, 12, &policy);
            for (j, (a, b)) in dp.iter().zip(&direct).enumerate() {
                if a.is_finite() || b.is_finite() {
                    assert!((a - b).abs() < 1e-6, "row {i} col {j}: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn driver_qt_is_exact_dot_product() {
        let ps = ProfiledSeries::from_values(&random_walk(150, 9)).unwrap();
        let mut driver = StompDriver::new(&ps, 10, ExclusionPolicy::HALF).unwrap();
        let mut dp = Vec::new();
        let t = ps.centered().to_vec();
        while let Some(i) = driver.next_row(&mut dp) {
            for j in (0..driver.ndp()).step_by(37) {
                let direct: f64 = t[i..i + 10].iter().zip(&t[j..j + 10]).map(|(a, b)| a * b).sum();
                assert!(
                    (driver.qt()[j] - direct).abs() < 1e-6,
                    "row {i} col {j}: {} vs {direct}",
                    driver.qt()[j]
                );
            }
        }
    }

    #[test]
    fn profile_is_symmetric_in_distance_terms() {
        // mp[i] ≤ d(i, j) for every valid j — spot-check via the naive DP.
        let ps = ProfiledSeries::from_values(&random_walk(250, 5)).unwrap();
        let profile = stomp(&ps, 20, ExclusionPolicy::HALF).unwrap();
        for i in (0..profile.len()).step_by(17) {
            let dp = crate::distance_profile::self_distance_profile_naive(
                &ps,
                i,
                20,
                &ExclusionPolicy::HALF,
            );
            let true_min = dp.iter().cloned().fold(f64::INFINITY, f64::min);
            assert!((profile.mp[i] - true_min).abs() < 1e-6);
        }
    }

    #[test]
    fn too_short_series_is_rejected() {
        let ps = ProfiledSeries::from_values(&[1.0, 2.0, 3.0]).unwrap();
        assert!(stomp(&ps, 3, ExclusionPolicy::HALF).is_err());
    }

    #[test]
    fn fully_excluded_profile_is_infinite() {
        // Series barely longer than ℓ: with radius ℓ/2 every pair may be a
        // trivial match.
        let ps = ProfiledSeries::from_values(&random_walk(12, 2)).unwrap();
        let profile = stomp(&ps, 10, ExclusionPolicy::HALF).unwrap();
        assert!(profile.mp.iter().all(|d| d.is_infinite()));
        assert!(profile.motif_pair().is_none());
    }
}
