//! STAMP (Yeh et al., ICDM 2016): the anytime matrix-profile algorithm.
//!
//! STAMP evaluates one full distance profile per step via MASS, in a random
//! order, folding each profile into the running matrix profile *and* its
//! transpose (distance is symmetric). Stopping after `c·n` steps yields an
//! approximation that converges quickly in practice — the property the paper
//! cites when arguing that `O(n²)` profile computation is tenable (§2).

use valmod_data::error::Result;
use valmod_data::rng::Xoshiro256;

use crate::context::ProfiledSeries;
use crate::distance_profile::self_distance_profile;
use crate::exclusion::ExclusionPolicy;
use crate::matrix_profile::MatrixProfile;

/// Runs STAMP for at most `max_rows` rows (pass `usize::MAX` for the exact
/// profile). Row order is a seeded random permutation, making truncated runs
/// an unbiased anytime approximation.
pub fn stamp(
    ps: &ProfiledSeries,
    l: usize,
    policy: ExclusionPolicy,
    max_rows: usize,
    seed: u64,
) -> Result<MatrixProfile> {
    let ndp = ps.require_pairs(l)?;
    let mut order: Vec<usize> = (0..ndp).collect();
    let mut rng = Xoshiro256::seed_from_u64(seed);
    rng.shuffle(&mut order);

    let mut mp = vec![f64::INFINITY; ndp];
    let mut ip = vec![usize::MAX; ndp];
    for &i in order.iter().take(max_rows.min(ndp)) {
        let dp = self_distance_profile(ps, i, l, &policy);
        for (j, &d) in dp.iter().enumerate() {
            if !d.is_finite() {
                continue;
            }
            if d < mp[i] {
                mp[i] = d;
                ip[i] = j;
            }
            // Symmetric update: d(i, j) also bounds mp[j].
            if d < mp[j] {
                mp[j] = d;
                ip[j] = i;
            }
        }
    }
    Ok(MatrixProfile { l, mp, ip, exclusion_radius: policy.radius(l) })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stomp::stomp;
    use valmod_data::generators::random_walk;

    #[test]
    fn full_stamp_matches_stomp() {
        let ps = ProfiledSeries::from_values(&random_walk(300, 11)).unwrap();
        let a = stamp(&ps, 16, ExclusionPolicy::HALF, usize::MAX, 0).unwrap();
        let b = stomp(&ps, 16, ExclusionPolicy::HALF).unwrap();
        for i in 0..a.len() {
            assert!((a.mp[i] - b.mp[i]).abs() < 1e-6, "i={i}: {} vs {}", a.mp[i], b.mp[i]);
        }
    }

    #[test]
    fn truncated_stamp_upper_bounds_the_true_profile() {
        let ps = ProfiledSeries::from_values(&random_walk(400, 13)).unwrap();
        let exact = stomp(&ps, 20, ExclusionPolicy::HALF).unwrap();
        let approx = stamp(&ps, 20, ExclusionPolicy::HALF, 40, 7).unwrap();
        for i in 0..exact.len() {
            assert!(
                approx.mp[i] >= exact.mp[i] - 1e-7,
                "anytime estimate must never be below the true profile"
            );
        }
    }

    #[test]
    fn anytime_convergence_improves_with_rows() {
        let ps = ProfiledSeries::from_values(&random_walk(400, 17)).unwrap();
        let exact = stomp(&ps, 20, ExclusionPolicy::HALF).unwrap();
        let err = |approx: &MatrixProfile| -> f64 {
            approx
                .mp
                .iter()
                .zip(&exact.mp)
                .filter(|(a, e)| a.is_finite() && e.is_finite())
                .map(|(a, e)| a - e)
                .sum()
        };
        let coarse = stamp(&ps, 20, ExclusionPolicy::HALF, 20, 3).unwrap();
        let fine = stamp(&ps, 20, ExclusionPolicy::HALF, 200, 3).unwrap();
        assert!(err(&fine) <= err(&coarse), "more rows must not make STAMP worse");
    }

    #[test]
    fn zero_rows_yields_all_infinite() {
        let ps = ProfiledSeries::from_values(&random_walk(100, 1)).unwrap();
        let p = stamp(&ps, 10, ExclusionPolicy::HALF, 0, 0).unwrap();
        assert!(p.mp.iter().all(|d| d.is_infinite()));
    }
}
