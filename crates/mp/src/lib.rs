//! # valmod-mp
//!
//! Matrix-profile substrate for the VALMOD reproduction: z-normalised
//! distances (paper Eq. 3), distance profiles and MASS (Definition 2.4),
//! STOMP and the anytime STAMP (Definition 2.5), motif-pair and discord
//! extraction, and trivial-match exclusion zones.
//!
//! The hot path is the cache-friendly [`diagonal`]-blocked STOMP kernel,
//! backed by a reusable [`workspace::Workspace`] (scratch buffers + FFT plan
//! cache); the [`stomp::StompDriver`] row streamer remains as its
//! differential oracle and as the shared kernel for VALMOD's row-harvesting
//! `ComputeMatrixProfile` (in `valmod-core`). The two kernels are
//! bit-identical — `valmod-check` enforces it.
//!
//! ## Quick example
//!
//! ```
//! use valmod_data::generators::plant_motif;
//! use valmod_mp::{ExclusionPolicy, ProfiledSeries};
//! use valmod_mp::stomp::stomp;
//!
//! let (series, planted) = plant_motif(2_000, 64, 2, 0.001, 7);
//! let ps = ProfiledSeries::from_values(&series).unwrap();
//! let profile = stomp(&ps, 64, ExclusionPolicy::HALF).unwrap();
//! let (a, b, dist) = profile.motif_pair().unwrap();
//! // The planted pair is the motif.
//! assert!(dist < 1.0);
//! assert!(planted.offsets.iter().any(|&o| a.abs_diff(o) <= 2));
//! assert!(planted.offsets.iter().any(|&o| b.abs_diff(o) <= 2));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod context;
pub mod diagonal;
pub mod discord;
pub mod distance;
pub mod distance_profile;
pub mod exclusion;
pub mod extend;
pub mod join;
pub mod matrix_profile;
pub mod motif;
pub mod parallel;
pub mod stamp;
pub mod stomp;
pub mod streaming;
pub mod workspace;

pub use context::ProfiledSeries;
pub use diagonal::{
    diagonal_cells, diagonal_chunks, lex_update, merge_partial, stomp_diagonal_parallel_ws,
    stomp_diagonal_range_ws, stomp_diagonal_ws,
};
pub use discord::{top_discords, Discord};
pub use distance::{dist_from_qt, length_normalize, zdist_naive};
pub use distance_profile::{mass, self_distance_profile};
pub use exclusion::ExclusionPolicy;
pub use extend::{
    capture_cells, extend_cells, extend_profile, stomp_with_tail, stomp_with_tail_ws, TailState,
};
pub use join::{ab_join, closest_cross_pair};
pub use matrix_profile::MatrixProfile;
pub use motif::{top_motifs, MotifPair};
pub use parallel::{resolve_threads, stomp_parallel, stomp_parallel_with, stomp_rows};
pub use stamp::stamp;
pub use stomp::{stomp, stomp_row, StompDriver};
pub use streaming::StreamingProfile;
pub use workspace::{Workspace, DEFAULT_BLOCK};
