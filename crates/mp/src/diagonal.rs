//! The diagonal-blocked STOMP kernel — the hot path of the whole stack.
//!
//! The classic row-by-row STOMP (kept as [`crate::stomp::stomp_row`], the
//! differential oracle) streams full `O(n)` rows: every row touches the
//! entire series and the entire statistics arrays, so at large `n` each row
//! update is a pass over memory that long since left cache. This kernel
//! traverses the distance matrix along *anti-diagonals* instead, in blocks
//! of [`Workspace::block`] adjacent diagonals:
//!
//! * On diagonal `k`, cell `(i, i+k)` follows from cell `(i−1, i+k−1)` by the
//!   same `O(1)` recurrence STOMP uses along a row — so a block of `B`
//!   diagonals needs only `B` in-flight QT values (seeded from the one
//!   directly-summed first row) plus a sliding window of the series and
//!   statistics: everything the inner loop touches stays in L1/L2.
//! * Each unordered pair `(i, j)` is visited exactly once (the matrix is
//!   symmetric), halving the arithmetic of the row kernel, and the
//!   symmetric min-update writes both `mp[i]` and `mp[j]`.
//! * The per-row QT update loop is branch-free over the block width and
//!   reads `t[j]` contiguously, so it auto-vectorises.
//!
//! ## Bit-identity with the row kernel
//!
//! The QT value of any cell chains back to the direct-sum first row through
//! the exact same left-associated update expression in both kernels (for the
//! lower triangle the two factor orders of each product are swapped, and
//! IEEE-754 multiplication commutes), and `dist_from_qt` is bitwise
//! symmetric in its two subsequences. Min-updates break distance ties
//! toward the smaller neighbour index — exactly the order
//! [`profile_min`](crate::distance_profile::profile_min) produces scanning a
//! row left to right. The `valmod-check` oracle `diagonal-vs-row` holds the
//! two kernels to bit-identical `mp` *and* `ip` arrays across every
//! generator family and block size.

use valmod_data::error::Result;
use valmod_obs::{Recorder, SharedRecorder};

use crate::context::ProfiledSeries;
use crate::distance::dist_from_qt;
use crate::exclusion::ExclusionPolicy;
use crate::matrix_profile::MatrixProfile;
use crate::parallel::resolve_threads;
use crate::workspace::Workspace;

/// Lexicographic `(distance, index)` min-update: `profile_min` keeps the
/// first index achieving the row minimum, i.e. ties resolve to the smaller
/// neighbour. The `is_finite` guard keeps never-updated slots at
/// `(∞, usize::MAX)` exactly like the row kernel leaves them. Public so the
/// fused harvesting traversal in `valmod-core` folds with the same rule.
#[inline(always)]
pub fn lex_update(mp: &mut f64, ip: &mut usize, d: f64, j: usize) {
    if d < *mp || (d == *mp && d.is_finite() && j < *ip) {
        *mp = d;
        *ip = j;
    }
}

/// Fills the workspace seeds for one kernel call: the direct-summation first
/// row (`qt_first[k] = ⟨T_0, T_k⟩`, see
/// [`seed_qt`](crate::distance_profile::seed_qt)) and the per-offset
/// statistics. Returns `ndp`.
///
/// The seeds are deliberately *not* FFT-computed: an FFT sliding dot product
/// is bit-sensitive to the transform size and therefore to `n`, while the
/// direct sum for diagonal `k` reads only `t[..l]` and `t[k..k+l]` — so a
/// series that grows by appends keeps every existing seed, which is what lets
/// the tail-extension path (`crate::extend`) continue the diagonal chains
/// bit-identically. The `O(nℓ)` seed cost is negligible against the `O(n²)`
/// traversal.
fn prepare_seeds(ps: &ProfiledSeries, l: usize, ws: &mut Workspace) -> Result<usize> {
    let ndp = ps.require_pairs(l)?;
    let t = ps.centered();
    let Workspace { qt_first, means, stds, .. } = ws;
    crate::distance_profile::seed_qt_row_into(t, l, ndp, qt_first);
    debug_assert_eq!(qt_first.len(), ndp);
    means.clear();
    means.extend((0..ndp).map(|i| ps.mean_c(i, l)));
    stds.clear();
    stds.extend((0..ndp).map(|i| ps.std(i, l)));
    Ok(ndp)
}

/// Streams every non-excluded cell of the upper triangle (`i < j`) to
/// `visit(i, j, qt, dist)`, traversing diagonals `radius..ndp` in blocks of
/// `ws.block()` and reusing the workspace buffers and FFT plans.
///
/// Within a fixed `i`, cells arrive in ascending `j`; for a fixed `j`, in
/// ascending `i` — so a lexicographic min-fold over the visits reproduces
/// the row kernel's profile exactly. Returns `ndp`.
pub fn diagonal_cells<F>(
    ps: &ProfiledSeries,
    l: usize,
    policy: &ExclusionPolicy,
    ws: &mut Workspace,
    mut visit: F,
) -> Result<usize>
where
    F: FnMut(usize, usize, f64, f64),
{
    let ndp = prepare_seeds(ps, l, ws)?;
    ws.note_use();
    let block = ws.block();
    let t = ps.centered();
    let Workspace { qt_first, diag, means, stds, .. } = ws;
    let radius = policy.radius(l);

    let mut kb = radius;
    while kb < ndp {
        let bw = block.min(ndp - kb);
        diag.clear();
        diag.extend_from_slice(&qt_first[kb..kb + bw]);
        // The block is a trapezoid: diagonal kb+c holds rows 0..ndp-(kb+c).
        for i in 0..ndp - kb {
            let w = bw.min(ndp - kb - i);
            if i > 0 {
                // The STOMP recurrence along each diagonal (paper Alg. 3
                // lines 10–12, same expression and association as the row
                // kernel), contiguous in both t reads — vectorises.
                let (a, b) = (t[i - 1], t[i + l - 1]);
                for (c, q) in diag.iter_mut().enumerate().take(w) {
                    let j = i + kb + c;
                    *q = *q - a * t[j - 1] + b * t[j + l - 1];
                }
            }
            let (mean_i, std_i) = (means[i], stds[i]);
            for (c, &q) in diag.iter().enumerate().take(w) {
                let j = i + kb + c;
                let d = dist_from_qt(q, l, mean_i, std_i, means[j], stds[j]);
                visit(i, j, q, d);
            }
        }
        kb += bw;
    }
    Ok(ndp)
}

/// Number of diagonal blocks the blocked traversal of `ndp` subsequences
/// visits (for the `mp.diag.blocks` counter).
pub fn block_count(ndp: usize, radius: usize, block: usize) -> u64 {
    if radius >= ndp {
        0
    } else {
        ((ndp - radius).div_ceil(block.max(1))) as u64
    }
}

/// The sequential diagonal-blocked matrix profile, reusing `ws` across
/// calls. Bit-identical to [`crate::stomp::stomp_row`].
pub fn stomp_diagonal_ws(
    ps: &ProfiledSeries,
    l: usize,
    policy: ExclusionPolicy,
    ws: &mut Workspace,
) -> Result<MatrixProfile> {
    stomp_diagonal_with(ps, l, policy, ws, &SharedRecorder::noop())
}

/// [`stomp_diagonal_ws`] with instrumentation: block count into
/// `mp.diag.blocks`, workspace recycling into `mp.workspace.reuses`, and
/// FFT plan-cache traffic into `fft.plan_cache.hits`/`misses`.
pub fn stomp_diagonal_with(
    ps: &ProfiledSeries,
    l: usize,
    policy: ExclusionPolicy,
    ws: &mut Workspace,
    recorder: &SharedRecorder,
) -> Result<MatrixProfile> {
    let observe = recorder.enabled();
    let (hits0, misses0, reused) =
        (ws.plan_cache().hits(), ws.plan_cache().misses(), ws.uses() > 0);
    let ndp = ps.require_pairs(l)?;
    let mut mp = vec![f64::INFINITY; ndp];
    let mut ip = vec![usize::MAX; ndp];
    diagonal_cells(ps, l, &policy, ws, |i, j, _q, d| {
        lex_update(&mut mp[i], &mut ip[i], d, j);
        lex_update(&mut mp[j], &mut ip[j], d, i);
    })?;
    if observe {
        recorder.add("mp.diag.blocks", block_count(ndp, policy.radius(l), ws.block()));
        if reused {
            recorder.add("mp.workspace.reuses", 1);
        }
        recorder.add("fft.plan_cache.hits", ws.plan_cache().hits() - hits0);
        recorder.add("fft.plan_cache.misses", ws.plan_cache().misses() - misses0);
    }
    Ok(MatrixProfile { l, mp, ip, exclusion_radius: policy.radius(l) })
}

/// Splits diagonals `[radius, ndp)` into at most `threads` contiguous
/// `(k_start, k_end)` ranges of roughly equal *cell* count (diagonal `k`
/// holds `ndp − k` cells, so equal-width ranges would leave the first worker
/// with most of the work). Deterministic in its inputs.
pub fn diagonal_chunks(ndp: usize, radius: usize, threads: usize) -> Vec<(usize, usize)> {
    if radius >= ndp {
        return Vec::new();
    }
    let threads = resolve_threads(threads).clamp(1, ndp - radius);
    let total_cells: u64 = (radius..ndp).map(|k| (ndp - k) as u64).sum();
    let mut chunks = Vec::with_capacity(threads);
    let mut k = radius;
    let mut cells_left = total_cells;
    for worker in 0..threads {
        let target = cells_left.div_ceil((threads - worker) as u64);
        let start = k;
        let mut took = 0u64;
        while k < ndp && (took < target || k == start) {
            took += (ndp - k) as u64;
            k += 1;
        }
        cells_left -= took;
        if k > start {
            chunks.push((start, k));
        }
        if k >= ndp {
            break;
        }
    }
    debug_assert_eq!(chunks.last().map(|c| c.1), Some(ndp));
    chunks
}

/// Runs the blocked traversal over diagonals `[k_start, k_end)` only, with
/// caller-provided seed/statistics slices and a local QT buffer — the
/// per-worker body of the parallel kernel.
#[allow(clippy::too_many_arguments)]
fn diagonal_range_minfold(
    t: &[f64],
    l: usize,
    ndp: usize,
    qt_first: &[f64],
    means: &[f64],
    stds: &[f64],
    (k_start, k_end): (usize, usize),
    block: usize,
    mp: &mut [f64],
    ip: &mut [usize],
) {
    let mut diag = Vec::with_capacity(block.min(k_end - k_start));
    let mut kb = k_start;
    while kb < k_end {
        let bw = block.min(k_end - kb);
        diag.clear();
        diag.extend_from_slice(&qt_first[kb..kb + bw]);
        for i in 0..ndp - kb {
            let w = bw.min(ndp - kb - i);
            if i > 0 {
                let (a, b) = (t[i - 1], t[i + l - 1]);
                for (c, q) in diag.iter_mut().enumerate().take(w) {
                    let j = i + kb + c;
                    *q = *q - a * t[j - 1] + b * t[j + l - 1];
                }
            }
            let (mean_i, std_i) = (means[i], stds[i]);
            for (c, &q) in diag.iter().enumerate().take(w) {
                let j = i + kb + c;
                let d = dist_from_qt(q, l, mean_i, std_i, means[j], stds[j]);
                lex_update(&mut mp[i], &mut ip[i], d, j);
                lex_update(&mut mp[j], &mut ip[j], d, i);
            }
        }
        kb += bw;
    }
}

/// Computes the *partial* matrix profile contributed by diagonals
/// `[k_start, k_end)` alone: a full-length `(mp, ip)` pair where slots never
/// touched by this range stay at `(∞, usize::MAX)`. The range must lie within
/// `[policy.radius(l), ndp]` — out-of-range bounds are clamped, an empty
/// range yields the all-infinite profile.
///
/// This is the unit of distributed work: min-merging the partials of any
/// family of ranges that covers `[radius, ndp)` (overlaps and duplicates
/// included — the lexicographic min is idempotent) with [`merge_partial`]
/// reproduces [`stomp_diagonal_ws`] bit for bit.
pub fn stomp_diagonal_range_ws(
    ps: &ProfiledSeries,
    l: usize,
    policy: ExclusionPolicy,
    (k_start, k_end): (usize, usize),
    ws: &mut Workspace,
) -> Result<MatrixProfile> {
    let ndp = prepare_seeds(ps, l, ws)?;
    ws.note_use();
    let block = ws.block();
    let t = ps.centered();
    let radius = policy.radius(l);
    let mut mp = vec![f64::INFINITY; ndp];
    let mut ip = vec![usize::MAX; ndp];
    let (k_start, k_end) = (k_start.clamp(radius, ndp), k_end.clamp(radius, ndp));
    if k_start < k_end {
        let Workspace { qt_first, means, stds, .. } = ws;
        diagonal_range_minfold(
            t,
            l,
            ndp,
            qt_first,
            means,
            stds,
            (k_start, k_end),
            block,
            &mut mp,
            &mut ip,
        );
    }
    Ok(MatrixProfile { l, mp, ip, exclusion_radius: radius })
}

/// Lexicographically min-merges the partial profile `src` into `dst`
/// slot-by-slot. Because [`lex_update`] is associative, commutative, and
/// idempotent, merging any multiset of partials whose ranges cover the
/// diagonal span — in any order, with duplicates — yields the same bits as
/// the sequential kernel.
///
/// # Panics
/// If the two profiles have different lengths or subsequence lengths.
pub fn merge_partial(dst: &mut MatrixProfile, src: &MatrixProfile) {
    assert_eq!(dst.l, src.l, "merge_partial: subsequence length mismatch");
    assert_eq!(dst.len(), src.len(), "merge_partial: profile length mismatch");
    for i in 0..src.len() {
        lex_update(&mut dst.mp[i], &mut dst.ip[i], src.mp[i], src.ip[i]);
    }
}

/// The parallel diagonal-blocked matrix profile: diagonals are partitioned
/// into cell-balanced contiguous ranges, each worker min-folds into its own
/// full-length profile, and the per-worker profiles merge lexicographically.
///
/// The lexicographic `(distance, index)` min is associative and commutative,
/// so the result is bit-identical to the sequential kernel — and therefore
/// to the row kernel — for *any* thread count.
pub fn stomp_diagonal_parallel_ws(
    ps: &ProfiledSeries,
    l: usize,
    policy: ExclusionPolicy,
    threads: usize,
    ws: &mut Workspace,
) -> Result<MatrixProfile> {
    let ndp = prepare_seeds(ps, l, ws)?;
    ws.note_use();
    let block = ws.block();
    let t = ps.centered();
    let radius = policy.radius(l);
    let chunks = diagonal_chunks(ndp, radius, threads);
    let (qt_first, means, stds) = (&ws.qt_first, &ws.means, &ws.stds);

    let mut mp = vec![f64::INFINITY; ndp];
    let mut ip = vec![usize::MAX; ndp];
    if let [only] = chunks[..] {
        // One worker: fold straight into the output, no merge copy.
        diagonal_range_minfold(t, l, ndp, qt_first, means, stds, only, block, &mut mp, &mut ip);
    } else {
        let locals = std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .iter()
                .map(|&range| {
                    scope.spawn(move || {
                        let mut lmp = vec![f64::INFINITY; ndp];
                        let mut lip = vec![usize::MAX; ndp];
                        diagonal_range_minfold(
                            t, l, ndp, qt_first, means, stds, range, block, &mut lmp, &mut lip,
                        );
                        (lmp, lip)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("diagonal worker panicked"))
                .collect::<Vec<_>>()
        });
        for (lmp, lip) in locals {
            for i in 0..ndp {
                lex_update(&mut mp[i], &mut ip[i], lmp[i], lip[i]);
            }
        }
    }
    Ok(MatrixProfile { l, mp, ip, exclusion_radius: radius })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stomp::stomp_row;
    use valmod_data::generators::{plant_motif, random_walk, sine_mixture};

    fn assert_profiles_bit_identical(a: &MatrixProfile, b: &MatrixProfile, what: &str) {
        assert_eq!(a.len(), b.len(), "{what}: length");
        for i in 0..a.len() {
            assert_eq!(a.mp[i].to_bits(), b.mp[i].to_bits(), "{what}: mp[{i}]");
            assert_eq!(a.ip[i], b.ip[i], "{what}: ip[{i}]");
        }
    }

    #[test]
    fn diagonal_matches_row_kernel_bit_for_bit() {
        let ps = ProfiledSeries::from_values(&random_walk(500, 17)).unwrap();
        for l in [8usize, 16, 50] {
            let row = stomp_row(&ps, l, ExclusionPolicy::HALF).unwrap();
            let mut ws = Workspace::new();
            let diag = stomp_diagonal_ws(&ps, l, ExclusionPolicy::HALF, &mut ws).unwrap();
            assert_profiles_bit_identical(&diag, &row, &format!("l={l}"));
        }
    }

    #[test]
    fn block_width_does_not_change_a_single_bit() {
        let (series, _) = plant_motif(400, 30, 3, 0.01, 23);
        let ps = ProfiledSeries::from_values(&series).unwrap();
        let row = stomp_row(&ps, 30, ExclusionPolicy::HALF).unwrap();
        for block in [1usize, 3, 64, 10_000] {
            let mut ws = Workspace::with_block(block);
            let diag = stomp_diagonal_ws(&ps, 30, ExclusionPolicy::HALF, &mut ws).unwrap();
            assert_profiles_bit_identical(&diag, &row, &format!("block={block}"));
        }
    }

    #[test]
    fn workspace_reuse_across_lengths_does_not_change_results() {
        let series = sine_mixture(600, &[(0.03, 1.0), (0.011, 0.4)], 0.05, 3);
        let ps = ProfiledSeries::from_values(&series).unwrap();
        let mut ws = Workspace::new();
        for l in 10..40 {
            let reused = stomp_diagonal_ws(&ps, l, ExclusionPolicy::HALF, &mut ws).unwrap();
            let fresh =
                stomp_diagonal_ws(&ps, l, ExclusionPolicy::HALF, &mut Workspace::new()).unwrap();
            assert_profiles_bit_identical(&reused, &fresh, &format!("l={l}"));
        }
        assert!(ws.uses() > 1);
        // Direct seeding keeps the blocked kernel off the FFT entirely; the
        // plan cache is reserved for MASS/refinement paths.
        assert_eq!(ws.plan_cache().hits() + ws.plan_cache().misses(), 0);
    }

    #[test]
    fn parallel_is_bit_identical_for_any_thread_count() {
        let ps = ProfiledSeries::from_values(&random_walk(350, 31)).unwrap();
        let row = stomp_row(&ps, 24, ExclusionPolicy::HALF).unwrap();
        for threads in [1usize, 2, 3, 7, 16, 64] {
            let mut ws = Workspace::new();
            let par = stomp_diagonal_parallel_ws(&ps, 24, ExclusionPolicy::HALF, threads, &mut ws)
                .unwrap();
            assert_profiles_bit_identical(&par, &row, &format!("threads={threads}"));
        }
    }

    #[test]
    fn fully_excluded_series_yields_all_infinite() {
        let ps = ProfiledSeries::from_values(&random_walk(12, 2)).unwrap();
        let mut ws = Workspace::new();
        let p = stomp_diagonal_ws(&ps, 10, ExclusionPolicy::HALF, &mut ws).unwrap();
        assert!(p.mp.iter().all(|d| d.is_infinite()));
        assert!(p.ip.iter().all(|&j| j == usize::MAX));
    }

    #[test]
    fn diagonal_chunks_cover_exactly_once_and_balance_cells() {
        for (ndp, radius, threads) in
            [(100, 5, 4), (50, 49, 8), (300, 1, 3), (10, 12, 2), (64, 8, 64)]
        {
            let chunks = diagonal_chunks(ndp, radius, threads);
            if radius >= ndp {
                assert!(chunks.is_empty());
                continue;
            }
            let mut next = radius;
            for &(s, e) in &chunks {
                assert_eq!(s, next);
                assert!(e > s);
                next = e;
            }
            assert_eq!(next, ndp);
            // Cell balance: no chunk more than ~2x the mean.
            let cells: Vec<u64> =
                chunks.iter().map(|&(s, e)| (s..e).map(|k| (ndp - k) as u64).sum()).collect();
            let mean = cells.iter().sum::<u64>() / cells.len() as u64;
            for &c in &cells {
                assert!(c <= 2 * mean + (ndp as u64), "chunk {c} vs mean {mean}");
            }
        }
    }

    #[test]
    fn range_partials_merge_bit_identically_for_any_partition() {
        let ps = ProfiledSeries::from_values(&random_walk(320, 9)).unwrap();
        let l = 20usize;
        let policy = ExclusionPolicy::HALF;
        let full = stomp_row(&ps, l, policy).unwrap();
        let ndp = full.len();
        let radius = policy.radius(l);
        for parts in [1usize, 2, 3, 5, 11] {
            let chunks = diagonal_chunks(ndp, radius, parts);
            let mut ws = Workspace::new();
            let mut merged = MatrixProfile {
                l,
                mp: vec![f64::INFINITY; ndp],
                ip: vec![usize::MAX; ndp],
                exclusion_radius: radius,
            };
            // Merge in reverse order to exercise commutativity.
            for &range in chunks.iter().rev() {
                let partial = stomp_diagonal_range_ws(&ps, l, policy, range, &mut ws).unwrap();
                merge_partial(&mut merged, &partial);
            }
            assert_profiles_bit_identical(&merged, &full, &format!("parts={parts}"));
        }
    }

    #[test]
    fn duplicate_and_overlapping_ranges_are_harmless() {
        let ps = ProfiledSeries::from_values(&random_walk(200, 5)).unwrap();
        let l = 16usize;
        let policy = ExclusionPolicy::HALF;
        let full = stomp_row(&ps, l, policy).unwrap();
        let ndp = full.len();
        let radius = policy.radius(l);
        let mid = radius + (ndp - radius) / 2;
        let mut ws = Workspace::new();
        let mut merged = MatrixProfile {
            l,
            mp: vec![f64::INFINITY; ndp],
            ip: vec![usize::MAX; ndp],
            exclusion_radius: radius,
        };
        // First half twice (a redispatched shard), overlapping second half.
        for range in [(radius, mid), (radius, mid), (mid.saturating_sub(3), ndp)] {
            let partial = stomp_diagonal_range_ws(&ps, l, policy, range, &mut ws).unwrap();
            merge_partial(&mut merged, &partial);
        }
        assert_profiles_bit_identical(&merged, &full, "dup+overlap");
    }

    #[test]
    fn empty_and_clamped_ranges_yield_infinite_partials() {
        let ps = ProfiledSeries::from_values(&random_walk(100, 1)).unwrap();
        let mut ws = Workspace::new();
        let p = stomp_diagonal_range_ws(&ps, 10, ExclusionPolicy::HALF, (7, 7), &mut ws).unwrap();
        assert!(p.mp.iter().all(|d| d.is_infinite()));
        // A range entirely below the radius clamps to empty.
        let q = stomp_diagonal_range_ws(&ps, 10, ExclusionPolicy::HALF, (0, 2), &mut ws).unwrap();
        assert!(q.mp.iter().all(|d| d.is_infinite()));
    }

    #[test]
    fn block_count_matches_traversal() {
        assert_eq!(block_count(100, 5, 256), 1);
        assert_eq!(block_count(100, 5, 10), 10);
        assert_eq!(block_count(100, 5, 1), 95);
        assert_eq!(block_count(10, 12, 4), 0);
    }
}
