//! The matrix profile (paper Definition 2.5) and its index.

/// A matrix profile for one subsequence length: for each offset, the
/// z-normalised distance to its nearest non-trivial neighbour and that
/// neighbour's offset.
#[derive(Debug, Clone)]
pub struct MatrixProfile {
    /// Subsequence length ℓ.
    pub l: usize,
    /// `mp[i]` = distance from `T_{i,ℓ}` to its nearest neighbour
    /// (`+∞` when no valid neighbour exists).
    pub mp: Vec<f64>,
    /// `ip[i]` = offset of that nearest neighbour (`usize::MAX` when none).
    pub ip: Vec<usize>,
    /// The exclusion radius that was applied.
    pub exclusion_radius: usize,
}

impl MatrixProfile {
    /// Number of profile entries (`n − ℓ + 1`).
    #[inline]
    pub fn len(&self) -> usize {
        self.mp.len()
    }

    /// Whether the profile has no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.mp.is_empty()
    }

    /// The motif pair: the offset with the smallest profile value, its
    /// neighbour, and their distance. `None` if no finite entry exists.
    pub fn motif_pair(&self) -> Option<(usize, usize, f64)> {
        let mut best: Option<(usize, f64)> = None;
        for (i, &d) in self.mp.iter().enumerate() {
            if d.is_finite() && best.is_none_or(|(_, bd)| d < bd) {
                best = Some((i, d));
            }
        }
        best.map(|(i, d)| (i, self.ip[i], d))
    }

    /// The discord: the offset with the *largest* finite profile value (the
    /// subsequence farthest from everything else). `None` if no finite entry.
    pub fn discord(&self) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64)> = None;
        for (i, &d) in self.mp.iter().enumerate() {
            if d.is_finite() && best.is_none_or(|(_, bd)| d > bd) {
                best = Some((i, d));
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> MatrixProfile {
        MatrixProfile {
            l: 4,
            mp: vec![3.0, 1.0, f64::INFINITY, 2.0],
            ip: vec![3, 3, usize::MAX, 1],
            exclusion_radius: 2,
        }
    }

    #[test]
    fn motif_pair_is_global_minimum() {
        assert_eq!(profile().motif_pair(), Some((1, 3, 1.0)));
    }

    #[test]
    fn discord_is_largest_finite() {
        assert_eq!(profile().discord(), Some((0, 3.0)));
    }

    #[test]
    fn all_infinite_profile_has_no_motif() {
        let p = MatrixProfile {
            l: 4,
            mp: vec![f64::INFINITY; 3],
            ip: vec![usize::MAX; 3],
            exclusion_radius: 2,
        };
        assert!(p.motif_pair().is_none());
        assert!(p.discord().is_none());
    }
}
