//! Property tests for the query planner: however a sequence of overlapping
//! variable-length queries is decomposed into cached fragments and residual
//! segments, the composed payload must be byte-identical to a cold run on a
//! planner-less engine.

use proptest::prelude::*;
use valmod_data::generators::{plant_motif, random_walk};
use valmod_mp::ExclusionPolicy;
use valmod_serve::engine::{EngineConfig, QueryEngine, QueryKind, QuerySpec};

/// An engine with the fragment cache live and the result cache disabled, so
/// every query exercises the planner's fragment reuse path rather than the
/// whole-payload cache.
fn warm_engine() -> QueryEngine {
    QueryEngine::new(
        EngineConfig::builder()
            .workers(1)
            .queue_depth(16)
            .cache_bytes(0)
            .fragment_cache_bytes(8 << 20)
            .default_deadline(std::time::Duration::from_secs(300))
            .build()
            .unwrap(),
    )
}

/// A reference engine with no fragment budget and no result cache: every
/// query is an independent cold compute.
fn cold_engine() -> QueryEngine {
    QueryEngine::new(
        EngineConfig::builder()
            .workers(1)
            .queue_depth(16)
            .cache_bytes(0)
            .fragment_cache_bytes(0)
            .default_deadline(std::time::Duration::from_secs(300))
            .build()
            .unwrap(),
    )
}

fn spec(kind: u8, lo: usize, hi: usize) -> QuerySpec {
    QuerySpec {
        series: "s".into(),
        kind: if kind.is_multiple_of(2) {
            QueryKind::Motifs { top: 3 }
        } else {
            QueryKind::Discords { top: 2 }
        },
        l_min: lo,
        l_max: hi,
        p: 5,
        policy: ExclusionPolicy::HALF,
        deadline: None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random sequences of overlapping length ranges, alternating motif and
    /// discord queries, answer byte-identically on a fragment-reusing warm
    /// engine and on independent cold engines.
    #[test]
    fn planned_queries_match_cold_runs(
        series_kind in 0u8..2,
        seed in 0u64..200,
        queries in proptest::collection::vec((0u8..2, 8usize..40, 0usize..24), 2..5),
    ) {
        let values = match series_kind {
            0 => random_walk(260, seed),
            _ => plant_motif(260, 24, 2, 0.001, seed).0,
        };
        let warm = warm_engine();
        warm.load("s", values.clone(), &[], ExclusionPolicy::HALF, false).unwrap();

        for &(kind, lo, span) in &queries {
            let hi = (lo + span).min(64);
            let got = warm.query(spec(kind, lo, hi)).unwrap();
            prop_assert!(!got.cached);

            // A fresh engine with no caches at all is the oracle.
            let cold = cold_engine();
            cold.load("s", values.clone(), &[], ExclusionPolicy::HALF, false).unwrap();
            let want = cold.query(spec(kind, lo, hi)).unwrap();
            // compute_ms is wall-clock and may differ; everything the query
            // answers with — the body — must match byte for byte.
            prop_assert_eq!(
                got.payload.get("body").unwrap().encode(),
                want.payload.get("body").unwrap().encode(),
                "warm planner output diverged from a cold run for kind={} l in [{}, {}]",
                kind, lo, hi
            );
            prop_assert_eq!(got.payload.get("version"), want.payload.get("version"));
            cold.shutdown();
        }
        warm.shutdown();
    }
}
