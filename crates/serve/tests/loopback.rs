//! Loopback integration test: a real server on an ephemeral port, driven
//! through real TCP sockets, proving the acceptance criteria end to end —
//! cache-identical results, append-driven invalidation, busy-not-panic
//! under a full queue, and clean shutdown.

use std::net::TcpStream;
use std::time::Duration;

use valmod_data::generators::plant_motif;
use valmod_serve::engine::{EngineConfig, QueryEngine, QueryKind, QuerySpec};
use valmod_serve::{Client, Request, ServeError, Server, Value};

fn start_server(cfg: EngineConfig) -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
    let server = Server::bind("127.0.0.1:0", QueryEngine::new(cfg)).expect("bind ephemeral port");
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || server.run().expect("server run"));
    (addr, handle)
}

#[test]
fn full_protocol_roundtrip() {
    let (addr, server) = start_server(EngineConfig {
        workers: 2,
        queue_depth: 8,
        cache_bytes: 1 << 20,
        default_deadline: Duration::from_secs(60),
        ..EngineConfig::default()
    });
    let mut client =
        Client::with_timeouts(addr, Duration::from_secs(5), Duration::from_secs(120)).unwrap();
    client.ping().unwrap();

    // HELLO negotiates the protocol version and reports capabilities.
    let caps = client.hello(&["test-driver"]).unwrap();
    assert!(caps.contains(&"serve".to_string()), "server capabilities: {caps:?}");

    // LOAD with a hot length, keeping a holdout tail for APPEND.
    let (values, _) = plant_motif(1_200, 32, 2, 0.001, 23);
    let (head, tail) = values.split_at(1_000);
    let (version, len) = client.load("sensor", head.to_vec(), vec![32], false).unwrap();
    assert_eq!((version, len), (1, 1_000));
    // Reloading without replace is an explicit error, not a clobber.
    let err = client.load("sensor", head.to_vec(), vec![], false).unwrap_err();
    assert!(matches!(err, ServeError::SeriesExists(_)), "got {err:?}");

    // Cold query, then cached query: byte-identical results.
    let cold = client.motifs("sensor", 24, 40, 3).unwrap();
    assert_eq!(cold.cached, Some(false));
    let warm = client.motifs("sensor", 24, 40, 3).unwrap();
    assert_eq!(warm.cached, Some(true));
    assert_eq!(cold.result, warm.result, "cached result must be identical to the cold one");
    let motifs = cold.result.get("body").unwrap().get("motifs").unwrap().as_arr().unwrap();
    assert!(!motifs.is_empty());

    // APPEND bumps the version and invalidates the cached entry.
    let (version, len) = client.append("sensor", tail.to_vec()).unwrap();
    assert_eq!((version, len), (2, 1_200));
    let after = client.motifs("sensor", 24, 40, 3).unwrap();
    assert_eq!(after.cached, Some(false), "append must invalidate stale cache entries");
    assert_eq!(after.result.get("version").unwrap().as_usize(), Some(2));
    // ...and the recomputed result is itself cached again.
    assert_eq!(client.motifs("sensor", 24, 40, 3).unwrap().cached, Some(true));

    // The hot fixed-length path stayed live across the append.
    let hot = client.motifs("sensor", 32, 32, 1).unwrap();
    assert_eq!(hot.result.get("body").unwrap().get("source").unwrap().as_str(), Some("hot"));

    // Sets and discords answer over the same connection.
    let sets = client
        .roundtrip_value(
            &Value::parse(r#"{"cmd":"sets","name":"sensor","min":30,"max":34,"k":3,"p":8}"#)
                .unwrap(),
        )
        .unwrap();
    assert!(!sets.result.get("body").unwrap().get("sets").unwrap().as_arr().unwrap().is_empty());
    let discords = client
        .roundtrip_value(
            &Value::parse(r#"{"cmd":"discords","name":"sensor","min":30,"max":34,"p":8}"#).unwrap(),
        )
        .unwrap();
    assert!(discords.result.get("body").unwrap().get("discords").unwrap().as_arr().is_some());

    // A workload that defeats the lower bounds (random walk + noisy sine
    // tail, tiny p) to drive the engine through the full-recompute
    // fallback, so the observability section below has a fallback to show.
    let mut mixed = valmod_data::generators::random_walk(600, 1);
    mixed.extend_from_slice(&valmod_data::generators::sine_mixture(200, &[(0.1, 3.0)], 0.4, 2));
    client.load("mixed", mixed, vec![], false).unwrap();
    client
        .query(QuerySpec {
            series: "mixed".into(),
            kind: QueryKind::Motifs { top: 3 },
            l_min: 16,
            l_max: 48,
            p: 3,
            policy: valmod_mp::ExclusionPolicy::HALF,
            deadline: None,
        })
        .unwrap();

    // STATS reflects the story so far.
    let stats = client.stats().unwrap();
    let engine = stats.get("engine").unwrap();
    assert!(engine.get("queries").unwrap().as_usize().unwrap() >= 5);
    let cache = stats.get("cache").unwrap();
    assert!(cache.get("hits").unwrap().as_usize().unwrap() >= 2);
    assert!(cache.get("invalidated").unwrap().as_usize().unwrap() >= 1);
    let series = stats.get("series").unwrap().as_arr().unwrap();
    assert_eq!(series.len(), 2);
    let sensor = series.iter().find(|s| s.get("name").unwrap().as_str() == Some("sensor")).unwrap();
    assert_eq!(sensor.get("version").unwrap().as_usize(), Some(2));

    // The observability extension: the registry snapshot rides along in
    // "obs", reporting metrics from every layer of the stack.
    let obs = stats.get("obs").expect("STATS carries the obs registry snapshot");
    let counter = |key: &str| obs.get(key).and_then(Value::as_usize).unwrap_or(0);
    assert!(counter("serve.cache.hit") >= 2, "warm queries must show as cache hits");
    assert!(counter("serve.cache.miss") >= 1);
    assert!(counter("core.lb.fallback") >= 1, "the mixed workload must reach the fallback");
    assert!(counter("core.lb.valid_rows") > 0);
    assert!(counter("mp.stomp.rows") > 0);
    assert!(counter("serve.net.bytes_in") > 0);
    assert!(counter("serve.net.bytes_out") > 0);
    let wait = obs.get("serve.queue.wait_us").expect("queue wait histogram");
    assert!(wait.get("count").and_then(Value::as_usize).unwrap_or(0) > 0);
    assert!(wait.get("sum").unwrap().as_f64().unwrap() > 0.0);

    // A second STATS: per-command latencies are recorded after a command
    // finishes, so the first snapshot cannot contain its own stats timing.
    let stats = client.stats().unwrap();
    let obs = stats.get("obs").expect("obs snapshot");

    // Connection gauge: this client is connected right now.
    let active = obs.get("serve.conn.active").expect("connection gauge");
    assert!(active.as_f64().unwrap() >= 1.0, "one client is live, gauge says {active:?}");
    // Per-command latency histograms, keyed by cmd.
    for cmd in ["ping", "hello", "load", "append", "motifs", "sets", "discords", "stats"] {
        let hist = obs
            .get(&format!("serve.cmd.{cmd}_us"))
            .unwrap_or_else(|| panic!("missing per-command histogram for {cmd:?}"));
        assert!(
            hist.get("count").and_then(Value::as_usize).unwrap_or(0) > 0,
            "histogram for {cmd:?} must be nonzero"
        );
    }

    // Unknown series and malformed lines answer errors without dropping
    // the connection.
    let err = client.motifs("ghost", 16, 20, 1).unwrap_err();
    assert!(matches!(err, ServeError::UnknownSeries(_)), "got {err:?}");
    let err = client.roundtrip_value(&Value::str("not a request")).unwrap_err();
    assert!(matches!(err, ServeError::Protocol(_)));
    client.ping().unwrap();

    // Graceful shutdown: the server thread returns and the port closes.
    client.shutdown().unwrap();
    server.join().expect("server thread exits cleanly");
    assert!(TcpStream::connect(addr).is_err(), "port should be closed after graceful shutdown");
}

#[test]
fn full_queue_answers_busy_over_tcp() {
    let (addr, server) = start_server(EngineConfig {
        workers: 1,
        queue_depth: 1,
        cache_bytes: 0,
        default_deadline: Duration::from_secs(60),
        ..EngineConfig::default()
    });
    // Occupy the single worker from one connection...
    let sleeper = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        c.sleep(600, None).unwrap();
    });
    std::thread::sleep(Duration::from_millis(150));
    // ...fill the one queue slot from a second...
    let queued = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        c.sleep(1, None).unwrap();
    });
    std::thread::sleep(Duration::from_millis(150));
    // ...and observe load shedding on a third.
    let mut c = Client::connect(addr).unwrap();
    let err = c.sleep(1, None).unwrap_err();
    assert!(matches!(err, ServeError::Busy), "expected busy, got {err:?}");
    sleeper.join().unwrap();
    queued.join().unwrap();

    // A deadline shorter than the queue wait is reported as such.
    let slow = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        c.sleep(400, None).unwrap();
    });
    std::thread::sleep(Duration::from_millis(100));
    let err = c.sleep(1, Some(Duration::from_millis(50))).unwrap_err();
    assert!(matches!(err, ServeError::DeadlineExceeded), "expected deadline, got {err:?}");
    slow.join().unwrap();

    let mut shut = Client::connect(addr).unwrap();
    shut.request(&Request::Shutdown).unwrap();
    server.join().expect("clean shutdown after shedding load");
}

#[test]
fn durable_server_recovers_series_across_restart() {
    let dir = std::env::temp_dir().join(format!("valmod_loopback_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = EngineConfig {
        workers: 1,
        queue_depth: 8,
        cache_bytes: 1 << 20,
        data_dir: Some(dir.clone()),
        ..EngineConfig::default()
    };
    let (values, _) = plant_motif(1_000, 32, 2, 0.001, 31);
    let (head, tail) = values.split_at(900);

    // First server generation: ingest, SAVE, query, graceful shutdown.
    let (addr, server) = start_server(cfg.clone());
    let mut client = Client::connect(addr).unwrap();
    client.load("sensor", head.to_vec(), vec![], false).unwrap();
    client.append("sensor", tail[..60].to_vec()).unwrap();
    assert_eq!(client.save().unwrap(), 1, "one series, one snapshot");
    client.append("sensor", tail[60..].to_vec()).unwrap();
    // Variable-length query: cold-computed on both sides of the restart.
    let before = client.motifs("sensor", 24, 40, 3).unwrap();
    client.shutdown().unwrap();
    server.join().expect("first generation exits cleanly");

    // Second generation over the same directory: the series is back —
    // version, length, and a byte-identical query body.
    let (addr, server) = start_server(cfg);
    let mut client = Client::connect(addr).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.get("persist").unwrap().get("enabled").unwrap().as_bool(), Some(true));
    let series = stats.get("series").unwrap().as_arr().unwrap();
    assert_eq!(series.len(), 1);
    assert_eq!(series[0].get("version").unwrap().as_usize(), Some(3));
    assert_eq!(series[0].get("len").unwrap().as_usize(), Some(1_000));
    let after = client.motifs("sensor", 24, 40, 3).unwrap();
    assert_eq!(after.cached, Some(false), "the cache does not survive a restart");
    assert_eq!(
        after.result.get("body"),
        before.result.get("body"),
        "recovered data must answer queries identically"
    );
    client.shutdown().unwrap();
    server.join().expect("second generation exits cleanly");
    let _ = std::fs::remove_dir_all(&dir);
}
