//! Loopback integration test: a real server on an ephemeral port, driven
//! through real TCP sockets, proving the acceptance criteria end to end —
//! cache-identical results, append-driven invalidation, single-flight
//! coalescing, busy-not-panic under a full queue, and clean shutdown.

use std::net::TcpStream;
use std::time::Duration;

use valmod_data::generators::plant_motif;
use valmod_serve::engine::{EngineConfig, QueryEngine, QueryKind, QuerySpec};
use valmod_serve::{Client, Request, ServeError, Server, Value};

fn start_server(cfg: EngineConfig) -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
    let server = Server::bind("127.0.0.1:0", QueryEngine::new(cfg)).expect("bind ephemeral port");
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || server.run().expect("server run"));
    (addr, handle)
}

#[test]
fn full_protocol_roundtrip() {
    let (addr, server) = start_server(
        EngineConfig::builder()
            .workers(2)
            .queue_depth(8)
            .cache_bytes(1 << 20)
            .default_deadline(Duration::from_secs(60))
            .build()
            .unwrap(),
    );
    let mut client =
        Client::with_timeouts(addr, Duration::from_secs(5), Duration::from_secs(120)).unwrap();
    client.ping().unwrap();

    // HELLO negotiates the protocol version and reports capabilities.
    let caps = client.hello(&["test-driver"]).unwrap();
    assert!(caps.contains(&"serve".to_string()), "server capabilities: {caps:?}");

    // LOAD with a hot length, keeping a holdout tail for APPEND.
    let (values, _) = plant_motif(1_200, 32, 2, 0.001, 23);
    let (head, tail) = values.split_at(1_000);
    let ack = client.load("sensor", head.to_vec(), vec![32], false).unwrap();
    assert_eq!((ack.name.as_str(), ack.version, ack.len), ("sensor", 1, 1_000));
    // Reloading without replace is an explicit error, not a clobber.
    let err = client.load("sensor", head.to_vec(), vec![], false).unwrap_err();
    assert!(matches!(err, ServeError::SeriesExists(_)), "got {err:?}");

    // Cold query, then cached query: identical typed bodies.
    let cold = client.motifs("sensor", 24, 40, 3).unwrap();
    assert!(!cold.cached && !cold.coalesced);
    let warm = client.motifs("sensor", 24, 40, 3).unwrap();
    assert!(warm.cached);
    assert_eq!(cold.body, warm.body, "cached result must be identical to the cold one");
    assert_eq!(cold.version, warm.version);
    assert!(!cold.body.motifs.is_empty());
    assert_eq!(cold.body.source, "cold");
    assert!(cold.body.motifs.iter().all(|m| (24..=40).contains(&m.l)));

    // APPEND bumps the version and invalidates the cached entry.
    let ack = client.append("sensor", tail.to_vec()).unwrap();
    assert_eq!((ack.version, ack.len), (2, 1_200));
    let after = client.motifs("sensor", 24, 40, 3).unwrap();
    assert!(!after.cached, "append must invalidate stale cache entries");
    assert_eq!(after.version, 2);
    // ...and the recomputed result is itself cached again.
    assert!(client.motifs("sensor", 24, 40, 3).unwrap().cached);

    // The hot fixed-length path stayed live across the append.
    let hot = client.motifs("sensor", 32, 32, 1).unwrap();
    assert_eq!(hot.body.source, "hot");

    // Sets and discords answer over the same connection, typed.
    let sets = client.sets("sensor", 30, 34, 3, 3.0).unwrap();
    assert!(!sets.body.sets.is_empty());
    for s in &sets.body.sets {
        assert_eq!(s.frequency, s.offsets.len());
        assert!(s.radius >= s.pair_dist);
    }
    let discords = client.discords("sensor", 30, 34, 3).unwrap();
    assert!(discords.body.discords.iter().all(|d| (30..=34).contains(&d.l)));

    // A workload that defeats the lower bounds (random walk + noisy sine
    // tail, tiny p) to drive the engine through the full-recompute
    // fallback, so the observability section below has a fallback to show.
    let mut mixed = valmod_data::generators::random_walk(600, 1);
    mixed.extend_from_slice(&valmod_data::generators::sine_mixture(200, &[(0.1, 3.0)], 0.4, 2));
    client.load("mixed", mixed, vec![], false).unwrap();
    client
        .query(QuerySpec {
            series: "mixed".into(),
            kind: QueryKind::Motifs { top: 3 },
            l_min: 16,
            l_max: 48,
            p: 3,
            policy: valmod_mp::ExclusionPolicy::HALF,
            deadline: None,
        })
        .unwrap();

    // STATS reflects the story so far.
    let stats = client.stats().unwrap();
    let engine = stats.get("engine").unwrap();
    assert!(engine.get("queries").unwrap().as_usize().unwrap() >= 5);
    let cache = stats.get("cache").unwrap();
    assert!(cache.get("hits").unwrap().as_usize().unwrap() >= 2);
    assert!(cache.get("invalidated").unwrap().as_usize().unwrap() >= 1);
    let series = stats.get("series").unwrap().as_arr().unwrap();
    assert_eq!(series.len(), 2);
    let sensor = series.iter().find(|s| s.get("name").unwrap().as_str() == Some("sensor")).unwrap();
    assert_eq!(sensor.get("version").unwrap().as_usize(), Some(2));

    // The observability extension: the registry snapshot rides along in
    // "obs", reporting metrics from every layer of the stack.
    let obs = stats.get("obs").expect("STATS carries the obs registry snapshot");
    let counter = |key: &str| obs.get(key).and_then(Value::as_usize).unwrap_or(0);
    assert!(counter("serve.cache.hit") >= 2, "warm queries must show as cache hits");
    assert!(counter("serve.cache.miss") >= 1);
    assert!(counter("core.lb.fallback") >= 1, "the mixed workload must reach the fallback");
    assert!(counter("core.lb.valid_rows") > 0);
    assert!(counter("mp.stomp.rows") > 0);
    assert!(counter("serve.net.bytes_in") > 0);
    assert!(counter("serve.net.bytes_out") > 0);
    let wait = obs.get("serve.queue.wait_us").expect("queue wait histogram");
    assert!(wait.get("count").and_then(Value::as_usize).unwrap_or(0) > 0);
    assert!(wait.get("sum").unwrap().as_f64().unwrap() > 0.0);

    // A second STATS: per-command latencies are recorded after a command
    // finishes, so the first snapshot cannot contain its own stats timing.
    let stats = client.stats().unwrap();
    let obs = stats.get("obs").expect("obs snapshot");

    // Connection gauge: this client is connected right now.
    let active = obs.get("serve.conn.active").expect("connection gauge");
    assert!(active.as_f64().unwrap() >= 1.0, "one client is live, gauge says {active:?}");
    // Per-command latency histograms, keyed by cmd.
    for cmd in ["ping", "hello", "load", "append", "motifs", "sets", "discords", "stats"] {
        let hist = obs
            .get(&format!("serve.cmd.{cmd}_us"))
            .unwrap_or_else(|| panic!("missing per-command histogram for {cmd:?}"));
        assert!(
            hist.get("count").and_then(Value::as_usize).unwrap_or(0) > 0,
            "histogram for {cmd:?} must be nonzero"
        );
    }

    // Unknown series and malformed lines answer errors without dropping
    // the connection.
    let err = client.motifs("ghost", 16, 20, 1).unwrap_err();
    assert!(matches!(err, ServeError::UnknownSeries(_)), "got {err:?}");
    let err = client.roundtrip_value(&Value::str("not a request")).unwrap_err();
    assert!(matches!(err, ServeError::Protocol(_)));
    client.ping().unwrap();

    // Graceful shutdown: the server thread returns and the port closes.
    client.shutdown().unwrap();
    server.join().expect("server thread exits cleanly");
    assert!(TcpStream::connect(addr).is_err(), "port should be closed after graceful shutdown");
}

#[test]
fn identical_concurrent_queries_coalesce_over_tcp() {
    let (addr, server) = start_server(
        EngineConfig::builder()
            .workers(2)
            .queue_depth(8)
            .cache_bytes(1 << 20)
            .default_deadline(Duration::from_secs(300))
            .build()
            .unwrap(),
    );
    let mut client =
        Client::with_timeouts(addr, Duration::from_secs(5), Duration::from_secs(300)).unwrap();
    let (values, _) = plant_motif(1_600, 32, 2, 0.001, 41);
    client.load("s", values, vec![], false).unwrap();

    // Fire the leader, then wait until its flight is registered before
    // firing the followers, so they deterministically attach to it.
    let leader = std::thread::spawn(move || {
        let mut c =
            Client::with_timeouts(addr, Duration::from_secs(5), Duration::from_secs(300)).unwrap();
        c.motifs("s", 16, 40, 3).unwrap()
    });
    let t0 = std::time::Instant::now();
    loop {
        let stats = client.stats().unwrap();
        let inflight = stats
            .get("planner")
            .and_then(|p| p.get("inflight"))
            .and_then(Value::as_usize)
            .unwrap_or(0);
        if inflight >= 1 {
            break;
        }
        assert!(t0.elapsed() < Duration::from_secs(60), "leader flight never registered");
        std::thread::sleep(Duration::from_millis(2));
    }
    let followers: Vec<_> = (0..3)
        .map(|_| {
            std::thread::spawn(move || {
                let mut c =
                    Client::with_timeouts(addr, Duration::from_secs(5), Duration::from_secs(300))
                        .unwrap();
                c.motifs("s", 16, 40, 3).unwrap()
            })
        })
        .collect();

    let lead = leader.join().unwrap();
    assert!(!lead.cached && !lead.coalesced);
    for follower in followers {
        let reply = follower.join().unwrap();
        assert!(reply.coalesced, "follower must carry the coalesced marker");
        assert!(!reply.cached);
        assert_eq!(reply.body, lead.body, "coalesced replies must match the leader");
        assert_eq!(reply.version, lead.version);
    }

    let stats = client.stats_typed().unwrap();
    assert_eq!(stats.computed, 1, "one compute serves all four queries");
    assert_eq!(stats.coalesced, 3, "three followers attached to the flight");
    let obs = stats.raw.get("obs").expect("obs snapshot");
    assert_eq!(obs.get("serve.query.coalesced").and_then(Value::as_usize), Some(3));

    client.shutdown().unwrap();
    server.join().expect("clean shutdown after coalescing");
}

#[test]
fn full_queue_answers_busy_over_tcp() {
    let (addr, server) = start_server(
        EngineConfig::builder()
            .workers(1)
            .queue_depth(1)
            .cache_bytes(0)
            .default_deadline(Duration::from_secs(60))
            .build()
            .unwrap(),
    );
    // Occupy the single worker from one connection...
    let sleeper = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        c.sleep(600, None).unwrap();
    });
    std::thread::sleep(Duration::from_millis(150));
    // ...fill the one queue slot from a second...
    let queued = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        c.sleep(1, None).unwrap();
    });
    std::thread::sleep(Duration::from_millis(150));
    // ...and observe load shedding on a third.
    let mut c = Client::connect(addr).unwrap();
    let err = c.sleep(1, None).unwrap_err();
    assert!(matches!(err, ServeError::Busy), "expected busy, got {err:?}");
    sleeper.join().unwrap();
    queued.join().unwrap();

    // A deadline shorter than the queue wait is reported as such.
    let slow = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        c.sleep(400, None).unwrap();
    });
    std::thread::sleep(Duration::from_millis(100));
    let err = c.sleep(1, Some(Duration::from_millis(50))).unwrap_err();
    assert!(matches!(err, ServeError::DeadlineExceeded), "expected deadline, got {err:?}");
    slow.join().unwrap();

    let mut shut = Client::connect(addr).unwrap();
    shut.request(&Request::Shutdown).unwrap();
    server.join().expect("clean shutdown after shedding load");
}

#[test]
fn durable_server_recovers_series_across_restart() {
    let dir = std::env::temp_dir().join(format!("valmod_loopback_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = EngineConfig::builder()
        .workers(1)
        .queue_depth(8)
        .cache_bytes(1 << 20)
        .data_dir(dir.clone())
        .build()
        .unwrap();
    let (values, _) = plant_motif(1_000, 32, 2, 0.001, 31);
    let (head, tail) = values.split_at(900);
    // Byte-identity matters across the restart, so drive this query through
    // the raw escape hatch and compare the encoded bodies verbatim.
    let spec = || QuerySpec {
        series: "sensor".into(),
        kind: QueryKind::Motifs { top: 3 },
        l_min: 24,
        l_max: 40,
        p: 50,
        policy: valmod_mp::ExclusionPolicy::HALF,
        deadline: None,
    };

    // First server generation: ingest, SAVE, query, graceful shutdown.
    let (addr, server) = start_server(cfg.clone());
    let mut client = Client::connect(addr).unwrap();
    client.load("sensor", head.to_vec(), vec![], false).unwrap();
    client.append("sensor", tail[..60].to_vec()).unwrap();
    assert_eq!(client.save().unwrap().snapshots, 1, "one series, one snapshot");
    client.append("sensor", tail[60..].to_vec()).unwrap();
    // Variable-length query: cold-computed on both sides of the restart.
    let before = client.query(spec()).unwrap();
    client.shutdown().unwrap();
    server.join().expect("first generation exits cleanly");

    // Second generation over the same directory: the series is back —
    // version, length, and a byte-identical query body.
    let (addr, server) = start_server(cfg);
    let mut client = Client::connect(addr).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.get("persist").unwrap().get("enabled").unwrap().as_bool(), Some(true));
    let series = stats.get("series").unwrap().as_arr().unwrap();
    assert_eq!(series.len(), 1);
    assert_eq!(series[0].get("version").unwrap().as_usize(), Some(3));
    assert_eq!(series[0].get("len").unwrap().as_usize(), Some(1_000));
    let after = client.query(spec()).unwrap();
    assert_eq!(after.cached, Some(false), "the cache does not survive a restart");
    assert_eq!(
        after.result.get("body"),
        before.result.get("body"),
        "recovered data must answer queries identically"
    );
    client.shutdown().unwrap();
    server.join().expect("second generation exits cleanly");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn append_on_one_series_does_not_block_queries_on_another() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let (addr, server) = start_server(
        EngineConfig::builder()
            .workers(2)
            .queue_depth(8)
            .cache_bytes(1 << 20)
            .default_deadline(Duration::from_secs(300))
            .build()
            .unwrap(),
    );
    let mut client =
        Client::with_timeouts(addr, Duration::from_secs(5), Duration::from_secs(300)).unwrap();

    // Series A is deliberately slow to ingest: three hot lengths mean every
    // appended point streams through three live profiles, so a large APPEND
    // holds A's series write lock for a long stretch. Under the old global
    // store lock that stretch stalled every other request; under striping it
    // must stall nothing but A.
    let slow = valmod_data::generators::random_walk(16_000, 7);
    client.load("slow_a", slow, vec![32, 64, 128], false).unwrap();
    let (fast, _) = plant_motif(1_200, 32, 2, 0.001, 19);
    client.load("fast_b", fast, vec![], false).unwrap();

    // The overlap is timing-dependent, so escalate the batch size until the
    // cold MOTIFS on B demonstrably finishes while A's APPEND is still
    // running. A's history also grows every round, making each retry slower.
    for round in 0..4u32 {
        let batch = valmod_data::generators::random_walk(4_000 << round, 100 + u64::from(round));
        let append_done = Arc::new(AtomicBool::new(false));
        let appender = {
            let done = Arc::clone(&append_done);
            std::thread::spawn(move || {
                let mut c =
                    Client::with_timeouts(addr, Duration::from_secs(5), Duration::from_secs(300))
                        .unwrap();
                let ack = c.append("slow_a", batch).unwrap();
                done.store(true, Ordering::SeqCst);
                ack
            })
        };
        // Head start so the APPEND is provably in flight when B's query lands.
        std::thread::sleep(Duration::from_millis(50));
        let t0 = std::time::Instant::now();
        // A fresh l-range each round keeps the query a cold compute.
        let reply = client.motifs("fast_b", 16, 40 + round as usize * 4, 3).unwrap();
        let latency = t0.elapsed();
        let overlapped = !append_done.load(Ordering::SeqCst);
        let ack = appender.join().unwrap();
        assert_eq!(ack.name, "slow_a");
        assert!(
            latency < Duration::from_secs(60),
            "query on an unrelated series took {latency:?} during an APPEND"
        );
        if overlapped {
            assert!(!reply.body.motifs.is_empty());
            client.shutdown().unwrap();
            server.join().expect("clean shutdown after the isolation proof");
            return;
        }
    }
    panic!("APPEND on slow_a finished before the query on fast_b in every round");
}
