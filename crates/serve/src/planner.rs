//! The variable-length query planner: decomposes a `[ℓ_min, ℓ_max]`
//! request into per-length fragment fetches plus residual segments, and
//! recomposes the final [`ValmodOutput`] from the fragments.
//!
//! ## Segment grid
//!
//! Fragments are shareable across queries only when different queries
//! produce *the same* fragment, and a fragment depends on the anchor
//! length its segment computed the full profile at. The planner therefore
//! aligns every segment after the first to a **canonical block grid**,
//! fixed once for all queries: blocks start at ℓ = 1 and each block's
//! width is `max(4, lo/2)` — `[1,4] [5,8] [9,12] [13,18] [19,27] [28,41]
//! [42,62] …`, widths growing geometrically (ratio → 1.5) so the
//! sub-MP advance chains stay short relative to their anchor and the
//! paper's lower-bound certification keeps working well.
//!
//! The **first** segment is the exception: it anchors at the query's own
//! ℓ_min (covering up to the end of ℓ_min's block), so the composed
//! VALMP's ℓ_min layer is a *complete* full profile — exactly what
//! Algorithm 1 guarantees — and a single-length query degenerates to one
//! full-profile segment, identical to the unplanned path.
//!
//! ## Determinism
//!
//! The plan is a pure function of `(ℓ_min, ℓ_max)`, and each fragment is a
//! pure function of `(series, version, anchor, ℓ, p, policy)` — see
//! [`valmod_core::Valmod::run_lengths_on`]. Replaying cached fragments
//! therefore composes a byte-identical body to recomputing every segment,
//! which is what the `valmod check` planner oracle proves under mixed
//! overlapping ranges.
//!
//! ## Lazy revalidation after APPEND
//!
//! An append bumps the series version, so every cached fragment stops
//! matching — but nothing is purged. On the next touch the planner first
//! garbage-collects the stale-watermarked fragments, then revives each
//! missed segment from its parked [`SegmentState`](valmod_core::SegmentState):
//! extend over the
//! appended tail (`O(k·n)`), replay, re-insert under the new version.
//! Extension is bit-identical to a cold recompute (the `valmod check`
//! extension oracle proves it), so revival is invisible to results —
//! only to latency. The ordering matters: staleness is judged against
//! the version captured *with* the batch view, so a concurrent append
//! can at worst leave extra stale entries for the next touch, never
//! serve them.

use std::sync::{Arc, Mutex};

use valmod_core::{compose_output, Valmod, ValmodOutput};
use valmod_mp::ProfiledSeries;
use valmod_obs::{Recorder, SharedRecorder};

use crate::error::ServeResult;
use crate::fragment::{FragmentCache, FragmentKey};

/// One planned segment: a full profile at `anchor` advanced to `hi`
/// (inclusive). The first segment of a plan anchors at the query's ℓ_min;
/// every later segment anchors at a canonical block start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// Anchor length (full-profile computation).
    pub anchor: usize,
    /// Last length of the segment (inclusive).
    pub hi: usize,
}

/// The canonical block `[lo, hi]` containing length `l` (`l ≥ 1`).
pub fn block_of(l: usize) -> (usize, usize) {
    let mut lo = 1usize;
    loop {
        let width = (lo / 2).max(4);
        let hi = lo + width - 1;
        if l <= hi {
            return (lo, hi);
        }
        lo = hi + 1;
    }
}

/// Decomposes `[l_min, l_max]` (inclusive, `l_min ≤ l_max`) into segments:
/// the first anchored at `l_min` to the end of its block, the rest aligned
/// to the canonical grid, all clipped to `l_max`.
pub fn plan_segments(l_min: usize, l_max: usize) -> Vec<Segment> {
    let (_, first_hi) = block_of(l_min);
    let mut segments = vec![Segment { anchor: l_min, hi: first_hi.min(l_max) }];
    let mut lo = first_hi + 1;
    while lo <= l_max {
        let (block_lo, block_hi) = block_of(lo);
        debug_assert_eq!(block_lo, lo, "grid walk must land on block starts");
        segments.push(Segment { anchor: lo, hi: block_hi.min(l_max) });
        lo = block_hi + 1;
    }
    segments
}

/// What one planned execution did (folded into `STATS` and obs counters).
#[derive(Debug, Default, Clone, Copy)]
pub struct PlanStats {
    /// Segments in the plan.
    pub segments: usize,
    /// Segments served whole from the fragment cache.
    pub segments_reused: usize,
    /// Per-length fragments served from the cache.
    pub fragments_cached: usize,
    /// Per-length fragments computed by this execution.
    pub fragments_computed: usize,
}

/// Executes a plan for the inclusive `lengths = (l_min, l_max)` range:
/// fetches each segment from the fragment cache or computes it via `runner`
/// (caching the result), then composes the fragments into a
/// [`ValmodOutput`]. `runner` supplies the per-length knobs (`p`, policy,
/// threads) and the recorder.
pub fn execute_plan(
    ps: &ProfiledSeries,
    series: &str,
    version: u64,
    runner: &Valmod,
    fragments: &Mutex<FragmentCache>,
    recorder: &SharedRecorder,
    lengths: (usize, usize),
) -> ServeResult<(ValmodOutput, PlanStats)> {
    let (l_min, l_max) = lengths;
    // Validate up front, exactly as the unplanned path does, so degenerate
    // ranges never reach the cache or the grid walk.
    let mut cfg = runner.config().clone();
    cfg.l_min = l_min;
    cfg.l_max = l_max;
    cfg.validate_for(ps.len())?;
    let _span = valmod_obs::span!(recorder, "serve.planner.plan_us");

    let policy = cfg.policy.reduced();
    let knobs = format!("p={};excl={}/{}", cfg.p, policy.num(), policy.den());
    let segments = plan_segments(l_min, l_max);
    let mut stats = PlanStats { segments: segments.len(), ..PlanStats::default() };
    let mut plan_fragments = Vec::with_capacity(l_max - l_min + 1);

    // Lazy GC: fragments watermarked with an older version are dead (their
    // version can never be queried again) but were deliberately not purged
    // at append time — collect them now, on the query path that owns the
    // cache lock anyway.
    fragments.lock().expect("fragment cache lock").invalidate_stale(series, version);

    for seg in &segments {
        let cached = fragments
            .lock()
            .expect("fragment cache lock")
            .get_segment(series, version, seg.anchor, seg.hi, &knobs);
        match cached {
            Some(frags) => {
                stats.segments_reused += 1;
                stats.fragments_cached += frags.len();
                recorder.add("serve.fragment.hit", frags.len() as u64);
                plan_fragments.extend(frags);
            }
            None => {
                let computed =
                    revive_or_compute(ps, series, seg, runner, fragments, recorder, &knobs)?;
                stats.fragments_computed += computed.len();
                recorder.add("serve.fragment.miss", computed.len() as u64);
                let mut cache = fragments.lock().expect("fragment cache lock");
                for lp in computed {
                    let key = FragmentKey {
                        series: series.into(),
                        version,
                        anchor: seg.anchor,
                        l: lp.l,
                        knobs: knobs.clone(),
                    };
                    let lp = Arc::new(lp);
                    cache.insert(key, Arc::clone(&lp));
                    plan_fragments.push(lp);
                }
            }
        }
    }
    recorder.add("serve.planner.segments_reused", stats.segments_reused as u64);
    recorder
        .add("serve.planner.segments_computed", (stats.segments - stats.segments_reused) as u64);

    let output = compose_output(plan_fragments.iter().map(|a| a.as_ref()))?;
    Ok((output, stats))
}

/// Produces one segment's fragments on a cache miss: revive the parked
/// [`SegmentState`] if one exists — extending it over any appended tail
/// first — and only fall back to a cold `O(n²)` segment run when there is
/// no state (or it cannot serve this series' current shape). Cold runs
/// capture a fresh state so the *next* append finds something to extend.
fn revive_or_compute(
    ps: &ProfiledSeries,
    series: &str,
    seg: &Segment,
    runner: &Valmod,
    fragments: &Mutex<FragmentCache>,
    recorder: &SharedRecorder,
    knobs: &str,
) -> ServeResult<Vec<valmod_core::LengthProfile>> {
    let parked =
        fragments.lock().expect("fragment cache lock").take_state(series, seg.anchor, knobs);
    if let Some(mut state) = parked {
        let current = if state.n() < ps.len() {
            let _span = valmod_obs::span!(recorder, "serve.fragment.revalidate_us");
            match state.extend(ps, recorder) {
                Ok(()) => {
                    recorder.add("serve.fragment.extended", 1);
                    fragments.lock().expect("fragment cache lock").note_extended();
                    true
                }
                // A frame mismatch can only mean the state predates a
                // replace that somehow escaped the purge; recompute.
                Err(_) => false,
            }
        } else {
            state.n() == ps.len()
        };
        if current {
            if let Ok(out) = state.replay(ps, seg.hi, recorder) {
                fragments
                    .lock()
                    .expect("fragment cache lock")
                    .put_state(series, seg.anchor, knobs, state);
                return Ok(out);
            }
        }
    }
    let (out, captured) = runner.run_lengths_capturing(ps, seg.anchor, seg.hi)?;
    if let Some(state) = captured {
        fragments.lock().expect("fragment cache lock").put_state(series, seg.anchor, knobs, state);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use valmod_data::generators::random_walk;
    use valmod_data::series::Series;

    #[test]
    fn the_grid_tiles_the_lengths_without_gaps() {
        let mut expected_lo = 1usize;
        for _ in 0..40 {
            let (lo, hi) = block_of(expected_lo);
            assert_eq!(lo, expected_lo);
            assert!(hi >= lo);
            // Widths grow, but never faster than +50% of the block start.
            assert_eq!(hi - lo + 1, (lo / 2).max(4));
            expected_lo = hi + 1;
        }
        // Every length maps into exactly the block that contains it.
        for l in 1..2000 {
            let (lo, hi) = block_of(l);
            assert!(lo <= l && l <= hi, "l={l} outside its block [{lo}, {hi}]");
        }
    }

    #[test]
    fn plans_cover_the_range_contiguously() {
        for (l_min, l_max) in [(1, 1), (16, 16), (16, 48), (100, 400), (7, 300), (41, 42)] {
            let segments = plan_segments(l_min, l_max);
            assert_eq!(segments[0].anchor, l_min, "first segment anchors at the query's ℓ_min");
            let mut next = l_min;
            for seg in &segments {
                assert_eq!(seg.anchor, next, "[{l_min},{l_max}]: gap before {seg:?}");
                assert!(seg.hi >= seg.anchor);
                next = seg.hi + 1;
            }
            assert_eq!(next, l_max + 1, "[{l_min},{l_max}] not fully covered");
            // Every non-first segment is grid-aligned (shareable).
            for seg in &segments[1..] {
                assert_eq!(block_of(seg.anchor).0, seg.anchor);
            }
        }
    }

    #[test]
    fn single_length_queries_are_one_full_profile_segment() {
        for l in [1, 16, 32, 100, 473] {
            assert_eq!(plan_segments(l, l), vec![Segment { anchor: l, hi: l }]);
        }
    }

    #[test]
    fn warm_plans_replay_bit_identically_and_hit_the_cache() {
        let series = Series::new(random_walk(400, 77)).unwrap();
        let ps = ProfiledSeries::new(&series);
        let runner = Valmod::new(1, 1).p(4);
        let fragments = Mutex::new(FragmentCache::new(1 << 20));
        let recorder = SharedRecorder::noop();
        let (cold, s1) =
            execute_plan(&ps, "s", 1, &runner, &fragments, &recorder, (16, 40)).unwrap();
        assert_eq!(s1.segments_reused, 0);
        assert!(s1.fragments_computed > 0);
        let (warm, s2) =
            execute_plan(&ps, "s", 1, &runner, &fragments, &recorder, (16, 40)).unwrap();
        assert_eq!(s2.segments_reused, s2.segments, "identical query reuses every segment");
        assert_eq!(s2.fragments_computed, 0);
        for (a, b) in cold.valmp.norm_distances.iter().zip(&warm.valmp.norm_distances) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(cold.valmp.indices, warm.valmp.indices);
        // An overlapping wider range reuses the grid-aligned interior but
        // recomputes its own ℓ_min-anchored head segment.
        let (_, s3) = execute_plan(&ps, "s", 1, &runner, &fragments, &recorder, (20, 40)).unwrap();
        assert!(s3.segments_reused > 0, "grid segments must be shared across queries");
        assert!(s3.fragments_computed > 0, "the head segment anchors at the new ℓ_min");
    }

    #[test]
    fn appended_series_extends_parked_states_instead_of_recomputing() {
        let series = random_walk(460, 77);
        let base = ProfiledSeries::from_values(&series[..400]).unwrap();
        let runner = Valmod::new(1, 1).p(4);
        let fragments = Mutex::new(FragmentCache::new(1 << 22));
        let recorder = SharedRecorder::noop();
        let (_, s1) =
            execute_plan(&base, "s", 1, &runner, &fragments, &recorder, (16, 40)).unwrap();
        assert!(s1.fragments_computed > 0);
        let parked = fragments.lock().unwrap().state_count();
        assert_eq!(parked, s1.segments, "every cold segment parks its state");

        // "Append": the same series grown by 60 samples in the pinned
        // frame, at the bumped version. Fragments all miss (old
        // watermark), but every segment revives from its parked state.
        let grown = ProfiledSeries::with_offset(&series, base.offset()).unwrap();
        let (warm, s2) =
            execute_plan(&grown, "s", 2, &runner, &fragments, &recorder, (16, 40)).unwrap();
        assert_eq!(s2.segments_reused, 0, "version bump misses every fragment");
        let cache = fragments.lock().unwrap();
        assert_eq!(cache.stats().extended, s2.segments as u64, "each segment extended in place");
        assert!(cache.stats().invalidated > 0, "stale fragments were lazily collected");
        drop(cache);

        // Revival must be invisible in the body: bit-identical to cold
        // segment runs over the same grown series.
        let mut cold_frags = Vec::new();
        for seg in plan_segments(16, 40) {
            cold_frags.extend(runner.run_lengths_on(&grown, seg.anchor, seg.hi).unwrap());
        }
        let cold = compose_output(cold_frags.iter()).unwrap();
        assert_eq!(warm.valmp.indices, cold.valmp.indices);
        assert_eq!(warm.valmp.lengths, cold.valmp.lengths);
        for (a, b) in warm.valmp.norm_distances.iter().zip(&cold.valmp.norm_distances) {
            assert_eq!(a.to_bits(), b.to_bits());
        }

        // And the revived fragments are cached: the same query is now warm.
        let (_, s3) =
            execute_plan(&grown, "s", 2, &runner, &fragments, &recorder, (16, 40)).unwrap();
        assert_eq!(s3.segments_reused, s3.segments);
    }

    #[test]
    fn degenerate_ranges_are_rejected_before_touching_the_cache() {
        let series = Series::new(random_walk(60, 3)).unwrap();
        let ps = ProfiledSeries::new(&series);
        let runner = Valmod::new(1, 1).p(4);
        let fragments = Mutex::new(FragmentCache::new(1 << 20));
        let recorder = SharedRecorder::noop();
        for (lo, hi) in [(0, 8), (20, 10), (16, 600)] {
            assert!(
                execute_plan(&ps, "s", 1, &runner, &fragments, &recorder, (lo, hi)).is_err(),
                "[{lo},{hi}] must be rejected"
            );
        }
        assert!(fragments.lock().unwrap().is_empty());
    }
}
