//! The named, versioned, **striped** series store.
//!
//! Each stored series carries a **version** that increments on every
//! append; result-cache keys embed the version, so a query result can
//! never be served against data it was not computed from. The counter is
//! **monotonic across replaces**: reloading a series under an existing
//! name continues from the previous version rather than resetting to 1,
//! so a cache entry keyed by an old generation can never alias a key from
//! the new one. Batch state (the [`ProfiledSeries`] with its O(1) rolling
//! statistics) is rebuilt lazily — at most once per version — while
//! **hot lengths** keep a [`StreamingProfile`] live across appends at
//! `O(n)` per point, so a fixed-length motif monitor never pays a batch
//! recomputation.
//!
//! ## Sharding
//!
//! The store is a hand-rolled striped map: series names hash into
//! [`stripe_of`] buckets, each bucket holding its own
//! `RwLock<HashMap<name, Arc<SeriesSlot>>>`, and every slot wraps its
//! [`StoredSeries`] in a **per-series** `RwLock`. Operations on different
//! series therefore never contend on a common lock — an APPEND on series
//! A cannot block a query on series B — and every method takes `&self`,
//! so the engine holds no outer lock at all. Lock order is strictly
//! stripe map → series lock; nothing is ever acquired in the other
//! direction.
//!
//! A slot additionally mirrors its `(version, len)` into atomics
//! (maintained by the store-level `load`/`append` paths), so `STATS` and
//! query admission read them without touching any series lock — a slow
//! append never stops the world.
//!
//! A replace must not race an in-flight append into a version collision:
//! the new generation's version is derived while holding the **old**
//! generation's write lock, the old slot is marked *retired* under that
//! same lock, and appenders re-check the flag after acquiring their write
//! lock — an appender that lost the race retries its lookup and lands on
//! the new generation.
//!
//! A store opened with [`SeriesStore::open`] is **durable**: loads and
//! WAL-compaction points write checksummed snapshots, every append batch
//! is logged (and fsynced) to a per-series WAL *before* it is applied in
//! memory, and reopening the same directory replays the log over the
//! latest snapshot — see [`crate::persist`] for formats and the
//! truncation policy. All persistence calls happen under the owning
//! series' write lock, which preserves the WAL-before-apply ordering
//! per series exactly as the single-lock store did.

use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

use valmod_data::stats::neumaier_sum;
use valmod_mp::{ExclusionPolicy, ProfiledSeries, StreamingProfile};
use valmod_obs::SharedRecorder;

use crate::error::{ServeError, ServeResult};
use crate::persist::{Persistence, SnapshotMeta};

/// Default stripe count for stores built without an explicit choice.
pub const DEFAULT_STRIPES: usize = 8;

/// The stripe a series name hashes into (FNV-1a over the name). Public so
/// the engine's per-stripe caches and the tests agree with the store on
/// placement.
pub fn stripe_of(name: &str, stripes: usize) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % stripes.max(1) as u64) as usize
}

/// One named series with its versioned derived state.
#[derive(Debug)]
pub struct StoredSeries {
    values: Vec<f64>,
    version: u64,
    /// Policy the hot profiles were seeded with (recorded in snapshots).
    policy: ExclusionPolicy,
    /// Centring offset **pinned at load time** (the mean of the loaded
    /// samples). Every batch view is built in this frame, so statistics and
    /// dot products over the original prefix stay bit-identical across
    /// appends — the property that makes incremental extension of cached
    /// fragments exact. Persisted in snapshots; a replace re-derives it.
    base_offset: f64,
    /// Lazily (re)built batch view; `None` whenever `values` has changed
    /// since the last build. `Arc` so workers can compute without holding
    /// the store lock.
    profiled: Option<Arc<ProfiledSeries>>,
    /// Live fixed-length profiles, extended incrementally on append.
    hot: HashMap<usize, StreamingProfile>,
    /// Set (under this series' write lock) when a replace supersedes this
    /// generation; an appender that acquires the write lock afterwards
    /// must retry its lookup instead of bumping a dead generation.
    retired: bool,
}

impl StoredSeries {
    fn new(
        values: Vec<f64>,
        hot_lengths: &[usize],
        policy: ExclusionPolicy,
        version: u64,
        base_offset: f64,
    ) -> ServeResult<Self> {
        validate_samples(&values, 0)?;
        let mut series = StoredSeries {
            values,
            version,
            policy,
            base_offset,
            profiled: None,
            hot: HashMap::new(),
            retired: false,
        };
        for &l in hot_lengths {
            series.track(l, policy)?;
        }
        Ok(series)
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the series holds no samples.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Current version (+1 per append batch; a replace continues the
    /// previous generation's counter instead of resetting).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Whether a replace has superseded this generation.
    pub fn retired(&self) -> bool {
        self.retired
    }

    /// The raw samples.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The exclusion policy hot profiles are seeded with.
    pub fn policy(&self) -> ExclusionPolicy {
        self.policy
    }

    /// The load-time centring offset every batch view is pinned to.
    pub fn base_offset(&self) -> f64 {
        self.base_offset
    }

    /// Registers a hot length: seeds a streaming profile from the current
    /// samples so subsequent appends keep it live.
    pub fn track(&mut self, l: usize, policy: ExclusionPolicy) -> ServeResult<()> {
        if self.hot.contains_key(&l) {
            return Ok(());
        }
        let sp = StreamingProfile::new(&self.values, l, policy)?;
        self.hot.insert(l, sp);
        Ok(())
    }

    /// The live profile at a hot length, if one is registered.
    pub fn hot_profile(&self, l: usize) -> Option<&StreamingProfile> {
        self.hot.get(&l)
    }

    /// The registered hot lengths, sorted.
    pub fn hot_lengths(&self) -> Vec<usize> {
        let mut ls: Vec<usize> = self.hot.keys().copied().collect();
        ls.sort_unstable();
        ls
    }

    /// Appends a batch of samples: bumps the version, extends every hot
    /// profile incrementally, and invalidates the lazily-built batch view.
    /// All-or-nothing — a non-finite sample rejects the whole batch and
    /// leaves every piece of state untouched.
    pub fn append(&mut self, samples: &[f64]) -> ServeResult<u64> {
        if samples.is_empty() {
            return Err(ServeError::InvalidParameter("append requires at least one sample".into()));
        }
        validate_samples(samples, self.values.len())?;
        for sp in self.hot.values_mut() {
            sp.extend(samples)?;
        }
        self.values.extend_from_slice(samples);
        self.version += 1;
        self.profiled = None;
        Ok(self.version)
    }

    /// The batch view of the current version, building it if the series
    /// changed since the last call. Returns the version alongside the view,
    /// captured atomically — cache entries must be keyed by exactly this
    /// version.
    pub fn profiled(&mut self) -> ServeResult<(Arc<ProfiledSeries>, u64)> {
        if self.profiled.is_none() {
            self.profiled =
                Some(Arc::new(ProfiledSeries::with_offset(&self.values, self.base_offset)?));
        }
        Ok((Arc::clone(self.profiled.as_ref().expect("just built")), self.version))
    }

    fn snapshot_meta(&self) -> SnapshotMeta {
        SnapshotMeta {
            version: self.version,
            policy: self.policy,
            hot_lengths: self.hot_lengths(),
            base_offset: self.base_offset,
        }
    }
}

/// One map entry: the per-series lock plus lock-free `(version, len)`
/// mirrors so `STATS` and admission probes never wait behind a mutation.
/// The mirrors are maintained by [`SeriesStore::load`] /
/// [`SeriesStore::append`]; mutating the inner [`StoredSeries`] directly
/// bypasses them.
#[derive(Debug)]
pub struct SeriesSlot {
    series: RwLock<StoredSeries>,
    version: AtomicU64,
    len: AtomicUsize,
    /// Hot lengths are fixed at load time for a generation (a replace
    /// swaps the whole slot), so STATS reads them without a lock.
    hot_lengths: Vec<usize>,
}

impl SeriesSlot {
    fn new(series: StoredSeries) -> Self {
        SeriesSlot {
            version: AtomicU64::new(series.version()),
            len: AtomicUsize::new(series.len()),
            hot_lengths: series.hot_lengths(),
            series: RwLock::new(series),
        }
    }

    /// Shared access to the series (readers of values / hot profiles).
    pub fn read(&self) -> RwLockReadGuard<'_, StoredSeries> {
        self.series.read().expect("series lock")
    }

    /// Exclusive access to the series (append, batch-view build).
    pub fn write(&self) -> RwLockWriteGuard<'_, StoredSeries> {
        self.series.write().expect("series lock")
    }

    /// Lock-free version mirror (exact after any store-level mutation).
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Lock-free length mirror.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    /// Whether the mirrored length is zero.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The generation's hot lengths, sorted (fixed at load time).
    pub fn hot_lengths(&self) -> &[usize] {
        &self.hot_lengths
    }

    /// Publishes a mutation into the lock-free mirrors. Called under the
    /// series write lock, so mirror order matches version order.
    fn note_mutation(&self, version: u64, len: usize) {
        self.len.store(len, Ordering::Release);
        self.version.store(version, Ordering::Release);
    }
}

/// The centring offset a fresh load pins: the mean of the loaded samples,
/// computed exactly as `RollingStats::new` derives it, so a freshly loaded
/// series profiles bit-identically to the un-pinned batch path.
fn derive_offset(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        neumaier_sum(values.iter().copied()) / values.len() as f64
    }
}

fn validate_samples(samples: &[f64], base_index: usize) -> ServeResult<()> {
    if let Some(bad) = samples.iter().position(|v| !v.is_finite()) {
        return Err(ServeError::NonFinite { index: base_index + bad });
    }
    Ok(())
}

#[derive(Debug, Default)]
struct Stripe {
    map: RwLock<HashMap<String, Arc<SeriesSlot>>>,
}

/// All series held by one engine, addressed by name, sharded across
/// [`stripe_of`] buckets. Every method takes `&self`; mutual exclusion is
/// per series (plus a short stripe-map lock for lookups and replaces).
/// Optionally durable: see [`SeriesStore::open`].
#[derive(Debug)]
pub struct SeriesStore {
    stripes: Box<[Stripe]>,
    persist: Option<Persistence>,
    /// `(file, why)` entries from recovery that were skipped rather than
    /// loaded (corrupt snapshot, orphan WAL). Empty for in-memory stores.
    skipped: Vec<(String, String)>,
}

impl Default for SeriesStore {
    fn default() -> Self {
        SeriesStore::with_stripes(DEFAULT_STRIPES)
    }
}

fn make_stripes(stripes: usize) -> Box<[Stripe]> {
    (0..stripes.max(1)).map(|_| Stripe::default()).collect()
}

impl SeriesStore {
    /// An empty, in-memory (non-durable) store with [`DEFAULT_STRIPES`].
    pub fn new() -> Self {
        SeriesStore::default()
    }

    /// An empty, in-memory store with an explicit stripe count (≥ 1).
    pub fn with_stripes(stripes: usize) -> Self {
        SeriesStore { stripes: make_stripes(stripes), persist: None, skipped: Vec::new() }
    }

    /// Opens a durable store over `dir` with [`DEFAULT_STRIPES`]; see
    /// [`SeriesStore::open_with_stripes`].
    pub fn open(
        dir: impl AsRef<Path>,
        compact_bytes: u64,
        recorder: &SharedRecorder,
    ) -> ServeResult<Self> {
        SeriesStore::open_with_stripes(dir, compact_bytes, DEFAULT_STRIPES, recorder)
    }

    /// Opens a durable store over `dir`, recovering every series found
    /// there: latest snapshot + WAL replay, with torn or corrupt WAL tails
    /// truncated rather than fatal (see [`crate::persist`]). `recorder`
    /// receives the recovery counters (`serve.wal.replayed_batches`,
    /// `serve.recovery.truncated_tails`); pass
    /// [`SharedRecorder::noop()`] when not observing.
    pub fn open_with_stripes(
        dir: impl AsRef<Path>,
        compact_bytes: u64,
        stripes: usize,
        recorder: &SharedRecorder,
    ) -> ServeResult<Self> {
        let persist = Persistence::open(dir.as_ref(), compact_bytes)?;
        let recovery = persist.recover()?;
        let store = SeriesStore {
            stripes: make_stripes(stripes),
            persist: Some(persist),
            skipped: recovery.skipped,
        };
        for rec in recovery.series {
            recorder.add("serve.wal.replayed_batches", rec.replayed_batches);
            if rec.truncated_tail {
                recorder.add("serve.recovery.truncated_tails", 1);
            }
            let series = StoredSeries::new(
                rec.values,
                &rec.hot_lengths,
                rec.policy,
                rec.version,
                rec.base_offset,
            )?;
            let stripe = &store.stripes[store.stripe_index(&rec.name)];
            stripe
                .map
                .write()
                .expect("stripe lock")
                .insert(rec.name, Arc::new(SeriesSlot::new(series)));
        }
        Ok(store)
    }

    /// Number of stripes in the table.
    pub fn stripe_count(&self) -> usize {
        self.stripes.len()
    }

    /// The stripe `name` hashes into.
    pub fn stripe_index(&self, name: &str) -> usize {
        stripe_of(name, self.stripes.len())
    }

    /// Whether the store persists to disk.
    pub fn is_durable(&self) -> bool {
        self.persist.is_some()
    }

    /// The data directory, when durable.
    pub fn data_dir(&self) -> Option<&Path> {
        self.persist.as_ref().map(Persistence::dir)
    }

    /// Files recovery skipped as unrecoverable, as `(file, why)` pairs.
    pub fn recovery_skipped(&self) -> &[(String, String)] {
        &self.skipped
    }

    /// Loads a series under `name`. Fails with [`ServeError::SeriesExists`]
    /// unless `replace` is set. A replace **continues** the previous
    /// generation's version counter (old version + 1) — derived under the
    /// old generation's write lock, which is also where the old slot is
    /// retired, so a racing append can neither bump past the new version
    /// nor resurrect the dead generation. Durable stores write a fresh
    /// snapshot (and reset the WAL) before the swap becomes visible.
    /// Records `serve.snapshot.writes` on `recorder`. Returns
    /// `(version, len)`.
    pub fn load(
        &self,
        name: &str,
        values: Vec<f64>,
        hot_lengths: &[usize],
        policy: ExclusionPolicy,
        replace: bool,
        recorder: &SharedRecorder,
    ) -> ServeResult<(u64, usize)> {
        if name.is_empty() {
            return Err(ServeError::Protocol("series name must be non-empty".into()));
        }
        let stripe = &self.stripes[self.stripe_index(name)];
        let mut map = stripe.map.write().expect("stripe lock");
        let previous = map.get(name).cloned();
        if previous.is_some() && !replace {
            return Err(ServeError::SeriesExists(name.to_string()));
        }
        // Hold the old generation's write lock across the swap: its version
        // is the replace's baseline, and no append may land in between.
        let mut old_guard = previous.as_ref().map(|slot| slot.write());
        let version = old_guard.as_ref().map_or(1, |old| old.version() + 1);
        let base_offset = derive_offset(&values);
        let series = StoredSeries::new(values, hot_lengths, policy, version, base_offset)?;
        if let Some(p) = &self.persist {
            p.write_snapshot(name, &series.snapshot_meta(), series.values())?;
            recorder.add("serve.snapshot.writes", 1);
        }
        if let Some(old) = old_guard.as_mut() {
            old.retired = true;
        }
        let len = series.len();
        map.insert(name.to_string(), Arc::new(SeriesSlot::new(series)));
        Ok((version, len))
    }

    /// Appends a batch to the series under `name`, write-ahead logging it
    /// first when durable: the record is on disk (fsynced) before any
    /// in-memory state changes, so an acknowledged append survives a crash
    /// at any later point. The whole sequence runs under the **series'**
    /// write lock only — appends to other series proceed in parallel.
    /// Past the compaction threshold the WAL is folded into a fresh
    /// snapshot. Records `serve.wal.appends` / `serve.snapshot.writes` on
    /// `recorder`. Returns `(version, len)`.
    pub fn append(
        &self,
        name: &str,
        samples: &[f64],
        recorder: &SharedRecorder,
    ) -> ServeResult<(u64, usize)> {
        if samples.is_empty() {
            return Err(ServeError::InvalidParameter("append requires at least one sample".into()));
        }
        loop {
            let slot = self.get(name)?;
            let mut series = slot.write();
            if series.retired() {
                // A replace swapped the slot between lookup and lock; the
                // next lookup lands on the new generation.
                continue;
            }
            // Validate before logging so a rejected batch never reaches the WAL.
            validate_samples(samples, series.len())?;
            if let Some(p) = &self.persist {
                p.log_append(name, series.version() + 1, samples)?;
                recorder.add("serve.wal.appends", 1);
            }
            let version = series.append(samples)?;
            let len = series.len();
            if let Some(p) = &self.persist {
                if p.wal_bytes(name) > p.compact_bytes() {
                    p.write_snapshot(name, &series.snapshot_meta(), series.values())?;
                    recorder.add("serve.snapshot.writes", 1);
                }
            }
            slot.note_mutation(version, len);
            return Ok((version, len));
        }
    }

    /// Snapshots every series to disk (and resets its WAL), bounding
    /// restart time. Each series is snapshotted under its own write lock —
    /// a per-series critical section, never a global pause. No-op
    /// returning 0 for in-memory stores; otherwise returns the number of
    /// snapshots written. Records `serve.snapshot.writes` on `recorder`.
    pub fn persist_all(&self, recorder: &SharedRecorder) -> ServeResult<usize> {
        let Some(p) = &self.persist else { return Ok(0) };
        let mut written = 0usize;
        for stripe in self.stripes.iter() {
            let slots: Vec<(String, Arc<SeriesSlot>)> = stripe
                .map
                .read()
                .expect("stripe lock")
                .iter()
                .map(|(k, v)| (k.clone(), Arc::clone(v)))
                .collect();
            for (name, slot) in slots {
                let series = slot.write();
                if series.retired() {
                    // Replaced since the listing; the new generation wrote
                    // its own snapshot at load time.
                    continue;
                }
                p.write_snapshot(&name, &series.snapshot_meta(), series.values())?;
                written += 1;
            }
        }
        recorder.add("serve.snapshot.writes", written as u64);
        Ok(written)
    }

    /// The slot under `name` (clone of the shared handle; lock its series
    /// via [`SeriesSlot::read`] / [`SeriesSlot::write`]).
    pub fn get(&self, name: &str) -> ServeResult<Arc<SeriesSlot>> {
        let stripe = &self.stripes[self.stripe_index(name)];
        stripe
            .map
            .read()
            .expect("stripe lock")
            .get(name)
            .cloned()
            .ok_or_else(|| ServeError::UnknownSeries(name.to_string()))
    }

    /// Number of stored series.
    pub fn len(&self) -> usize {
        self.stripes.iter().map(|s| s.map.read().expect("stripe lock").len()).sum()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Names in sorted order (stable STATS output).
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .stripes
            .iter()
            .flat_map(|s| s.map.read().expect("stripe lock").keys().cloned().collect::<Vec<_>>())
            .collect();
        names.sort_unstable();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use valmod_data::generators::random_walk;
    use valmod_mp::stomp::stomp;

    fn noop() -> SharedRecorder {
        SharedRecorder::noop()
    }

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("valmod_store_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn load_append_versions() {
        let store = SeriesStore::new();
        let values = random_walk(200, 5);
        store.load("a", values.clone(), &[], ExclusionPolicy::HALF, false, &noop()).unwrap();
        assert_eq!(store.get("a").unwrap().version(), 1);
        assert!(store
            .load("a", values.clone(), &[], ExclusionPolicy::HALF, false, &noop())
            .is_err());

        let (v, len) = store.append("a", &[1.0, 2.0], &noop()).unwrap();
        assert_eq!((v, len), (2, 202));
        assert_eq!(store.get("a").unwrap().len(), 202);
        assert!(store.get("missing").is_err());
        assert!(store.append("missing", &[1.0], &noop()).is_err());
    }

    #[test]
    fn replace_continues_the_version_counter() {
        // Regression: replace used to reset the version to 1, so a query
        // admitted against the old generation could insert a cache entry
        // under `(name, version=1, cfg)` that the new generation's first
        // version would then serve stale. The counter must be monotonic.
        let store = SeriesStore::new();
        store.load("a", random_walk(200, 5), &[], ExclusionPolicy::HALF, false, &noop()).unwrap();
        store.append("a", &[1.0], &noop()).unwrap();
        store.append("a", &[2.0], &noop()).unwrap();
        assert_eq!(store.get("a").unwrap().version(), 3);

        store.load("a", random_walk(150, 9), &[], ExclusionPolicy::HALF, true, &noop()).unwrap();
        assert_eq!(
            store.get("a").unwrap().version(),
            4,
            "replace must continue the version counter, not reset it"
        );
        // And every later generation stays ahead of anything seen before.
        store.load("a", random_walk(150, 2), &[], ExclusionPolicy::HALF, true, &noop()).unwrap();
        assert_eq!(store.get("a").unwrap().version(), 5);
    }

    #[test]
    fn replace_retires_the_old_generation() {
        let store = SeriesStore::new();
        store.load("a", random_walk(120, 5), &[], ExclusionPolicy::HALF, false, &noop()).unwrap();
        let old = store.get("a").unwrap();
        store.load("a", random_walk(90, 7), &[], ExclusionPolicy::HALF, true, &noop()).unwrap();
        assert!(old.read().retired(), "the replaced slot must be marked retired");
        assert!(!store.get("a").unwrap().read().retired());
        // An append through the store lands on the live generation even if
        // a stale handle is still around.
        let (v, _) = store.append("a", &[0.5], &noop()).unwrap();
        assert_eq!(v, 3);
        assert_eq!(old.read().version(), 1, "the dead generation never advances");
    }

    #[test]
    fn append_is_atomic_under_bad_input() {
        let store = SeriesStore::new();
        store.load("a", random_walk(120, 6), &[16], ExclusionPolicy::HALF, false, &noop()).unwrap();
        let err = store.append("a", &[1.0, f64::NAN], &noop()).unwrap_err();
        assert!(matches!(err, ServeError::NonFinite { index: 121 }));
        let slot = store.get("a").unwrap();
        let s = slot.read();
        assert_eq!(s.version(), 1);
        assert_eq!(s.len(), 120);
        assert_eq!(s.hot_profile(16).unwrap().len(), 120);
        drop(s);
        assert!(store.append("a", &[], &noop()).is_err());
        assert_eq!(store.get("a").unwrap().version(), 1);
    }

    #[test]
    fn hot_profile_tracks_appends_and_matches_batch() {
        let series = random_walk(300, 7);
        let store = SeriesStore::new();
        store
            .load("a", series[..200].to_vec(), &[20], ExclusionPolicy::HALF, false, &noop())
            .unwrap();
        store.append("a", &series[200..], &noop()).unwrap();

        let slot = store.get("a").unwrap();
        assert_eq!(slot.hot_lengths(), &[20]);
        let entry = slot.read();
        let hot = entry.hot_profile(20).unwrap().profile();
        let ps = ProfiledSeries::from_values(&series).unwrap();
        let batch = stomp(&ps, 20, ExclusionPolicy::HALF).unwrap();
        for i in 0..batch.len() {
            if batch.mp[i].is_finite() {
                assert!((hot.mp[i] - batch.mp[i]).abs() < 1e-6, "row {i}");
            }
        }
    }

    #[test]
    fn profiled_is_cached_per_version() {
        let store = SeriesStore::new();
        store.load("a", random_walk(150, 8), &[], ExclusionPolicy::HALF, false, &noop()).unwrap();
        let slot = store.get("a").unwrap();
        let mut s = slot.write();
        let (p1, v1) = s.profiled().unwrap();
        let (p2, v2) = s.profiled().unwrap();
        assert!(Arc::ptr_eq(&p1, &p2));
        assert_eq!((v1, v2), (1, 1));
        s.append(&[0.5]).unwrap();
        let (p3, v3) = s.profiled().unwrap();
        assert!(!Arc::ptr_eq(&p1, &p3));
        assert_eq!(v3, 2);
        assert_eq!(p3.len(), 151);
    }

    #[test]
    fn slot_mirrors_track_store_level_mutations_lock_free() {
        let store = SeriesStore::new();
        store.load("a", random_walk(100, 3), &[], ExclusionPolicy::HALF, false, &noop()).unwrap();
        let slot = store.get("a").unwrap();
        assert_eq!((slot.version(), slot.len()), (1, 100));
        store.append("a", &[1.0, 2.0, 3.0], &noop()).unwrap();
        assert_eq!((slot.version(), slot.len()), (2, 103));
        // The mirrors agree with the locked truth.
        let s = slot.read();
        assert_eq!((s.version(), s.len()), (2, 103));
    }

    #[test]
    fn names_are_striped_but_listed_sorted() {
        let store = SeriesStore::with_stripes(4);
        for name in ["zeta", "alpha", "mid", "beta"] {
            store
                .load(name, random_walk(64, 1), &[], ExclusionPolicy::HALF, false, &noop())
                .unwrap();
        }
        assert_eq!(store.len(), 4);
        assert_eq!(store.names(), vec!["alpha", "beta", "mid", "zeta"]);
        for name in ["zeta", "alpha", "mid", "beta"] {
            assert!(store.stripe_index(name) < store.stripe_count());
            assert_eq!(store.stripe_index(name), stripe_of(name, 4));
        }
    }

    #[test]
    fn concurrent_appends_to_distinct_series_stay_isolated() {
        let store = Arc::new(SeriesStore::with_stripes(4));
        for name in ["a", "b", "c", "d"] {
            store
                .load(name, random_walk(50, 11), &[], ExclusionPolicy::HALF, false, &noop())
                .unwrap();
        }
        let handles: Vec<_> = ["a", "b", "c", "d"]
            .into_iter()
            .map(|name| {
                let store = Arc::clone(&store);
                std::thread::spawn(move || {
                    for i in 0..50 {
                        store.append(name, &[i as f64], &noop()).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        for name in ["a", "b", "c", "d"] {
            let slot = store.get(name).unwrap();
            assert_eq!(slot.version(), 51);
            assert_eq!(slot.len(), 100);
        }
    }

    #[test]
    fn durable_store_round_trips_bit_for_bit() {
        let dir = tmp_dir("roundtrip");
        let series = random_walk(256, 11);
        {
            let store = SeriesStore::open(&dir, 4 << 20, &noop()).unwrap();
            assert!(store.is_durable());
            assert!(store.is_empty());
            store
                .load("s", series[..200].to_vec(), &[16], ExclusionPolicy::HALF, false, &noop())
                .unwrap();
            store.append("s", &series[200..230], &noop()).unwrap();
            store.append("s", &series[230..], &noop()).unwrap();
        }
        let store = SeriesStore::open(&dir, 4 << 20, &noop()).unwrap();
        assert!(store.recovery_skipped().is_empty());
        let slot = store.get("s").unwrap();
        let s = slot.read();
        assert_eq!(s.version(), 3);
        assert_eq!(s.len(), series.len());
        for (a, b) in s.values().iter().zip(&series) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(s.hot_lengths(), vec![16]);
        assert_eq!(s.policy(), ExclusionPolicy::HALF);
        drop(s);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn durable_replace_survives_restart_with_monotonic_version() {
        let dir = tmp_dir("replace");
        {
            let store = SeriesStore::open(&dir, 4 << 20, &noop()).unwrap();
            store
                .load("s", random_walk(128, 3), &[], ExclusionPolicy::HALF, false, &noop())
                .unwrap();
            store.append("s", &[1.0], &noop()).unwrap();
            store
                .load("s", random_walk(64, 4), &[], ExclusionPolicy::QUARTER, true, &noop())
                .unwrap();
        }
        let store = SeriesStore::open(&dir, 4 << 20, &noop()).unwrap();
        let slot = store.get("s").unwrap();
        let s = slot.read();
        assert_eq!(s.version(), 3, "recovered version continues past the replaced generation");
        assert_eq!(s.len(), 64);
        assert_eq!(s.policy(), ExclusionPolicy::QUARTER);
        drop(s);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tiny_compaction_threshold_folds_wal_into_snapshots() {
        let dir = tmp_dir("compact");
        {
            // 1-byte threshold: every append compacts.
            let store = SeriesStore::open(&dir, 1, &noop()).unwrap();
            store
                .load("s", random_walk(150, 5), &[], ExclusionPolicy::HALF, false, &noop())
                .unwrap();
            for i in 0..5 {
                store.append("s", &[i as f64], &noop()).unwrap();
            }
        }
        for entry in std::fs::read_dir(&dir).unwrap() {
            let entry = entry.unwrap();
            if entry.path().extension().is_some_and(|e| e == "wal") {
                assert_eq!(entry.metadata().unwrap().len(), 0, "WAL should be compacted away");
            }
        }
        let store = SeriesStore::open(&dir, 1, &noop()).unwrap();
        let slot = store.get("s").unwrap();
        assert_eq!(slot.read().version(), 6);
        assert_eq!(slot.read().len(), 155);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
