//! The named, versioned series store.
//!
//! Each stored series carries a **version** that increments on every
//! append; result-cache keys embed the version, so a query result can
//! never be served against data it was not computed from. Batch state
//! (the [`ProfiledSeries`] with its O(1) rolling statistics) is rebuilt
//! lazily — at most once per version — while **hot lengths** keep a
//! [`StreamingProfile`] live across appends at `O(n)` per point, so a
//! fixed-length motif monitor never pays a batch recomputation.

use std::collections::HashMap;
use std::sync::Arc;

use valmod_mp::{ExclusionPolicy, ProfiledSeries, StreamingProfile};

use crate::error::{ServeError, ServeResult};

/// One named series with its versioned derived state.
#[derive(Debug)]
pub struct StoredSeries {
    values: Vec<f64>,
    version: u64,
    /// Lazily (re)built batch view; `None` whenever `values` has changed
    /// since the last build. `Arc` so workers can compute without holding
    /// the store lock.
    profiled: Option<Arc<ProfiledSeries>>,
    /// Live fixed-length profiles, extended incrementally on append.
    hot: HashMap<usize, StreamingProfile>,
}

impl StoredSeries {
    fn new(values: Vec<f64>, hot_lengths: &[usize], policy: ExclusionPolicy) -> ServeResult<Self> {
        validate_samples(&values, 0)?;
        let mut series = StoredSeries { values, version: 1, profiled: None, hot: HashMap::new() };
        for &l in hot_lengths {
            series.track(l, policy)?;
        }
        Ok(series)
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the series holds no samples.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Current version (1 after load, +1 per append batch).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The raw samples.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Registers a hot length: seeds a streaming profile from the current
    /// samples so subsequent appends keep it live.
    pub fn track(&mut self, l: usize, policy: ExclusionPolicy) -> ServeResult<()> {
        if self.hot.contains_key(&l) {
            return Ok(());
        }
        let sp = StreamingProfile::new(&self.values, l, policy)?;
        self.hot.insert(l, sp);
        Ok(())
    }

    /// The live profile at a hot length, if one is registered.
    pub fn hot_profile(&self, l: usize) -> Option<&StreamingProfile> {
        self.hot.get(&l)
    }

    /// The registered hot lengths, sorted.
    pub fn hot_lengths(&self) -> Vec<usize> {
        let mut ls: Vec<usize> = self.hot.keys().copied().collect();
        ls.sort_unstable();
        ls
    }

    /// Appends a batch of samples: bumps the version, extends every hot
    /// profile incrementally, and invalidates the lazily-built batch view.
    /// All-or-nothing — a non-finite sample rejects the whole batch and
    /// leaves every piece of state untouched.
    pub fn append(&mut self, samples: &[f64]) -> ServeResult<u64> {
        if samples.is_empty() {
            return Err(ServeError::InvalidParameter("append requires at least one sample".into()));
        }
        validate_samples(samples, self.values.len())?;
        for sp in self.hot.values_mut() {
            sp.extend(samples.iter().copied())?;
        }
        self.values.extend_from_slice(samples);
        self.version += 1;
        self.profiled = None;
        Ok(self.version)
    }

    /// The batch view of the current version, building it if the series
    /// changed since the last call. Returns the version alongside the view,
    /// captured atomically — cache entries must be keyed by exactly this
    /// version.
    pub fn profiled(&mut self) -> ServeResult<(Arc<ProfiledSeries>, u64)> {
        if self.profiled.is_none() {
            self.profiled = Some(Arc::new(ProfiledSeries::from_values(&self.values)?));
        }
        Ok((Arc::clone(self.profiled.as_ref().expect("just built")), self.version))
    }
}

fn validate_samples(samples: &[f64], base_index: usize) -> ServeResult<()> {
    if let Some(bad) = samples.iter().position(|v| !v.is_finite()) {
        return Err(ServeError::NonFinite { index: base_index + bad });
    }
    Ok(())
}

/// All series held by one engine, addressed by name.
#[derive(Debug, Default)]
pub struct SeriesStore {
    map: HashMap<String, StoredSeries>,
}

impl SeriesStore {
    /// An empty store.
    pub fn new() -> Self {
        SeriesStore::default()
    }

    /// Loads a series under `name`. Fails with [`ServeError::SeriesExists`]
    /// unless `replace` is set; a replace resets the version to 1 (callers
    /// must invalidate any cache entries for the name).
    pub fn load(
        &mut self,
        name: &str,
        values: Vec<f64>,
        hot_lengths: &[usize],
        policy: ExclusionPolicy,
        replace: bool,
    ) -> ServeResult<&StoredSeries> {
        if name.is_empty() {
            return Err(ServeError::Protocol("series name must be non-empty".into()));
        }
        if !replace && self.map.contains_key(name) {
            return Err(ServeError::SeriesExists(name.to_string()));
        }
        let series = StoredSeries::new(values, hot_lengths, policy)?;
        self.map.insert(name.to_string(), series);
        Ok(self.map.get(name).expect("just inserted"))
    }

    /// The series under `name`.
    pub fn get(&self, name: &str) -> ServeResult<&StoredSeries> {
        self.map.get(name).ok_or_else(|| ServeError::UnknownSeries(name.to_string()))
    }

    /// Mutable access to the series under `name`.
    pub fn get_mut(&mut self, name: &str) -> ServeResult<&mut StoredSeries> {
        self.map.get_mut(name).ok_or_else(|| ServeError::UnknownSeries(name.to_string()))
    }

    /// Number of stored series.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Names in sorted order (stable STATS output).
    pub fn names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.map.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use valmod_data::generators::random_walk;
    use valmod_mp::stomp::stomp;

    #[test]
    fn load_append_versions() {
        let mut store = SeriesStore::new();
        let values = random_walk(200, 5);
        store.load("a", values.clone(), &[], ExclusionPolicy::HALF, false).unwrap();
        assert_eq!(store.get("a").unwrap().version(), 1);
        assert!(store.load("a", values.clone(), &[], ExclusionPolicy::HALF, false).is_err());
        store.load("a", values, &[], ExclusionPolicy::HALF, true).unwrap();
        assert_eq!(store.get("a").unwrap().version(), 1);

        let v = store.get_mut("a").unwrap().append(&[1.0, 2.0]).unwrap();
        assert_eq!(v, 2);
        assert_eq!(store.get("a").unwrap().len(), 202);
        assert!(store.get("missing").is_err());
    }

    #[test]
    fn append_is_atomic_under_bad_input() {
        let mut store = SeriesStore::new();
        store.load("a", random_walk(120, 6), &[16], ExclusionPolicy::HALF, false).unwrap();
        let s = store.get_mut("a").unwrap();
        let err = s.append(&[1.0, f64::NAN]).unwrap_err();
        assert!(matches!(err, ServeError::NonFinite { index: 121 }));
        assert_eq!(s.version(), 1);
        assert_eq!(s.len(), 120);
        assert_eq!(s.hot_profile(16).unwrap().len(), 120);
        assert!(s.append(&[]).is_err());
        assert_eq!(s.version(), 1);
    }

    #[test]
    fn hot_profile_tracks_appends_and_matches_batch() {
        let series = random_walk(300, 7);
        let mut store = SeriesStore::new();
        store.load("a", series[..200].to_vec(), &[20], ExclusionPolicy::HALF, false).unwrap();
        store.get_mut("a").unwrap().append(&series[200..]).unwrap();

        let entry = store.get("a").unwrap();
        assert_eq!(entry.hot_lengths(), vec![20]);
        let hot = entry.hot_profile(20).unwrap().profile();
        let ps = ProfiledSeries::from_values(&series).unwrap();
        let batch = stomp(&ps, 20, ExclusionPolicy::HALF).unwrap();
        for i in 0..batch.len() {
            if batch.mp[i].is_finite() {
                assert!((hot.mp[i] - batch.mp[i]).abs() < 1e-6, "row {i}");
            }
        }
    }

    #[test]
    fn profiled_is_cached_per_version() {
        let mut store = SeriesStore::new();
        store.load("a", random_walk(150, 8), &[], ExclusionPolicy::HALF, false).unwrap();
        let s = store.get_mut("a").unwrap();
        let (p1, v1) = s.profiled().unwrap();
        let (p2, v2) = s.profiled().unwrap();
        assert!(Arc::ptr_eq(&p1, &p2));
        assert_eq!((v1, v2), (1, 1));
        s.append(&[0.5]).unwrap();
        let (p3, v3) = s.profiled().unwrap();
        assert!(!Arc::ptr_eq(&p1, &p3));
        assert_eq!(v3, 2);
        assert_eq!(p3.len(), 151);
    }
}
