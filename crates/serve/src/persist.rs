//! Durable storage for the series store: per-series snapshots + WAL.
//!
//! Each named series persists as two files inside the data directory,
//! keyed by the hex encoding of the series name (so arbitrary names never
//! escape into filesystem syntax):
//!
//! * `<hex>.snap` — a checksummed **snapshot** of the whole series
//!   (format version, series version, exclusion policy, hot lengths,
//!   samples), written via temp-file + atomic rename so a reader only
//!   ever observes a complete old or complete new snapshot;
//! * `<hex>.wal` — an **append-only write-ahead log** of `APPEND`
//!   batches. A batch is logged (and fsynced) *before* it is applied in
//!   memory, so any batch the client saw acknowledged survives a crash.
//!
//! ## Record layouts (all integers little-endian)
//!
//! ```text
//! snapshot := magic "VMSNAP1\n" | fmt u32 (=2) | series_version u64
//!           | policy_num u32 | policy_den u32
//!           | base_offset f64
//!           | hot_count u32 | hot_length u64 × hot_count
//!           | sample_count u64 | sample f64 × sample_count
//!           | fnv1a64(everything above) u64
//! ```
//!
//! Format 1 snapshots (no `base_offset` field) are still decoded; their
//! centring offset is re-derived as the mean of the snapshot samples,
//! which is exactly what a format-1 build computed on every rebuild.
//!
//! ```text
//!
//! wal      := record*
//! record   := magic "VWAL" | post_apply_version u64 | sample_count u32
//!           | sample f64 × sample_count
//!           | fnv1a64(record bytes above) u64
//! ```
//!
//! ## Recovery ordering and truncation policy
//!
//! [`Persistence::recover`] reads the snapshot, then replays WAL records
//! in file order. A record whose version is ≤ the snapshot version is
//! *stale* (left over from a crash between a replace's snapshot write and
//! its WAL reset) and is skipped; a record whose version is exactly the
//! next expected version is applied. Anything else — a bad magic, a
//! record extending past end-of-file (torn tail), a checksum mismatch, or
//! a version gap — marks the end of the usable prefix: the file is
//! **physically truncated** there rather than reported as an error, so a
//! crash mid-write never bricks the store. Only fully-synced batches were
//! ever acknowledged, and those always live in the usable prefix.
//!
//! Once a WAL grows past the compaction threshold the store folds it into
//! a fresh snapshot and truncates the log, bounding restart time.

use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use valmod_data::io::codec::{put_f64, put_u32, put_u64, ByteCursor};
use valmod_data::io::{fnv1a64, write_atomic};
use valmod_mp::ExclusionPolicy;

use crate::error::{ServeError, ServeResult};

/// Leading bytes of a snapshot file.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"VMSNAP1\n";

/// Snapshot format version this build writes. Format 1 (which lacked the
/// pinned centring offset) is still decoded — see the module docs.
pub const SNAPSHOT_FORMAT: u32 = 2;

/// Leading bytes of every WAL record.
pub const WAL_RECORD_MAGIC: &[u8; 4] = b"VWAL";

/// Default WAL size past which an append triggers compaction into a fresh
/// snapshot (4 MiB — a few hundred thousand samples of log).
pub const DEFAULT_WAL_COMPACT_BYTES: u64 = 4 << 20;

/// Everything a snapshot stores about a series besides its samples.
#[derive(Debug, Clone)]
pub struct SnapshotMeta {
    /// Series version counter at snapshot time.
    pub version: u64,
    /// Exclusion policy the series' hot profiles were seeded with.
    pub policy: ExclusionPolicy,
    /// Hot lengths to re-seed streaming profiles at on recovery.
    pub hot_lengths: Vec<usize>,
    /// Centring offset the series' batch views are pinned to (the mean of
    /// the samples at load time). Persisting it keeps extended fragments
    /// bit-identical across restarts.
    pub base_offset: f64,
}

/// One series reconstructed by [`Persistence::recover`].
#[derive(Debug, Clone)]
pub struct RecoveredSeries {
    /// The series name (decoded from the file stem).
    pub name: String,
    /// Samples: snapshot samples plus every replayed WAL batch.
    pub values: Vec<f64>,
    /// Version after replay (snapshot version + replayed batches).
    pub version: u64,
    /// Exclusion policy for re-seeding hot profiles.
    pub policy: ExclusionPolicy,
    /// Hot lengths to re-seed.
    pub hot_lengths: Vec<usize>,
    /// Pinned centring offset recovered from the snapshot (or re-derived
    /// from its samples for format-1 snapshots).
    pub base_offset: f64,
    /// WAL batches replayed on top of the snapshot.
    pub replayed_batches: u64,
    /// Whether a torn/corrupt WAL tail was truncated during recovery.
    pub truncated_tail: bool,
}

/// Outcome of scanning a data directory on startup.
#[derive(Debug, Default)]
pub struct Recovery {
    /// Series successfully reconstructed, sorted by name.
    pub series: Vec<RecoveredSeries>,
    /// `(file, why)` for files that could not be recovered (corrupt
    /// snapshot, orphan WAL, undecodable name). The store skips these
    /// rather than refusing to start.
    pub skipped: Vec<(String, String)>,
}

/// Handle on one data directory; owns path layout and file formats.
#[derive(Debug)]
pub struct Persistence {
    dir: PathBuf,
    compact_bytes: u64,
}

impl Persistence {
    /// Opens (creating if needed) a data directory.
    pub fn open(dir: impl Into<PathBuf>, compact_bytes: u64) -> ServeResult<Persistence> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Persistence { dir, compact_bytes: compact_bytes.max(1) })
    }

    /// The data directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// WAL size past which the store compacts into a fresh snapshot.
    pub fn compact_bytes(&self) -> u64 {
        self.compact_bytes
    }

    /// Path of the snapshot file for `name`.
    pub fn snapshot_path(&self, name: &str) -> PathBuf {
        self.dir.join(format!("{}.snap", hex_encode(name)))
    }

    /// Path of the WAL file for `name`.
    pub fn wal_path(&self, name: &str) -> PathBuf {
        self.dir.join(format!("{}.wal", hex_encode(name)))
    }

    /// Writes a fresh snapshot (atomically), then resets the series' WAL —
    /// in that order, so a crash between the two steps leaves only *stale*
    /// WAL records, which replay skips by version.
    pub fn write_snapshot(
        &self,
        name: &str,
        meta: &SnapshotMeta,
        values: &[f64],
    ) -> ServeResult<()> {
        write_atomic(self.snapshot_path(name), &encode_snapshot(meta, values))?;
        // Truncate rather than delete: an open append handle elsewhere
        // would resurrect a deleted file's contents on some platforms.
        File::create(self.wal_path(name))?.sync_all()?;
        Ok(())
    }

    /// Appends one batch record to the series' WAL and fsyncs it. Must be
    /// called *before* the batch is applied in memory; `version` is the
    /// version the series will have once the batch applies.
    pub fn log_append(&self, name: &str, version: u64, samples: &[f64]) -> ServeResult<()> {
        let record = encode_wal_record(version, samples);
        let mut f = OpenOptions::new().create(true).append(true).open(self.wal_path(name))?;
        f.write_all(&record)?;
        f.sync_data()?;
        Ok(())
    }

    /// Current WAL size in bytes (0 when the file does not exist).
    pub fn wal_bytes(&self, name: &str) -> u64 {
        fs::metadata(self.wal_path(name)).map(|m| m.len()).unwrap_or(0)
    }

    /// Scans the directory, reconstructing every series: snapshot first,
    /// then WAL replay with torn/corrupt tails physically truncated.
    pub fn recover(&self) -> ServeResult<Recovery> {
        let mut out = Recovery::default();
        let mut stems: Vec<String> = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let file = entry.file_name().to_string_lossy().into_owned();
            if let Some(stem) = file.strip_suffix(".snap") {
                stems.push(stem.to_string());
            } else if let Some(stem) = file.strip_suffix(".wal") {
                // An orphan WAL (no snapshot) has no base state to replay
                // over; report it rather than silently ignoring the file.
                if !self.dir.join(format!("{stem}.snap")).exists() {
                    out.skipped.push((file, "WAL without a base snapshot".into()));
                }
            }
        }
        stems.sort_unstable();
        for stem in stems {
            let snap_file = format!("{stem}.snap");
            let Some(name) = hex_decode(&stem) else {
                out.skipped.push((snap_file, "file stem is not a hex-encoded name".into()));
                continue;
            };
            let bytes = fs::read(self.dir.join(&snap_file))?;
            let Some((meta, values)) = decode_snapshot(&bytes) else {
                // Snapshots are written atomically, so a corrupt one means
                // external damage; the series cannot be reconstructed.
                out.skipped.push((snap_file, "snapshot failed checksum/format validation".into()));
                continue;
            };
            let recovered = self.replay_wal(&name, meta, values)?;
            out.series.push(recovered);
        }
        Ok(out)
    }

    /// Replays the WAL for one series over its snapshot state, truncating
    /// the file at the first unusable record.
    fn replay_wal(
        &self,
        name: &str,
        meta: SnapshotMeta,
        mut values: Vec<f64>,
    ) -> ServeResult<RecoveredSeries> {
        let wal_path = self.wal_path(name);
        let bytes = match fs::read(&wal_path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(ServeError::Io(e)),
        };
        let mut version = meta.version;
        let mut replayed = 0u64;
        let mut pos = 0usize;
        let good_prefix = loop {
            if pos >= bytes.len() {
                break pos; // clean end of log
            }
            match decode_wal_record(&bytes, pos) {
                Some((rec_version, _, end)) if rec_version <= meta.version => {
                    // Stale record from before the last snapshot (crash
                    // between snapshot write and WAL reset): skip it.
                    pos = end;
                }
                Some((rec_version, samples, end)) if rec_version == version + 1 => {
                    values.extend_from_slice(&samples);
                    version = rec_version;
                    replayed += 1;
                    pos = end;
                }
                // Version gap, torn tail, bad magic, or checksum mismatch:
                // the usable prefix ends at this record's start.
                Some(_) | None => break pos,
            }
        };
        let truncated = (good_prefix as u64) < bytes.len() as u64;
        if truncated {
            OpenOptions::new().write(true).open(&wal_path)?.set_len(good_prefix as u64)?;
        }
        Ok(RecoveredSeries {
            name: name.to_string(),
            values,
            version,
            policy: meta.policy,
            hot_lengths: meta.hot_lengths,
            base_offset: meta.base_offset,
            replayed_batches: replayed,
            truncated_tail: truncated,
        })
    }
}

/// Encodes a snapshot body (checksum included).
pub fn encode_snapshot(meta: &SnapshotMeta, values: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(48 + 8 * (meta.hot_lengths.len() + values.len()));
    out.extend_from_slice(SNAPSHOT_MAGIC);
    put_u32(&mut out, SNAPSHOT_FORMAT);
    put_u64(&mut out, meta.version);
    put_u32(&mut out, meta.policy.num() as u32);
    put_u32(&mut out, meta.policy.den() as u32);
    put_f64(&mut out, meta.base_offset);
    put_u32(&mut out, meta.hot_lengths.len() as u32);
    for &l in &meta.hot_lengths {
        put_u64(&mut out, l as u64);
    }
    put_u64(&mut out, values.len() as u64);
    for &v in values {
        put_f64(&mut out, v);
    }
    let checksum = fnv1a64(&out);
    put_u64(&mut out, checksum);
    out
}

/// Decodes and validates a snapshot; `None` on any structural or checksum
/// failure.
pub fn decode_snapshot(bytes: &[u8]) -> Option<(SnapshotMeta, Vec<f64>)> {
    if bytes.len() < SNAPSHOT_MAGIC.len() + 8 {
        return None;
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(tail.try_into().ok()?);
    if fnv1a64(body) != stored {
        return None;
    }
    let mut c = ByteCursor::new(body);
    if c.take(SNAPSHOT_MAGIC.len())? != SNAPSHOT_MAGIC {
        return None;
    }
    let format = c.read_u32()?;
    if format == 0 || format > SNAPSHOT_FORMAT {
        return None;
    }
    let version = c.read_u64()?;
    let num = c.read_u32()? as usize;
    let den = c.read_u32()? as usize;
    if den == 0 {
        return None;
    }
    let stored_offset = if format >= 2 { Some(c.read_f64()?) } else { None };
    let hot_count = c.read_u32()? as usize;
    // Each hot length is 8 bytes; an absurd count cannot fit in the body.
    if hot_count > c.remaining() / 8 {
        return None;
    }
    let mut hot_lengths = Vec::with_capacity(hot_count);
    for _ in 0..hot_count {
        hot_lengths.push(usize::try_from(c.read_u64()?).ok()?);
    }
    let count = usize::try_from(c.read_u64()?).ok()?;
    if count != c.remaining() / 8 || count * 8 != c.remaining() {
        return None;
    }
    let mut values = Vec::with_capacity(count);
    for _ in 0..count {
        values.push(c.read_f64()?);
    }
    // Format-1 snapshots carried no pinned offset: a format-1 build centred
    // every rebuild at the current mean, so the mean of the snapshot samples
    // is exactly the frame that build was using at snapshot time.
    let base_offset = stored_offset.unwrap_or_else(|| {
        if values.is_empty() {
            0.0
        } else {
            valmod_data::stats::neumaier_sum(values.iter().copied()) / values.len() as f64
        }
    });
    Some((
        SnapshotMeta { version, policy: ExclusionPolicy::new(num, den), hot_lengths, base_offset },
        values,
    ))
}

/// Encodes one WAL record (checksum included).
pub fn encode_wal_record(version: u64, samples: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(24 + 8 * samples.len());
    out.extend_from_slice(WAL_RECORD_MAGIC);
    put_u64(&mut out, version);
    put_u32(&mut out, samples.len() as u32);
    for &v in samples {
        put_f64(&mut out, v);
    }
    let checksum = fnv1a64(&out);
    put_u64(&mut out, checksum);
    out
}

/// Decodes the WAL record starting at byte `start`; returns
/// `(post-apply version, samples, end offset)`, or `None` on bad magic, a
/// torn tail, or a checksum mismatch — the caller then truncates at
/// `start`.
fn decode_wal_record(bytes: &[u8], start: usize) -> Option<(u64, Vec<f64>, usize)> {
    let mut c = ByteCursor::new(bytes.get(start..)?);
    if c.take(WAL_RECORD_MAGIC.len())? != WAL_RECORD_MAGIC {
        return None;
    }
    let version = c.read_u64()?;
    let count = c.read_u32()? as usize;
    let mut values = Vec::with_capacity(count.min(c.remaining() / 8));
    for _ in 0..count {
        values.push(c.read_f64()?);
    }
    // Checksum covers everything from the record start through the samples.
    let body_len = c.pos();
    let stored = c.read_u64()?;
    if fnv1a64(&bytes[start..start + body_len]) != stored {
        return None;
    }
    Some((version, values, start + c.pos()))
}

/// Byte spans `(start, end)` of each structurally valid, checksum-passing
/// record in a WAL image, stopping at the first invalid one. Exposed for
/// the recovery fault harness, which uses the spans to place kill points.
pub fn wal_record_spans(bytes: &[u8]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        match decode_wal_record(bytes, pos) {
            Some((_, _, end)) => {
                spans.push((pos, end));
                pos = end;
            }
            None => break,
        }
    }
    spans
}

fn hex_encode(name: &str) -> String {
    let mut out = String::with_capacity(name.len() * 2);
    for b in name.bytes() {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

fn hex_decode(stem: &str) -> Option<String> {
    if !stem.len().is_multiple_of(2) {
        return None;
    }
    let mut bytes = Vec::with_capacity(stem.len() / 2);
    let chars = stem.as_bytes();
    for pair in chars.chunks_exact(2) {
        let hi = (pair[0] as char).to_digit(16)?;
        let lo = (pair[1] as char).to_digit(16)?;
        bytes.push((hi * 16 + lo) as u8);
    }
    String::from_utf8(bytes).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("valmod_persist_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn meta(version: u64, hot: &[usize]) -> SnapshotMeta {
        SnapshotMeta {
            version,
            policy: ExclusionPolicy::HALF,
            hot_lengths: hot.to_vec(),
            base_offset: 0.25,
        }
    }

    #[test]
    fn snapshot_round_trips_bit_for_bit() {
        let values = vec![1.5, -0.0, f64::MIN_POSITIVE, 1e300, -42.25];
        let m = meta(7, &[16, 32]);
        let bytes = encode_snapshot(&m, &values);
        let (back_meta, back_values) = decode_snapshot(&bytes).expect("valid snapshot");
        assert_eq!(back_meta.version, 7);
        assert_eq!(back_meta.hot_lengths, vec![16, 32]);
        assert_eq!(back_meta.policy, ExclusionPolicy::HALF);
        assert_eq!(back_meta.base_offset.to_bits(), 0.25f64.to_bits());
        assert_eq!(back_values.len(), values.len());
        for (a, b) in back_values.iter().zip(&values) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn format_1_snapshots_decode_with_a_derived_offset() {
        // A pre-offset (format 1) snapshot: same layout minus the
        // base_offset field. Decoding must still succeed and pin the frame
        // at the mean of the snapshot samples — the frame a format-1 build
        // was actually centring in at snapshot time.
        let values = [3.0f64, 5.0, 10.0];
        let mut body = Vec::new();
        body.extend_from_slice(SNAPSHOT_MAGIC);
        put_u32(&mut body, 1);
        put_u64(&mut body, 9);
        put_u32(&mut body, 1);
        put_u32(&mut body, 2);
        put_u32(&mut body, 1);
        put_u64(&mut body, 16);
        put_u64(&mut body, values.len() as u64);
        for &v in &values {
            put_f64(&mut body, v);
        }
        let checksum = fnv1a64(&body);
        put_u64(&mut body, checksum);

        let (meta, back) = decode_snapshot(&body).expect("format 1 must still decode");
        assert_eq!(meta.version, 9);
        assert_eq!(meta.hot_lengths, vec![16]);
        assert_eq!(back, values);
        assert_eq!(meta.base_offset.to_bits(), 6.0f64.to_bits());

        // Unknown future formats are rejected rather than misparsed.
        let mut future = Vec::new();
        future.extend_from_slice(SNAPSHOT_MAGIC);
        put_u32(&mut future, SNAPSHOT_FORMAT + 1);
        let mut bytes = future.clone();
        let checksum = fnv1a64(&bytes);
        put_u64(&mut bytes, checksum);
        assert!(decode_snapshot(&bytes).is_none());
    }

    #[test]
    fn snapshot_rejects_any_single_bit_flip() {
        let bytes = encode_snapshot(&meta(3, &[8]), &[1.0, 2.0, 3.0]);
        assert!(decode_snapshot(&bytes).is_some());
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x10;
            assert!(decode_snapshot(&bad).is_none(), "bit flip at byte {i} not caught");
        }
        // Truncations are rejected too.
        for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_snapshot(&bytes[..cut]).is_none(), "truncation at {cut} not caught");
        }
    }

    #[test]
    fn wal_spans_stop_at_first_corruption() {
        let mut wal = Vec::new();
        wal.extend_from_slice(&encode_wal_record(2, &[1.0, 2.0]));
        wal.extend_from_slice(&encode_wal_record(3, &[3.0]));
        let spans = wal_record_spans(&wal);
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].0, 0);
        assert_eq!(spans[1].1, wal.len());

        // A torn third record: spans still report the two complete ones.
        let mut torn = wal.clone();
        let third = encode_wal_record(4, &[4.0, 5.0, 6.0]);
        torn.extend_from_slice(&third[..third.len() - 11]);
        assert_eq!(wal_record_spans(&torn).len(), 2);

        // A bit flip in the first record stops the scan immediately.
        let mut flipped = wal;
        flipped[6] ^= 0x01;
        assert!(wal_record_spans(&flipped).is_empty());
    }

    #[test]
    fn recover_replays_wal_over_snapshot_and_truncates_torn_tail() {
        let dir = tmp_dir("replay");
        let p = Persistence::open(&dir, DEFAULT_WAL_COMPACT_BYTES).unwrap();
        let base: Vec<f64> = (0..32).map(|i| i as f64 * 0.5).collect();
        p.write_snapshot("s", &meta(1, &[8]), &base).unwrap();
        p.log_append("s", 2, &[100.0, 101.0]).unwrap();
        p.log_append("s", 3, &[102.0]).unwrap();
        // Simulate a crash mid-write of a third record.
        let torn = encode_wal_record(4, &[900.0, 901.0]);
        {
            use std::io::Write;
            let mut f = OpenOptions::new().append(true).open(p.wal_path("s")).unwrap();
            f.write_all(&torn[..torn.len() - 5]).unwrap();
        }
        let wal_len_before = p.wal_bytes("s");
        let rec = p.recover().unwrap();
        assert!(rec.skipped.is_empty(), "{:?}", rec.skipped);
        assert_eq!(rec.series.len(), 1);
        let s = &rec.series[0];
        assert_eq!(s.name, "s");
        assert_eq!(s.version, 3);
        assert_eq!(s.replayed_batches, 2);
        assert!(s.truncated_tail);
        assert_eq!(s.values.len(), 35);
        assert_eq!(s.values[32..], [100.0, 101.0, 102.0]);
        assert_eq!(s.hot_lengths, vec![8]);
        // The torn tail was physically removed: a second recovery is clean.
        assert!(p.wal_bytes("s") < wal_len_before);
        let rec2 = p.recover().unwrap();
        assert!(!rec2.series[0].truncated_tail);
        assert_eq!(rec2.series[0].values, s.values);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn recover_skips_stale_records_after_replace_crash() {
        // Crash window: a replace wrote its new snapshot (version 5) but
        // died before resetting the WAL, leaving records from versions 2-3.
        let dir = tmp_dir("stale");
        let p = Persistence::open(&dir, DEFAULT_WAL_COMPACT_BYTES).unwrap();
        p.write_snapshot("s", &meta(1, &[]), &[1.0, 2.0]).unwrap();
        p.log_append("s", 2, &[3.0]).unwrap();
        p.log_append("s", 3, &[4.0]).unwrap();
        // Replace writes the snapshot only (simulating the crash by
        // bypassing write_snapshot's WAL reset).
        valmod_data::io::write_atomic(
            p.snapshot_path("s"),
            &encode_snapshot(&meta(5, &[]), &[9.0, 8.0, 7.0]),
        )
        .unwrap();
        // A post-restart append continues from the snapshot version.
        p.log_append("s", 6, &[6.0]).unwrap();
        let rec = p.recover().unwrap();
        let s = &rec.series[0];
        assert_eq!(s.version, 6);
        assert_eq!(s.values, vec![9.0, 8.0, 7.0, 6.0]);
        assert_eq!(s.replayed_batches, 1, "stale records must not count as replayed");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn recover_reports_orphan_wal_and_corrupt_snapshot() {
        let dir = tmp_dir("skips");
        let p = Persistence::open(&dir, DEFAULT_WAL_COMPACT_BYTES).unwrap();
        // Orphan WAL with no snapshot.
        p.log_append("ghost", 2, &[1.0]).unwrap();
        // Corrupt snapshot.
        fs::write(p.snapshot_path("bad"), b"not a snapshot").unwrap();
        let rec = p.recover().unwrap();
        assert!(rec.series.is_empty());
        assert_eq!(rec.skipped.len(), 2, "{:?}", rec.skipped);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn names_round_trip_through_hex_paths() {
        let dir = tmp_dir("names");
        let p = Persistence::open(&dir, DEFAULT_WAL_COMPACT_BYTES).unwrap();
        for name in ["s", "sensor/7", "../escape", "ünïcode", "a b\tc"] {
            p.write_snapshot(name, &meta(1, &[]), &[1.0]).unwrap();
            // Everything must land inside the data dir, whatever the name.
            assert_eq!(p.snapshot_path(name).parent().unwrap(), p.dir());
        }
        let rec = p.recover().unwrap();
        let mut names: Vec<&str> = rec.series.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        let mut expected = vec!["s", "sensor/7", "../escape", "ünïcode", "a b\tc"];
        expected.sort_unstable();
        assert_eq!(names, expected);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_snapshot_resets_the_wal() {
        let dir = tmp_dir("compact");
        let p = Persistence::open(&dir, DEFAULT_WAL_COMPACT_BYTES).unwrap();
        p.write_snapshot("s", &meta(1, &[]), &[1.0]).unwrap();
        p.log_append("s", 2, &[2.0]).unwrap();
        assert!(p.wal_bytes("s") > 0);
        p.write_snapshot("s", &meta(2, &[]), &[1.0, 2.0]).unwrap();
        assert_eq!(p.wal_bytes("s"), 0, "snapshot write must reset the WAL");
        let rec = p.recover().unwrap();
        assert_eq!(rec.series[0].values, vec![1.0, 2.0]);
        assert_eq!(rec.series[0].version, 2);
        let _ = fs::remove_dir_all(&dir);
    }
}
