//! Typed response shapes shared by the server and the client.
//!
//! The server *encodes* every query body, ingestion acknowledgement, and
//! save acknowledgement through these structs, and [`crate::Client`]
//! *decodes* them back — so the wire shape has exactly one definition and
//! loopback/cluster tests compare fields instead of string-matching raw
//! JSON. Encoding preserves the historical field order byte for byte; the
//! decoders tolerate unknown fields, keeping additive evolution safe.

use valmod_mp::MotifPair;

use crate::error::{ServeError, ServeResult};
use crate::protocol::Response;
use crate::value::Value;

/// A body shape that can cross the wire in both directions.
pub trait BodyShape: Sized {
    /// Encodes the body as its wire tree.
    fn to_value(&self) -> Value;
    /// Decodes the body from a wire tree.
    fn from_value(v: &Value) -> ServeResult<Self>;
}

fn missing(what: &str) -> ServeError {
    ServeError::Protocol(format!("response body missing {what}"))
}

fn get_usize(v: &Value, key: &str) -> ServeResult<usize> {
    v.get(key).and_then(Value::as_usize).ok_or_else(|| missing(key))
}

fn get_f64(v: &Value, key: &str) -> ServeResult<f64> {
    v.get(key).and_then(Value::as_f64).ok_or_else(|| missing(key))
}

/// One ranked motif: offsets, length, raw and length-normalised distance.
#[derive(Debug, Clone, PartialEq)]
pub struct MotifHit {
    /// First subsequence offset.
    pub a: usize,
    /// Second subsequence offset.
    pub b: usize,
    /// Subsequence length.
    pub l: usize,
    /// z-normalised Euclidean distance.
    pub dist: f64,
    /// Length-normalised distance (the cross-length ranking key).
    pub norm_dist: f64,
}

impl MotifHit {
    /// The server-side view of a [`MotifPair`].
    pub fn from_pair(m: &MotifPair) -> Self {
        MotifHit { a: m.a, b: m.b, l: m.l, dist: m.dist, norm_dist: m.norm_dist() }
    }

    fn to_value(&self) -> Value {
        Value::obj(vec![
            ("a", self.a.into()),
            ("b", self.b.into()),
            ("l", self.l.into()),
            ("dist", self.dist.into()),
            ("norm_dist", self.norm_dist.into()),
        ])
    }

    fn from_value(v: &Value) -> ServeResult<Self> {
        Ok(MotifHit {
            a: get_usize(v, "a")?,
            b: get_usize(v, "b")?,
            l: get_usize(v, "l")?,
            dist: get_f64(v, "dist")?,
            norm_dist: get_f64(v, "norm_dist")?,
        })
    }
}

/// The `motifs` query body.
#[derive(Debug, Clone, PartialEq)]
pub struct MotifsBody {
    /// Ranked motifs, best first.
    pub motifs: Vec<MotifHit>,
    /// `"hot"` (streaming profile) or `"cold"` (planned batch compute).
    pub source: String,
}

impl BodyShape for MotifsBody {
    fn to_value(&self) -> Value {
        Value::obj(vec![
            ("motifs", Value::Arr(self.motifs.iter().map(MotifHit::to_value).collect())),
            ("source", Value::str(&self.source)),
        ])
    }

    fn from_value(v: &Value) -> ServeResult<Self> {
        let arr = v.get("motifs").and_then(Value::as_arr).ok_or_else(|| missing("\"motifs\""))?;
        Ok(MotifsBody {
            motifs: arr.iter().map(MotifHit::from_value).collect::<ServeResult<_>>()?,
            source: v
                .get("source")
                .and_then(Value::as_str)
                .ok_or_else(|| missing("\"source\""))?
                .to_string(),
        })
    }
}

/// One variable-length discord.
#[derive(Debug, Clone, PartialEq)]
pub struct DiscordHit {
    /// Discord offset.
    pub offset: usize,
    /// Subsequence length.
    pub l: usize,
    /// Nearest-neighbour offset. `None` means the offset has no finite
    /// match (the VALMP ⊥ sentinel) — encoded as `null` on the wire, never
    /// as the sentinel's in-memory `usize::MAX` representation.
    pub nn: Option<usize>,
    /// Length-normalised nearest-neighbour distance (higher = more anomalous).
    pub score: f64,
}

impl DiscordHit {
    fn to_value(&self) -> Value {
        Value::obj(vec![
            ("offset", self.offset.into()),
            ("l", self.l.into()),
            ("nn", self.nn.map_or(Value::Null, Value::from)),
            ("score", self.score.into()),
        ])
    }

    fn from_value(v: &Value) -> ServeResult<Self> {
        let nn = match v.get("nn").ok_or_else(|| missing("\"nn\""))? {
            Value::Null => None,
            other => Some(other.as_usize().ok_or_else(|| missing("an integer or null \"nn\""))?),
        };
        Ok(DiscordHit {
            offset: get_usize(v, "offset")?,
            l: get_usize(v, "l")?,
            nn,
            score: get_f64(v, "score")?,
        })
    }
}

/// The `discords` query body.
#[derive(Debug, Clone, PartialEq)]
pub struct DiscordsBody {
    /// Ranked discords, most anomalous first.
    pub discords: Vec<DiscordHit>,
}

impl BodyShape for DiscordsBody {
    fn to_value(&self) -> Value {
        Value::obj(vec![(
            "discords",
            Value::Arr(self.discords.iter().map(DiscordHit::to_value).collect()),
        )])
    }

    fn from_value(v: &Value) -> ServeResult<Self> {
        let arr =
            v.get("discords").and_then(Value::as_arr).ok_or_else(|| missing("\"discords\""))?;
        Ok(DiscordsBody {
            discords: arr.iter().map(DiscordHit::from_value).collect::<ServeResult<_>>()?,
        })
    }
}

/// One variable-length motif set (paper Definition 2.6).
#[derive(Debug, Clone, PartialEq)]
pub struct SetEntry {
    /// Subsequence length.
    pub l: usize,
    /// The seeding pair's offsets.
    pub pair: (usize, usize),
    /// The seeding pair's distance.
    pub pair_dist: f64,
    /// Set radius (`D · pair_dist`).
    pub radius: f64,
    /// Member count.
    pub frequency: usize,
    /// Member offsets, ascending.
    pub offsets: Vec<usize>,
}

impl SetEntry {
    fn to_value(&self) -> Value {
        Value::obj(vec![
            ("l", self.l.into()),
            ("pair", Value::Arr(vec![self.pair.0.into(), self.pair.1.into()])),
            ("pair_dist", self.pair_dist.into()),
            ("radius", self.radius.into()),
            ("frequency", self.frequency.into()),
            ("offsets", Value::Arr(self.offsets.iter().map(|&o| Value::from(o)).collect())),
        ])
    }

    fn from_value(v: &Value) -> ServeResult<Self> {
        let pair = v.get("pair").and_then(Value::as_arr).ok_or_else(|| missing("\"pair\""))?;
        let [a, b] = pair else {
            return Err(missing("a two-element \"pair\""));
        };
        let offsets =
            v.get("offsets").and_then(Value::as_arr).ok_or_else(|| missing("\"offsets\""))?;
        Ok(SetEntry {
            l: get_usize(v, "l")?,
            pair: (
                a.as_usize().ok_or_else(|| missing("\"pair\" offsets"))?,
                b.as_usize().ok_or_else(|| missing("\"pair\" offsets"))?,
            ),
            pair_dist: get_f64(v, "pair_dist")?,
            radius: get_f64(v, "radius")?,
            frequency: get_usize(v, "frequency")?,
            offsets: offsets
                .iter()
                .map(Value::as_usize)
                .collect::<Option<_>>()
                .ok_or_else(|| missing("integer \"offsets\""))?,
        })
    }
}

/// The `sets` query body.
#[derive(Debug, Clone, PartialEq)]
pub struct SetsBody {
    /// Discovered motif sets.
    pub sets: Vec<SetEntry>,
    /// Profiles answered from tracked pair snapshots.
    pub served_from_snapshots: usize,
    /// Profiles recomputed for the final set expansion.
    pub recomputed_profiles: usize,
}

impl BodyShape for SetsBody {
    fn to_value(&self) -> Value {
        Value::obj(vec![
            ("sets", Value::Arr(self.sets.iter().map(SetEntry::to_value).collect())),
            ("served_from_snapshots", self.served_from_snapshots.into()),
            ("recomputed_profiles", self.recomputed_profiles.into()),
        ])
    }

    fn from_value(v: &Value) -> ServeResult<Self> {
        let arr = v.get("sets").and_then(Value::as_arr).ok_or_else(|| missing("\"sets\""))?;
        Ok(SetsBody {
            sets: arr.iter().map(SetEntry::from_value).collect::<ServeResult<_>>()?,
            served_from_snapshots: get_usize(v, "served_from_snapshots")?,
            recomputed_profiles: get_usize(v, "recomputed_profiles")?,
        })
    }
}

/// The acknowledgement for `load` and `append`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ack {
    /// Series name.
    pub name: String,
    /// Series version after the operation.
    pub version: u64,
    /// Series length after the operation.
    pub len: usize,
}

impl Ack {
    /// Encodes the acknowledgement (server side).
    pub fn to_value(&self) -> Value {
        Value::obj(vec![
            ("name", Value::str(&self.name)),
            ("version", self.version.into()),
            ("len", self.len.into()),
        ])
    }

    /// Decodes an acknowledgement (client side).
    pub fn from_value(v: &Value) -> ServeResult<Self> {
        Ok(Ack {
            name: v
                .get("name")
                .and_then(Value::as_str)
                .ok_or_else(|| missing("\"name\""))?
                .to_string(),
            version: v
                .get("version")
                .and_then(Value::as_u64)
                .ok_or_else(|| missing("\"version\""))?,
            len: get_usize(v, "len")?,
        })
    }
}

/// The acknowledgement for `save`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SaveAck {
    /// Snapshots written (0 when the engine is not durable).
    pub snapshots: usize,
}

impl SaveAck {
    /// Encodes the acknowledgement (server side).
    pub fn to_value(&self) -> Value {
        Value::obj(vec![("snapshots", self.snapshots.into())])
    }

    /// Decodes an acknowledgement (client side).
    pub fn from_value(v: &Value) -> ServeResult<Self> {
        Ok(SaveAck { snapshots: get_usize(v, "snapshots")? })
    }
}

/// A decoded query reply: the common envelope plus a typed body.
#[derive(Debug, Clone)]
pub struct QueryReply<B> {
    /// Series name the query ran against.
    pub series: String,
    /// Series version the result was computed against.
    pub version: u64,
    /// Server-side compute time in milliseconds (0 for cache hits only in
    /// the sense that the cached payload reports its original compute).
    pub compute_ms: f64,
    /// Whether the payload came from the result cache.
    pub cached: bool,
    /// Whether this reply attached to another request's in-flight compute.
    pub coalesced: bool,
    /// The typed body.
    pub body: B,
}

impl<B: BodyShape> QueryReply<B> {
    /// Decodes a raw [`Response`] into the typed reply.
    pub fn from_response(resp: &Response) -> ServeResult<Self> {
        let r = &resp.result;
        Ok(QueryReply {
            series: r
                .get("series")
                .and_then(Value::as_str)
                .ok_or_else(|| missing("\"series\""))?
                .to_string(),
            version: r
                .get("version")
                .and_then(Value::as_u64)
                .ok_or_else(|| missing("\"version\""))?,
            compute_ms: get_f64(r, "compute_ms")?,
            cached: resp.cached.unwrap_or(false),
            coalesced: resp.coalesced,
            body: B::from_value(r.get("body").ok_or_else(|| missing("\"body\""))?)?,
        })
    }
}

/// A typed view of the `stats` reply: the counters dashboards poll for,
/// plus the raw tree for everything else (the obs snapshot is open-ended
/// by design).
#[derive(Debug, Clone)]
pub struct StatsReply {
    /// Queries admitted.
    pub queries: u64,
    /// Queries actually computed (cache misses that ran).
    pub computed: u64,
    /// Queries that attached to another request's in-flight compute.
    pub coalesced: u64,
    /// Fixed-length queries served from a hot streaming profile.
    pub served_hot: u64,
    /// Result-cache hits.
    pub cache_hits: u64,
    /// Per-length fragment-cache hits.
    pub fragment_hits: u64,
    /// Per-length fragment-cache misses.
    pub fragment_misses: u64,
    /// Live fragments in the planner's cache.
    pub fragment_entries: usize,
    /// The full raw stats tree (`engine` / `cache` / `planner` / `persist`
    /// / `series` / `obs`).
    pub raw: Value,
}

impl StatsReply {
    /// Decodes a raw `stats` result tree.
    pub fn from_value(v: &Value) -> ServeResult<Self> {
        let engine = v.get("engine").ok_or_else(|| missing("\"engine\""))?;
        let cache = v.get("cache").ok_or_else(|| missing("\"cache\""))?;
        let planner = v.get("planner").ok_or_else(|| missing("\"planner\""))?;
        let counter = |section: &Value, key: &str| {
            section.get(key).and_then(Value::as_u64).ok_or_else(|| missing(key))
        };
        Ok(StatsReply {
            queries: counter(engine, "queries")?,
            computed: counter(engine, "computed")?,
            coalesced: counter(engine, "coalesced")?,
            served_hot: counter(engine, "served_hot")?,
            cache_hits: counter(cache, "hits")?,
            fragment_hits: counter(planner, "fragment_hits")?,
            fragment_misses: counter(planner, "fragment_misses")?,
            fragment_entries: get_usize(planner, "fragment_entries")?,
            raw: v.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn motif_bodies_roundtrip() {
        let body = MotifsBody {
            motifs: vec![MotifHit { a: 3, b: 90, l: 32, dist: 0.25, norm_dist: 0.0441 }],
            source: "cold".into(),
        };
        let v = body.to_value();
        // The wire order is pinned: motifs, then source.
        assert!(v.encode().starts_with(r#"{"motifs""#));
        assert_eq!(MotifsBody::from_value(&v).unwrap(), body);
        assert!(MotifsBody::from_value(&Value::obj(vec![])).is_err());
    }

    #[test]
    fn discord_and_set_bodies_roundtrip() {
        let d = DiscordsBody {
            discords: vec![
                DiscordHit { offset: 7, l: 16, nn: Some(80), score: 1.5 },
                DiscordHit { offset: 99, l: 16, nn: None, score: 2.5 },
            ],
        };
        assert_eq!(DiscordsBody::from_value(&d.to_value()).unwrap(), d);
        // ⊥ crosses the wire as null, never as usize::MAX's decimal form.
        let encoded = d.to_value().encode();
        assert!(encoded.contains(r#""nn":null"#));
        assert!(!encoded.contains("18446744073709551615"));
        let s = SetsBody {
            sets: vec![SetEntry {
                l: 24,
                pair: (10, 60),
                pair_dist: 0.5,
                radius: 1.5,
                frequency: 3,
                offsets: vec![10, 60, 110],
            }],
            served_from_snapshots: 2,
            recomputed_profiles: 1,
        };
        assert_eq!(SetsBody::from_value(&s.to_value()).unwrap(), s);
    }

    #[test]
    fn acks_roundtrip() {
        let ack = Ack { name: "sensor".into(), version: 3, len: 1000 };
        assert_eq!(Ack::from_value(&ack.to_value()).unwrap(), ack);
        let save = SaveAck { snapshots: 2 };
        assert_eq!(SaveAck::from_value(&save.to_value()).unwrap(), save);
        assert!(Ack::from_value(&Value::obj(vec![("name", Value::str("x"))])).is_err());
    }

    #[test]
    fn query_reply_decodes_the_envelope() {
        let body = DiscordsBody { discords: vec![] };
        let result = Value::obj(vec![
            ("series", Value::str("s")),
            ("version", 2u64.into()),
            ("compute_ms", 1.5.into()),
            ("body", body.to_value()),
        ]);
        let resp = Response { result, cached: Some(false), coalesced: true };
        let reply: QueryReply<DiscordsBody> = QueryReply::from_response(&resp).unwrap();
        assert_eq!((reply.series.as_str(), reply.version), ("s", 2));
        assert!(!reply.cached);
        assert!(reply.coalesced);
        assert!(reply.body.discords.is_empty());
    }
}
