//! The per-length profile fragment cache behind the query planner.
//!
//! Where the result cache ([`crate::cache`]) stores *finished query
//! bodies* keyed by the whole request, this cache stores the reusable
//! intermediate: one [`LengthProfile`] per subsequence length, keyed by
//! `(series, version, anchor, ℓ, knobs)`. The **anchor** is the length at
//! which the producing segment computed its full matrix profile before
//! advancing via `ComputeSubMP` — a fragment is a pure function of that
//! tuple (see [`valmod_core::Valmod::run_lengths_on`]), so replaying it is
//! bit-identical to recomputing it, for any client and any query shape.
//!
//! `knobs` canonicalises the result-affecting per-length parameters (`p`
//! and the reduced exclusion policy); ranking parameters (`top`, `k`,
//! `radius`) are deliberately excluded, so a MOTIFS and a DISCORDS query
//! over the same range share fragments. Versioned keys make stale hits
//! structurally impossible, exactly as in the result cache.
//!
//! ## Incremental extension across appends
//!
//! An `APPEND` does **not** purge this cache. Fragments keyed by the old
//! version simply stop matching (their version is the staleness
//! watermark); they are garbage-collected lazily by
//! [`FragmentCache::invalidate_stale`] on the next planner touch. What
//! makes the old work *reusable* rather than merely dead is the second
//! map: each computed segment also parks its [`SegmentState`] — the
//! advance-ready capture of its anchor profile and top-`p` partials —
//! keyed by `(series, anchor, knobs)` **without** a version. On the next
//! query the planner takes the state, extends it over the appended tail
//! (`O(k·n)` instead of `O(n²)`), replays it, and re-inserts fragments
//! under the new version — bit-identical to a cold recompute, as
//! `valmod-check`'s extension oracle enforces. Only a `LOAD` (replace)
//! purges both maps, because a replace rewrites history instead of
//! growing it. Both maps share one byte budget and one LRU clock.

use std::collections::HashMap;
use std::sync::Arc;

use valmod_core::{LengthProfile, SegmentState};

/// Fragment key: series identity + data version + producing anchor +
/// length + canonical per-length knobs.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FragmentKey {
    /// Series name.
    pub series: String,
    /// Series version the fragment was computed against.
    pub version: u64,
    /// Anchor length of the producing segment (where the full profile ran).
    pub anchor: usize,
    /// Subsequence length of this fragment.
    pub l: usize,
    /// Canonical per-length knobs, e.g. `p=50;excl=1/2`.
    pub knobs: String,
}

/// Key of a parked [`SegmentState`]: no version — the state is *advanced*
/// across versions (extended over appended samples) rather than invalidated
/// by them. Its internal sample count is the watermark that tells the
/// planner how far behind the series it is.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StateKey {
    /// Series name.
    pub series: String,
    /// Anchor length of the captured segment.
    pub anchor: usize,
    /// Canonical per-length knobs, e.g. `p=50;excl=1/2`.
    pub knobs: String,
}

#[derive(Debug)]
struct Entry {
    fragment: Arc<LengthProfile>,
    bytes: usize,
    last_used: u64,
}

#[derive(Debug)]
struct StateEntry {
    state: SegmentState,
    bytes: usize,
    last_used: u64,
}

/// Counters exposed through `STATS` (`planner` section).
#[derive(Debug, Default, Clone, Copy)]
pub struct FragmentCacheStats {
    /// Per-length lookups satisfied from a cached fragment.
    pub hits: u64,
    /// Per-length lookups that forced a segment recompute.
    pub misses: u64,
    /// Fragments and parked states evicted to stay within the byte budget.
    pub evictions: u64,
    /// Fragments purged by invalidation: eagerly on replace, lazily (old
    /// versions garbage-collected on the next planner touch) on append.
    pub invalidated: u64,
    /// Parked segment states extended in place over appended samples
    /// instead of recomputing the segment from scratch.
    pub extended: u64,
}

/// An LRU cache of per-length profile fragments, bounded by approximate
/// bytes (the dominant cost is the `mp`/`ip` vectors, ~16 bytes per row).
#[derive(Debug)]
pub struct FragmentCache {
    budget: usize,
    used: usize,
    tick: u64,
    map: HashMap<FragmentKey, Entry>,
    states: HashMap<StateKey, StateEntry>,
    stats: FragmentCacheStats,
}

impl FragmentCache {
    /// A cache bounded by `budget` bytes (0 disables fragment reuse — the
    /// planner then recomputes every segment, which is always correct).
    pub fn new(budget: usize) -> Self {
        FragmentCache {
            budget,
            used: 0,
            tick: 0,
            map: HashMap::new(),
            states: HashMap::new(),
            stats: FragmentCacheStats::default(),
        }
    }

    /// All-or-nothing lookup of one planned segment: the fragments for
    /// every length `anchor..=hi` under the same `(series, version,
    /// anchor, knobs)`. Returns `None` — counting one miss per absent
    /// length — unless **every** length is present, because a partially
    /// cached segment is recomputed whole from its anchor (the advance
    /// chain is only valid from the anchor's full profile).
    pub fn get_segment(
        &mut self,
        series: &str,
        version: u64,
        anchor: usize,
        hi: usize,
        knobs: &str,
    ) -> Option<Vec<Arc<LengthProfile>>> {
        let key = |l: usize| FragmentKey {
            series: series.into(),
            version,
            anchor,
            l,
            knobs: knobs.into(),
        };
        let missing = (anchor..=hi).filter(|&l| !self.map.contains_key(&key(l))).count() as u64;
        if missing > 0 {
            self.stats.misses += missing;
            return None;
        }
        self.tick += 1;
        let mut out = Vec::with_capacity(hi - anchor + 1);
        for l in anchor..=hi {
            let entry = self.map.get_mut(&key(l)).expect("all lengths present");
            entry.last_used = self.tick;
            self.stats.hits += 1;
            out.push(Arc::clone(&entry.fragment));
        }
        Some(out)
    }

    /// Inserts a fragment, evicting least-recently-used fragments until the
    /// budget holds. A fragment larger than the whole budget is simply not
    /// cached — the planner only ever trades memory for recomputation,
    /// never correctness.
    pub fn insert(&mut self, key: FragmentKey, fragment: Arc<LengthProfile>) {
        let bytes = entry_bytes(&key, &fragment);
        if bytes > self.budget {
            return;
        }
        self.tick += 1;
        if let Some(old) = self.map.remove(&key) {
            self.used -= old.bytes;
        }
        self.used += bytes;
        self.map.insert(key, Entry { fragment, bytes, last_used: self.tick });
        self.evict_to_budget();
    }

    /// Takes the parked segment state under `(series, anchor, knobs)` out
    /// of the cache, if any, transferring ownership (and its bytes) to the
    /// caller — the planner extends/replays it, then returns it via
    /// [`FragmentCache::put_state`].
    pub fn take_state(&mut self, series: &str, anchor: usize, knobs: &str) -> Option<SegmentState> {
        let key = StateKey { series: series.into(), anchor, knobs: knobs.into() };
        let entry = self.states.remove(&key)?;
        self.used -= entry.bytes;
        Some(entry.state)
    }

    /// Parks a segment state for future extension. Replaces any previous
    /// state under the same key; a state larger than the whole budget is
    /// dropped (the planner then recomputes, which is always correct).
    pub fn put_state(&mut self, series: &str, anchor: usize, knobs: &str, state: SegmentState) {
        let key = StateKey { series: series.into(), anchor, knobs: knobs.into() };
        let bytes = state_bytes(&key, &state);
        if bytes > self.budget {
            if let Some(old) = self.states.remove(&key) {
                self.used -= old.bytes;
            }
            return;
        }
        self.tick += 1;
        if let Some(old) = self.states.remove(&key) {
            self.used -= old.bytes;
        }
        self.used += bytes;
        self.states.insert(key, StateEntry { state, bytes, last_used: self.tick });
        self.evict_to_budget();
    }

    /// Notes one in-place extension (surfaced through `STATS`).
    pub fn note_extended(&mut self) {
        self.stats.extended += 1;
    }

    /// Evicts least-recently-used entries — fragments and parked states
    /// compete under one clock — until the budget holds.
    fn evict_to_budget(&mut self) {
        while self.used > self.budget {
            let frag_lru = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, e)| (k.clone(), e.last_used));
            let state_lru = self
                .states
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, e)| (k.clone(), e.last_used));
            let evict_fragment = match (&frag_lru, &state_lru) {
                (Some((_, f)), Some((_, s))) => f <= s,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => unreachable!("used > budget implies non-empty"),
            };
            if evict_fragment {
                let (key, _) = frag_lru.expect("checked above");
                let e = self.map.remove(&key).expect("key just observed");
                self.used -= e.bytes;
            } else {
                let (key, _) = state_lru.expect("checked above");
                let e = self.states.remove(&key).expect("key just observed");
                self.used -= e.bytes;
            }
            self.stats.evictions += 1;
        }
    }

    /// Drops every fragment **and** parked state for `series`, any
    /// version. This is the replace/`LOAD` path: a replace rewrites the
    /// series' history, so nothing computed against it can be extended.
    pub fn invalidate_series(&mut self, series: &str) {
        let stale: Vec<FragmentKey> =
            self.map.keys().filter(|k| k.series == series).cloned().collect();
        for key in stale {
            let e = self.map.remove(&key).expect("key just observed");
            self.used -= e.bytes;
            self.stats.invalidated += 1;
        }
        let stale: Vec<StateKey> =
            self.states.keys().filter(|k| k.series == series).cloned().collect();
        for key in stale {
            let e = self.states.remove(&key).expect("key just observed");
            self.used -= e.bytes;
        }
    }

    /// Garbage-collects fragments for `series` whose version watermark is
    /// behind `current_version` — the lazy-append path. Parked states are
    /// deliberately kept: they are what the stale fragments get *extended
    /// from*. Returns the number of fragments collected.
    pub fn invalidate_stale(&mut self, series: &str, current_version: u64) -> usize {
        let stale: Vec<FragmentKey> = self
            .map
            .keys()
            .filter(|k| k.series == series && k.version < current_version)
            .cloned()
            .collect();
        let count = stale.len();
        for key in stale {
            let e = self.map.remove(&key).expect("key just observed");
            self.used -= e.bytes;
            self.stats.invalidated += 1;
        }
        count
    }

    /// Live fragment count (parked states not included).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Number of parked segment states.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// Whether the cache holds neither fragments nor parked states.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty() && self.states.is_empty()
    }

    /// Bytes currently accounted against the budget.
    pub fn used_bytes(&self) -> usize {
        self.used
    }

    /// The configured byte budget.
    pub fn budget_bytes(&self) -> usize {
        self.budget
    }

    /// Counter snapshot.
    pub fn stats(&self) -> FragmentCacheStats {
        self.stats
    }
}

/// Bytes one fragment charges against the budget: the key's variable parts
/// plus the profile's heap footprint.
fn entry_bytes(key: &FragmentKey, fragment: &LengthProfile) -> usize {
    key.series.len()
        + std::mem::size_of_val(&key.version)
        + std::mem::size_of_val(&key.anchor)
        + std::mem::size_of_val(&key.l)
        + key.knobs.len()
        + fragment.heap_bytes()
}

/// Bytes one parked state charges: key plus the state's heap footprint
/// (anchor profile, top-`p` partials, and the qt tail).
fn state_bytes(key: &StateKey, state: &SegmentState) -> usize {
    key.series.len() + std::mem::size_of_val(&key.anchor) + key.knobs.len() + state.heap_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use valmod_core::{LengthMethod, Valmod};
    use valmod_data::generators::random_walk;
    use valmod_mp::ProfiledSeries;
    use valmod_obs::SharedRecorder;

    fn fragment(l: usize, rows: usize) -> Arc<LengthProfile> {
        Arc::new(LengthProfile {
            l,
            mp: vec![1.0; rows],
            ip: vec![0; rows],
            method: LengthMethod::FullProfile,
            motif: None,
            known_entries: rows,
            valid_rows: rows,
            nonvalid_rows: 0,
            recomputed_rows: 0,
        })
    }

    fn key(series: &str, version: u64, anchor: usize, l: usize) -> FragmentKey {
        FragmentKey { series: series.into(), version, anchor, l, knobs: "p=8;excl=1/2".into() }
    }

    fn fill_segment(cache: &mut FragmentCache, anchor: usize, hi: usize) {
        for l in anchor..=hi {
            cache.insert(key("s", 1, anchor, l), fragment(l, 32));
        }
    }

    #[test]
    fn segment_lookup_is_all_or_nothing() {
        let mut cache = FragmentCache::new(1 << 20);
        fill_segment(&mut cache, 16, 20);
        let seg = cache.get_segment("s", 1, 16, 20, "p=8;excl=1/2").unwrap();
        assert_eq!(seg.len(), 5);
        assert_eq!(seg[0].l, 16);
        assert_eq!(seg[4].l, 20);
        // One length short of the asked range: the whole lookup misses.
        assert!(cache.get_segment("s", 1, 16, 21, "p=8;excl=1/2").is_none());
        let s = cache.stats();
        assert_eq!(s.hits, 5);
        assert_eq!(s.misses, 1, "only the absent length counts as a miss");
    }

    #[test]
    fn keys_split_on_version_anchor_and_knobs() {
        let mut cache = FragmentCache::new(1 << 20);
        fill_segment(&mut cache, 16, 18);
        assert!(cache.get_segment("s", 2, 16, 18, "p=8;excl=1/2").is_none());
        assert!(cache.get_segment("s", 1, 17, 18, "p=8;excl=1/2").is_none());
        assert!(cache.get_segment("s", 1, 16, 18, "p=50;excl=1/2").is_none());
        assert!(cache.get_segment("s", 1, 16, 18, "p=8;excl=1/2").is_some());
    }

    #[test]
    fn lru_eviction_respects_budget() {
        let one = entry_bytes(&key("s", 1, 16, 16), &fragment(16, 32));
        let mut cache = FragmentCache::new(2 * one + 8);
        cache.insert(key("s", 1, 16, 16), fragment(16, 32));
        cache.insert(key("s", 1, 16, 17), fragment(17, 32));
        // Refresh 16, insert a third: 17 is the LRU.
        assert!(cache.get_segment("s", 1, 16, 16, "p=8;excl=1/2").is_some());
        cache.insert(key("s", 1, 16, 18), fragment(18, 32));
        assert!(cache.get_segment("s", 1, 17, 17, "p=8;excl=1/2").is_none());
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.used_bytes() <= cache.budget_bytes());
    }

    /// A real advance-ready state over the first `n` samples of a fixed
    /// 240-sample walk, so tests can grow the series afterwards in the
    /// state's pinned frame.
    fn captured_state(n: usize, anchor: usize) -> (SegmentState, Vec<f64>) {
        let series = random_walk(240, 3);
        let ps = ProfiledSeries::from_values(&series[..n]).unwrap();
        let (_, state) =
            Valmod::new(anchor, anchor + 2).run_lengths_capturing(&ps, anchor, anchor + 2).unwrap();
        (state.expect("single-threaded runs capture"), series)
    }

    #[test]
    fn parked_states_round_trip_with_exact_accounting() {
        let mut cache = FragmentCache::new(1 << 20);
        let (state, _) = captured_state(80, 8);
        let skey = StateKey { series: "s".into(), anchor: 8, knobs: "p=50;excl=1/2".into() };
        let bytes = state_bytes(&skey, &state);
        cache.put_state("s", 8, "p=50;excl=1/2", state);
        assert_eq!(cache.state_count(), 1);
        assert_eq!(cache.used_bytes(), bytes);

        let taken = cache.take_state("s", 8, "p=50;excl=1/2").expect("parked above");
        assert_eq!(cache.used_bytes(), 0, "take transfers the bytes to the caller");
        assert!(cache.take_state("s", 8, "p=50;excl=1/2").is_none());
        assert_eq!(taken.anchor(), 8);
        assert_eq!(taken.n(), 80);
    }

    #[test]
    fn extending_a_state_changes_its_bytes_and_accounting_follows() {
        let mut cache = FragmentCache::new(1 << 20);
        let (state, series) = captured_state(80, 8);
        let offset = {
            let ps = ProfiledSeries::from_values(&series[..80]).unwrap();
            ps.offset()
        };
        cache.put_state("s", 8, "p=50;excl=1/2", state);
        let before = cache.used_bytes();

        let mut state = cache.take_state("s", 8, "p=50;excl=1/2").unwrap();
        let grown = ProfiledSeries::with_offset(&series[..140], offset).unwrap();
        state.extend(&grown, &SharedRecorder::noop()).unwrap();
        cache.put_state("s", 8, "p=50;excl=1/2", state);
        cache.note_extended();

        assert!(cache.used_bytes() > before, "an extended state must charge its grown size");
        let skey = StateKey { series: "s".into(), anchor: 8, knobs: "p=50;excl=1/2".into() };
        let entry = cache.states.get(&skey).unwrap();
        assert_eq!(entry.bytes, state_bytes(&skey, &entry.state));
        assert_eq!(cache.used_bytes(), entry.bytes);
        assert_eq!(cache.stats().extended, 1);
    }

    #[test]
    fn append_staleness_is_collected_lazily_but_states_survive() {
        let mut cache = FragmentCache::new(1 << 20);
        fill_segment(&mut cache, 16, 18); // version 1 fragments
        cache.insert(key("s", 2, 16, 16), fragment(16, 32));
        let (state, _) = captured_state(80, 8);
        cache.put_state("s", 8, "p=8;excl=1/2", state);

        let collected = cache.invalidate_stale("s", 2);
        assert_eq!(collected, 3, "only the version-1 fragments are behind the watermark");
        assert_eq!(cache.len(), 1, "the current-version fragment survives");
        assert_eq!(cache.state_count(), 1, "states are what stale fragments extend from");
        assert_eq!(cache.stats().invalidated, 3);
        assert_eq!(cache.invalidate_stale("s", 2), 0, "idempotent at the same watermark");

        // A replace purges states too: nothing survives a rewritten history.
        cache.invalidate_series("s");
        assert!(cache.is_empty());
        assert_eq!(cache.used_bytes(), 0);
    }

    #[test]
    fn oversized_and_zero_budget_states_are_rejected_cleanly() {
        let (state, _) = captured_state(80, 8);
        let mut cache = FragmentCache::new(0);
        cache.put_state("s", 8, "p=50;excl=1/2", state.clone());
        assert!(cache.is_empty(), "zero budget disables state parking");
        assert_eq!(cache.used_bytes(), 0);

        // A budget smaller than the state: parking is refused, and the
        // refusal also drops any stale previous state under the key rather
        // than leaving it to be served later.
        let skey = StateKey { series: "s".into(), anchor: 8, knobs: "p=50;excl=1/2".into() };
        let mut cache = FragmentCache::new(state_bytes(&skey, &state) + 64);
        cache.put_state("s", 8, "p=50;excl=1/2", state.clone());
        assert_eq!(cache.state_count(), 1);
        let (bigger, _) = captured_state(200, 8);
        cache.put_state("s", 8, "p=50;excl=1/2", bigger);
        assert!(cache.is_empty(), "oversized replacement drops the stale state too");
        assert_eq!(cache.used_bytes(), 0);
    }

    #[test]
    fn fragments_and_states_compete_under_one_lru_clock() {
        let (state, _) = captured_state(80, 8);
        let skey = StateKey { series: "s".into(), anchor: 8, knobs: "p=8;excl=1/2".into() };
        let sbytes = state_bytes(&skey, &state);
        let fbytes = entry_bytes(&key("s", 1, 16, 16), &fragment(16, 32));
        // Room for the state plus one fragment, not two.
        let mut cache = FragmentCache::new(sbytes + fbytes + fbytes / 2);
        cache.put_state("s", 8, "p=8;excl=1/2", state);
        cache.insert(key("s", 1, 16, 16), fragment(16, 32));
        assert_eq!(cache.stats().evictions, 0);
        // The state is the LRU; a second fragment evicts it, not fragment 16.
        cache.insert(key("s", 1, 16, 17), fragment(17, 32));
        assert_eq!(cache.state_count(), 0, "oldest entry goes first, whichever map holds it");
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.used_bytes() <= cache.budget_bytes());
    }

    #[test]
    fn invalidation_and_zero_budget() {
        let mut cache = FragmentCache::new(0);
        cache.insert(key("s", 1, 16, 16), fragment(16, 8));
        assert!(cache.is_empty(), "zero budget disables fragment reuse");
        let mut cache = FragmentCache::new(1 << 20);
        fill_segment(&mut cache, 16, 18);
        cache.insert(key("t", 1, 16, 16), fragment(16, 8));
        cache.invalidate_series("s");
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().invalidated, 3);
        assert_eq!(
            cache.used_bytes(),
            entry_bytes(&key("t", 1, 16, 16), &fragment(16, 8)),
            "accounting survives invalidation"
        );
    }

    mod accounting_props {
        use super::*;
        use proptest::prelude::*;
        use std::sync::OnceLock;
        use valmod_core::ValmodConfig;

        /// Three advance-ready states of different sizes (tiny `p` keeps
        /// them cheap); swapping them under one key models an in-place
        /// extension changing an entry's byte footprint.
        fn states() -> &'static Vec<SegmentState> {
            static STATES: OnceLock<Vec<SegmentState>> = OnceLock::new();
            STATES.get_or_init(|| {
                let series = random_walk(160, 9);
                [40usize, 70, 100]
                    .iter()
                    .map(|&n| {
                        let ps = ProfiledSeries::from_values(&series[..n]).unwrap();
                        let mut cfg = ValmodConfig::new(8, 10);
                        cfg.p = 2;
                        let (_, state) =
                            Valmod::from_config(cfg).run_lengths_capturing(&ps, 8, 10).unwrap();
                        state.expect("single-threaded runs capture")
                    })
                    .collect()
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            /// After any randomized sequence of fragment inserts, state
            /// park/take cycles (including size-changing replacements, the
            /// shape an in-place extension produces), lazy staleness GC,
            /// and full invalidation, the tracked byte total equals the
            /// sum recomputed from both live maps and never exceeds the
            /// budget.
            #[test]
            fn used_bytes_equals_recomputed_sum_across_both_maps(
                ops in prop::collection::vec(
                    (0usize..7, 0usize..2, 1u64..4, 0usize..2, 0usize..3),
                    1..100,
                ),
                budget in 1024usize..32768,
            ) {
                let series = ["a", "bb"];
                let anchors = [8usize, 16];
                let mut cache = FragmentCache::new(budget);
                for (op, s, version, a, size) in ops {
                    let name = series[s];
                    let anchor = anchors[a];
                    match op {
                        0 | 1 => cache.insert(
                            key(name, version, anchor, anchor + size),
                            fragment(anchor + size, 16 * (size + 1)),
                        ),
                        2 => { cache.get_segment(name, version, anchor, anchor + 2, "p=8;excl=1/2"); }
                        3 => cache.put_state(name, anchor, "p=8;excl=1/2", states()[size].clone()),
                        4 => { cache.take_state(name, anchor, "p=8;excl=1/2"); }
                        5 => { cache.invalidate_stale(name, version); }
                        _ => cache.invalidate_series(name),
                    }
                    let mut recomputed = 0usize;
                    for (k, e) in &cache.map {
                        prop_assert_eq!(e.bytes, entry_bytes(k, &e.fragment));
                        recomputed += e.bytes;
                    }
                    for (k, e) in &cache.states {
                        prop_assert_eq!(e.bytes, state_bytes(k, &e.state));
                        recomputed += e.bytes;
                    }
                    prop_assert_eq!(cache.used_bytes(), recomputed);
                    prop_assert!(cache.used_bytes() <= budget);
                }
            }
        }
    }
}
