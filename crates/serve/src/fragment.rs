//! The per-length profile fragment cache behind the query planner.
//!
//! Where the result cache ([`crate::cache`]) stores *finished query
//! bodies* keyed by the whole request, this cache stores the reusable
//! intermediate: one [`LengthProfile`] per subsequence length, keyed by
//! `(series, version, anchor, ℓ, knobs)`. The **anchor** is the length at
//! which the producing segment computed its full matrix profile before
//! advancing via `ComputeSubMP` — a fragment is a pure function of that
//! tuple (see [`valmod_core::Valmod::run_lengths_on`]), so replaying it is
//! bit-identical to recomputing it, for any client and any query shape.
//!
//! `knobs` canonicalises the result-affecting per-length parameters (`p`
//! and the reduced exclusion policy); ranking parameters (`top`, `k`,
//! `radius`) are deliberately excluded, so a MOTIFS and a DISCORDS query
//! over the same range share fragments. Versioned keys make stale hits
//! structurally impossible, exactly as in the result cache, and
//! append/replace additionally purge a series' fragments eagerly.

use std::collections::HashMap;
use std::sync::Arc;

use valmod_core::LengthProfile;

/// Fragment key: series identity + data version + producing anchor +
/// length + canonical per-length knobs.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FragmentKey {
    /// Series name.
    pub series: String,
    /// Series version the fragment was computed against.
    pub version: u64,
    /// Anchor length of the producing segment (where the full profile ran).
    pub anchor: usize,
    /// Subsequence length of this fragment.
    pub l: usize,
    /// Canonical per-length knobs, e.g. `p=50;excl=1/2`.
    pub knobs: String,
}

#[derive(Debug)]
struct Entry {
    fragment: Arc<LengthProfile>,
    bytes: usize,
    last_used: u64,
}

/// Counters exposed through `STATS` (`planner` section).
#[derive(Debug, Default, Clone, Copy)]
pub struct FragmentCacheStats {
    /// Per-length lookups satisfied from a cached fragment.
    pub hits: u64,
    /// Per-length lookups that forced a segment recompute.
    pub misses: u64,
    /// Fragments evicted to stay within the byte budget.
    pub evictions: u64,
    /// Fragments purged by series invalidation (append/replace).
    pub invalidated: u64,
}

/// An LRU cache of per-length profile fragments, bounded by approximate
/// bytes (the dominant cost is the `mp`/`ip` vectors, ~16 bytes per row).
#[derive(Debug)]
pub struct FragmentCache {
    budget: usize,
    used: usize,
    tick: u64,
    map: HashMap<FragmentKey, Entry>,
    stats: FragmentCacheStats,
}

impl FragmentCache {
    /// A cache bounded by `budget` bytes (0 disables fragment reuse — the
    /// planner then recomputes every segment, which is always correct).
    pub fn new(budget: usize) -> Self {
        FragmentCache {
            budget,
            used: 0,
            tick: 0,
            map: HashMap::new(),
            stats: FragmentCacheStats::default(),
        }
    }

    /// All-or-nothing lookup of one planned segment: the fragments for
    /// every length `anchor..=hi` under the same `(series, version,
    /// anchor, knobs)`. Returns `None` — counting one miss per absent
    /// length — unless **every** length is present, because a partially
    /// cached segment is recomputed whole from its anchor (the advance
    /// chain is only valid from the anchor's full profile).
    pub fn get_segment(
        &mut self,
        series: &str,
        version: u64,
        anchor: usize,
        hi: usize,
        knobs: &str,
    ) -> Option<Vec<Arc<LengthProfile>>> {
        let key = |l: usize| FragmentKey {
            series: series.into(),
            version,
            anchor,
            l,
            knobs: knobs.into(),
        };
        let missing = (anchor..=hi).filter(|&l| !self.map.contains_key(&key(l))).count() as u64;
        if missing > 0 {
            self.stats.misses += missing;
            return None;
        }
        self.tick += 1;
        let mut out = Vec::with_capacity(hi - anchor + 1);
        for l in anchor..=hi {
            let entry = self.map.get_mut(&key(l)).expect("all lengths present");
            entry.last_used = self.tick;
            self.stats.hits += 1;
            out.push(Arc::clone(&entry.fragment));
        }
        Some(out)
    }

    /// Inserts a fragment, evicting least-recently-used fragments until the
    /// budget holds. A fragment larger than the whole budget is simply not
    /// cached — the planner only ever trades memory for recomputation,
    /// never correctness.
    pub fn insert(&mut self, key: FragmentKey, fragment: Arc<LengthProfile>) {
        let bytes = entry_bytes(&key, &fragment);
        if bytes > self.budget {
            return;
        }
        self.tick += 1;
        if let Some(old) = self.map.remove(&key) {
            self.used -= old.bytes;
        }
        self.used += bytes;
        self.map.insert(key, Entry { fragment, bytes, last_used: self.tick });
        while self.used > self.budget {
            let lru = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
                .expect("used > budget implies non-empty");
            let e = self.map.remove(&lru).expect("key just observed");
            self.used -= e.bytes;
            self.stats.evictions += 1;
        }
    }

    /// Drops every fragment for `series`, any version (append/replace).
    pub fn invalidate_series(&mut self, series: &str) {
        let stale: Vec<FragmentKey> =
            self.map.keys().filter(|k| k.series == series).cloned().collect();
        for key in stale {
            let e = self.map.remove(&key).expect("key just observed");
            self.used -= e.bytes;
            self.stats.invalidated += 1;
        }
    }

    /// Live fragment count.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Bytes currently accounted against the budget.
    pub fn used_bytes(&self) -> usize {
        self.used
    }

    /// The configured byte budget.
    pub fn budget_bytes(&self) -> usize {
        self.budget
    }

    /// Counter snapshot.
    pub fn stats(&self) -> FragmentCacheStats {
        self.stats
    }
}

/// Bytes one fragment charges against the budget: the key's variable parts
/// plus the profile's heap footprint.
fn entry_bytes(key: &FragmentKey, fragment: &LengthProfile) -> usize {
    key.series.len()
        + std::mem::size_of_val(&key.version)
        + std::mem::size_of_val(&key.anchor)
        + std::mem::size_of_val(&key.l)
        + key.knobs.len()
        + fragment.heap_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use valmod_core::LengthMethod;

    fn fragment(l: usize, rows: usize) -> Arc<LengthProfile> {
        Arc::new(LengthProfile {
            l,
            mp: vec![1.0; rows],
            ip: vec![0; rows],
            method: LengthMethod::FullProfile,
            motif: None,
            known_entries: rows,
            valid_rows: rows,
            nonvalid_rows: 0,
            recomputed_rows: 0,
        })
    }

    fn key(series: &str, version: u64, anchor: usize, l: usize) -> FragmentKey {
        FragmentKey { series: series.into(), version, anchor, l, knobs: "p=8;excl=1/2".into() }
    }

    fn fill_segment(cache: &mut FragmentCache, anchor: usize, hi: usize) {
        for l in anchor..=hi {
            cache.insert(key("s", 1, anchor, l), fragment(l, 32));
        }
    }

    #[test]
    fn segment_lookup_is_all_or_nothing() {
        let mut cache = FragmentCache::new(1 << 20);
        fill_segment(&mut cache, 16, 20);
        let seg = cache.get_segment("s", 1, 16, 20, "p=8;excl=1/2").unwrap();
        assert_eq!(seg.len(), 5);
        assert_eq!(seg[0].l, 16);
        assert_eq!(seg[4].l, 20);
        // One length short of the asked range: the whole lookup misses.
        assert!(cache.get_segment("s", 1, 16, 21, "p=8;excl=1/2").is_none());
        let s = cache.stats();
        assert_eq!(s.hits, 5);
        assert_eq!(s.misses, 1, "only the absent length counts as a miss");
    }

    #[test]
    fn keys_split_on_version_anchor_and_knobs() {
        let mut cache = FragmentCache::new(1 << 20);
        fill_segment(&mut cache, 16, 18);
        assert!(cache.get_segment("s", 2, 16, 18, "p=8;excl=1/2").is_none());
        assert!(cache.get_segment("s", 1, 17, 18, "p=8;excl=1/2").is_none());
        assert!(cache.get_segment("s", 1, 16, 18, "p=50;excl=1/2").is_none());
        assert!(cache.get_segment("s", 1, 16, 18, "p=8;excl=1/2").is_some());
    }

    #[test]
    fn lru_eviction_respects_budget() {
        let one = entry_bytes(&key("s", 1, 16, 16), &fragment(16, 32));
        let mut cache = FragmentCache::new(2 * one + 8);
        cache.insert(key("s", 1, 16, 16), fragment(16, 32));
        cache.insert(key("s", 1, 16, 17), fragment(17, 32));
        // Refresh 16, insert a third: 17 is the LRU.
        assert!(cache.get_segment("s", 1, 16, 16, "p=8;excl=1/2").is_some());
        cache.insert(key("s", 1, 16, 18), fragment(18, 32));
        assert!(cache.get_segment("s", 1, 17, 17, "p=8;excl=1/2").is_none());
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.used_bytes() <= cache.budget_bytes());
    }

    #[test]
    fn invalidation_and_zero_budget() {
        let mut cache = FragmentCache::new(0);
        cache.insert(key("s", 1, 16, 16), fragment(16, 8));
        assert!(cache.is_empty(), "zero budget disables fragment reuse");
        let mut cache = FragmentCache::new(1 << 20);
        fill_segment(&mut cache, 16, 18);
        cache.insert(key("t", 1, 16, 16), fragment(16, 8));
        cache.invalidate_series("s");
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().invalidated, 3);
        assert_eq!(
            cache.used_bytes(),
            entry_bytes(&key("t", 1, 16, 16), &fragment(16, 8)),
            "accounting survives invalidation"
        );
    }
}
