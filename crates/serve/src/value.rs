//! A hand-rolled, line-delimited JSON-ish value: the wire format of
//! `valmod-serve`.
//!
//! The build environment is fully offline (no `serde`), and the protocol
//! needs exactly one self-describing tree type, so this module implements
//! the JSON subset the service speaks: `null`, booleans, finite `f64`
//! numbers, strings with the standard escapes, arrays, and objects.
//! Objects preserve insertion order (encoding is deterministic, which the
//! result cache's byte accounting and the tests rely on).
//!
//! Deviation from strict JSON: non-finite numbers encode as `null`
//! (matrix-profile slots can legitimately be `+∞`), and parsing accepts
//! nothing that strict JSON would reject — so any real JSON library can
//! talk to the server.

use crate::error::{ServeError, ServeResult};

/// A JSON-ish tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (always carried as `f64`; offsets stay exact below 2⁵³).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in insertion order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj(fields: Vec<(&str, Value)>) -> Value {
        Value::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Looks up a key in an object (`None` for non-objects/missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is a numeric value.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a non-negative integer, if it is one exactly.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as usize)
            }
            _ => None,
        }
    }

    /// The number as a `u64`, if it is a non-negative integer exactly
    /// representable in the wire's `f64` (≤ 2⁵³) — the checked alternative
    /// to an `as u64` cast on hostile input.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element slice, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The key/value pairs, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Encodes to a single compact line (no interior newlines, ever —
    /// the framing is one request or response per `\n`-terminated line).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.encode_into(&mut out);
        out
    }

    fn encode_into(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Num(n) => {
                if n.is_finite() {
                    // `{}` on f64 prints the shortest round-tripping form.
                    out.push_str(&format!("{n}"));
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => encode_string(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.encode_into(out);
                }
                out.push(']');
            }
            Value::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    encode_string(k, out);
                    out.push(':');
                    v.encode_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one value from a line, requiring nothing but whitespace after
    /// it.
    pub fn parse(input: &str) -> ServeResult<Value> {
        let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(v)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Value {
        Value::Num(n)
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Value {
        Value::Num(n as f64)
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Value {
        Value::Num(n as f64)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

fn encode_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> ServeError {
        ServeError::Protocol(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> ServeResult<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> ServeResult<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> ServeResult<Value> {
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character {:?}", c as char))),
        }
    }

    fn number(&mut self) -> ServeResult<Value> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        let n: f64 = text.parse().map_err(|_| self.err("malformed number"))?;
        if !n.is_finite() {
            return Err(self.err("number out of range"));
        }
        Ok(Value::Num(n))
    }

    fn string(&mut self) -> ServeResult<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            // Scan a run of plain UTF-8 up to the next quote or escape.
            let run_start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[run_start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogates are not paired (the encoder never
                            // emits them); map them to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn array(&mut self) -> ServeResult<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> ServeResult<Value> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Value) {
        let line = v.encode();
        assert!(!line.contains('\n'), "framing requires single-line encoding: {line}");
        assert_eq!(&Value::parse(&line).unwrap(), v, "roundtrip of {line}");
    }

    #[test]
    fn scalars_roundtrip() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Num(0.0),
            Value::Num(-17.25),
            Value::Num(1e-300),
            Value::Num(123456789012345.0),
            Value::str(""),
            Value::str("plain"),
            Value::str("esc \" \\ \n \t \r del\u{7f} ünïcode ☃"),
            Value::str("\u{1}control"),
        ] {
            roundtrip(&v);
        }
    }

    #[test]
    fn trees_roundtrip() {
        let v = Value::obj(vec![
            ("cmd", Value::str("motifs")),
            ("values", Value::Arr(vec![Value::Num(1.5), Value::Null, Value::Bool(false)])),
            (
                "nested",
                Value::obj(vec![("empty_arr", Value::Arr(vec![])), ("o", Value::obj(vec![]))]),
            ),
        ]);
        roundtrip(&v);
    }

    #[test]
    fn f64_precision_survives() {
        let xs = [std::f64::consts::PI, 1.0 / 3.0, f64::MIN_POSITIVE, -0.0];
        let v = Value::Arr(xs.iter().map(|&x| Value::Num(x)).collect());
        let back = Value::parse(&v.encode()).unwrap();
        let arr = back.as_arr().unwrap();
        for (a, b) in xs.iter().zip(arr) {
            assert_eq!(a.to_bits(), b.as_f64().unwrap().to_bits());
        }
    }

    #[test]
    fn non_finite_encodes_as_null() {
        assert_eq!(Value::Num(f64::INFINITY).encode(), "null");
        assert_eq!(Value::Num(f64::NAN).encode(), "null");
    }

    #[test]
    fn whitespace_and_json_compat() {
        let v = Value::parse("  { \"a\" : [ 1 , 2.5 ] , \"b\" : null }  ").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(v.get("b"), Some(&Value::Null));
        assert_eq!(Value::parse("\"a\\u00e9b\"").unwrap(), Value::str("aéb"));
    }

    #[test]
    fn malformed_inputs_error_cleanly() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "nul",
            "\"unterminated",
            "\"bad \\q escape\"",
            "1 2",
            "[1]]",
            "--5",
            "1e999",
        ] {
            assert!(Value::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn accessors_type_check() {
        let v = Value::parse("{\"n\":3,\"neg\":-1,\"frac\":2.5,\"s\":\"x\",\"b\":true}").unwrap();
        assert_eq!(v.get("n").unwrap().as_usize(), Some(3));
        assert_eq!(v.get("neg").unwrap().as_usize(), None);
        assert_eq!(v.get("frac").unwrap().as_usize(), None);
        assert_eq!(v.get("frac").unwrap().as_f64(), Some(2.5));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Value::Null.get("n"), None);
    }
}
