//! Service-layer error aliases over the unified workspace error.
//!
//! The service layer shares [`ValmodError`] with the rest of the stack:
//! a non-finite sample rejected during `APPEND` is the *same* value (and
//! the same `kind` string on the wire) as one rejected by a file loader
//! — no per-crate wrapping or stringly conversions. `ServeError` remains
//! as an alias so existing call sites and client code keep compiling.
//!
//! Every variant maps to a stable machine-readable `kind` so clients can
//! branch on categories while humans read the message. Overload (`busy`)
//! and deadline misses are ordinary, expected errors — the scheduler
//! degrades by *reporting* them, never by panicking or dropping
//! connections.

pub use valmod_data::error::ValmodError;

/// Alias kept for source compatibility with the service layer's
/// original error type.
pub type ServeError = ValmodError;

/// Result alias for the service layer.
pub type ServeResult<T> = Result<T, ValmodError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_variants_share_the_workspace_enum() {
        // A data-validation failure and a service failure are the same
        // type end to end; `?` across the store/engine boundary is a
        // no-op rather than a conversion.
        fn validate() -> valmod_data::error::Result<()> {
            Err(ValmodError::NonFinite { index: 3 })
        }
        fn handle() -> ServeResult<()> {
            validate()?;
            Ok(())
        }
        let err = handle().unwrap_err();
        assert_eq!(err.kind(), "non_finite");
        assert!(matches!(err, ServeError::NonFinite { index: 3 }));
    }
}
