//! The service-layer error type and its wire representation.
//!
//! Every failure a client can observe maps to a stable `kind` string so
//! clients can branch on machine-readable categories while humans read the
//! message. Overload (`busy`) and deadline misses are ordinary, expected
//! errors — the scheduler degrades by *reporting* them, never by panicking
//! or dropping connections.

use valmod_data::error::DataError;

/// Result alias for the service layer.
pub type ServeResult<T> = Result<T, ServeError>;

/// Everything that can go wrong between a request line and a response line.
#[derive(Debug)]
pub enum ServeError {
    /// The bounded request queue is full; retry later (load shedding).
    Busy,
    /// The request's deadline passed before a result could be delivered.
    DeadlineExceeded,
    /// The engine is shutting down and accepts no new work.
    ShuttingDown,
    /// No series is loaded under the given name.
    UnknownSeries(String),
    /// A series with this name already exists (and `replace` was not set).
    SeriesExists(String),
    /// The request line could not be parsed or is missing fields.
    Protocol(String),
    /// Invalid data or parameters (non-finite samples, bad length range…).
    Data(DataError),
    /// A socket-level failure.
    Io(std::io::Error),
}

impl ServeError {
    /// The stable machine-readable error category used on the wire.
    pub fn kind(&self) -> &'static str {
        match self {
            ServeError::Busy => "busy",
            ServeError::DeadlineExceeded => "deadline",
            ServeError::ShuttingDown => "shutting_down",
            ServeError::UnknownSeries(_) => "unknown_series",
            ServeError::SeriesExists(_) => "series_exists",
            ServeError::Protocol(_) => "protocol",
            ServeError::Data(_) => "data",
            ServeError::Io(_) => "io",
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Busy => write!(f, "request queue is full; retry later"),
            ServeError::DeadlineExceeded => write!(f, "deadline exceeded"),
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::UnknownSeries(name) => write!(f, "no series named {name:?} is loaded"),
            ServeError::SeriesExists(name) => {
                write!(f, "series {name:?} already exists (pass \"replace\": true to overwrite)")
            }
            ServeError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ServeError::Data(e) => write!(f, "{e}"),
            ServeError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<DataError> for ServeError {
    fn from(e: DataError) -> Self {
        ServeError::Data(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_stable_and_distinct() {
        let errs = [
            ServeError::Busy,
            ServeError::DeadlineExceeded,
            ServeError::ShuttingDown,
            ServeError::UnknownSeries("x".into()),
            ServeError::SeriesExists("x".into()),
            ServeError::Protocol("bad".into()),
            ServeError::Data(DataError::InvalidParameter("p".into())),
            ServeError::Io(std::io::Error::other("net")),
        ];
        let kinds: Vec<_> = errs.iter().map(|e| e.kind()).collect();
        let mut dedup = kinds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), kinds.len());
        for e in &errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
