//! The LRU result cache with byte-budget accounting.
//!
//! Keys are `(series name, series version, canonical query key)` — the
//! query key embeds [`valmod_core::ValmodConfig::cache_key`], so two
//! requests that differ only in execution knobs (thread count, unreduced
//! exclusion fractions) share an entry, while anything result-affecting
//! (length range, `p`, exclusion policy, top-k…) splits them. Versioned
//! keys make stale hits structurally impossible; on top of that, appends
//! *actively purge* a series' old entries so a hot store can't pin dead
//! results in the budget until eviction reaches them.

use std::collections::HashMap;
use std::sync::Arc;

use crate::value::Value;

/// Cache key: series identity + data version + canonical query.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Series name.
    pub series: String,
    /// Series version the result was computed against.
    pub version: u64,
    /// Canonical query description (kind, parameters, config cache key).
    pub query: String,
}

#[derive(Debug)]
struct Entry {
    value: Arc<Value>,
    bytes: usize,
    last_used: u64,
}

/// Counters exposed through `STATS`.
#[derive(Debug, Default, Clone, Copy)]
pub struct CacheStats {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries evicted to stay within the byte budget.
    pub evictions: u64,
    /// Entries purged by series invalidation (append/replace).
    pub invalidated: u64,
}

/// An LRU cache of encoded query results, bounded by approximate bytes.
#[derive(Debug)]
pub struct ResultCache {
    budget: usize,
    used: usize,
    tick: u64,
    map: HashMap<CacheKey, Entry>,
    stats: CacheStats,
}

impl ResultCache {
    /// A cache bounded by `budget` bytes (0 disables caching entirely).
    pub fn new(budget: usize) -> Self {
        ResultCache { budget, used: 0, tick: 0, map: HashMap::new(), stats: CacheStats::default() }
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: &CacheKey) -> Option<Arc<Value>> {
        self.tick += 1;
        match self.map.get_mut(key) {
            Some(entry) => {
                entry.last_used = self.tick;
                self.stats.hits += 1;
                Some(Arc::clone(&entry.value))
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts a result, evicting least-recently-used entries until the
    /// budget holds. A result larger than the whole budget is simply not
    /// cached (the query still succeeds — the cache only ever trades
    /// memory for recomputation, never correctness).
    pub fn insert(&mut self, key: CacheKey, value: Arc<Value>) {
        let bytes = entry_bytes(&key, &value);
        if bytes > self.budget {
            return;
        }
        self.tick += 1;
        if let Some(old) = self.map.remove(&key) {
            self.used -= old.bytes;
        }
        self.used += bytes;
        self.map.insert(key, Entry { value, bytes, last_used: self.tick });
        while self.used > self.budget {
            // O(n) scan per eviction: entry counts are small (each entry is
            // a whole query result), so a heap would be overkill.
            let lru = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
                .expect("used > budget implies non-empty");
            let e = self.map.remove(&lru).expect("key just observed");
            self.used -= e.bytes;
            self.stats.evictions += 1;
        }
    }

    /// Drops every entry for `series`, any version (append/replace path).
    pub fn invalidate_series(&mut self, series: &str) {
        let stale: Vec<CacheKey> =
            self.map.keys().filter(|k| k.series == series).cloned().collect();
        for key in stale {
            let e = self.map.remove(&key).expect("key just observed");
            self.used -= e.bytes;
            self.stats.invalidated += 1;
        }
    }

    /// Live entry count.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Bytes currently accounted against the budget.
    pub fn used_bytes(&self) -> usize {
        self.used
    }

    /// The configured byte budget.
    pub fn budget_bytes(&self) -> usize {
        self.budget
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

/// Bytes one entry charges against the budget: every key component —
/// including the fixed-width `version` — plus the encoded result. The
/// version's 8 bytes used to be dropped from the sum, slowly understating
/// `used` relative to real footprint on version-heavy workloads.
fn entry_bytes(key: &CacheKey, value: &Value) -> usize {
    key.series.len() + std::mem::size_of_val(&key.version) + key.query.len() + value.encode().len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(series: &str, version: u64, query: &str) -> CacheKey {
        CacheKey { series: series.into(), version, query: query.into() }
    }

    fn payload(n: usize) -> Arc<Value> {
        Arc::new(Value::Arr(vec![Value::Num(1.0); n]))
    }

    #[test]
    fn hit_miss_and_versioning() {
        let mut cache = ResultCache::new(10_000);
        assert!(cache.get(&key("a", 1, "q")).is_none());
        cache.insert(key("a", 1, "q"), payload(4));
        assert!(cache.get(&key("a", 1, "q")).is_some());
        // A different version or query is a different entry.
        assert!(cache.get(&key("a", 2, "q")).is_none());
        assert!(cache.get(&key("a", 1, "q2")).is_none());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 3));
    }

    #[test]
    fn lru_eviction_respects_recency_and_budget() {
        // Budget sized for two payloads; inserting a third evicts the LRU.
        let one = entry_bytes(&key("a", 1, "q1"), &payload(8));
        let mut cache = ResultCache::new(2 * one + 4);
        cache.insert(key("a", 1, "q1"), payload(8));
        cache.insert(key("a", 1, "q2"), payload(8));
        assert!(cache.get(&key("a", 1, "q1")).is_some()); // refresh q1
        cache.insert(key("a", 1, "q3"), payload(8));
        assert!(cache.get(&key("a", 1, "q2")).is_none(), "q2 was LRU");
        assert!(cache.get(&key("a", 1, "q1")).is_some());
        assert!(cache.get(&key("a", 1, "q3")).is_some());
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.used_bytes() <= cache.budget_bytes());
    }

    #[test]
    fn oversized_results_are_skipped() {
        let mut cache = ResultCache::new(16);
        cache.insert(key("a", 1, "q"), payload(1000));
        assert!(cache.is_empty());
        assert_eq!(cache.used_bytes(), 0);
    }

    #[test]
    fn reinsert_replaces_without_double_accounting() {
        let mut cache = ResultCache::new(10_000);
        cache.insert(key("a", 1, "q"), payload(8));
        let used = cache.used_bytes();
        cache.insert(key("a", 1, "q"), payload(8));
        assert_eq!(cache.used_bytes(), used);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn invalidate_series_purges_all_versions() {
        let mut cache = ResultCache::new(10_000);
        cache.insert(key("a", 1, "q1"), payload(2));
        cache.insert(key("a", 2, "q1"), payload(2));
        cache.insert(key("b", 1, "q1"), payload(2));
        cache.invalidate_series("a");
        assert_eq!(cache.len(), 1);
        assert!(cache.get(&key("b", 1, "q1")).is_some());
        assert_eq!(cache.stats().invalidated, 2);
    }

    #[test]
    fn zero_budget_disables_caching() {
        let mut cache = ResultCache::new(0);
        cache.insert(key("a", 1, "q"), payload(1));
        assert!(cache.get(&key("a", 1, "q")).is_none());
    }

    #[test]
    fn entry_bytes_counts_every_key_component() {
        let k = key("ab", 7, "qqq");
        let v = payload(3);
        // series (2) + version (8) + query (3) + encoded value.
        assert_eq!(entry_bytes(&k, &v), 2 + 8 + 3 + v.encode().len());
    }

    mod accounting_props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// After any randomized insert / replace / invalidate sequence,
            /// the tracked byte total equals the sum recomputed from the
            /// live entries, and never exceeds the budget.
            #[test]
            fn used_bytes_equals_recomputed_sum(
                ops in prop::collection::vec(
                    (0usize..4, 0usize..3, 0u64..3, 0usize..3, 1usize..20),
                    1..120,
                ),
                budget in 64usize..2048,
            ) {
                let series = ["a", "bb", "ccc"];
                let queries = ["q", "motifs l=16", "profile l_min=8 l_max=64"];
                let mut cache = ResultCache::new(budget);
                for (op, s, version, q, size) in ops {
                    let k = key(series[s], version, queries[q]);
                    match op {
                        // Insert and replace exercise the same path; the
                        // randomized key means some inserts land on live
                        // entries (replace) and some do not.
                        0 | 1 => cache.insert(k, payload(size)),
                        2 => { cache.get(&k); }
                        _ => cache.invalidate_series(series[s]),
                    }
                    let mut recomputed = 0usize;
                    for (k, e) in &cache.map {
                        prop_assert_eq!(e.bytes, entry_bytes(k, &e.value));
                        recomputed += e.bytes;
                    }
                    prop_assert_eq!(cache.used_bytes(), recomputed);
                    prop_assert!(cache.used_bytes() <= budget);
                }
            }

            /// The striped form of the invariant: a total budget split
            /// across per-stripe caches (as the engine does), mutated
            /// concurrently from several threads with every op routed to
            /// its series' stripe. Whatever the interleaving, each
            /// stripe's tracked total must equal its recomputed sum and
            /// stay within its slice of the budget — and the slices must
            /// sum to exactly the configured total.
            #[test]
            fn striped_accounting_survives_concurrent_mutation(
                per_thread_ops in prop::collection::vec(
                    prop::collection::vec(
                        (0usize..4, 0usize..6, 0u64..3, 0usize..3, 1usize..24),
                        1..60,
                    ),
                    2..5,
                ),
                total_budget in 256usize..4096,
            ) {
                use std::sync::{Arc, Mutex};

                const STRIPES: usize = 4;
                const SERIES: [&str; 6] = ["a", "bb", "ccc", "dddd", "e5", "f6"];
                const QUERIES: [&str; 3] = ["q", "motifs l=16", "discords l_min=8 l_max=64"];
                let budgets = crate::engine::split_budget(total_budget, STRIPES);
                prop_assert_eq!(budgets.iter().sum::<usize>(), total_budget);
                let caches: Arc<Vec<Mutex<ResultCache>>> = Arc::new(
                    budgets.iter().map(|b| Mutex::new(ResultCache::new(*b))).collect(),
                );
                let threads: Vec<_> = per_thread_ops
                    .into_iter()
                    .map(|ops| {
                        let caches = Arc::clone(&caches);
                        std::thread::spawn(move || {
                            for (op, s, version, q, size) in ops {
                                let name = SERIES[s];
                                let stripe = crate::store::stripe_of(name, STRIPES);
                                let mut cache = caches[stripe].lock().unwrap();
                                let k = key(name, version, QUERIES[q]);
                                match op {
                                    0 | 1 => cache.insert(k, payload(size)),
                                    2 => { cache.get(&k); }
                                    _ => cache.invalidate_series(name),
                                }
                            }
                        })
                    })
                    .collect();
                for t in threads {
                    t.join().expect("stripe mutator thread");
                }
                for (i, cache) in caches.iter().enumerate() {
                    let cache = cache.lock().unwrap();
                    let mut recomputed = 0usize;
                    for (k, e) in &cache.map {
                        prop_assert_eq!(e.bytes, entry_bytes(k, &e.value));
                        recomputed += e.bytes;
                    }
                    prop_assert_eq!(cache.used_bytes(), recomputed);
                    prop_assert!(
                        cache.used_bytes() <= budgets[i],
                        "stripe {} over budget: {} > {}",
                        i,
                        cache.used_bytes(),
                        budgets[i]
                    );
                }
            }
        }
    }
}
