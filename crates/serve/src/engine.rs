//! The embeddable query engine: store + cache + worker-pool scheduler.
//!
//! ## Sharding
//!
//! Engine state is **striped**: series names hash into
//! [`crate::store::stripe_of`] buckets, and each stripe owns its slice of
//! every shared structure — the store's map (see [`crate::store`]), a
//! result-cache LRU, a fragment-cache LRU, and a single-flight table —
//! with per-stripe byte budgets that [`split_budget`] carves out of the
//! configured totals. Requests against different series therefore never
//! contend on a common lock; an APPEND on series A cannot delay a MOTIFS
//! on series B, and `STATS` assembles its series inventory from lock-free
//! atomic mirrors. Lock order is store stripe map → per-series lock →
//! leaf cache/flight mutexes, never the other way.
//!
//! ## Scheduling model
//!
//! Ingestion (`load`/`append`) runs on the calling thread under the owning
//! series' write lock — it is O(n·hot lengths) and must be strictly
//! ordered with that series' version counter. Queries are **admitted** on
//! the calling thread (cache probe, so cache hits are O(1) and never
//! consume a queue slot) and **executed** on a fixed worker pool behind a
//! bounded queue:
//!
//! * queue full → [`ServeError::Busy`] immediately (load shedding, never a
//!   panic and never an unbounded backlog);
//! * per-request deadline → checked at dequeue (a request that waited too
//!   long is not computed at all) and again after compute;
//! * a query admitted before an append but dequeued after it is computed
//!   against — and cached under — the *newer* version: execution takes
//!   effect at dequeue time.
//!
//! Workers compute on an `Arc` snapshot of the batch view, so long queries
//! never hold the store lock while appends land.
//!
//! ## Query planning
//!
//! Admission additionally **coalesces** identical concurrent queries: the
//! first request under a cache key becomes the *leader* and submits one
//! job; every later identical request arriving while that job is in
//! flight attaches to it and receives the same payload when it lands
//! (`coalesced: true`, counted in `serve.query.coalesced`). Cold
//! computes themselves run through the [`crate::planner`], which
//! decomposes the length range into segments whose per-length fragments
//! are cached in a [`crate::fragment::FragmentCache`] and recomposed —
//! so overlapping ranges share work across requests, bit-identically.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, SyncSender, TrySendError};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use valmod_core::{
    compute_var_length_motif_sets, top_variable_length_motifs, variable_length_discords, Valmod,
    ValmodConfig,
};
use valmod_mp::motif::top_motifs;
use valmod_mp::{ExclusionPolicy, MatrixProfile, ProfiledSeries};
use valmod_obs::{MetricSnapshot, Recorder, Registry, SharedRecorder, Snapshot};

use crate::cache::{CacheKey, ResultCache};
use crate::error::{ServeError, ServeResult};
use crate::fragment::FragmentCache;
use crate::response::{
    BodyShape, DiscordHit, DiscordsBody, MotifHit, MotifsBody, SetEntry, SetsBody,
};
use crate::store::{SeriesStore, DEFAULT_STRIPES};
use crate::value::Value;

/// Splits a byte budget across `shards` stripes such that the parts sum
/// to exactly `total` (the first `total % shards` stripes get one extra
/// byte). Used for the per-stripe result/fragment cache budgets.
pub fn split_budget(total: usize, shards: usize) -> Vec<usize> {
    let shards = shards.max(1);
    let base = total / shards;
    let rem = total % shards;
    (0..shards).map(|i| base + usize::from(i < rem)).collect()
}

/// Sizing and behaviour knobs for a [`QueryEngine`].
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads executing queries (≥ 1).
    pub workers: usize,
    /// Bounded queue depth between admission and the workers (≥ 1).
    pub queue_depth: usize,
    /// Stripes the store/cache/flight state is sharded across (≥ 1).
    /// More stripes mean less lock contention between series that happen
    /// to hash together; 1 degenerates to the old single-lock layout.
    pub stripes: usize,
    /// Result-cache byte budget, split across stripes (0 disables caching).
    pub cache_bytes: usize,
    /// Planner fragment-cache byte budget (0 disables fragment reuse;
    /// the planner then recomputes every segment).
    pub fragment_cache_bytes: usize,
    /// `ValmodConfig::threads` used inside each query's kernels
    /// (1 = sequential, 0 = all cores).
    pub kernel_threads: usize,
    /// Deadline applied when a request does not carry its own.
    pub default_deadline: Duration,
    /// Directory for snapshots + WALs. `None` keeps the store in memory
    /// (a restart loses everything); `Some` makes every load/append
    /// durable and recovers the directory's contents on startup.
    pub data_dir: Option<PathBuf>,
    /// Per-series WAL size past which an append folds the log into a
    /// fresh snapshot. Ignored without `data_dir`.
    pub wal_compact_bytes: u64,
    /// Longest request line the TCP front end accepts (the server reads
    /// this from the engine it wraps).
    pub max_line_bytes: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 2,
            queue_depth: 32,
            stripes: DEFAULT_STRIPES,
            cache_bytes: 16 << 20,
            fragment_cache_bytes: 16 << 20,
            kernel_threads: 1,
            default_deadline: Duration::from_secs(30),
            data_dir: None,
            wal_compact_bytes: crate::persist::DEFAULT_WAL_COMPACT_BYTES,
            max_line_bytes: crate::server::DEFAULT_MAX_LINE_BYTES,
        }
    }
}

impl EngineConfig {
    /// A builder over the defaults, with validation at
    /// [`EngineConfigBuilder::build`] — the one construction path call
    /// sites should use.
    pub fn builder() -> EngineConfigBuilder {
        EngineConfigBuilder { cfg: EngineConfig::default() }
    }
}

/// Builds an [`EngineConfig`], validating the combination once at
/// [`EngineConfigBuilder::build`] instead of clamping silently at every
/// call site.
#[derive(Debug, Clone)]
pub struct EngineConfigBuilder {
    cfg: EngineConfig,
}

impl EngineConfigBuilder {
    /// Worker threads executing queries (≥ 1).
    pub fn workers(mut self, workers: usize) -> Self {
        self.cfg.workers = workers;
        self
    }

    /// Bounded queue depth between admission and the workers (≥ 1).
    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.cfg.queue_depth = depth;
        self
    }

    /// Stripes the store/cache/flight state is sharded across (≥ 1).
    pub fn stripes(mut self, stripes: usize) -> Self {
        self.cfg.stripes = stripes;
        self
    }

    /// Result-cache byte budget (0 disables result caching).
    pub fn cache_bytes(mut self, bytes: usize) -> Self {
        self.cfg.cache_bytes = bytes;
        self
    }

    /// Planner fragment-cache byte budget (0 disables fragment reuse).
    pub fn fragment_cache_bytes(mut self, bytes: usize) -> Self {
        self.cfg.fragment_cache_bytes = bytes;
        self
    }

    /// Kernel threads per query (1 = sequential, 0 = all cores).
    pub fn kernel_threads(mut self, threads: usize) -> Self {
        self.cfg.kernel_threads = threads;
        self
    }

    /// Deadline applied when a request does not carry its own (> 0).
    pub fn default_deadline(mut self, deadline: Duration) -> Self {
        self.cfg.default_deadline = deadline;
        self
    }

    /// Directory for snapshots + WALs (durability on).
    pub fn data_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cfg.data_dir = Some(dir.into());
        self
    }

    /// Per-series WAL size that triggers snapshot compaction.
    pub fn wal_compact_bytes(mut self, bytes: u64) -> Self {
        self.cfg.wal_compact_bytes = bytes;
        self
    }

    /// Longest request line the TCP front end accepts (≥ 1024).
    pub fn max_line_bytes(mut self, bytes: usize) -> Self {
        self.cfg.max_line_bytes = bytes;
        self
    }

    /// Validates the combination and returns the config.
    pub fn build(self) -> ServeResult<EngineConfig> {
        let cfg = self.cfg;
        if cfg.workers == 0 {
            return Err(ServeError::InvalidParameter("engine requires workers >= 1".into()));
        }
        if cfg.queue_depth == 0 {
            return Err(ServeError::InvalidParameter("engine requires queue_depth >= 1".into()));
        }
        if cfg.stripes == 0 {
            return Err(ServeError::InvalidParameter("engine requires stripes >= 1".into()));
        }
        if cfg.default_deadline.is_zero() {
            return Err(ServeError::InvalidParameter(
                "engine requires a non-zero default_deadline".into(),
            ));
        }
        if cfg.max_line_bytes < 1024 {
            return Err(ServeError::InvalidParameter(
                "engine requires max_line_bytes >= 1024 (one request must fit)".into(),
            ));
        }
        Ok(cfg)
    }
}

/// What a query asks for (on top of the common length-range parameters).
#[derive(Debug, Clone)]
pub enum QueryKind {
    /// Top-k ranked variable-length motifs.
    Motifs {
        /// How many motifs to report.
        top: usize,
    },
    /// Variable-length motif sets (paper Algorithm 6).
    Sets {
        /// Top-K pairs tracked as set seeds.
        k: usize,
        /// Radius factor `D` (set radius = D · pair distance).
        radius: f64,
    },
    /// Top-k variable-length discords.
    Discords {
        /// How many discords to report.
        top: usize,
    },
}

/// One motif/discord/set query against a named series.
#[derive(Debug, Clone)]
pub struct QuerySpec {
    /// Name of the stored series.
    pub series: String,
    /// What to compute.
    pub kind: QueryKind,
    /// Smallest subsequence length.
    pub l_min: usize,
    /// Largest subsequence length (inclusive).
    pub l_max: usize,
    /// Lower-bound entries retained per profile (paper `p`).
    pub p: usize,
    /// Trivial-match exclusion policy.
    pub policy: ExclusionPolicy,
    /// Per-request deadline (engine default when `None`).
    pub deadline: Option<Duration>,
}

impl QuerySpec {
    fn valmod_config(&self, kernel_threads: usize) -> ValmodConfig {
        let cfg = ValmodConfig::new(self.l_min, self.l_max)
            .with_p(self.p)
            .with_policy(self.policy)
            .with_threads(kernel_threads);
        match self.kind {
            QueryKind::Sets { k, .. } => cfg.with_pair_tracking(k),
            _ => cfg,
        }
    }

    /// The canonical cache-key fragment: kind-specific parameters plus the
    /// canonicalized [`ValmodConfig`] key (execution knobs excluded).
    pub fn query_key(&self) -> String {
        let cfg = self.valmod_config(1).cache_key();
        match self.kind {
            QueryKind::Motifs { top } => format!("motifs;top={top};{cfg}"),
            QueryKind::Sets { k, radius } => format!("sets;k={k};radius={radius};{cfg}"),
            QueryKind::Discords { top } => format!("discords;top={top};{cfg}"),
        }
    }
}

/// A delivered query result.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The result payload (what `"result"` carries on the wire).
    pub payload: Arc<Value>,
    /// Whether the payload came from the result cache.
    pub cached: bool,
    /// Whether this request attached to another request's in-flight
    /// compute instead of submitting its own job.
    pub coalesced: bool,
}

/// One in-flight computation under a cache key. The leader publishes its
/// payload (or a cloned error) here; followers block on the condvar with
/// their own deadlines.
#[derive(Default)]
struct Flight {
    done: Mutex<Option<ServeResult<Arc<Value>>>>,
    cv: Condvar,
}

impl Flight {
    fn publish(&self, result: ServeResult<Arc<Value>>) {
        *self.done.lock().expect("flight lock") = Some(result);
        self.cv.notify_all();
    }
}

/// Owns a leader's registered [`Flight`]: the leader calls
/// [`FlightGuard::complete`] with its result on the normal path, and the
/// `Drop` impl is the safety net — if the leader thread dies (panics,
/// unwinds early) while the flight is still open, the guard retires it
/// and publishes [`ServeError::Busy`], so coalesced followers fail fast
/// instead of waiting out their full deadlines on a flight nobody will
/// ever finish.
struct FlightGuard {
    shared: Arc<Shared>,
    stripe: usize,
    key: CacheKey,
    flight: Arc<Flight>,
    done: bool,
}

impl FlightGuard {
    /// Removes the flight from its stripe's table so later identical
    /// requests probe the cache or lead a fresh flight.
    fn retire(&self) {
        let shard = &self.shared.shards[self.stripe];
        let removed = shard.flights.lock().expect("flights lock").remove(&self.key).is_some();
        if removed {
            self.shared.counters.inflight_flights.fetch_sub(1, Ordering::Relaxed);
        }
        self.shared
            .registry
            .gauge("serve.flights.inflight")
            .set(self.shared.counters.inflight_flights.load(Ordering::Relaxed) as f64);
    }

    /// Normal-path completion: retire the flight, then hand the leader's
    /// result to every attached follower (errors cloned per recipient).
    fn complete(mut self, result: &ServeResult<QueryOutcome>) {
        self.retire();
        self.flight.publish(match result {
            Ok(outcome) => Ok(Arc::clone(&outcome.payload)),
            Err(e) => Err(clone_error(e)),
        });
        self.done = true;
    }
}

impl Drop for FlightGuard {
    fn drop(&mut self) {
        if self.done {
            return;
        }
        // The leader died without publishing. Unblock the followers.
        self.retire();
        self.flight.publish(Err(ServeError::Busy));
    }
}

/// RAII span over one cold compute: maintains the `active_computes`
/// counter and CAS-maxes `peak_computes`, the engine's proof that
/// different-stripe computes genuinely overlap in time.
struct ComputeSpan<'a>(&'a Shared);

impl<'a> ComputeSpan<'a> {
    fn enter(shared: &'a Shared) -> Self {
        let c = &shared.counters;
        let active = c.active_computes.fetch_add(1, Ordering::AcqRel) + 1;
        let mut peak = c.peak_computes.load(Ordering::Relaxed);
        while active > peak {
            match c.peak_computes.compare_exchange_weak(
                peak,
                active,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => peak = seen,
            }
        }
        shared.registry.gauge("serve.compute.peak_active").set_max(active as f64);
        ComputeSpan(shared)
    }
}

impl Drop for ComputeSpan<'_> {
    fn drop(&mut self) {
        self.0.counters.active_computes.fetch_sub(1, Ordering::AcqRel);
    }
}

/// [`ServeError`] intentionally carries a live `io::Error` and is not
/// `Clone`; coalescing needs to hand one leader failure to many
/// followers, so this reconstructs an equivalent error per recipient.
fn clone_error(e: &ServeError) -> ServeError {
    match e {
        ServeError::Io(io) => ServeError::Io(std::io::Error::new(io.kind(), io.to_string())),
        ServeError::Parse { line, token } => {
            ServeError::Parse { line: *line, token: token.clone() }
        }
        ServeError::NonFinite { index } => ServeError::NonFinite { index: *index },
        ServeError::TooShort { len, required } => {
            ServeError::TooShort { len: *len, required: *required }
        }
        ServeError::InvalidParameter(msg) => ServeError::InvalidParameter(msg.clone()),
        ServeError::Busy => ServeError::Busy,
        ServeError::DeadlineExceeded => ServeError::DeadlineExceeded,
        ServeError::ShuttingDown => ServeError::ShuttingDown,
        ServeError::UnknownSeries(name) => ServeError::UnknownSeries(name.clone()),
        ServeError::SeriesExists(name) => ServeError::SeriesExists(name.clone()),
        ServeError::Protocol(msg) => ServeError::Protocol(msg.clone()),
    }
}

enum Work {
    Query(QuerySpec),
    /// Diagnostics: occupy a worker for `ms` milliseconds. Used to probe
    /// queue/deadline behaviour of a deployment (and by the tests).
    Sleep(u64),
}

struct Job {
    work: Work,
    deadline: Instant,
    submitted: Instant,
    reply: SyncSender<ServeResult<QueryOutcome>>,
}

#[derive(Debug, Default)]
struct EngineCounters {
    queries: AtomicU64,
    computed: AtomicU64,
    coalesced: AtomicU64,
    served_hot: AtomicU64,
    busy_rejections: AtomicU64,
    deadline_misses: AtomicU64,
    /// Open single-flight entries across all stripes (STATS reads this
    /// instead of walking the per-stripe tables).
    inflight_flights: AtomicU64,
    /// Cold computes currently inside their [`ComputeSpan`].
    active_computes: AtomicU64,
    /// High-water mark of `active_computes` — > 1 proves computes overlap.
    peak_computes: AtomicU64,
}

/// One stripe's slice of the engine-level shared state. A series' shard
/// index always equals its store stripe index, so a request touches
/// exactly one shard end to end.
struct Shard {
    cache: Mutex<ResultCache>,
    fragments: Mutex<FragmentCache>,
    flights: Mutex<HashMap<CacheKey, Arc<Flight>>>,
}

struct Shared {
    cfg: EngineConfig,
    store: SeriesStore,
    shards: Box<[Shard]>,
    counters: EngineCounters,
    registry: Registry,
    recorder: SharedRecorder,
    shutting_down: AtomicBool,
}

impl Shared {
    fn shard_for(&self, series: &str) -> &Shard {
        &self.shards[self.store.stripe_index(series)]
    }
}

/// The resident query engine (embeddable; the TCP server is one front end).
pub struct QueryEngine {
    shared: Arc<Shared>,
    sender: Mutex<Option<SyncSender<Job>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl QueryEngine {
    /// Starts an engine with its worker pool. Infallible for in-memory
    /// configurations; panics if `data_dir` is set and opening/recovering
    /// it fails — use [`QueryEngine::open`] to handle that error.
    pub fn new(cfg: EngineConfig) -> Self {
        QueryEngine::open(cfg).expect("open data_dir")
    }

    /// Starts an engine with its worker pool, opening (and recovering)
    /// the configured `data_dir` when one is set.
    pub fn open(cfg: EngineConfig) -> ServeResult<Self> {
        let cfg = EngineConfig {
            workers: cfg.workers.max(1),
            queue_depth: cfg.queue_depth.max(1),
            stripes: cfg.stripes.max(1),
            ..cfg
        };
        let (tx, rx) = mpsc::sync_channel::<Job>(cfg.queue_depth);
        // The engine's metric registry: every query's kernels report into
        // it, so the STATS "obs" section sees the whole stack. The lb
        // diagnostic histograms need value-shaped (not latency-shaped)
        // bucket layouts, registered up front.
        let registry = Registry::new();
        valmod_core::instrument::register_probe_histograms(&registry);
        let recorder = SharedRecorder::from(registry.clone());
        let store = match &cfg.data_dir {
            Some(dir) => {
                SeriesStore::open_with_stripes(dir, cfg.wal_compact_bytes, cfg.stripes, &recorder)?
            }
            None => SeriesStore::with_stripes(cfg.stripes),
        };
        // Per-stripe caches: the budgets sum to exactly the configured
        // totals, so operators reason about one number while stripes never
        // share a lock.
        let shards: Box<[Shard]> = split_budget(cfg.cache_bytes, cfg.stripes)
            .into_iter()
            .zip(split_budget(cfg.fragment_cache_bytes, cfg.stripes))
            .map(|(cache_budget, fragment_budget)| Shard {
                cache: Mutex::new(ResultCache::new(cache_budget)),
                fragments: Mutex::new(FragmentCache::new(fragment_budget)),
                flights: Mutex::new(HashMap::new()),
            })
            .collect();
        let shared = Arc::new(Shared {
            cfg,
            store,
            shards,
            counters: EngineCounters::default(),
            registry,
            recorder,
            shutting_down: AtomicBool::new(false),
        });
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..shared.cfg.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("valmod-serve-worker-{i}"))
                    .spawn(move || worker_loop(shared, rx))
                    .expect("spawn worker thread")
            })
            .collect();
        Ok(QueryEngine { shared, sender: Mutex::new(Some(tx)), workers: Mutex::new(workers) })
    }

    /// Loads (or with `replace` overwrites) a named series, seeding hot
    /// streaming profiles at `hot_lengths`. Returns `(version, len)`.
    pub fn load(
        &self,
        name: &str,
        values: Vec<f64>,
        hot_lengths: &[usize],
        policy: ExclusionPolicy,
        replace: bool,
    ) -> ServeResult<(u64, usize)> {
        self.reject_if_shutting_down()?;
        let out = self.shared.store.load(
            name,
            values,
            hot_lengths,
            policy,
            replace,
            &self.shared.recorder,
        )?;
        // The monotonic version counter already keeps old cache entries
        // from aliasing the new generation; purging the name just frees
        // budget that dead entries would otherwise pin until eviction.
        // Only the series' own stripe is touched.
        let shard = self.shared.shard_for(name);
        shard.cache.lock().expect("cache lock").invalidate_series(name);
        shard.fragments.lock().expect("fragment cache lock").invalidate_series(name);
        Ok(out)
    }

    /// Appends samples to a named series: WAL-logs the batch first (when
    /// durable), bumps its version, extends hot profiles, and purges the
    /// series' *result*-cache entries. Fragments are deliberately **not**
    /// purged: the version bump already makes them unservable (their key
    /// carries the old watermark), and the planner revives their parked
    /// segment states by extending over the appended tail on the next
    /// query — `O(k·n)` instead of a cold `O(n²)` recompute — collecting
    /// the stale fragments lazily. The whole operation is a critical
    /// section of **this series only** — queries and appends on other
    /// series proceed in parallel. Returns `(version, len)`.
    pub fn append(&self, name: &str, samples: &[f64]) -> ServeResult<(u64, usize)> {
        self.reject_if_shutting_down()?;
        let out = self.shared.store.append(name, samples, &self.shared.recorder)?;
        self.shared.shard_for(name).cache.lock().expect("cache lock").invalidate_series(name);
        Ok(out)
    }

    /// Snapshots every series to disk, resetting the WALs (the `SAVE`
    /// command). Each series is flushed under its own write lock — a
    /// sequence of per-series critical sections, never a global pause.
    /// Returns the number of snapshots written — 0 when the engine has no
    /// `data_dir` (durability is simply off, not an error).
    pub fn persist(&self) -> ServeResult<usize> {
        self.shared.store.persist_all(&self.shared.recorder)
    }

    /// Runs a query: O(1) on a cache hit; attached to an identical
    /// in-flight computation when one exists (single-flight coalescing);
    /// otherwise scheduled on the worker pool behind the bounded queue.
    pub fn query(&self, spec: QuerySpec) -> ServeResult<QueryOutcome> {
        self.shared.counters.queries.fetch_add(1, Ordering::Relaxed);
        self.reject_if_shutting_down()?;
        // Admission-time cache probe against the current version, read
        // from the slot's lock-free mirror — admission never waits behind
        // a mutation, not even on the same series. Unknown names also fail
        // fast here instead of occupying a queue slot.
        let version = self.shared.store.get(&spec.series)?.version();
        let stripe = self.shared.store.stripe_index(&spec.series);
        let shard = &self.shared.shards[stripe];
        let key = CacheKey { series: spec.series.clone(), version, query: spec.query_key() };
        if let Some(payload) = shard.cache.lock().expect("cache lock").get(&key) {
            self.shared.recorder.add("serve.cache.hit", 1);
            return Ok(QueryOutcome { payload, cached: true, coalesced: false });
        }
        self.shared.recorder.add("serve.cache.miss", 1);
        let deadline = Instant::now() + spec.deadline.unwrap_or(self.shared.cfg.default_deadline);
        // Single-flight, per stripe: exactly one request per cache key
        // becomes the leader and submits a job; identical requests arriving
        // while it is in flight wait for its payload instead of queueing.
        let guard = {
            let mut flights = shard.flights.lock().expect("flights lock");
            if let Some(flight) = flights.get(&key) {
                let flight = Arc::clone(flight);
                drop(flights);
                return self.wait_on_flight(&flight, deadline);
            }
            let flight = Arc::new(Flight::default());
            flights.insert(key.clone(), Arc::clone(&flight));
            drop(flights);
            let inflight = self.shared.counters.inflight_flights.fetch_add(1, Ordering::Relaxed);
            self.shared.registry.gauge("serve.flights.inflight").set((inflight + 1) as f64);
            FlightGuard { shared: Arc::clone(&self.shared), stripe, key, flight, done: false }
        };
        let result = self.submit(Work::Query(spec), deadline);
        // Retire the flight before publishing (both inside `complete`):
        // requests arriving from here on probe the result cache (the
        // worker filled it before replying) or lead a fresh flight; the
        // followers already attached get the leader's payload — or its
        // failure, cloned per recipient, so they fail fast instead of
        // timing out. If this thread dies before reaching here, the
        // guard's Drop publishes `Busy` so no follower hangs.
        guard.complete(&result);
        result
    }

    /// Blocks a follower on `flight` until the leader publishes or the
    /// follower's own deadline passes.
    fn wait_on_flight(&self, flight: &Flight, deadline: Instant) -> ServeResult<QueryOutcome> {
        let mut done = flight.done.lock().expect("flight lock");
        loop {
            match &*done {
                Some(Ok(payload)) => {
                    self.shared.counters.coalesced.fetch_add(1, Ordering::Relaxed);
                    self.shared.recorder.add("serve.query.coalesced", 1);
                    return Ok(QueryOutcome {
                        payload: Arc::clone(payload),
                        cached: false,
                        coalesced: true,
                    });
                }
                Some(Err(e)) => return Err(clone_error(e)),
                None => {}
            }
            let now = Instant::now();
            if now >= deadline {
                self.shared.counters.deadline_misses.fetch_add(1, Ordering::Relaxed);
                self.shared.recorder.add("serve.queue.shed_deadline", 1);
                return Err(ServeError::DeadlineExceeded);
            }
            let (guard, _) = flight.cv.wait_timeout(done, deadline - now).expect("flight lock");
            done = guard;
        }
    }

    /// Diagnostics: occupies one worker for `ms` milliseconds through the
    /// same bounded queue and deadline machinery as real queries.
    pub fn sleep(&self, ms: u64, deadline: Option<Duration>) -> ServeResult<QueryOutcome> {
        self.reject_if_shutting_down()?;
        let deadline = Instant::now() + deadline.unwrap_or(self.shared.cfg.default_deadline);
        self.submit(Work::Sleep(ms), deadline)
    }

    fn submit(&self, work: Work, deadline: Instant) -> ServeResult<QueryOutcome> {
        let (reply_tx, reply_rx) = mpsc::sync_channel(1);
        let job = Job { work, deadline, submitted: Instant::now(), reply: reply_tx };
        {
            let sender = self.sender.lock().expect("sender lock");
            let Some(tx) = sender.as_ref() else {
                return Err(ServeError::ShuttingDown);
            };
            match tx.try_send(job) {
                Ok(()) => {}
                Err(TrySendError::Full(_)) => {
                    self.shared.counters.busy_rejections.fetch_add(1, Ordering::Relaxed);
                    self.shared.recorder.add("serve.queue.shed_busy", 1);
                    return Err(ServeError::Busy);
                }
                Err(TrySendError::Disconnected(_)) => return Err(ServeError::ShuttingDown),
            }
        }
        reply_rx.recv().map_err(|_| ServeError::ShuttingDown)?
    }

    /// The configuration this engine runs with (after startup clamping).
    /// The TCP front end reads its line limit from here.
    pub fn config(&self) -> &EngineConfig {
        &self.shared.cfg
    }

    /// The engine's metric registry. Front ends may record their own
    /// metrics into it (the TCP server adds `serve.net.bytes_in/out`);
    /// [`QueryEngine::stats`] snapshots it into the `"obs"` section.
    pub fn registry(&self) -> &Registry {
        &self.shared.registry
    }

    /// A `STATS` snapshot: engine counters, cache accounting (aggregated
    /// and per stripe), per-series inventory, and the scheduler
    /// configuration. Assembled without stopping the world: counters are
    /// atomics, the series section reads each slot's lock-free mirrors
    /// (never a series lock — a slow append cannot stall STATS), and the
    /// per-stripe cache mutexes are taken one stripe at a time.
    pub fn stats(&self) -> Value {
        let store = &self.shared.store;
        let series: Vec<Value> = store
            .names()
            .into_iter()
            .map(|name| {
                let slot = store.get(&name).expect("name from listing");
                Value::obj(vec![
                    ("name", Value::str(name)),
                    ("len", slot.len().into()),
                    ("version", slot.version().into()),
                    (
                        "hot_lengths",
                        Value::Arr(slot.hot_lengths().iter().copied().map(Value::from).collect()),
                    ),
                ])
            })
            .collect();
        let persist_v = Value::obj(vec![
            ("enabled", Value::Bool(store.is_durable())),
            (
                "data_dir",
                store.data_dir().map_or(Value::Null, |d| Value::str(d.display().to_string())),
            ),
            ("recovery_skipped", store.recovery_skipped().len().into()),
        ]);
        // Aggregate the striped caches; expose per-stripe accounting so a
        // hot stripe is visible, not averaged away.
        let mut per_stripe = Vec::with_capacity(self.shared.shards.len());
        let (mut entries, mut used, mut budget) = (0usize, 0usize, 0usize);
        let (mut hits, mut misses, mut evictions, mut invalidated) = (0u64, 0u64, 0u64, 0u64);
        for (i, shard) in self.shared.shards.iter().enumerate() {
            let cache = shard.cache.lock().expect("cache lock");
            let cs = cache.stats();
            entries += cache.len();
            used += cache.used_bytes();
            budget += cache.budget_bytes();
            hits += cs.hits;
            misses += cs.misses;
            evictions += cs.evictions;
            invalidated += cs.invalidated;
            per_stripe.push(Value::obj(vec![
                ("stripe", i.into()),
                ("entries", cache.len().into()),
                ("used_bytes", cache.used_bytes().into()),
                ("budget_bytes", cache.budget_bytes().into()),
                ("hits", cs.hits.into()),
                ("misses", cs.misses.into()),
            ]));
        }
        let cache_v = Value::obj(vec![
            ("entries", entries.into()),
            ("used_bytes", used.into()),
            ("budget_bytes", budget.into()),
            ("hits", hits.into()),
            ("misses", misses.into()),
            ("evictions", evictions.into()),
            ("invalidated", invalidated.into()),
            ("per_stripe", Value::Arr(per_stripe)),
        ]);
        let (mut f_entries, mut f_used, mut f_budget, mut parked) =
            (0usize, 0usize, 0usize, 0usize);
        let (mut f_hits, mut f_misses, mut f_evictions, mut f_invalidated, mut f_extended) =
            (0u64, 0u64, 0u64, 0u64, 0u64);
        for shard in self.shared.shards.iter() {
            let fragments = shard.fragments.lock().expect("fragment cache lock");
            let fs = fragments.stats();
            f_entries += fragments.len();
            f_used += fragments.used_bytes();
            f_budget += fragments.budget_bytes();
            parked += fragments.state_count();
            f_hits += fs.hits;
            f_misses += fs.misses;
            f_evictions += fs.evictions;
            f_invalidated += fs.invalidated;
            f_extended += fs.extended;
        }
        let c = &self.shared.counters;
        let planner_v = Value::obj(vec![
            ("fragment_entries", f_entries.into()),
            ("fragment_used_bytes", f_used.into()),
            ("fragment_budget_bytes", f_budget.into()),
            ("fragment_hits", f_hits.into()),
            ("fragment_misses", f_misses.into()),
            ("fragment_evictions", f_evictions.into()),
            ("fragment_invalidated", f_invalidated.into()),
            ("fragments_extended", f_extended.into()),
            ("parked_states", parked.into()),
            ("inflight", c.inflight_flights.load(Ordering::Relaxed).into()),
        ]);
        Value::obj(vec![
            (
                "engine",
                Value::obj(vec![
                    ("queries", c.queries.load(Ordering::Relaxed).into()),
                    ("computed", c.computed.load(Ordering::Relaxed).into()),
                    ("coalesced", c.coalesced.load(Ordering::Relaxed).into()),
                    ("served_hot", c.served_hot.load(Ordering::Relaxed).into()),
                    ("busy_rejections", c.busy_rejections.load(Ordering::Relaxed).into()),
                    ("deadline_misses", c.deadline_misses.load(Ordering::Relaxed).into()),
                    ("active_computes", c.active_computes.load(Ordering::Relaxed).into()),
                    ("peak_computes", c.peak_computes.load(Ordering::Relaxed).into()),
                    ("stripes", self.shared.cfg.stripes.into()),
                    ("workers", self.shared.cfg.workers.into()),
                    ("queue_depth", self.shared.cfg.queue_depth.into()),
                    ("kernel_threads", self.shared.cfg.kernel_threads.into()),
                ]),
            ),
            ("cache", cache_v),
            ("planner", planner_v),
            ("persist", persist_v),
            ("series", Value::Arr(series)),
            ("obs", snapshot_value(&self.shared.registry.snapshot())),
        ])
    }

    /// Begins shutdown: new work is rejected with
    /// [`ServeError::ShuttingDown`]; already-queued jobs still complete.
    /// Durable engines flush a final round of snapshots — best-effort,
    /// because every acknowledged append is already fsynced in its WAL, so
    /// a failure here costs restart time (replay), never data.
    pub fn shutdown(&self) {
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        // Dropping the sender disconnects the queue once drained, which
        // ends every worker loop. Appends are rejected from this point, so
        // the flush below observes the final store state.
        self.sender.lock().expect("sender lock").take();
        let _ = self.persist();
    }

    /// Waits for the worker pool to drain and exit ([`QueryEngine::shutdown`]
    /// must have been called, otherwise this blocks forever).
    pub fn join(&self) {
        let handles: Vec<JoinHandle<()>> =
            std::mem::take(&mut *self.workers.lock().expect("workers lock"));
        for h in handles {
            let _ = h.join();
        }
    }

    /// Whether shutdown has begun.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutting_down.load(Ordering::SeqCst)
    }

    fn reject_if_shutting_down(&self) -> ServeResult<()> {
        if self.is_shutting_down() {
            return Err(ServeError::ShuttingDown);
        }
        Ok(())
    }
}

fn worker_loop(shared: Arc<Shared>, rx: Arc<Mutex<mpsc::Receiver<Job>>>) {
    loop {
        let job = {
            let rx = rx.lock().expect("receiver lock");
            match rx.recv() {
                Ok(job) => job,
                Err(_) => return, // queue disconnected: shutdown
            }
        };
        shared.recorder.observe("serve.queue.wait_us", job.submitted.elapsed().as_secs_f64() * 1e6);
        if Instant::now() > job.deadline {
            shared.counters.deadline_misses.fetch_add(1, Ordering::Relaxed);
            shared.recorder.add("serve.queue.shed_deadline", 1);
            let _ = job.reply.send(Err(ServeError::DeadlineExceeded));
            continue;
        }
        let result = match &job.work {
            Work::Sleep(ms) => {
                std::thread::sleep(Duration::from_millis(*ms));
                Ok(QueryOutcome {
                    payload: Arc::new(Value::obj(vec![("slept_ms", (*ms).into())])),
                    cached: false,
                    coalesced: false,
                })
            }
            Work::Query(spec) => execute_query(&shared, spec),
        };
        let result = match result {
            Ok(_) if Instant::now() > job.deadline => {
                // Too late to be useful to this caller, but the computed
                // result stays cached for the next one.
                shared.counters.deadline_misses.fetch_add(1, Ordering::Relaxed);
                shared.recorder.add("serve.queue.shed_deadline", 1);
                Err(ServeError::DeadlineExceeded)
            }
            other => other,
        };
        let _ = job.reply.send(result);
    }
}

fn execute_query(shared: &Shared, spec: &QuerySpec) -> ServeResult<QueryOutcome> {
    // Snapshot (batch view, version, optional hot profile) atomically,
    // under the owning series' lock only — computes on other series and
    // the whole admission path stay unaffected.
    let slot = shared.store.get(&spec.series)?;
    let (ps, version, hot) = {
        let mut entry = slot.write();
        let hot = match spec.kind {
            QueryKind::Motifs { .. } if spec.l_min == spec.l_max => entry
                .hot_profile(spec.l_min)
                .filter(|sp| sp.policy().reduced() == spec.policy.reduced())
                .map(|sp| sp.profile()),
            _ => None,
        };
        let (ps, version) = entry.profiled()?;
        (ps, version, hot)
    };
    // The version may have advanced past the admission-time probe; another
    // worker may also have filled the entry meanwhile. Re-probe.
    let shard = shared.shard_for(&spec.series);
    let key = CacheKey { series: spec.series.clone(), version, query: spec.query_key() };
    if let Some(payload) = shard.cache.lock().expect("cache lock").get(&key) {
        shared.recorder.add("serve.cache.hit", 1);
        return Ok(QueryOutcome { payload, cached: true, coalesced: false });
    }
    let started = Instant::now();
    let body = {
        let _active = ComputeSpan::enter(shared);
        let _span = valmod_obs::span!(&shared.recorder, "serve.compute_us");
        compute_payload(shared, shard, spec, &ps, version, hot)?
    };
    let payload = Arc::new(Value::obj(vec![
        ("series", Value::str(&spec.series)),
        ("version", version.into()),
        ("compute_ms", (started.elapsed().as_secs_f64() * 1e3).into()),
        ("body", body),
    ]));
    shared.counters.computed.fetch_add(1, Ordering::Relaxed);
    shard.cache.lock().expect("cache lock").insert(key, Arc::clone(&payload));
    Ok(QueryOutcome { payload, cached: false, coalesced: false })
}

fn compute_payload(
    shared: &Shared,
    shard: &Shard,
    spec: &QuerySpec,
    ps: &ProfiledSeries,
    version: u64,
    hot: Option<MatrixProfile>,
) -> ServeResult<Value> {
    let cfg = spec.valmod_config(shared.cfg.kernel_threads);
    let runner = Valmod::from_config(cfg.clone()).recorder(shared.recorder.clone());
    // VALMP-shaped queries run through the planner: the length range is
    // decomposed into grid segments whose per-length fragments are cached
    // in the series' own stripe and recomposed, so overlapping ranges
    // share work across requests.
    let planned = |runner: &Valmod| {
        crate::planner::execute_plan(
            ps,
            &spec.series,
            version,
            runner,
            &shard.fragments,
            &shared.recorder,
            (spec.l_min, spec.l_max),
        )
    };
    match spec.kind {
        QueryKind::Motifs { top } => {
            // Fixed-length queries at a registered hot length skip the
            // batch computation: the streaming profile is already live.
            let (motifs, source) = match hot {
                Some(profile) => {
                    shared.counters.served_hot.fetch_add(1, Ordering::Relaxed);
                    (top_motifs(&profile, top), "hot")
                }
                None => {
                    let (out, _) = planned(&runner)?;
                    (top_variable_length_motifs(&out.valmp, top, cfg.policy), "cold")
                }
            };
            Ok(MotifsBody {
                motifs: motifs.iter().map(MotifHit::from_pair).collect(),
                source: source.into(),
            }
            .to_value())
        }
        QueryKind::Sets { k, radius } => {
            if k == 0 {
                return Err(ServeError::InvalidParameter(
                    "sets require k >= 1 tracked pairs".into(),
                ));
            }
            // Sets bypass the planner: the best-K pair tracker must see
            // every candidate at offer time, which composition over cached
            // fragments cannot replay.
            let out = runner.run_on(ps)?;
            let tracker = out.best_pairs.ok_or_else(|| {
                ServeError::InvalidParameter("pair tracking produced no candidates".into())
            })?;
            let (sets, set_stats) = compute_var_length_motif_sets(ps, &tracker, radius, cfg.policy);
            Ok(SetsBody {
                sets: sets
                    .iter()
                    .map(|s| {
                        let mut offsets: Vec<usize> = s.members.iter().map(|m| m.offset).collect();
                        offsets.sort_unstable();
                        SetEntry {
                            l: s.l,
                            pair: s.pair,
                            pair_dist: s.pair_dist,
                            radius: s.radius,
                            frequency: s.frequency(),
                            offsets,
                        }
                    })
                    .collect(),
                served_from_snapshots: set_stats.served_from_snapshots,
                recomputed_profiles: set_stats.recomputed_profiles,
            }
            .to_value())
        }
        QueryKind::Discords { top } => {
            let (out, _) = planned(&runner)?;
            let discords = variable_length_discords(&out.valmp, top, cfg.policy);
            Ok(DiscordsBody {
                discords: discords
                    .iter()
                    .map(|d| DiscordHit {
                        offset: d.offset,
                        l: d.l,
                        // The VALMP ⊥ sentinel must never cross the wire as
                        // a number; null is the wire form of "no match".
                        nn: (d.nn != usize::MAX).then_some(d.nn),
                        score: d.score,
                    })
                    .collect(),
            }
            .to_value())
        }
    }
}

/// Renders a registry snapshot as a wire value: counters and gauges map to
/// plain numbers; histograms to `{count, sum, mean, p50, p99}` summaries
/// (bucket layouts stay server-side — quantiles are what clients plot).
fn snapshot_value(snapshot: &Snapshot) -> Value {
    let fields: Vec<(String, Value)> = snapshot
        .entries()
        .iter()
        .map(|(key, metric)| {
            let value = match metric {
                MetricSnapshot::Counter(v) => Value::from(*v),
                MetricSnapshot::Gauge(v) => Value::from(*v),
                MetricSnapshot::Histogram(h) => {
                    let quantile = |q: f64| {
                        let v = h.quantile(q);
                        if v.is_finite() {
                            Value::from(v)
                        } else {
                            Value::Null
                        }
                    };
                    Value::obj(vec![
                        ("count", h.count.into()),
                        ("sum", h.sum.into()),
                        ("mean", if h.count > 0 { h.mean().into() } else { Value::Null }),
                        ("p50", quantile(0.5)),
                        ("p99", quantile(0.99)),
                    ])
                }
            };
            (key.clone(), value)
        })
        .collect();
    Value::Obj(fields)
}

impl std::fmt::Debug for QueryEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryEngine").field("cfg", &self.shared.cfg).finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use valmod_data::generators::{plant_motif, random_walk};

    fn engine(workers: usize, queue: usize, cache: usize) -> QueryEngine {
        QueryEngine::new(
            EngineConfig::builder()
                .workers(workers)
                .queue_depth(queue)
                .cache_bytes(cache)
                .build()
                .unwrap(),
        )
    }

    fn motif_spec(series: &str, l_min: usize, l_max: usize) -> QuerySpec {
        QuerySpec {
            series: series.into(),
            kind: QueryKind::Motifs { top: 3 },
            l_min,
            l_max,
            p: 8,
            policy: ExclusionPolicy::HALF,
            deadline: None,
        }
    }

    #[test]
    fn cold_then_cached_queries_agree() {
        let eng = engine(2, 8, 1 << 20);
        let (values, _) = plant_motif(1200, 40, 2, 0.001, 11);
        eng.load("s", values, &[], ExclusionPolicy::HALF, false).unwrap();

        let cold = eng.query(motif_spec("s", 32, 40)).unwrap();
        assert!(!cold.cached);
        let warm = eng.query(motif_spec("s", 32, 40)).unwrap();
        assert!(warm.cached);
        assert_eq!(cold.payload.as_ref(), warm.payload.as_ref());
        // A thread-count change must still hit (canonicalization).
        // (kernel_threads is engine-wide here, so instead vary the policy
        // representation: 2/4 ≡ 1/2.)
        let mut spec = motif_spec("s", 32, 40);
        spec.policy = ExclusionPolicy::new(2, 4);
        assert!(eng.query(spec).unwrap().cached);
        eng.shutdown();
        eng.join();
    }

    #[test]
    fn append_bumps_version_and_invalidates() {
        let eng = engine(1, 8, 1 << 20);
        let series = random_walk(500, 13);
        eng.load("s", series[..400].to_vec(), &[], ExclusionPolicy::HALF, false).unwrap();
        let first = eng.query(motif_spec("s", 24, 28)).unwrap();
        assert!(!first.cached);
        let (version, len) = eng.append("s", &series[400..]).unwrap();
        assert_eq!((version, len), (2, 500));
        let after = eng.query(motif_spec("s", 24, 28)).unwrap();
        assert!(!after.cached, "append must invalidate the cached result");
        assert_eq!(after.payload.get("version").unwrap().as_usize(), Some(2));
        eng.shutdown();
        eng.join();
    }

    #[test]
    fn hot_length_serves_fixed_length_motifs() {
        let eng = engine(1, 8, 0); // cache disabled: exercise the hot path
        let (values, _) = plant_motif(900, 32, 2, 0.001, 17);
        eng.load("s", values[..700].to_vec(), &[32], ExclusionPolicy::HALF, false).unwrap();
        eng.append("s", &values[700..]).unwrap();
        let out = eng.query(motif_spec("s", 32, 32)).unwrap();
        let body = out.payload.get("body").unwrap();
        assert_eq!(body.get("source").unwrap().as_str(), Some("hot"));
        // The hot result agrees with a cold run of the same spec.
        let eng2 = engine(1, 8, 0);
        let (values, _) = plant_motif(900, 32, 2, 0.001, 17);
        eng2.load("s", values, &[], ExclusionPolicy::HALF, false).unwrap();
        let cold = eng2.query(motif_spec("s", 32, 32)).unwrap();
        let cold_body = cold.payload.get("body").unwrap();
        assert_eq!(cold_body.get("source").unwrap().as_str(), Some("cold"));
        let (h, c) = (
            body.get("motifs").unwrap().as_arr().unwrap(),
            cold_body.get("motifs").unwrap().as_arr().unwrap(),
        );
        assert_eq!(h.len(), c.len());
        for (x, y) in h.iter().zip(c) {
            assert_eq!(x.get("a"), y.get("a"));
            assert_eq!(x.get("b"), y.get("b"));
            let dx = x.get("dist").unwrap().as_f64().unwrap();
            let dy = y.get("dist").unwrap().as_f64().unwrap();
            assert!((dx - dy).abs() < 1e-6);
        }
        for e in [eng, eng2] {
            e.shutdown();
            e.join();
        }
    }

    #[test]
    fn full_queue_returns_busy_not_panic() {
        let eng = Arc::new(engine(1, 1, 0));
        // Occupy the single worker...
        let bg = {
            let eng = Arc::clone(&eng);
            std::thread::spawn(move || eng.sleep(400, None).map(|_| ()))
        };
        std::thread::sleep(Duration::from_millis(100)); // worker has dequeued
                                                        // ...fill the single queue slot...
        let queued = {
            let eng = Arc::clone(&eng);
            std::thread::spawn(move || eng.sleep(1, None).map(|_| ()))
        };
        std::thread::sleep(Duration::from_millis(100)); // slot occupied
                                                        // ...and the next request is shed.
        let err = eng.sleep(1, None).unwrap_err();
        assert!(matches!(err, ServeError::Busy), "got {err:?}");
        bg.join().unwrap().unwrap();
        queued.join().unwrap().unwrap();
        let stats = eng.stats();
        let busy = stats.get("engine").unwrap().get("busy_rejections").unwrap().as_usize().unwrap();
        assert!(busy >= 1);
        eng.shutdown();
        eng.join();
    }

    #[test]
    fn deadline_is_enforced_for_queued_work() {
        let eng = Arc::new(engine(1, 2, 0));
        let bg = {
            let eng = Arc::clone(&eng);
            std::thread::spawn(move || eng.sleep(300, None).map(|_| ()))
        };
        std::thread::sleep(Duration::from_millis(100));
        // Queued behind a 300 ms sleeper with a 50 ms deadline: dequeued
        // after the deadline, so it must not run at all.
        let err = eng.sleep(1, Some(Duration::from_millis(50))).unwrap_err();
        assert!(matches!(err, ServeError::DeadlineExceeded), "got {err:?}");
        bg.join().unwrap().unwrap();
        eng.shutdown();
        eng.join();
    }

    #[test]
    fn stats_expose_the_metric_registry() {
        let eng = engine(1, 8, 1 << 20);
        let (values, _) = plant_motif(900, 32, 2, 0.001, 23);
        eng.load("s", values, &[], ExclusionPolicy::HALF, false).unwrap();
        let cold = eng.query(motif_spec("s", 24, 32)).unwrap();
        assert!(!cold.cached);
        let warm = eng.query(motif_spec("s", 24, 32)).unwrap();
        assert!(warm.cached);
        let stats = eng.stats();
        let obs = stats.get("obs").expect("stats carries an obs section");
        let counter = |key: &str| obs.get(key).and_then(Value::as_usize).unwrap_or(0);
        assert_eq!(counter("serve.cache.hit"), 1);
        assert_eq!(counter("serve.cache.miss"), 1);
        // The cold query ran the full VALMOD stack under the recorder.
        assert!(counter("core.lb.valid_rows") > 0);
        assert!(counter("mp.stomp.rows") > 0);
        let wait = obs.get("serve.queue.wait_us").unwrap();
        assert_eq!(wait.get("count").and_then(Value::as_usize), Some(1));
        let compute = obs.get("serve.compute_us").unwrap();
        assert!(compute.get("sum").unwrap().as_f64().unwrap() > 0.0);
        eng.shutdown();
        eng.join();
    }

    #[test]
    fn bottom_slots_never_leak_the_sentinel_onto_the_wire() {
        // A 51-sample series at l = 32 has 20 offsets; HALF exclusion
        // (radius 16) leaves the middle offsets with no admissible
        // neighbour, so their VALMP slots stay at the ⊥ sentinel
        // (usize::MAX index, length 0).
        let values = random_walk(51, 29);
        let out = Valmod::from_config(ValmodConfig::new(32, 32).with_p(4))
            .run(&valmod_data::series::Series::new(values.clone()).unwrap())
            .unwrap();
        assert!(
            out.valmp.norm_distances.iter().any(|d| !d.is_finite()),
            "the series must actually produce ⊥ slots for this regression to bite"
        );

        let eng = engine(1, 8, 1 << 20);
        eng.load("s", values, &[], ExclusionPolicy::HALF, false).unwrap();
        let mut spec = motif_spec("s", 32, 32);
        spec.kind = QueryKind::Discords { top: 8 };
        let reply = eng.query(spec).unwrap();
        let encoded = reply.payload.encode();
        assert!(
            !encoded.contains("18446744073709551615"),
            "⊥ must never cross the wire as usize::MAX: {encoded}"
        );
        // The body still parses back through the typed decoder.
        let body = reply.payload.get("body").expect("reply carries a body");
        DiscordsBody::from_value(body).expect("discords body round-trips");
        eng.shutdown();
        eng.join();
    }

    #[test]
    fn unknown_series_fails_fast() {
        let eng = engine(1, 2, 1024);
        let err = eng.query(motif_spec("ghost", 16, 20)).unwrap_err();
        assert!(matches!(err, ServeError::UnknownSeries(_)));
        eng.shutdown();
        eng.join();
    }

    #[test]
    fn late_insert_from_replaced_generation_cannot_serve_stale() {
        // Regression for the stale-cache race. Interleaving: a query is
        // admitted and snapshots (values, version) under the store lock;
        // a LOAD-with-replace lands and purges the series' cache entries;
        // the worker then finishes against the OLD snapshot and inserts
        // its result *after* the purge. When replace reset the version to
        // 1, that late entry aliased the new generation's first version
        // and was served stale. The monotonic counter makes the alias
        // structurally impossible.
        let noop = SharedRecorder::noop();
        let store = SeriesStore::new();
        let mut cache = ResultCache::new(1 << 20);
        store.load("a", random_walk(200, 5), &[], ExclusionPolicy::HALF, false, &noop).unwrap();
        let admitted_version = store.get("a").unwrap().version();
        // Replace + purge land mid-compute.
        store.load("a", random_walk(200, 6), &[], ExclusionPolicy::HALF, true, &noop).unwrap();
        cache.invalidate_series("a");
        // The worker's late insert, keyed by the old generation's version.
        let stale = CacheKey { series: "a".into(), version: admitted_version, query: "q".into() };
        cache.insert(stale, Arc::new(Value::str("stale result")));
        // A fresh query probes with the new generation's current version.
        let fresh = CacheKey {
            series: "a".into(),
            version: store.get("a").unwrap().version(),
            query: "q".into(),
        };
        assert!(
            cache.get(&fresh).is_none(),
            "a replaced generation's cache entry must never alias the new generation"
        );
    }

    #[test]
    fn durable_engine_recovers_after_hard_drop() {
        let dir =
            std::env::temp_dir().join(format!("valmod_engine_recover_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = EngineConfig::builder().workers(1).data_dir(dir.clone()).build().unwrap();
        let (values, _) = plant_motif(900, 32, 2, 0.001, 29);
        let cold = {
            let eng = QueryEngine::new(cfg.clone());
            eng.load("s", values[..800].to_vec(), &[], ExclusionPolicy::HALF, false).unwrap();
            eng.append("s", &values[800..]).unwrap();
            let cold = eng.query(motif_spec("s", 24, 32)).unwrap();
            assert!(!cold.cached);
            cold
            // Dropped without shutdown(): no flush — recovery must come
            // from the load-time snapshot plus the WAL-logged append.
        };
        let eng = QueryEngine::new(cfg);
        let stats = eng.stats();
        let persist = stats.get("persist").unwrap();
        assert_eq!(persist.get("enabled").unwrap().as_bool(), Some(true));
        assert_eq!(persist.get("recovery_skipped").unwrap().as_usize(), Some(0));
        let s = &stats.get("series").unwrap().as_arr().unwrap()[0];
        assert_eq!(s.get("len").unwrap().as_usize(), Some(900));
        assert_eq!(s.get("version").unwrap().as_usize(), Some(2));
        // Both sides cold-compute from bit-identical samples, so the
        // result bodies are byte-identical.
        let warm = eng.query(motif_spec("s", 24, 32)).unwrap();
        assert!(!warm.cached, "restart starts with an empty cache");
        assert_eq!(warm.payload.get("body"), cold.payload.get("body"));
        assert_eq!(warm.payload.get("version"), cold.payload.get("version"));
        eng.shutdown();
        eng.join();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn the_builder_validates_at_build_time() {
        let err = EngineConfig::builder().workers(0).build().unwrap_err();
        assert!(matches!(err, ServeError::InvalidParameter(_)), "got {err:?}");
        assert!(EngineConfig::builder().queue_depth(0).build().is_err());
        assert!(EngineConfig::builder().default_deadline(Duration::ZERO).build().is_err());
        assert!(EngineConfig::builder().max_line_bytes(16).build().is_err());
        let cfg = EngineConfig::builder()
            .workers(3)
            .queue_depth(7)
            .cache_bytes(1 << 20)
            .fragment_cache_bytes(2 << 20)
            .kernel_threads(2)
            .default_deadline(Duration::from_secs(5))
            .wal_compact_bytes(1 << 16)
            .max_line_bytes(1 << 20)
            .build()
            .unwrap();
        assert_eq!((cfg.workers, cfg.queue_depth), (3, 7));
        assert_eq!(cfg.fragment_cache_bytes, 2 << 20);
        assert_eq!(cfg.max_line_bytes, 1 << 20);
        assert!(cfg.data_dir.is_none());
    }

    #[test]
    fn identical_concurrent_queries_coalesce_into_one_compute() {
        let eng = Arc::new(engine(2, 8, 1 << 20));
        let (values, _) = plant_motif(1_600, 32, 2, 0.001, 31);
        eng.load("s", values, &[], ExclusionPolicy::HALF, false).unwrap();

        // Leader: admitted first, registers the flight before submitting.
        let leader = {
            let eng = Arc::clone(&eng);
            std::thread::spawn(move || eng.query(motif_spec("s", 16, 40)))
        };
        // Wait until the flight is registered (admission-time, so this is
        // long before the compute finishes), then attach followers.
        loop {
            let stats = eng.stats();
            let inflight =
                stats.get("planner").unwrap().get("inflight").unwrap().as_usize().unwrap();
            if inflight == 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        let followers: Vec<_> = (0..3)
            .map(|_| {
                let eng = Arc::clone(&eng);
                std::thread::spawn(move || eng.query(motif_spec("s", 16, 40)))
            })
            .collect();
        let lead = leader.join().unwrap().unwrap();
        assert!(!lead.cached && !lead.coalesced);
        for f in followers {
            let out = f.join().unwrap().unwrap();
            assert!(out.coalesced, "follower must attach to the in-flight compute");
            assert!(!out.cached);
            assert_eq!(out.payload.as_ref(), lead.payload.as_ref(), "same payload, byte for byte");
        }
        let stats = eng.stats();
        let engine_v = stats.get("engine").unwrap();
        assert_eq!(engine_v.get("computed").unwrap().as_usize(), Some(1), "exactly one compute");
        assert_eq!(engine_v.get("coalesced").unwrap().as_usize(), Some(3));
        let obs = stats.get("obs").unwrap();
        assert_eq!(obs.get("serve.query.coalesced").unwrap().as_usize(), Some(3));
        assert_eq!(stats.get("planner").unwrap().get("inflight").unwrap().as_usize(), Some(0));
        eng.shutdown();
        eng.join();
    }

    #[test]
    fn overlapping_ranges_reuse_fragments_and_appends_extend_them() {
        // Result cache off: every query reaches the planner; only the
        // fragment cache can save work.
        let eng = QueryEngine::new(
            EngineConfig::builder().workers(1).queue_depth(8).cache_bytes(0).build().unwrap(),
        );
        let (values, _) = plant_motif(700, 24, 2, 0.001, 37);
        eng.load("s", values, &[], ExclusionPolicy::HALF, false).unwrap();
        eng.query(motif_spec("s", 16, 40)).unwrap();
        let planner = |stats: &Value, key: &str| {
            stats.get("planner").unwrap().get(key).unwrap().as_usize().unwrap()
        };
        let stats = eng.stats();
        let cold_entries = planner(&stats, "fragment_entries");
        assert!(cold_entries > 0);
        assert_eq!(planner(&stats, "fragment_hits"), 0);
        assert!(planner(&stats, "parked_states") > 0, "cold segments park their states");
        // A different query kind over the same range reuses the fragments
        // (the knobs key excludes ranking parameters).
        let mut spec = motif_spec("s", 16, 40);
        spec.kind = QueryKind::Discords { top: 2 };
        eng.query(spec).unwrap();
        let stats = eng.stats();
        assert!(planner(&stats, "fragment_hits") > 0, "discords reuse the motifs' fragments");
        // An append does NOT purge: the stale fragments linger (their
        // version watermark makes them unservable) until the next query
        // lazily collects them and revives the parked states by extension.
        eng.append("s", &[0.5, 0.25]).unwrap();
        let stats = eng.stats();
        assert_eq!(planner(&stats, "fragment_entries"), cold_entries, "append must not purge");
        assert_eq!(planner(&stats, "fragments_extended"), 0);
        eng.query(motif_spec("s", 16, 40)).unwrap();
        let stats = eng.stats();
        assert!(planner(&stats, "fragment_invalidated") > 0, "stale fragments lazily collected");
        assert!(planner(&stats, "fragments_extended") > 0, "states were extended, not recomputed");
        assert_eq!(planner(&stats, "fragment_entries"), cold_entries, "fresh-version fragments");
        // A replace rewrites history: everything is purged, states included.
        eng.load("s", random_walk(300, 5), &[], ExclusionPolicy::HALF, true).unwrap();
        let stats = eng.stats();
        assert_eq!(planner(&stats, "fragment_entries"), 0);
        assert_eq!(planner(&stats, "parked_states"), 0);
        eng.shutdown();
        eng.join();
    }

    #[test]
    fn split_budget_sums_exactly_and_spreads_the_remainder() {
        assert_eq!(split_budget(0, 8).iter().sum::<usize>(), 0);
        assert_eq!(split_budget(10, 3), vec![4, 3, 3]);
        assert_eq!(split_budget(16 << 20, 8).iter().sum::<usize>(), 16 << 20);
        assert_eq!(split_budget(7, 16).iter().sum::<usize>(), 7);
        assert_eq!(split_budget(5, 1), vec![5]);
        // Degenerate stripe count is clamped, never a division by zero.
        assert_eq!(split_budget(5, 0), vec![5]);
    }

    #[test]
    fn leader_death_completes_followers_with_busy_not_a_hang() {
        // Regression: if the leader thread dies while owning a Flight,
        // attached followers used to wait out their full deadlines. The
        // FlightGuard's Drop must retire the flight and publish Busy.
        let eng = Arc::new(engine(1, 8, 1 << 20));
        eng.load("s", random_walk(300, 41), &[], ExclusionPolicy::HALF, false).unwrap();
        let spec = motif_spec("s", 16, 20);
        let key = CacheKey { series: "s".into(), version: 1, query: spec.query_key() };
        let stripe = eng.shared.store.stripe_index("s");
        let flight = Arc::new(Flight::default());
        eng.shared.shards[stripe].flights.lock().unwrap().insert(key.clone(), Arc::clone(&flight));
        eng.shared.counters.inflight_flights.fetch_add(1, Ordering::Relaxed);
        let guard =
            FlightGuard { shared: Arc::clone(&eng.shared), stripe, key, flight, done: false };
        // Follower attaches while the doomed leader still owns the flight.
        let follower = {
            let eng = Arc::clone(&eng);
            let spec = spec.clone();
            std::thread::spawn(move || {
                let started = Instant::now();
                (eng.query(spec), started.elapsed())
            })
        };
        std::thread::sleep(Duration::from_millis(100)); // follower is waiting
        let leader = std::thread::spawn(move || {
            // Silence the default panic hook for this intentional death so
            // the test log stays clean; restore it right after. The guard
            // moves into the dying closure, so the unwind drops it — the
            // exact path a worker panic takes.
            let prev = std::panic::take_hook();
            std::panic::set_hook(Box::new(|_| {}));
            let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
                let _owns = guard;
                panic!("leader dies mid-compute");
            }))
            .is_err();
            std::panic::set_hook(prev);
            assert!(unwound);
        });
        leader.join().unwrap();
        let (result, waited) = follower.join().unwrap();
        assert!(matches!(result, Err(ServeError::Busy)), "got {result:?}");
        assert!(
            waited < Duration::from_secs(20),
            "follower must fail fast, not burn its deadline: waited {waited:?}"
        );
        assert_eq!(eng.shared.counters.inflight_flights.load(Ordering::Relaxed), 0);
        // The engine still works afterwards.
        assert!(eng.query(motif_spec("s", 16, 20)).is_ok());
        eng.shutdown();
        eng.join();
    }

    #[test]
    fn different_stripe_queries_compute_in_parallel() {
        // Two series in provably different stripes, two workers: their
        // cold computes must overlap in time, witnessed by the peak of the
        // active-compute counter (and the obs gauge it mirrors).
        let eng = Arc::new(engine(2, 8, 1 << 20));
        let names: Vec<String> = {
            let a = "alpha".to_string();
            let b = (0..)
                .map(|i| format!("beta{i}"))
                .find(|n| {
                    crate::store::stripe_of(n, eng.shared.cfg.stripes)
                        != crate::store::stripe_of("alpha", eng.shared.cfg.stripes)
                })
                .unwrap();
            vec![a, b]
        };
        let (values, _) = plant_motif(1_500, 32, 2, 0.001, 43);
        for name in &names {
            eng.load(name, values.clone(), &[], ExclusionPolicy::HALF, false).unwrap();
        }
        let threads: Vec<_> = names
            .iter()
            .map(|name| {
                let eng = Arc::clone(&eng);
                let name = name.clone();
                std::thread::spawn(move || eng.query(motif_spec(&name, 16, 40)).map(|_| ()))
            })
            .collect();
        for t in threads {
            t.join().unwrap().unwrap();
        }
        let stats = eng.stats();
        let engine_v = stats.get("engine").unwrap();
        assert_eq!(engine_v.get("computed").unwrap().as_usize(), Some(2));
        assert_eq!(
            engine_v.get("peak_computes").unwrap().as_usize(),
            Some(2),
            "different-stripe computes must overlap"
        );
        assert_eq!(engine_v.get("active_computes").unwrap().as_usize(), Some(0));
        let obs = stats.get("obs").unwrap();
        assert_eq!(obs.get("serve.compute.peak_active").unwrap().as_f64(), Some(2.0));
        eng.shutdown();
        eng.join();
    }

    #[test]
    fn held_series_lock_blocks_neither_other_series_nor_stats() {
        // The deterministic form of APPEND/MOTIFS isolation: hold series
        // A's write lock (what a slow append amounts to) and prove that a
        // query on series B and a STATS snapshot both still complete. The
        // old single-RwLock store deadlocked here by construction.
        let eng = Arc::new(engine(2, 8, 1 << 20));
        eng.load("a", random_walk(400, 3), &[], ExclusionPolicy::HALF, false).unwrap();
        eng.load("b", random_walk(400, 5), &[], ExclusionPolicy::HALF, false).unwrap();
        let slot_a = eng.shared.store.get("a").unwrap();
        let held = slot_a.write();
        let (done_tx, done_rx) = mpsc::sync_channel(2);
        for _ in 0..1 {
            let eng = Arc::clone(&eng);
            let done = done_tx.clone();
            std::thread::spawn(move || {
                let query = eng.query(motif_spec("b", 16, 24)).map(|_| ());
                let stats = eng.stats();
                assert!(stats.get("series").is_some());
                let _ = done.send(query);
            });
        }
        let outcome = done_rx
            .recv_timeout(Duration::from_secs(30))
            .expect("series B and STATS must not block behind series A's lock");
        outcome.unwrap();
        drop(held);
        eng.shutdown();
        eng.join();
    }

    #[test]
    fn shutdown_rejects_new_work_and_joins() {
        let eng = engine(2, 4, 1024);
        eng.load("s", random_walk(200, 19), &[], ExclusionPolicy::HALF, false).unwrap();
        eng.shutdown();
        assert!(matches!(eng.query(motif_spec("s", 16, 20)), Err(ServeError::ShuttingDown)));
        assert!(matches!(eng.append("s", &[1.0]), Err(ServeError::ShuttingDown)));
        eng.join(); // must not hang
    }
}
