//! # valmod-serve
//!
//! The resident service layer of the VALMOD reproduction: instead of
//! re-reading a series and recomputing its statistics on every CLI
//! invocation, a `valmod-serve` process holds **named, versioned series**
//! in memory and answers repeated motif/set/discord queries over them —
//! the deployment shape of the authors' SIGMOD demo suite, where
//! variable-length motif discovery is an interactive, standing operation.
//!
//! Layers (each usable on its own):
//!
//! * [`store::SeriesStore`] — named series with monotonically versioned
//!   append ingestion; batch state rebuilt lazily, hot fixed lengths kept
//!   live through [`valmod_mp::StreamingProfile`] at `O(n)` per point;
//! * [`persist::Persistence`] — optional durability: per-series
//!   checksummed snapshots (temp-file + atomic rename) plus an
//!   append-only WAL that is fsynced *before* each batch applies, with
//!   crash recovery that truncates torn tails instead of erroring;
//! * [`cache::ResultCache`] — LRU result cache with byte-budget
//!   accounting, keyed by `(name, version, canonical query)` so stale
//!   hits are structurally impossible;
//! * [`planner`] + [`fragment::FragmentCache`] — the query planner:
//!   variable-length requests decompose into grid-aligned segments whose
//!   per-length profile fragments are cached and recomposed, so
//!   overlapping length ranges share work bit-identically;
//! * [`engine::QueryEngine`] — a worker pool behind a bounded queue with
//!   per-request deadlines and single-flight coalescing of identical
//!   concurrent queries; overload degrades to explicit `busy` errors;
//! * [`protocol`] + [`value`] — a hand-rolled line-delimited JSON-ish
//!   wire format (the build is fully offline: no serde, no tokio);
//! * [`server::Server`] / [`client::Client`] — the `std::net` TCP front
//!   end and its blocking client.
//!
//! ## Quick example (in-process, no sockets)
//!
//! ```
//! use valmod_data::generators::plant_motif;
//! use valmod_mp::ExclusionPolicy;
//! use valmod_serve::engine::{EngineConfig, QueryEngine, QueryKind, QuerySpec};
//!
//! let engine = QueryEngine::new(EngineConfig::default());
//! let (values, _) = plant_motif(1_000, 32, 2, 0.001, 7);
//! engine.load("sensor", values, &[32], ExclusionPolicy::HALF, false).unwrap();
//! let spec = QuerySpec {
//!     series: "sensor".into(),
//!     kind: QueryKind::Motifs { top: 1 },
//!     l_min: 24,
//!     l_max: 40,
//!     p: 8,
//!     policy: ExclusionPolicy::HALF,
//!     deadline: None,
//! };
//! let cold = engine.query(spec.clone()).unwrap();
//! let warm = engine.query(spec).unwrap();
//! assert!(!cold.cached && warm.cached);
//! assert_eq!(cold.payload.as_ref(), warm.payload.as_ref());
//! engine.shutdown();
//! engine.join();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod client;
pub mod engine;
pub mod error;
pub mod fragment;
pub mod persist;
pub mod planner;
pub mod protocol;
pub mod response;
pub mod server;
pub mod store;
pub mod value;

pub use cache::{CacheKey, CacheStats, ResultCache};
pub use client::{Client, Timeouts};
pub use engine::{
    split_budget, EngineConfig, EngineConfigBuilder, QueryEngine, QueryKind, QueryOutcome,
    QuerySpec,
};
pub use error::{ServeError, ServeResult};
pub use fragment::{FragmentCache, FragmentCacheStats, FragmentKey};
pub use persist::{
    Persistence, RecoveredSeries, Recovery, SnapshotMeta, DEFAULT_WAL_COMPACT_BYTES,
};
pub use planner::{block_of, plan_segments, PlanStats, Segment};
pub use protocol::{
    check_hello, hello_result, Request, Response, MAX_DEADLINE_MS, MAX_SLEEP_MS, PROTOCOL_VERSION,
};
pub use response::{
    Ack, BodyShape, DiscordHit, DiscordsBody, MotifHit, MotifsBody, QueryReply, SaveAck, SetEntry,
    SetsBody, StatsReply,
};
pub use server::{read_bounded_line, ConnectionCount, LineRead, Server, DEFAULT_MAX_LINE_BYTES};
pub use store::{stripe_of, SeriesSlot, SeriesStore, StoredSeries, DEFAULT_STRIPES};
pub use value::Value;

// Re-exported so durable-store callers (e.g. `valmod-check`'s recovery
// oracle) can pass a recorder without depending on `valmod-obs` directly.
pub use valmod_obs::SharedRecorder;
