//! The std-only TCP front end: one line-delimited request/response pair at
//! a time per connection, many concurrent connections, graceful shutdown.
//!
//! A connection thread is cheap bookkeeping — all heavy work is bounded by
//! the engine's worker pool, so a flood of connections degrades into
//! `busy` responses, not into unbounded compute. The `shutdown` command
//! answers `ok`, then stops the accept loop (a loopback self-connect
//! unblocks the blocking `accept`), half-closes the read side of every
//! open connection — a handler mid-request still writes its response, then
//! sees EOF and exits — joins the handlers, and joins the engine's
//! workers.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::engine::QueryEngine;
use crate::error::{ServeError, ServeResult};
use crate::protocol::{hello_result, response_err, response_ok, response_query, Request};
use crate::response::{Ack, SaveAck};
use crate::value::Value;

/// Default cap on one request line. Large enough for a multi-million-sample
/// `load`, small enough that a newline-free flood cannot exhaust memory.
pub const DEFAULT_MAX_LINE_BYTES: usize = 64 << 20;

/// A cloneable observer of how many connections are currently live; survives
/// [`Server::run`] consuming the server, so tests can assert that fault
/// scenarios do not leak handler threads.
#[derive(Clone)]
pub struct ConnectionCount(Arc<Mutex<HashMap<u64, TcpStream>>>);

impl ConnectionCount {
    /// Number of connections with a live handler right now.
    pub fn live(&self) -> usize {
        self.0.lock().expect("connections lock").len()
    }
}

/// A bound-but-not-yet-running server.
pub struct Server {
    listener: TcpListener,
    engine: Arc<QueryEngine>,
    stop: Arc<AtomicBool>,
    /// Read-half handles of live connections, so shutdown can unblock
    /// handlers parked in the line reader.
    connections: Arc<Mutex<HashMap<u64, TcpStream>>>,
    /// Requests longer than this are answered with a protocol error and the
    /// connection is closed without buffering the rest of the line.
    max_line_bytes: usize,
}

impl Server {
    /// Binds to `addr` (use port 0 for an ephemeral port) around an engine.
    /// The per-request line cap comes from the engine's
    /// [`crate::engine::EngineConfig::max_line_bytes`].
    pub fn bind(addr: impl ToSocketAddrs, engine: QueryEngine) -> ServeResult<Server> {
        let listener = TcpListener::bind(addr)?;
        let max_line_bytes = engine.config().max_line_bytes;
        Ok(Server {
            listener,
            engine: Arc::new(engine),
            stop: Arc::new(AtomicBool::new(false)),
            connections: Arc::new(Mutex::new(HashMap::new())),
            max_line_bytes,
        })
    }

    /// Overrides the per-request line cap (builder style). The fault harness
    /// uses a small cap to exercise the overflow path cheaply.
    pub fn with_max_line_bytes(mut self, bytes: usize) -> Self {
        self.max_line_bytes = bytes.max(1);
        self
    }

    /// A handle that reports the number of live connections after `run`
    /// consumes the server.
    pub fn connection_count(&self) -> ConnectionCount {
        ConnectionCount(Arc::clone(&self.connections))
    }

    /// The bound address (needed when binding to port 0).
    pub fn local_addr(&self) -> ServeResult<SocketAddr> {
        Ok(self.listener.local_addr()?)
    }

    /// Shared handle to the engine (for embedding / inspection).
    pub fn engine(&self) -> Arc<QueryEngine> {
        Arc::clone(&self.engine)
    }

    /// Serves until a `shutdown` command arrives, then drains and returns.
    pub fn run(self) -> ServeResult<()> {
        let addr = self.local_addr()?;
        let next_id = AtomicU64::new(0);
        let mut handlers = Vec::new();
        loop {
            let (stream, _) = match self.listener.accept() {
                Ok(conn) => conn,
                Err(e) => {
                    if self.stop.load(Ordering::SeqCst) {
                        break;
                    }
                    return Err(ServeError::Io(e));
                }
            };
            if self.stop.load(Ordering::SeqCst) {
                break; // the self-connect (or a late client) during shutdown
            }
            let id = next_id.fetch_add(1, Ordering::Relaxed);
            if let Ok(clone) = stream.try_clone() {
                let mut conns = self.connections.lock().expect("connections lock");
                conns.insert(id, clone);
                self.engine.registry().gauge("serve.conn.active").set(conns.len() as f64);
            }
            let engine = Arc::clone(&self.engine);
            let stop = Arc::clone(&self.stop);
            let connections = Arc::clone(&self.connections);
            let max_line = self.max_line_bytes;
            handlers.push(std::thread::spawn(move || {
                handle_connection(stream, Arc::clone(&engine), &stop, addr, max_line);
                let mut conns = connections.lock().expect("connections lock");
                conns.remove(&id);
                engine.registry().gauge("serve.conn.active").set(conns.len() as f64);
            }));
            handlers.retain(|h| !h.is_finished());
        }
        // Half-close every live connection: a handler mid-dispatch still
        // delivers its response, then reads EOF and exits.
        for (_, conn) in self.connections.lock().expect("connections lock").iter() {
            let _ = conn.shutdown(Shutdown::Read);
        }
        for h in handlers {
            let _ = h.join();
        }
        self.engine.shutdown();
        self.engine.join();
        Ok(())
    }
}

/// One bounded attempt to read a request line.
pub enum LineRead {
    /// Clean EOF before any bytes of a new line.
    Eof,
    /// A complete line (newline stripped by the caller's trim).
    Line(String),
    /// The line exceeded the cap; the rest was not buffered.
    TooLong,
    /// The line was not valid UTF-8.
    NotUtf8,
}

/// Reads one `\n`-terminated line, buffering at most `max` bytes. Unlike
/// `BufReader::read_line`, a hostile client sending an endless newline-free
/// stream costs O(`max`) memory, not O(stream). Public so other line-protocol
/// servers (the cluster worker) share the same bounded framing.
pub fn read_bounded_line(reader: &mut impl BufRead, max: usize) -> std::io::Result<LineRead> {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let (used, terminated) = {
            let chunk = reader.fill_buf()?;
            if chunk.is_empty() {
                if buf.is_empty() {
                    return Ok(LineRead::Eof);
                }
                (0, true) // EOF closes a final unterminated line
            } else {
                match chunk.iter().position(|&b| b == b'\n') {
                    Some(pos) => {
                        buf.extend_from_slice(&chunk[..pos]);
                        (pos + 1, true)
                    }
                    None => {
                        buf.extend_from_slice(chunk);
                        (chunk.len(), false)
                    }
                }
            }
        };
        reader.consume(used);
        if buf.len() > max {
            return Ok(LineRead::TooLong);
        }
        if terminated {
            break;
        }
    }
    match String::from_utf8(buf) {
        Ok(s) => Ok(LineRead::Line(s)),
        Err(_) => Ok(LineRead::NotUtf8),
    }
}

fn handle_connection(
    stream: TcpStream,
    engine: Arc<QueryEngine>,
    stop: &AtomicBool,
    server_addr: SocketAddr,
    max_line_bytes: usize,
) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        let line = match read_bounded_line(&mut reader, max_line_bytes) {
            Ok(LineRead::Line(line)) => line,
            Ok(LineRead::Eof) | Err(_) => return, // EOF or socket error
            Ok(LineRead::TooLong) => {
                let err = ServeError::Protocol(format!(
                    "request line exceeds the {max_line_bytes}-byte limit"
                ));
                write_response(&mut writer, &engine, response_err(&err));
                return; // the stream is mid-line: resync is impossible
            }
            Ok(LineRead::NotUtf8) => {
                let err = ServeError::Protocol("request line is not valid UTF-8".into());
                write_response(&mut writer, &engine, response_err(&err));
                return;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        engine.registry().counter("serve.net.bytes_in").add(line.len() as u64);
        let (response, initiate_shutdown) = dispatch(&engine, &line);
        if !write_response(&mut writer, &engine, response) {
            return;
        }
        if initiate_shutdown {
            // Flip the stop flag first, then unblock the accept loop.
            stop.store(true, Ordering::SeqCst);
            let _ = TcpStream::connect(server_addr);
            return;
        }
    }
}

/// Writes one encoded response line, updating the byte counter; returns
/// whether the socket is still usable.
fn write_response(writer: &mut TcpStream, engine: &QueryEngine, response: Value) -> bool {
    let mut encoded = response.encode();
    encoded.push('\n');
    engine.registry().counter("serve.net.bytes_out").add(encoded.len() as u64);
    writer.write_all(encoded.as_bytes()).is_ok() && writer.flush().is_ok()
}

/// Handles one request line; the bool asks the caller to begin shutdown.
/// Each successfully parsed command records its wall-clock latency into a
/// per-command histogram (`serve.cmd.<cmd>_us`).
fn dispatch(engine: &QueryEngine, line: &str) -> (Value, bool) {
    let request = match Value::parse(line).and_then(|v| Request::from_value(&v)) {
        Ok(req) => req,
        Err(e) => return (response_err(&e), false),
    };
    let cmd = request.cmd_name();
    let started = std::time::Instant::now();
    let outcome = execute(engine, request);
    engine
        .registry()
        .histogram(&format!("serve.cmd.{cmd}_us"))
        .record(started.elapsed().as_micros() as f64);
    outcome
}

/// Executes one parsed request against the engine.
fn execute(engine: &QueryEngine, request: Request) -> (Value, bool) {
    match request {
        Request::Load { name, values, hot, replace } => {
            let policy = valmod_mp::ExclusionPolicy::HALF;
            (
                result_response(
                    engine
                        .load(&name, values, &hot, policy, replace)
                        .map(|(version, len)| Ack { name, version, len }.to_value()),
                ),
                false,
            )
        }
        Request::Append { name, values } => (
            result_response(
                engine
                    .append(&name, &values)
                    .map(|(version, len)| Ack { name, version, len }.to_value()),
            ),
            false,
        ),
        Request::Query(spec) => match engine.query(spec) {
            Ok(outcome) => (
                response_query(
                    outcome.payload.as_ref().clone(),
                    Some(outcome.cached),
                    outcome.coalesced,
                ),
                false,
            ),
            Err(e) => (response_err(&e), false),
        },
        Request::Sleep { ms, deadline } => match engine.sleep(ms, deadline) {
            Ok(outcome) => {
                (response_ok(outcome.payload.as_ref().clone(), Some(outcome.cached)), false)
            }
            Err(e) => (response_err(&e), false),
        },
        Request::Stats => (response_ok(engine.stats(), None), false),
        Request::Ping => (response_ok(Value::str("pong"), None), false),
        Request::Save => (
            result_response(engine.persist().map(|snapshots| SaveAck { snapshots }.to_value())),
            false,
        ),
        Request::Shutdown => (response_ok(Value::str("shutting down"), None), true),
        Request::Hello { .. } => (response_ok(hello_result(&["serve"]), None), false),
    }
}

fn result_response(result: ServeResult<Value>) -> Value {
    match result {
        Ok(v) => response_ok(v, None),
        Err(e) => response_err(&e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn read_all(input: &[u8], max: usize) -> Vec<String> {
        let mut reader = Cursor::new(input.to_vec());
        let mut out = Vec::new();
        loop {
            match read_bounded_line(&mut reader, max).unwrap() {
                LineRead::Eof => return out,
                LineRead::Line(l) => out.push(l),
                LineRead::TooLong => {
                    out.push("<too long>".into());
                    return out;
                }
                LineRead::NotUtf8 => {
                    out.push("<not utf-8>".into());
                    return out;
                }
            }
        }
    }

    #[test]
    fn bounded_reader_splits_lines_and_handles_final_fragment() {
        assert_eq!(read_all(b"a\nbb\nccc", 100), vec!["a", "bb", "ccc"]);
        assert_eq!(read_all(b"", 100), Vec::<String>::new());
        assert_eq!(read_all(b"\n\n", 100), vec!["", ""]);
    }

    #[test]
    fn bounded_reader_caps_newline_free_floods() {
        let flood = vec![b'x'; 1 << 16];
        assert_eq!(read_all(&flood, 1024), vec!["<too long>"]);
        // A line exactly at the cap still passes.
        let mut exact = vec![b'y'; 1024];
        exact.push(b'\n');
        assert_eq!(read_all(&exact, 1024), vec!["y".repeat(1024)]);
    }

    #[test]
    fn bounded_reader_flags_invalid_utf8() {
        assert_eq!(read_all(b"\xff\xfe\n", 100), vec!["<not utf-8>"]);
    }
}
