//! The std-only TCP front end: one line-delimited request/response pair at
//! a time per connection, many concurrent connections, graceful shutdown.
//!
//! A connection thread is cheap bookkeeping — all heavy work is bounded by
//! the engine's worker pool, so a flood of connections degrades into
//! `busy` responses, not into unbounded compute. The `shutdown` command
//! answers `ok`, then stops the accept loop (a loopback self-connect
//! unblocks the blocking `accept`), half-closes the read side of every
//! open connection — a handler mid-request still writes its response, then
//! sees EOF and exits — joins the handlers, and joins the engine's
//! workers.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::engine::QueryEngine;
use crate::error::{ServeError, ServeResult};
use crate::protocol::{response_err, response_ok, Request};
use crate::value::Value;

/// A bound-but-not-yet-running server.
pub struct Server {
    listener: TcpListener,
    engine: Arc<QueryEngine>,
    stop: Arc<AtomicBool>,
    /// Read-half handles of live connections, so shutdown can unblock
    /// handlers parked in `read_line`.
    connections: Arc<Mutex<HashMap<u64, TcpStream>>>,
}

impl Server {
    /// Binds to `addr` (use port 0 for an ephemeral port) around an engine.
    pub fn bind(addr: impl ToSocketAddrs, engine: QueryEngine) -> ServeResult<Server> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server {
            listener,
            engine: Arc::new(engine),
            stop: Arc::new(AtomicBool::new(false)),
            connections: Arc::new(Mutex::new(HashMap::new())),
        })
    }

    /// The bound address (needed when binding to port 0).
    pub fn local_addr(&self) -> ServeResult<SocketAddr> {
        Ok(self.listener.local_addr()?)
    }

    /// Shared handle to the engine (for embedding / inspection).
    pub fn engine(&self) -> Arc<QueryEngine> {
        Arc::clone(&self.engine)
    }

    /// Serves until a `shutdown` command arrives, then drains and returns.
    pub fn run(self) -> ServeResult<()> {
        let addr = self.local_addr()?;
        let next_id = AtomicU64::new(0);
        let mut handlers = Vec::new();
        loop {
            let (stream, _) = match self.listener.accept() {
                Ok(conn) => conn,
                Err(e) => {
                    if self.stop.load(Ordering::SeqCst) {
                        break;
                    }
                    return Err(ServeError::Io(e));
                }
            };
            if self.stop.load(Ordering::SeqCst) {
                break; // the self-connect (or a late client) during shutdown
            }
            let id = next_id.fetch_add(1, Ordering::Relaxed);
            if let Ok(clone) = stream.try_clone() {
                self.connections.lock().expect("connections lock").insert(id, clone);
            }
            let engine = Arc::clone(&self.engine);
            let stop = Arc::clone(&self.stop);
            let connections = Arc::clone(&self.connections);
            handlers.push(std::thread::spawn(move || {
                handle_connection(stream, engine, &stop, addr);
                connections.lock().expect("connections lock").remove(&id);
            }));
            handlers.retain(|h| !h.is_finished());
        }
        // Half-close every live connection: a handler mid-dispatch still
        // delivers its response, then reads EOF and exits.
        for (_, conn) in self.connections.lock().expect("connections lock").iter() {
            let _ = conn.shutdown(Shutdown::Read);
        }
        for h in handlers {
            let _ = h.join();
        }
        self.engine.shutdown();
        self.engine.join();
        Ok(())
    }
}

fn handle_connection(
    stream: TcpStream,
    engine: Arc<QueryEngine>,
    stop: &AtomicBool,
    server_addr: SocketAddr,
) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => return, // EOF or socket error: drop connection
            Ok(_) => {}
        }
        if line.trim().is_empty() {
            continue;
        }
        engine.registry().counter("serve.net.bytes_in").add(line.len() as u64);
        let (response, initiate_shutdown) = dispatch(&engine, &line);
        let mut encoded = response.encode();
        encoded.push('\n');
        engine.registry().counter("serve.net.bytes_out").add(encoded.len() as u64);
        if writer.write_all(encoded.as_bytes()).is_err() || writer.flush().is_err() {
            return;
        }
        if initiate_shutdown {
            // Flip the stop flag first, then unblock the accept loop.
            stop.store(true, Ordering::SeqCst);
            let _ = TcpStream::connect(server_addr);
            return;
        }
    }
}

/// Handles one request line; the bool asks the caller to begin shutdown.
fn dispatch(engine: &QueryEngine, line: &str) -> (Value, bool) {
    let request = match Value::parse(line).and_then(|v| Request::from_value(&v)) {
        Ok(req) => req,
        Err(e) => return (response_err(&e), false),
    };
    match request {
        Request::Load { name, values, hot, replace } => {
            let policy = valmod_mp::ExclusionPolicy::HALF;
            (
                result_response(engine.load(&name, values, &hot, policy, replace).map(
                    |(version, len)| {
                        Value::obj(vec![
                            ("name", Value::str(&name)),
                            ("version", version.into()),
                            ("len", len.into()),
                        ])
                    },
                )),
                false,
            )
        }
        Request::Append { name, values } => (
            result_response(engine.append(&name, &values).map(|(version, len)| {
                Value::obj(vec![
                    ("name", Value::str(&name)),
                    ("version", version.into()),
                    ("len", len.into()),
                ])
            })),
            false,
        ),
        Request::Query(spec) => match engine.query(spec) {
            Ok(outcome) => {
                (response_ok(outcome.payload.as_ref().clone(), Some(outcome.cached)), false)
            }
            Err(e) => (response_err(&e), false),
        },
        Request::Sleep { ms, deadline } => match engine.sleep(ms, deadline) {
            Ok(outcome) => {
                (response_ok(outcome.payload.as_ref().clone(), Some(outcome.cached)), false)
            }
            Err(e) => (response_err(&e), false),
        },
        Request::Stats => (response_ok(engine.stats(), None), false),
        Request::Ping => (response_ok(Value::str("pong"), None), false),
        Request::Shutdown => (response_ok(Value::str("shutting down"), None), true),
    }
}

fn result_response(result: ServeResult<Value>) -> Value {
    match result {
        Ok(v) => response_ok(v, None),
        Err(e) => response_err(&e),
    }
}
