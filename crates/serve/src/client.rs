//! A small blocking client for the line protocol (used by `valmod query`
//! and the integration tests; also the reference for writing clients in
//! other languages — any JSON library plus a TCP socket suffices).
//!
//! Query and ingestion helpers return the **typed shapes** from
//! [`crate::response`] — the same definitions the server encodes with —
//! so callers compare fields instead of string-matching raw JSON. The
//! raw escape hatches ([`Client::roundtrip_value`], [`Client::query`])
//! remain for byte-level comparisons and protocol tests.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use valmod_data::rng::Xoshiro256;

use crate::engine::{QueryKind, QuerySpec};
use crate::error::{ServeError, ServeResult};
use crate::protocol::{check_hello, Request, Response, PROTOCOL_VERSION};
use crate::response::{
    Ack, BodyShape, DiscordsBody, MotifsBody, QueryReply, SaveAck, SetsBody, StatsReply,
};
use crate::value::Value;

/// Connection behaviour for [`Client::connect_with`]: per-attempt timeouts
/// plus a bounded, jittered-backoff retry loop. The default (`Timeouts::new`)
/// keeps today's behaviour — block forever, no retries — so existing callers
/// are unchanged; [`Timeouts::fast`] is a sensible interactive profile.
#[derive(Debug, Clone)]
pub struct Timeouts {
    /// Cap on one TCP connect attempt (`None` = OS default, can be minutes).
    pub connect: Option<Duration>,
    /// Cap on waiting for one response line (`None` = block forever).
    pub read: Option<Duration>,
    /// Extra connection attempts after the first fails (0 = single shot).
    pub retries: u32,
    /// Base backoff before the first retry; doubles per attempt.
    pub backoff: Duration,
    /// Upper bound on any single backoff sleep.
    pub backoff_cap: Duration,
    /// Seed for the deterministic backoff jitter.
    pub jitter_seed: u64,
}

impl Default for Timeouts {
    fn default() -> Self {
        Timeouts::new()
    }
}

impl Timeouts {
    /// No timeouts, no retries — the historical blocking behaviour.
    pub fn new() -> Timeouts {
        Timeouts {
            connect: None,
            read: None,
            retries: 0,
            backoff: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(2),
            jitter_seed: 0x5eed,
        }
    }

    /// An interactive profile: 2 s connect, 30 s read, 3 retries.
    pub fn fast() -> Timeouts {
        Timeouts {
            connect: Some(Duration::from_secs(2)),
            read: Some(Duration::from_secs(30)),
            retries: 3,
            ..Timeouts::new()
        }
    }

    /// Builder: connect-attempt timeout.
    pub fn with_connect(mut self, d: Duration) -> Self {
        self.connect = Some(d);
        self
    }

    /// Builder: per-response read timeout.
    pub fn with_read(mut self, d: Duration) -> Self {
        self.read = Some(d);
        self
    }

    /// Builder: number of retry attempts after the first connect fails.
    pub fn with_retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }

    /// Builder: jitter seed (distinct peers should use distinct seeds so
    /// their retry storms decorrelate).
    pub fn with_jitter_seed(mut self, seed: u64) -> Self {
        self.jitter_seed = seed;
        self
    }

    /// The jittered, exponentially growing sleep before retry `attempt`
    /// (0-based): `min(cap, backoff · 2^attempt)` scaled by a uniform factor
    /// in `[0.5, 1.0)` drawn from the seeded generator.
    fn backoff_for(&self, attempt: u32, rng: &mut Xoshiro256) -> Duration {
        let base = self.backoff.as_secs_f64() * (1u64 << attempt.min(20)) as f64;
        let capped = base.min(self.backoff_cap.as_secs_f64());
        Duration::from_secs_f64(capped * rng.uniform(0.5, 1.0))
    }
}

/// A connected client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a running server with no timeouts (blocks until the OS
    /// gives up). Interactive callers and anything talking across a real
    /// network should prefer [`Client::connect_with`] / [`Client::with_timeouts`].
    pub fn connect(addr: impl ToSocketAddrs) -> ServeResult<Client> {
        Client::connect_with(addr, &Timeouts::new())
    }

    /// Connects with per-attempt timeouts — shorthand for
    /// [`Client::connect_with`] over a default retry policy.
    pub fn with_timeouts(
        addr: impl ToSocketAddrs,
        connect: Duration,
        read: Duration,
    ) -> ServeResult<Client> {
        Client::connect_with(addr, &Timeouts::new().with_connect(connect).with_read(read))
    }

    /// Connects under `timeouts`: each attempt bounds the TCP connect (per
    /// resolved address), failures back off exponentially with deterministic
    /// jitter, and after `retries` extra attempts the last error surfaces.
    /// The read timeout sticks to the connection: a later dead peer turns
    /// into a `WouldBlock`/`TimedOut` I/O error instead of a hang.
    pub fn connect_with(addr: impl ToSocketAddrs, timeouts: &Timeouts) -> ServeResult<Client> {
        let mut rng = Xoshiro256::seed_from_u64(timeouts.jitter_seed);
        let mut attempt = 0u32;
        loop {
            match Client::connect_once(&addr, timeouts) {
                Ok(client) => return Ok(client),
                Err(e) => {
                    if attempt >= timeouts.retries {
                        return Err(e);
                    }
                    std::thread::sleep(timeouts.backoff_for(attempt, &mut rng));
                    attempt += 1;
                }
            }
        }
    }

    fn connect_once(addr: &impl ToSocketAddrs, timeouts: &Timeouts) -> ServeResult<Client> {
        let stream = match timeouts.connect {
            None => TcpStream::connect(addr)?,
            Some(limit) => {
                // `connect_timeout` needs concrete socket addresses; try each
                // resolution in turn, keeping the last error.
                let mut last: Option<std::io::Error> = None;
                let mut connected = None;
                for sock in addr.to_socket_addrs()? {
                    match TcpStream::connect_timeout(&sock, limit) {
                        Ok(s) => {
                            connected = Some(s);
                            break;
                        }
                        Err(e) => last = Some(e),
                    }
                }
                connected.ok_or_else(|| {
                    last.unwrap_or_else(|| {
                        std::io::Error::new(
                            std::io::ErrorKind::InvalidInput,
                            "address resolved to no socket addresses",
                        )
                    })
                })?
            }
        };
        stream.set_nodelay(true)?;
        stream.set_read_timeout(timeouts.read)?;
        let writer = stream.try_clone()?;
        Ok(Client { reader: BufReader::new(stream), writer })
    }

    /// Sends one raw request line and decodes the response.
    pub fn roundtrip_value(&mut self, request: &Value) -> ServeResult<Response> {
        let mut line = request.encode();
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply)?;
        if n == 0 {
            return Err(ServeError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        Response::from_value(&Value::parse(reply.trim_end())?)
    }

    /// Sends a typed request.
    pub fn request(&mut self, request: &Request) -> ServeResult<Response> {
        self.roundtrip_value(&request.to_value())
    }

    /// `LOAD`: stores a series, returning the typed acknowledgement.
    pub fn load(
        &mut self,
        name: &str,
        values: Vec<f64>,
        hot: Vec<usize>,
        replace: bool,
    ) -> ServeResult<Ack> {
        let resp = self.request(&Request::Load { name: name.to_string(), values, hot, replace })?;
        Ack::from_value(&resp.result)
    }

    /// `APPEND`: extends a series, returning the typed acknowledgement.
    pub fn append(&mut self, name: &str, values: Vec<f64>) -> ServeResult<Ack> {
        let resp = self.request(&Request::Append { name: name.to_string(), values })?;
        Ack::from_value(&resp.result)
    }

    /// A motif/sets/discords query; the raw response carries the payload
    /// and the cache/coalescing markers (escape hatch for byte-level
    /// comparisons — typed callers use [`Client::motifs`] and friends).
    pub fn query(&mut self, spec: QuerySpec) -> ServeResult<Response> {
        self.request(&Request::Query(spec))
    }

    /// A query decoded into a typed reply.
    pub fn query_typed<B: BodyShape>(&mut self, spec: QuerySpec) -> ServeResult<QueryReply<B>> {
        let resp = self.query(spec)?;
        QueryReply::from_response(&resp)
    }

    fn query_spec(name: &str, kind: QueryKind, l_min: usize, l_max: usize) -> QuerySpec {
        QuerySpec {
            series: name.to_string(),
            kind,
            l_min,
            l_max,
            p: 50,
            policy: valmod_mp::ExclusionPolicy::HALF,
            deadline: None,
        }
    }

    /// Convenience: top-k motifs over `[l_min, l_max]` with defaults.
    pub fn motifs(
        &mut self,
        name: &str,
        l_min: usize,
        l_max: usize,
        top: usize,
    ) -> ServeResult<QueryReply<MotifsBody>> {
        self.query_typed(Self::query_spec(name, QueryKind::Motifs { top }, l_min, l_max))
    }

    /// Convenience: top-k discords over `[l_min, l_max]` with defaults.
    pub fn discords(
        &mut self,
        name: &str,
        l_min: usize,
        l_max: usize,
        top: usize,
    ) -> ServeResult<QueryReply<DiscordsBody>> {
        self.query_typed(Self::query_spec(name, QueryKind::Discords { top }, l_min, l_max))
    }

    /// Convenience: motif sets over `[l_min, l_max]` with defaults.
    pub fn sets(
        &mut self,
        name: &str,
        l_min: usize,
        l_max: usize,
        k: usize,
        radius: f64,
    ) -> ServeResult<QueryReply<SetsBody>> {
        self.query_typed(Self::query_spec(name, QueryKind::Sets { k, radius }, l_min, l_max))
    }

    /// `STATS` snapshot (raw tree).
    pub fn stats(&mut self) -> ServeResult<Value> {
        Ok(self.request(&Request::Stats)?.result)
    }

    /// `STATS` decoded into the typed counters plus the raw tree.
    pub fn stats_typed(&mut self) -> ServeResult<StatsReply> {
        StatsReply::from_value(&self.stats()?)
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> ServeResult<()> {
        self.request(&Request::Ping).map(|_| ())
    }

    /// `HELLO` handshake: announces this build's protocol version and
    /// `capabilities`, returns the server's capability list, and fails with
    /// a clean protocol error if the versions disagree.
    pub fn hello(&mut self, capabilities: &[&str]) -> ServeResult<Vec<String>> {
        let resp = self.request(&Request::Hello {
            version: PROTOCOL_VERSION,
            capabilities: capabilities.iter().map(|c| c.to_string()).collect(),
        })?;
        let (_, caps) = check_hello(&resp.result)?;
        Ok(caps)
    }

    /// Diagnostics sleep (occupies one server worker).
    pub fn sleep(&mut self, ms: u64, deadline: Option<Duration>) -> ServeResult<Response> {
        self.request(&Request::Sleep { ms, deadline })
    }

    /// `SAVE`: flushes every series to a fresh snapshot. The typed ack
    /// reports 0 snapshots when the server is not durable.
    pub fn save(&mut self) -> ServeResult<SaveAck> {
        let resp = self.request(&Request::Save)?;
        SaveAck::from_value(&resp.result)
    }

    /// Asks the server to shut down gracefully.
    pub fn shutdown(&mut self) -> ServeResult<()> {
        self.request(&Request::Shutdown).map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_jitters_and_caps() {
        let t = Timeouts::new().with_jitter_seed(7);
        let mut rng = Xoshiro256::seed_from_u64(t.jitter_seed);
        let mut prev_upper = Duration::ZERO;
        for attempt in 0..6 {
            let d = t.backoff_for(attempt, &mut rng);
            let nominal = t.backoff.as_secs_f64() * (1u64 << attempt) as f64;
            let upper = nominal.min(t.backoff_cap.as_secs_f64());
            assert!(d.as_secs_f64() >= upper * 0.5 - 1e-9, "attempt {attempt}: {d:?}");
            assert!(d.as_secs_f64() < upper + 1e-9, "attempt {attempt}: {d:?}");
            assert!(d <= t.backoff_cap);
            prev_upper = prev_upper.max(d);
        }
        // Determinism: the same seed reproduces the same schedule.
        let mut a = Xoshiro256::seed_from_u64(3);
        let mut b = Xoshiro256::seed_from_u64(3);
        for attempt in 0..4 {
            assert_eq!(t.backoff_for(attempt, &mut a), t.backoff_for(attempt, &mut b));
        }
    }

    #[test]
    fn bounded_retries_surface_the_connect_error() {
        // Bind-then-drop leaves a port that refuses connections immediately.
        let port = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().port()
        };
        let t = Timeouts::new()
            .with_connect(Duration::from_millis(200))
            .with_retries(2)
            .with_jitter_seed(1);
        let started = std::time::Instant::now();
        let err = match Client::connect_with(("127.0.0.1", port), &t) {
            Ok(_) => panic!("connect to a closed port should fail"),
            Err(e) => e,
        };
        assert!(matches!(err, ServeError::Io(_)), "got {err:?}");
        // 2 retries with ≤50·2^a ms backoff: well under 5 s even loaded.
        assert!(started.elapsed() < Duration::from_secs(5));
    }
}
