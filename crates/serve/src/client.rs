//! A small blocking client for the line protocol (used by `valmod query`
//! and the integration tests; also the reference for writing clients in
//! other languages — any JSON library plus a TCP socket suffices).

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::engine::{QueryKind, QuerySpec};
use crate::error::{ServeError, ServeResult};
use crate::protocol::{Request, Response};
use crate::value::Value;

/// A connected client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> ServeResult<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client { reader: BufReader::new(stream), writer })
    }

    /// Sends one raw request line and decodes the response.
    pub fn roundtrip_value(&mut self, request: &Value) -> ServeResult<Response> {
        let mut line = request.encode();
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply)?;
        if n == 0 {
            return Err(ServeError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        Response::from_value(&Value::parse(reply.trim_end())?)
    }

    /// Sends a typed request.
    pub fn request(&mut self, request: &Request) -> ServeResult<Response> {
        self.roundtrip_value(&request.to_value())
    }

    /// `LOAD`: stores a series, returning `(version, len)`.
    pub fn load(
        &mut self,
        name: &str,
        values: Vec<f64>,
        hot: Vec<usize>,
        replace: bool,
    ) -> ServeResult<(u64, usize)> {
        let resp = self.request(&Request::Load { name: name.to_string(), values, hot, replace })?;
        version_len(&resp.result)
    }

    /// `APPEND`: extends a series, returning `(version, len)`.
    pub fn append(&mut self, name: &str, values: Vec<f64>) -> ServeResult<(u64, usize)> {
        let resp = self.request(&Request::Append { name: name.to_string(), values })?;
        version_len(&resp.result)
    }

    /// A motif/sets/discords query; the response carries the payload and
    /// the cache marker.
    pub fn query(&mut self, spec: QuerySpec) -> ServeResult<Response> {
        self.request(&Request::Query(spec))
    }

    /// Convenience: top-k motifs over `[l_min, l_max]` with defaults.
    pub fn motifs(
        &mut self,
        name: &str,
        l_min: usize,
        l_max: usize,
        top: usize,
    ) -> ServeResult<Response> {
        self.query(QuerySpec {
            series: name.to_string(),
            kind: QueryKind::Motifs { top },
            l_min,
            l_max,
            p: 50,
            policy: valmod_mp::ExclusionPolicy::HALF,
            deadline: None,
        })
    }

    /// `STATS` snapshot.
    pub fn stats(&mut self) -> ServeResult<Value> {
        Ok(self.request(&Request::Stats)?.result)
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> ServeResult<()> {
        self.request(&Request::Ping).map(|_| ())
    }

    /// Diagnostics sleep (occupies one server worker).
    pub fn sleep(&mut self, ms: u64, deadline: Option<Duration>) -> ServeResult<Response> {
        self.request(&Request::Sleep { ms, deadline })
    }

    /// `SAVE`: flushes every series to a fresh snapshot. Returns the
    /// number of snapshots written (0 when the server is not durable).
    pub fn save(&mut self) -> ServeResult<usize> {
        let resp = self.request(&Request::Save)?;
        resp.result
            .get("snapshots")
            .and_then(Value::as_usize)
            .ok_or_else(|| ServeError::Protocol("response missing \"snapshots\"".into()))
    }

    /// Asks the server to shut down gracefully.
    pub fn shutdown(&mut self) -> ServeResult<()> {
        self.request(&Request::Shutdown).map(|_| ())
    }
}

fn version_len(result: &Value) -> ServeResult<(u64, usize)> {
    let version = result
        .get("version")
        .and_then(Value::as_usize)
        .ok_or_else(|| ServeError::Protocol("response missing \"version\"".into()))?;
    let len = result
        .get("len")
        .and_then(Value::as_usize)
        .ok_or_else(|| ServeError::Protocol("response missing \"len\"".into()))?;
    Ok((version as u64, len))
}
